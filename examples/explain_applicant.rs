//! Example 4.2 of the paper: misleading scenarios vs faithful explanations.
//!
//! The cto oks the application, then *retracts* the ok; the ceo oks it
//! independently; the assistant approves based on the standing ok. The
//! applicant — who sees only `Approval` — deserves an explanation that does
//! not pretend the cto's retracted ok justified the approval.
//!
//! ```sh
//! cargo run --example explain_applicant
//! ```

use collab_workflows::core::{
    all_minimal_scenarios, is_scenario, minimal_faithful_scenario, search_min_scenario, EventSet,
    SearchOptions,
};
use collab_workflows::prelude::*;
use collab_workflows::workloads::applicant_run;

fn main() {
    let run = applicant_run();
    let spec = run.spec();
    let applicant = spec.collab().peer("applicant").unwrap();

    println!("=== the global run (events e f g h of Example 4.2) ===");
    println!("{run:?}");

    // The applicant observed a single transition: the approval.
    let view = run.view(applicant);
    println!("the applicant observed {} transition(s)\n", view.len());

    // The subrun "e h" — cto oks, assistant approves — is a *scenario*:
    // observationally equivalent for the applicant…
    let misleading = EventSet::from_iter(run.len(), [0, 3]);
    println!(
        "subrun [e, h] is a scenario for the applicant: {}",
        is_scenario(&run, applicant, &misleading)
    );
    // …and it is even a minimum one.
    let res = search_min_scenario(
        &run,
        applicant,
        &SearchOptions::default(),
        &Governor::unlimited(),
    );
    let minimum = res.found().unwrap();
    println!(
        "a minimum scenario has {} events — but it can mislead: it may claim \
         the cto's (later retracted!) ok justified the approval",
        minimum.len()
    );

    // Worse: minimal scenarios are not even unique — both [e, h] and [g, h]
    // are minimal, so "the" minimal-scenario explanation is ill-defined.
    let all = all_minimal_scenarios(&run, applicant, 10, &Governor::unlimited())
        .into_value()
        .unwrap();
    println!("\nthis run has {} distinct minimal scenarios:", all.len());
    for s in &all {
        println!("  {:?}", s.to_vec());
    }

    // Faithfulness repairs this: the unique minimal faithful scenario
    // (Theorem 4.7) must respect object lifecycles, so the retracted ok
    // (whose lifecycle closed before the approval) cannot serve as the
    // explanation — g (the ceo's ok) and h remain.
    let faithful = minimal_faithful_scenario(&run, applicant);
    println!(
        "\nthe minimal FAITHFUL scenario keeps events {:?}:",
        faithful.events.to_vec()
    );
    print!("{}", explain(&run, applicant));
    println!("\n(g = the ceo's ok — the actual cause — and h = the approval)");
}
