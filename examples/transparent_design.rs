//! Section 6: designing for transparency, and enforcing it at run time.
//!
//! ```sh
//! cargo run --example transparent_design
//! ```

use collab_workflows::design::{
    acyclicity_bound, add_stage_discipline, check_guidelines, check_tf, in_t_runs, is_p_acyclic,
    p_fresh_candidates, Classification, PushOutcome, TransparentEngine,
};
use collab_workflows::prelude::*;
use collab_workflows::workloads::{hiring_no_cfo, hiring_staged};
use std::sync::Arc;

fn main() {
    // --- The staged program satisfies the design guidelines ---------------
    let staged = hiring_staged();
    let sue = staged.collab().peer("sue").unwrap();
    println!("=== staged hiring (the transparent redesign of Example 5.7) ===");
    println!("{}", print_workflow(&staged));
    let schema = staged.collab().schema();
    let approved = schema.rel("Approved").unwrap();
    let class = Classification {
        transparent: schema.rel_ids().collect(),
        stage: schema.rel("Stage").unwrap(),
        stage_id_attr: [(approved, schema.relation(approved).attr("S").unwrap())]
            .into_iter()
            .collect(),
    };
    let violations = check_guidelines(&staged, sue, &class);
    println!("guideline (C1)–(C4) violations: {}", violations.len());
    let nf = collab_workflows::lang::normalize(&staged);
    let tf = check_tf(&nf.spec, sue, Some(class.stage));
    println!("transparency-form violations: {}", tf.len());

    // --- Boundedness by acyclicity (Theorem 6.3) --------------------------
    println!(
        "\np-acyclic for sue: {} — Theorem 6.3 bound h = (ab+1)^d = {}",
        is_p_acyclic(&staged, sue),
        acyclicity_bound(&staged)
    );

    // --- The mechanical transform reproduces the design ---------------------
    // `add_stage_discipline` rewrites the raw program automatically: Stage
    // relation, guards, stage deletions, re-keyed invisible state.
    let raw = parse_workflow(
        r#"
        schema { Cleared(K); Approved(K); Hire(K); }
        peers {
            hr sees Cleared(*), Approved(*), Hire(*);
            ceo sees Cleared(*), Approved(*), Hire(*);
            sue sees Cleared(*), Hire(*);
        }
        rules {
            clear @ hr: +Cleared(x) :- ;
            approve @ ceo: +Approved(x) :- Cleared(x);
            hire @ hr: +Hire(x) :- Approved(x);
        }
        "#,
    )
    .unwrap();
    let sue_raw = raw.collab().peer("sue").unwrap();
    let mech = add_stage_discipline(&raw, sue_raw).expect("transformable");
    println!(
        "
=== mechanically staged (add_stage_discipline) ==="
    );
    println!("{}", print_workflow(&mech.spec));
    println!(
        "guideline violations after the transform: {}",
        check_guidelines(&mech.spec, sue_raw, &mech.classification).len()
    );

    // --- Enforcement: the instrumented engine (Theorem 6.7) ---------------
    // On the NON-transparent program, the engine blocks hiring decisions
    // that rely on approvals from a previous stage.
    let plain = hiring_no_cfo();
    let sue2 = plain.collab().peer("sue").unwrap();
    println!("\n=== enforcement on the non-transparent program ===");
    let mut eng = TransparentEngine::new(Arc::clone(&plain), sue2, 3);
    let fire = |eng: &mut TransparentEngine, name: &str, vals: &[Value]| -> PushOutcome {
        let rid = plain.program().rule_by_name(name).unwrap();
        let mut b = Bindings::empty(vals.len());
        for (i, v) in vals.iter().enumerate() {
            b.set(VarId(i as u32), *v);
        }
        eng.push(Event::new(&plain, rid, b).unwrap()).unwrap()
    };
    let alice = Value::Fresh(100);
    let bobby = Value::Fresh(200);
    println!(
        "clear(alice)   → {:?}",
        fire(&mut eng, "clear", std::slice::from_ref(&alice))
    );
    println!(
        "approve(alice) → {:?}",
        fire(&mut eng, "approve", std::slice::from_ref(&alice))
    );
    println!(
        "clear(bobby)   → {:?}",
        fire(&mut eng, "clear", std::slice::from_ref(&bobby))
    );
    println!(
        "hire(alice)    → {:?}   (stale approval: blocked!)",
        fire(&mut eng, "hire", std::slice::from_ref(&alice))
    );
    println!("stats: {:?}", eng.stats());

    // The accepted run is transparent and h-bounded per Definition 6.4.
    let run = eng.into_run();
    let candidates = p_fresh_candidates(&run, sue2);
    println!(
        "accepted run ∈ tRuns_{{sue,3}}: {}",
        in_t_runs(&run, sue2, 3, &candidates)
    );
}
