//! Audit trails: persist a run as an event log, reload and re-validate it,
//! then drill into *why* each event matters to an observer.
//!
//! ```sh
//! cargo run --example audit_trail
//! ```

use collab_workflows::core::{explain, traced_closure, why, RunIndex};
use collab_workflows::engine::{encode_run, load_run, RunStats};
use collab_workflows::lang::lint;
use collab_workflows::prelude::*;
use collab_workflows::workloads::build_review_run;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A conference-review run: 2 papers decided, plus dissenting reviews.
    let mut rng = StdRng::seed_from_u64(77);
    let r = build_review_run(2, 1, &mut rng);
    let spec = r.run.spec_arc();

    // 0. Lint the program first (a clean bill of health).
    let lints = lint(&spec);
    println!("lints: {}", lints.len());
    for l in &lints {
        println!("  warning: {l}");
    }

    // 1. Persist the run as a tamper-evident event log.
    let log = encode_run(&r.run);
    println!("\n=== event log ({} lines) ===", log.lines().count());
    for line in log.lines().take(6) {
        println!("  {line}");
    }
    println!("  …");

    // 2. Reload: decoding *replays* the log, so any tampering that breaks
    //    the program semantics is rejected.
    let reloaded = load_run(spec.clone(), Instance::empty(spec.collab().schema()), &log)
        .expect("the log replays");
    assert_eq!(reloaded.current(), r.run.current());
    println!("\nreloaded and re-validated: {} events", reloaded.len());

    // A tampered log (decision without reviews) is rejected.
    let tampered = "accept f:0 f:1 f:2\n";
    assert!(load_run(
        spec.clone(),
        Instance::empty(spec.collab().schema()),
        tampered
    )
    .is_err());
    println!("tampered log rejected ✓");

    // 3. Activity statistics.
    let stats = RunStats::of(&r.run);
    println!("\n=== activity ===\n{}", stats.render(&r.run));

    // 4. The author's explanation, with drill-down justifications.
    println!("=== explanation for the author ===");
    print!("{}", explain(&r.run, r.author));
    let index = RunIndex::build(&r.run);
    let traced = traced_closure(&r.run, &index, r.author);
    // Drill into the first hidden-but-relevant event.
    let hidden = traced
        .events
        .to_vec()
        .into_iter()
        .find(|&i| !r.run.visible_at(i, r.author));
    if let Some(hidden) = hidden {
        println!("\nwhy is hidden event #{hidden} part of the explanation?");
        let j = why(&r.run, &index, r.author, hidden).expect("member of the closure");
        print!("{}", j.render(&r.run));
    }
}
