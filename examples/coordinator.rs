//! The conclusion's deployment sketch: a master server receiving updates,
//! propagating per-peer view deltas, and composing with transparency
//! enforcement.
//!
//! ```sh
//! cargo run --example coordinator
//! ```

use collab_workflows::design::{EnforcementMode, PushOutcome, TransparentEngine};
use collab_workflows::engine::Coordinator;
use collab_workflows::prelude::*;
use std::sync::Arc;

fn main() {
    let spec = Arc::new(
        parse_workflow(
            r#"
            schema { Doc(K, State); Seen(K); }
            peers {
                author sees Doc(*), Seen(*);
                editor sees Doc(*), Seen(*);
                public sees Doc(K, State) where State = "published", Seen(*);
            }
            rules {
                draft @ author: +Doc(d, "draft") :- ;
                publish @ editor:
                    -key Doc(d), +Doc(d2, "published") :- Doc(d, "draft");
                note @ public: +Seen(s) :- Doc(d, "published");
            }
            "#,
        )
        .unwrap(),
    );
    let ev = |spec: &WorkflowSpec, name: &str, vals: &[Value]| {
        let rid = spec.program().rule_by_name(name).unwrap();
        let mut b = Bindings::empty(vals.len());
        for (i, v) in vals.iter().enumerate() {
            b.set(VarId(i as u32), *v);
        }
        Event::new(spec, rid, b).unwrap()
    };

    // --- The master server propagates view deltas -------------------------
    let mut c = Coordinator::new(Arc::clone(&spec));
    let d = c.draw_fresh();
    let b1 = c
        .submit(ev(&spec, "draft", std::slice::from_ref(&d)))
        .unwrap();
    println!("draft submitted — {} peer(s) notified:", b1.deltas.len());
    for (p, delta) in &b1.deltas {
        println!(
            "  {}: {} upsert(s), {} removal(s)",
            spec.collab().peer_name(*p),
            delta.upserts.len(),
            delta.removals.len()
        );
    }
    let d2 = c.draw_fresh();
    let b2 = c.submit(ev(&spec, "publish", &[d, d2])).unwrap();
    println!("published — {} peer(s) notified:", b2.deltas.len());
    for (p, delta) in &b2.deltas {
        println!(
            "  {}: {} upsert(s), {} removal(s)",
            spec.collab().peer_name(*p),
            delta.upserts.len(),
            delta.removals.len()
        );
    }
    // Every replica equals the authoritative view.
    c.audit().expect("replicas track views");
    println!("replica audit: ok\n");

    // --- Composing with transparency enforcement --------------------------
    // The same server can gate events through the Section 6 engine first:
    // only accepted events are broadcast.
    let public = spec.collab().peer("public").unwrap();
    let mut gate =
        TransparentEngine::with_mode(Arc::clone(&spec), public, 3, EnforcementMode::Block);
    let mut gated = Coordinator::new(Arc::clone(&spec));
    let d3 = gated.draw_fresh();
    let d4 = Value::Fresh(9_000);
    let s = Value::Fresh(9_100);
    // note's variables are (s, d): the fresh note key and the published doc.
    let script: Vec<Event> = vec![
        ev(&spec, "draft", std::slice::from_ref(&d3)),
        ev(&spec, "publish", &[d3, d4]),
        ev(&spec, "note", &[s, d4]),
    ];
    for e in script {
        match gate.push(e.clone()) {
            Ok(PushOutcome::Applied { .. }) => {
                gated.submit(e).unwrap();
            }
            Ok(blocked) => println!("gate filtered an event: {blocked:?}"),
            Err(err) => println!("inapplicable event rejected: {err}"),
        }
    }
    gated.audit().expect("gated replicas track views");
    println!(
        "gated coordinator: {} events accepted, {} broadcasts, stats {:?}",
        gated.run().len(),
        gated.log().len(),
        gate.stats()
    );
}
