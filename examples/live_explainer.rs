//! Live explanations: incremental maintenance of the minimal faithful
//! scenario while a procurement workflow streams events.
//!
//! ```sh
//! cargo run --example live_explainer
//! ```

use collab_workflows::core::{minimal_faithful_scenario, IncrementalExplainer};
use collab_workflows::prelude::*;
use collab_workflows::workloads::build_procurement_run;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Build a procurement run: 3 completed purchase cycles with stalled
    // noise requests in between.
    let mut rng = StdRng::seed_from_u64(2024);
    let p = build_procurement_run(3, 2, &mut rng);
    println!(
        "streaming a {}-event procurement run; the employee sees {} transitions",
        p.run.len(),
        p.run.view(p.emp).len()
    );

    // Feed the events one by one into the incremental explainer, printing
    // the explanation size as the employee's picture sharpens.
    let mut inc = IncrementalExplainer::new(Run::new(p.run.spec_arc()), p.emp);
    for i in 0..p.run.len() {
        let event = p.run.event(i).clone();
        let name = p.run.spec().program().rule(event.rule).name.clone();
        inc.push(event).unwrap();
        println!(
            "  event {i:>2} {name:<14} → minimal faithful scenario: {:>2} of {:>2} events",
            inc.minimal_events().len(),
            inc.run().len()
        );
    }

    // The incremental result coincides with the from-scratch computation…
    let scratch = minimal_faithful_scenario(&p.run, p.emp);
    assert_eq!(inc.minimal_events(), &scratch.events);
    println!("\nincremental == from-scratch ✓");

    // …and explains each notice through its full invisible chain.
    println!("\n=== final explanation for the employee ===");
    print!("{}", explain(&p.run, p.emp));

    // Individual-event explanations are maintained too (even invisible ones).
    let some_ship = (0..p.run.len())
        .find(|&i| p.run.spec().program().rule(p.run.event(i).rule).name == "ship")
        .expect("a shipment happened");
    println!(
        "\nthe explanation of shipment event #{some_ship} alone: {:?}",
        inc.explanation_of(some_ship).to_vec()
    );
}
