//! Examples 5.1 / 5.7: transparency analysis and view-program synthesis for
//! Sue, the job applicant.
//!
//! ```sh
//! cargo run --example hiring_pipeline
//! ```

use collab_workflows::analysis::{
    check_h_bounded, check_transparent, find_bound, mirror_run, synthesize_view_program, Limits,
    MirroredStep,
};
use collab_workflows::prelude::*;
use collab_workflows::workloads::{hiring_example, hiring_no_cfo};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let limits = Limits {
        max_nodes: 4_000_000,
        max_tuples_per_rel: 1,
        extra_constants: Some(4),
    };

    // --- Example 5.7: the cfo-free hiring program is NOT transparent ------
    let spec = hiring_no_cfo();
    let sue = spec.collab().peer("sue").unwrap();
    println!("=== hiring without cfo (Example 5.7) ===");
    println!("{}", print_workflow(&spec));
    let h = find_bound(&spec, sue, 4, &limits).expect("the program is bounded");
    println!("h-boundedness for sue: h = {h}");
    match check_transparent(&spec, sue, h, &limits) {
        Decision::CounterExample(w) => {
            println!("NOT transparent for sue — witness:");
            println!("  chain runs on : {:?}", w.on);
            println!("  but fails on  : {:?}", w.against);
            println!("  because       : {}", w.reason);
        }
        other => println!("unexpected: {other}"),
    }

    // --- Example 5.1 shape: synthesize Sue's view program ------------------
    // (The ceo's approval is hidden; the view program explains Hire
    // transitions in terms of Cleared facts — exactly the paper's
    //   +Cleared@ω(x) :- ;    +Hire@ω(x) :- Cleared@ω(x).)
    let synth = synthesize_view_program(&spec, sue, h, &limits).expect("synthesis succeeds");
    println!("\n=== synthesized view program for sue ===");
    println!("{}", print_workflow(&synth.view_spec));
    println!(
        "(ω-rules: {}, inexpressible delete/re-create triples skipped: {})",
        synth.omega_rules.len(),
        synth.skipped_delete_reinsert
    );

    // --- Completeness + provenance on a concrete run -----------------------
    let full = hiring_example();
    let _ = full; // (the cfo variant is exercised in the test-suite)
    let mut sim = Simulator::new(Run::new(Arc::clone(&spec)), StdRng::seed_from_u64(42));
    sim.steps(8).unwrap();
    let run = sim.into_run();
    println!("=== a random run, mirrored through the view program ===");
    match mirror_run(&synth, &run) {
        Ok(steps) => {
            for (i, s) in steps.iter().enumerate() {
                match s {
                    MirroredStep::Own => println!("  step {i}: sue's own event"),
                    MirroredStep::Omega(m) => {
                        let rule = synth.view_spec.program().rule(m.rule);
                        println!(
                            "  step {i}: ω fired {} — provenance: {} visible fact(s)",
                            rule.name,
                            m.provenance.len()
                        );
                    }
                }
            }
        }
        Err(e) => println!("  completeness failure: {e}"),
    }

    // Boundedness sanity: the decider agrees with the chain structure.
    for test_h in [h.saturating_sub(1), h] {
        let d = check_h_bounded(&spec, sue, test_h, &limits);
        println!("h = {test_h}: {d}");
    }
}
