//! The fault-tolerant deployment: a coordinator journaling every accepted
//! event to a write-ahead log, crashing, and recovering — then the same
//! workflow driven over an unreliable network that heals.
//!
//! ```sh
//! cargo run --example durable_coordinator
//! ```

use collab_workflows::engine::{Coordinator, CoordinatorConfig, FileBackend};
use collab_workflows::prelude::*;
use std::sync::Arc;

fn spec() -> Arc<WorkflowSpec> {
    Arc::new(
        parse_workflow(
            r#"
            schema { Doc(K, State); Seen(K); }
            peers {
                author sees Doc(*), Seen(*);
                editor sees Doc(*), Seen(*);
                public sees Doc(K, State) where State = "published", Seen(*);
            }
            rules {
                draft @ author: +Doc(d, "draft") :- ;
                publish @ editor:
                    -key Doc(d), +Doc(d2, "published") :- Doc(d, "draft");
                note @ public: +Seen(s) :- Doc(d, "published");
            }
            "#,
        )
        .unwrap(),
    )
}

fn ev(spec: &WorkflowSpec, name: &str, vals: &[Value]) -> Event {
    let rid = spec.program().rule_by_name(name).unwrap();
    let mut b = Bindings::empty(vals.len());
    for (i, v) in vals.iter().enumerate() {
        b.set(VarId(i as u32), *v);
    }
    Event::new(spec, rid, b).unwrap()
}

fn main() {
    let spec = spec();
    let path = std::env::temp_dir().join("cwf_durable_coordinator.wal");
    let _ = std::fs::remove_file(&path);

    // --- Phase 1: a durable coordinator journals every accepted event ----
    let opts = WalOptions {
        sync: SyncPolicy::Always,
        snapshot_every: Some(4),
    };
    let wal = Wal::create(Box::new(FileBackend::open(&path).unwrap()), opts).unwrap();
    let mut c = Coordinator::with_wal(Arc::clone(&spec), wal);
    let d = c.draw_fresh();
    c.submit(ev(&spec, "draft", std::slice::from_ref(&d)))
        .unwrap();
    let d2 = c.draw_fresh();
    c.submit(ev(&spec, "publish", &[d, d2])).unwrap();
    // note's variables are (s, d): the fresh note key and the published doc.
    let s = c.draw_fresh();
    c.submit(ev(&spec, "note", &[s, d2])).unwrap();
    let before = c.run().len();
    let ft = c.ft_stats().clone();
    println!(
        "journaled {} events ({} appends, {} snapshots) to {}",
        before,
        ft.wal_appends,
        ft.wal_snapshots,
        path.display()
    );

    // --- Phase 2: the process dies; a fresh one recovers from the log ----
    drop(c); // simulated crash: only the log file survives
    let (mut rc, report) = Coordinator::recover(
        Arc::clone(&spec),
        Box::new(FileBackend::open(&path).unwrap()),
        opts,
        Box::new(PerfectTransport::new()),
        CoordinatorConfig::default(),
    )
    .unwrap();
    println!(
        "recovered: last_seq={} replayed={} snapshot={:?} truncated={}B",
        report.last_seq, report.events_replayed, report.snapshot_seq, report.truncated_bytes
    );
    assert_eq!(report.last_seq as usize, before);
    rc.audit().expect("replicas equal I@p after recovery");
    // The recovered coordinator keeps going where the old one stopped.
    let s2 = rc.draw_fresh();
    rc.submit(ev(&spec, "note", &[s2, d2])).unwrap();
    println!("resumed: {} events live, audit ok\n", rc.run().len());

    // --- Phase 3: unreliable delivery, then healing -----------------------
    let plan = FaultPlan::seeded(7); // drops, duplicates, delays, reorders
    let mut f = Coordinator::with_transport(
        Arc::clone(&spec),
        Box::new(FaultyTransport::new(plan)),
        CoordinatorConfig::default(),
    );
    for _ in 0..6 {
        let d = f.draw_fresh();
        f.submit(ev(&spec, "draft", std::slice::from_ref(&d)))
            .unwrap();
    }
    let lagging = f.audit().is_err();
    f.heal();
    let verdict = f.converge(1_000);
    assert!(
        verdict.is_converged(),
        "healed network must converge: {verdict}"
    );
    let ft = f.ft_stats();
    println!(
        "faulty network: lagging_before_heal={} retries={} resyncs={} dup_suppressed={}",
        lagging, ft.retries, ft.resyncs, ft.duplicates_suppressed
    );
    f.audit().expect("replicas equal I@p after healing");
    println!("converged: every replica equals its authoritative view");

    let _ = std::fs::remove_file(&path);
}
