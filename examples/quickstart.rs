//! Quickstart: define a workflow, run it, look at it through a peer's eyes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use collab_workflows::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A workflow spec in the concrete syntax: a tiny task tracker.
    //    alice creates tasks, bob claims and finishes them; carol only sees
    //    the finished work.
    let spec = Arc::new(
        parse_workflow(
            r#"
            schema {
                Task(K, Title);
                Claimed(K);
                Finished(K);
            }
            peers {
                alice sees Task(*), Claimed(*), Finished(*);
                bob   sees Task(*), Claimed(*), Finished(*);
                carol sees Finished(*);
            }
            rules {
                create @ alice: +Task(t, "design the schema") :- ;
                claim  @ bob:   +Claimed(t) :- Task(t, n), not key Claimed(t);
                finish @ bob:   +Finished(t) :- Claimed(t), not key Finished(t);
            }
            "#,
        )
        .expect("spec parses and validates"),
    );
    println!("=== program ===\n{}", print_workflow(&spec));

    // 2. Drive a run by hand: create two tasks, finish one.
    let mut run = Run::new(Arc::clone(&spec));
    let fire = |run: &mut Run, name: &str, vals: &[Value]| {
        let rid = run.spec().program().rule_by_name(name).unwrap();
        let mut b = Bindings::empty(vals.len());
        for (i, v) in vals.iter().enumerate() {
            b.set(VarId(i as u32), *v);
        }
        let event = Event::new(run.spec(), rid, b).unwrap();
        run.push(event).unwrap();
    };
    let t1 = run.draw_fresh();
    let t2 = run.draw_fresh();
    let title = Value::str("design the schema");
    fire(&mut run, "create", std::slice::from_ref(&t1));
    fire(&mut run, "create", std::slice::from_ref(&t2));
    // claim binds (t, n) — the task key and its title from the body match.
    fire(&mut run, "claim", &[t1, title]);
    fire(&mut run, "finish", std::slice::from_ref(&t1));
    println!("=== global run ===\n{run:?}");
    println!(
        "final instance:\n{}\n",
        run.current().display(spec.collab().schema())
    );

    // 3. The same run through each peer's view (Definition 3.1).
    for peer_name in ["alice", "bob", "carol"] {
        let peer = spec.collab().peer(peer_name).unwrap();
        let view = run.view(peer);
        println!("{peer_name} observes {} transition(s)", view.len());
    }

    // 4. Explain the run to carol: the unique minimal faithful scenario
    //    (Theorem 4.7) keeps exactly the events that explain the finished
    //    task — the second task's creation is correctly dropped.
    let carol = spec.collab().peer("carol").unwrap();
    println!("\n=== explanation for carol ===");
    print!("{}", explain(&run, carol));

    // 5. And a random simulation for good measure.
    let mut sim = Simulator::new(Run::new(Arc::clone(&spec)), StdRng::seed_from_u64(7));
    let fired = sim.steps(10).unwrap();
    println!("\nsimulator fired {fired} random events");
}
