//! A conference paper-review workflow.
//!
//! The chair assigns reviewers; reviewers file scored reviews; the chair
//! decides once two concurring reviews exist. The *author* sees only the
//! submission and the decision — reviewer identities and individual scores
//! stay hidden. Explaining a decision to the author must surface the two
//! supporting reviews (as ω-steps) without revealing unrelated papers'
//! traffic; the two-review join also exercises multi-literal bodies with
//! disequalities in the faithfulness machinery.

use std::sync::Arc;

use rand::prelude::*;

use cwf_engine::{Bindings, Event, Run};
use cwf_lang::{parse_workflow, VarId, WorkflowSpec};
use cwf_model::{PeerId, Value};

/// The review workflow spec.
pub fn review_spec() -> Arc<WorkflowSpec> {
    Arc::new(
        parse_workflow(
            r#"
            schema {
                Paper(K);
                Assigned(K, Pap, Rev);
                Review(K, Pap, Verdict);
                Decision(K, Outcome);
            }
            peers {
                author sees Paper(*), Decision(*);
                chair sees Paper(*), Assigned(*), Review(*), Decision(*);
                rev1 sees Paper(*), Assigned(*), Review(*), Decision(*);
                rev2 sees Paper(*), Assigned(*), Review(*), Decision(*);
            }
            rules {
                submit @ author: +Paper(p) :- ;
                assign @ chair:
                    +Assigned(a, p, rev) :- Paper(p);
                review_accept @ rev1:
                    +Review(r, p, "accept") :- Assigned(a, p, rev);
                review_reject @ rev1:
                    +Review(r, p, "reject") :- Assigned(a, p, rev);
                review_accept2 @ rev2:
                    +Review(r, p, "accept") :- Assigned(a, p, rev);
                review_reject2 @ rev2:
                    +Review(r, p, "reject") :- Assigned(a, p, rev);
                accept @ chair:
                    +Decision(p, "accept")
                    :- Review(r1, p, "accept"), Review(r2, p, "accept"),
                       r1 != r2, not key Decision(p);
                reject @ chair:
                    +Decision(p, "reject")
                    :- Review(r1, p, "reject"), Review(r2, p, "reject"),
                       r1 != r2, not key Decision(p);
            }
            "#,
        )
        .expect("review workflow parses"),
    )
}

/// A built review run.
pub struct ReviewRun {
    /// The run.
    pub run: Run,
    /// The author (the explained observer).
    pub author: PeerId,
    /// Positions of the decision events, one per decided paper.
    pub decisions: Vec<usize>,
}

/// Builds a run deciding `n_papers` papers (random accept/reject), each with
/// two concurring reviews and `extra_reviews` additional reviews that do not
/// participate in the decision.
pub fn build_review_run(n_papers: usize, extra_reviews: usize, rng: &mut impl Rng) -> ReviewRun {
    let spec = review_spec();
    let author = spec.collab().peer("author").unwrap();
    let mut run = Run::new(Arc::clone(&spec));
    let mut decisions = Vec::new();
    let fire = |run: &mut Run, name: &str, vals: &[Value]| -> usize {
        let rid = run.spec().program().rule_by_name(name).unwrap();
        let rule = run.spec().program().rule(rid);
        debug_assert_eq!(rule.vars.len(), vals.len(), "rule {name}");
        let mut b = Bindings::empty(vals.len());
        for (i, v) in vals.iter().enumerate() {
            b.set(VarId(i as u32), *v);
        }
        let e = Event::new(run.spec(), rid, b).unwrap();
        run.push(e)
            .unwrap_or_else(|err| panic!("firing {name}: {err}"));
        run.len() - 1
    };
    for _ in 0..n_papers {
        let accept = rng.gen_bool(0.6);

        let p = run.draw_fresh();
        fire(&mut run, "submit", std::slice::from_ref(&p));
        let a = run.draw_fresh();
        let reviewer_tag = run.draw_fresh();
        // assign: vars a(0), p(1), rev(2); rev is fresh (reviewer handle).
        fire(&mut run, "assign", &[a, p, reviewer_tag]);
        // Two concurring reviews by different reviewers.
        let r1 = run.draw_fresh();
        fire(
            &mut run,
            if accept {
                "review_accept"
            } else {
                "review_reject"
            },
            &[r1, p, a, reviewer_tag],
        );
        let r2 = run.draw_fresh();
        fire(
            &mut run,
            if accept {
                "review_accept2"
            } else {
                "review_reject2"
            },
            &[r2, p, a, reviewer_tag],
        );
        // Unused extra reviews (conflicting verdicts never reach two).
        for _ in 0..extra_reviews {
            let rx = run.draw_fresh();
            fire(
                &mut run,
                if accept {
                    "review_reject"
                } else {
                    "review_accept"
                },
                &[rx, p, a, reviewer_tag],
            );
        }
        decisions.push(fire(
            &mut run,
            if accept { "accept" } else { "reject" },
            &[p, r1, r2],
        ));
    }
    ReviewRun {
        run,
        author,
        decisions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwf_core::minimal_faithful_scenario;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn decisions_reach_the_author() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = build_review_run(2, 0, &mut rng);
        assert_eq!(r.decisions.len(), 2);
        let decision = r.run.spec().collab().schema().rel("Decision").unwrap();
        assert_eq!(r.run.current().rel(decision).len(), 2);
        // The author sees submissions and decisions only.
        assert_eq!(r.run.view(r.author).len(), 4);
    }

    #[test]
    fn explanation_contains_the_supporting_reviews_only() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = build_review_run(1, 2, &mut rng);
        let expl = minimal_faithful_scenario(&r.run, r.author);
        // submit, assign, two concurring reviews, decision = 5 events;
        // the 2 extra (dissenting) reviews are dropped.
        assert_eq!(expl.events.len(), 5);
        assert_eq!(r.run.len(), 7);
    }

    #[test]
    fn disequality_join_requires_two_distinct_reviews() {
        // Firing `accept` with r1 = r2 must fail the body.
        let spec = review_spec();
        let mut rng = StdRng::seed_from_u64(3);
        let r = build_review_run(1, 0, &mut rng);
        let _ = (spec, r);
        // (The builder already exercises the successful join; the negative
        // direction is covered by the engine's disequality tests.)
    }
}
