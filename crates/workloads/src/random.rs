//! Random workflow generators for fuzzing and property tests.
//!
//! [`random_propositional_spec`] builds layered propositional programs
//! (rules only read relations from earlier layers, so runs always make
//! progress), with a randomly chosen subset of relations visible to the
//! observer peer `p`. [`random_run`] drives any spec with the simulator.

use std::sync::Arc;

use rand::prelude::*;

use cwf_engine::{Run, Simulator};
use cwf_lang::{Program, RuleBuilder, Term, WorkflowSpec};
use cwf_model::{CollabSchema, PeerId, RelSchema, Schema, Value};

/// Parameters of the random propositional generator.
#[derive(Debug, Clone)]
pub struct RandomSpecParams {
    /// Number of propositional relations.
    pub n_rels: usize,
    /// Number of rules.
    pub n_rules: usize,
    /// Number of peers besides the observer.
    pub n_peers: usize,
    /// Probability that a relation is visible to the observer.
    pub visibility: f64,
    /// Probability that a rule deletes instead of inserting.
    pub delete_prob: f64,
    /// Maximum body literals per rule.
    pub max_body: usize,
}

impl Default for RandomSpecParams {
    fn default() -> Self {
        RandomSpecParams {
            n_rels: 6,
            n_rules: 10,
            n_peers: 2,
            visibility: 0.4,
            delete_prob: 0.25,
            max_body: 2,
        }
    }
}

/// A generated random workload: the spec and the observer peer.
#[derive(Debug, Clone)]
pub struct RandomWorkload {
    /// The spec.
    pub spec: Arc<WorkflowSpec>,
    /// The observer peer `p`.
    pub observer: PeerId,
}

/// Generates a random propositional workflow spec. All worker peers see
/// everything (so every body is satisfiable when the facts exist); the
/// observer sees a random subset of the relations.
pub fn random_propositional_spec(params: &RandomSpecParams, rng: &mut impl Rng) -> RandomWorkload {
    let mut schema = Schema::new();
    let rels: Vec<_> = (0..params.n_rels)
        .map(|i| {
            schema
                .add_relation(RelSchema::proposition(format!("P{i}")))
                .expect("unique names")
        })
        .collect();
    let mut collab = CollabSchema::new(schema);
    let workers: Vec<PeerId> = (0..params.n_peers.max(1))
        .map(|i| collab.add_peer(format!("w{i}")).expect("unique peers"))
        .collect();
    let observer = collab.add_peer("p").expect("unique observer");
    for &r in &rels {
        for &w in &workers {
            collab.set_full_view(w, r).expect("valid view");
        }
        if rng.gen_bool(params.visibility) {
            collab.set_full_view(observer, r).expect("valid view");
        }
    }
    let mut program = Program::new();
    let zero = || Term::Const(Value::int(0));
    for ri in 0..params.n_rules {
        let peer = workers[rng.gen_range(0..workers.len())];
        // Pick a target relation; body reads strictly lower-numbered
        // relations so the rule layer structure guarantees progress.
        let target_idx = rng.gen_range(0..rels.len());
        let target = rels[target_idx];
        let mut b = RuleBuilder::new(peer, format!("r{ri}"));
        let n_body = if target_idx == 0 {
            0
        } else {
            rng.gen_range(0..=params.max_body)
        };
        let mut guards = Vec::new();
        for _ in 0..n_body {
            let dep = rels[rng.gen_range(0..target_idx)];
            if rng.gen_bool(0.25) {
                guards.push((dep, false));
            } else {
                guards.push((dep, true));
            }
        }
        for (dep, pos) in guards {
            b = if pos {
                b.pos(dep, [zero()])
            } else {
                b.key_neg(dep, zero())
            };
        }
        let delete = rng.gen_bool(params.delete_prob);
        let rule = if delete {
            // Deletions need the tuple visible: add the witness literal.
            b.pos(target, [zero()]).delete(target, zero()).build()
        } else {
            b.insert(target, [zero()]).build()
        };
        program.add_rule(rule);
    }
    let spec =
        Arc::new(WorkflowSpec::new(collab, program).expect("generator output is well-formed"));
    RandomWorkload { spec, observer }
}

/// A random propositional workload sized for the chaos harness: a few more
/// peers and relations than the property-test default, every relation at
/// least partially hidden from the observer, deletions common enough to
/// exercise key deletion under faults.
pub fn chaos_workload(seed: u64) -> RandomWorkload {
    let params = RandomSpecParams {
        n_rels: 8,
        n_rules: 14,
        n_peers: 3,
        visibility: 0.5,
        delete_prob: 0.3,
        max_body: 2,
    };
    random_propositional_spec(&params, &mut StdRng::seed_from_u64(seed))
}

/// Drives a random run of up to `steps` events.
pub fn random_run(spec: &Arc<WorkflowSpec>, steps: usize, seed: u64) -> Run {
    let mut sim = Simulator::new(Run::new(Arc::clone(spec)), StdRng::seed_from_u64(seed));
    sim.steps(steps)
        .expect("propositional events never error fatally");
    sim.into_run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwf_core::{
        is_faithful, minimal_faithful_scenario, tp_closure, EventSet, IncrementalExplainer,
        RunIndex,
    };
    use rand::rngs::StdRng;

    #[test]
    fn generated_specs_validate_and_run() {
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..20 {
            let w = random_propositional_spec(&RandomSpecParams::default(), &mut rng);
            w.spec.validate().unwrap();
            let run = random_run(&w.spec, 15, i);
            assert!(run.len() <= 15);
        }
    }

    #[test]
    fn minimal_faithful_scenario_invariants_on_random_runs() {
        // Theorem 4.7 on random runs: the closure is faithful, a scenario,
        // and contained in every faithful subsequence that is a scenario.
        let mut rng = StdRng::seed_from_u64(12);
        for i in 0..15 {
            let w = random_propositional_spec(&RandomSpecParams::default(), &mut rng);
            let run = random_run(&w.spec, 12, 100 + i);
            let index = RunIndex::build(&run);
            let expl = minimal_faithful_scenario(&run, w.observer);
            assert!(is_faithful(&run, &index, w.observer, &expl.events));
            assert!(cwf_core::is_scenario(&run, w.observer, &expl.events));
            // Idempotence of the closure.
            let again = tp_closure(&run, &index, w.observer, &expl.events);
            assert_eq!(again, expl.events);
        }
    }

    #[test]
    fn incremental_equals_scratch_on_random_runs() {
        let mut rng = StdRng::seed_from_u64(13);
        for i in 0..10 {
            let w = random_propositional_spec(&RandomSpecParams::default(), &mut rng);
            let run = random_run(&w.spec, 15, 200 + i);
            let mut inc = IncrementalExplainer::new(Run::new(run.spec_arc()), w.observer);
            for j in 0..run.len() {
                inc.push(run.event(j).clone()).unwrap();
            }
            let scratch = minimal_faithful_scenario(&run, w.observer);
            assert_eq!(inc.minimal_events(), &scratch.events, "seed {i}");
            // Per-event explanations are closures too.
            let index = RunIndex::build(&run);
            for f in 0..run.len() {
                let direct = tp_closure(
                    &run,
                    &index,
                    w.observer,
                    &EventSet::from_iter(run.len(), [f]),
                );
                assert_eq!(inc.explanation_of(f), &direct);
            }
        }
    }

    #[test]
    fn semiring_closure_on_random_runs() {
        // Theorem 4.8 on random runs: unions/intersections of faithful
        // scenario pairs remain faithful.
        let mut rng = StdRng::seed_from_u64(14);
        for i in 0..8 {
            let w = random_propositional_spec(&RandomSpecParams::default(), &mut rng);
            let run = random_run(&w.spec, 10, 300 + i);
            if run.is_empty() {
                continue;
            }
            let index = RunIndex::build(&run);
            let n = run.len();
            // Sample faithful sets by closing random seeds.
            let mut faithful_sets = Vec::new();
            for s in 0..6u64 {
                let mut seed_rng = StdRng::seed_from_u64(s);
                let seed = EventSet::from_iter(n, (0..n).filter(|_| seed_rng.gen_bool(0.3)));
                faithful_sets.push(tp_closure(&run, &index, w.observer, &seed));
            }
            for a in &faithful_sets {
                for b in &faithful_sets {
                    let union = a.union(b);
                    let inter = a.intersection(b);
                    assert!(
                        cwf_core::is_tp_fixpoint(&run, &index, w.observer, &union),
                        "union closed"
                    );
                    assert!(
                        cwf_core::is_tp_fixpoint(&run, &index, w.observer, &inter),
                        "intersection closed"
                    );
                }
            }
        }
    }
}
