//! The Hitting-Set reduction of Theorem 3.3.
//!
//! From an instance `(V, {c_1 … c_k}, M)` of Hitting Set, the proof builds a
//! propositional workflow with peers `q` (sees everything) and `p` (sees
//! only `OK`):
//!
//! ```text
//! (a)  +V_i@q :-                    for each i
//! (b)  +C_j@q :- V_i@q              for each v_i ∈ c_j
//! (c)  +OK@q :- C_1@q, …, C_k@q
//! ```
//!
//! The canonical run fires all (a)-rules, one (b)-rule per set, then (c);
//! there is a scenario of length ≤ M + k + 1 at `p` iff a hitting set of
//! size ≤ M exists. These instances drive experiment E1 (exponential exact
//! minimum-scenario search vs polynomial greedy).

use std::sync::Arc;

use rand::prelude::*;

use cwf_engine::{Bindings, Event, Run};
use cwf_lang::{Program, RuleBuilder, Term, WorkflowSpec};
use cwf_model::{CollabSchema, RelSchema, Schema, Value};

/// A Hitting-Set instance: `n` elements and sets over `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HittingSet {
    /// Number of ground elements (`|V|`).
    pub n: usize,
    /// The sets `c_j ⊆ {0, …, n−1}` (each non-empty).
    pub sets: Vec<Vec<usize>>,
}

impl HittingSet {
    /// A random instance: `n` elements, `k` sets of size ≤ `max_set`.
    pub fn random(n: usize, k: usize, max_set: usize, rng: &mut impl Rng) -> Self {
        let sets = (0..k)
            .map(|_| {
                let size = rng.gen_range(1..=max_set.min(n));
                let mut s: Vec<usize> = (0..n).collect();
                s.shuffle(rng);
                s.truncate(size);
                s.sort_unstable();
                s
            })
            .collect();
        HittingSet { n, sets }
    }

    /// Exact minimum hitting-set size (exponential; for cross-checking the
    /// scenario search on small instances).
    pub fn min_hitting_set(&self) -> usize {
        let n = self.n;
        (0u32..(1 << n))
            .filter(|mask| {
                self.sets
                    .iter()
                    .all(|c| c.iter().any(|i| mask & (1 << i) != 0))
            })
            .map(|mask| mask.count_ones() as usize)
            .min()
            .unwrap_or(0)
    }
}

/// The generated workload: spec, the two peers, and the rule ids.
#[derive(Debug, Clone)]
pub struct HittingSetWorkload {
    /// The workflow spec of the reduction.
    pub spec: Arc<WorkflowSpec>,
    /// The all-seeing peer `q`.
    pub q: cwf_model::PeerId,
    /// The observer `p` (sees only `OK`).
    pub p: cwf_model::PeerId,
    /// The instance it was generated from.
    pub instance: HittingSet,
}

/// Builds the Theorem 3.3 workflow for a Hitting-Set instance.
pub fn hitting_set_workload(instance: HittingSet) -> HittingSetWorkload {
    let mut schema = Schema::new();
    let v_rels: Vec<_> = (0..instance.n)
        .map(|i| {
            schema
                .add_relation(RelSchema::proposition(format!("V{i}")))
                .unwrap()
        })
        .collect();
    let c_rels: Vec<_> = (0..instance.sets.len())
        .map(|j| {
            schema
                .add_relation(RelSchema::proposition(format!("C{j}")))
                .unwrap()
        })
        .collect();
    let ok = schema.add_relation(RelSchema::proposition("OK")).unwrap();
    let mut collab = CollabSchema::new(schema);
    let q = collab.add_peer("q").unwrap();
    let p = collab.add_peer("p").unwrap();
    for &r in v_rels.iter().chain(&c_rels).chain([&ok]) {
        collab.set_full_view(q, r).unwrap();
    }
    collab.set_full_view(p, ok).unwrap();
    let mut program = Program::new();
    let zero = || Term::Const(Value::int(0));
    // (a)-rules.
    for (i, &vr) in v_rels.iter().enumerate() {
        program.add_rule(
            RuleBuilder::new(q, format!("a{i}"))
                .insert(vr, [zero()])
                .build(),
        );
    }
    // (b)-rules.
    for (j, set) in instance.sets.iter().enumerate() {
        for &i in set {
            program.add_rule(
                RuleBuilder::new(q, format!("b{j}_{i}"))
                    .pos(v_rels[i], [zero()])
                    .insert(c_rels[j], [zero()])
                    .build(),
            );
        }
    }
    // (c)-rule.
    let mut c_rule = RuleBuilder::new(q, "ok");
    for &cr in &c_rels {
        c_rule = c_rule.pos(cr, [zero()]);
    }
    program.add_rule(c_rule.insert(ok, [zero()]).build());
    let spec = Arc::new(WorkflowSpec::new(collab, program).expect("reduction is well-formed"));
    HittingSetWorkload {
        spec,
        q,
        p,
        instance,
    }
}

impl HittingSetWorkload {
    fn ground(&self, name: &str) -> Event {
        let rid = self.spec.program().rule_by_name(name).expect("rule exists");
        Event::new(&self.spec, rid, Bindings::empty(0)).expect("ground rule")
    }

    /// The proof's canonical run: all (a)-rules, then one (b)-rule per set
    /// (using the set's first element), then (c). Corresponds to the trivial
    /// hitting set `W = V`.
    pub fn canonical_run(&self) -> Run {
        let mut run = Run::new(Arc::clone(&self.spec));
        for i in 0..self.instance.n {
            run.push(self.ground(&format!("a{i}")))
                .expect("a-rules fire on ∅");
        }
        for (j, set) in self.instance.sets.iter().enumerate() {
            let i = set[0];
            run.push(self.ground(&format!("b{j}_{i}")))
                .expect("b after a");
        }
        run.push(self.ground("ok")).expect("all C_j derived");
        run
    }

    /// A run firing *every* (b)-rule (longer, more redundancy to prune).
    pub fn saturated_run(&self) -> Run {
        let mut run = Run::new(Arc::clone(&self.spec));
        for i in 0..self.instance.n {
            run.push(self.ground(&format!("a{i}")))
                .expect("a-rules fire on ∅");
        }
        for (j, set) in self.instance.sets.iter().enumerate() {
            for &i in set {
                run.push(self.ground(&format!("b{j}_{i}")))
                    .expect("b after a");
            }
        }
        run.push(self.ground("ok")).expect("all C_j derived");
        run
    }

    /// The scenario length corresponding to a hitting set of size `m`
    /// (`m + k + 1`, from the proof).
    pub fn scenario_len_for(&self, m: usize) -> usize {
        m + self.instance.sets.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwf_core::{
        exists_scenario_at_most, one_minimal_scenario, search_min_scenario, SearchOptions,
    };
    use cwf_model::{Governor, Reason, Verdict};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::thread;
    use std::time::{Duration, Instant};

    fn small() -> HittingSet {
        // V = {0,1,2}, c1 = {0,1}, c2 = {1,2}: minimum hitting set {1}.
        HittingSet {
            n: 3,
            sets: vec![vec![0, 1], vec![1, 2]],
        }
    }

    #[test]
    fn min_hitting_set_is_correct() {
        assert_eq!(small().min_hitting_set(), 1);
        let disjoint = HittingSet {
            n: 4,
            sets: vec![vec![0], vec![1], vec![2]],
        };
        assert_eq!(disjoint.min_hitting_set(), 3);
    }

    #[test]
    fn canonical_run_reaches_ok() {
        let w = hitting_set_workload(small());
        let run = w.canonical_run();
        assert_eq!(run.len(), 3 + 2 + 1);
        let ok = w.spec.collab().schema().rel("OK").unwrap();
        assert!(run.current().rel(ok).contains_key(&Value::int(0)));
        // p sees exactly one transition.
        assert_eq!(run.view(w.p).len(), 1);
    }

    #[test]
    fn theorem_3_3_correspondence() {
        // The minimum scenario length equals min-hitting-set + k + 1 on the
        // saturated run (which contains a (b)-rule for every element).
        let w = hitting_set_workload(small());
        let run = w.saturated_run();
        let expected = w.scenario_len_for(w.instance.min_hitting_set());
        let res = search_min_scenario(&run, w.p, &SearchOptions::default(), &Governor::unlimited());
        let found = res.found().expect("scenario exists");
        assert_eq!(found.len(), expected);
        assert_eq!(
            exists_scenario_at_most(&run, w.p, expected - 1, &Governor::unlimited()),
            Verdict::Done(false)
        );
    }

    #[test]
    fn greedy_gives_a_scenario_at_least_as_long() {
        let mut rng = StdRng::seed_from_u64(5);
        let hs = HittingSet::random(4, 3, 2, &mut rng);
        let w = hitting_set_workload(hs);
        let run = w.saturated_run();
        let greedy = one_minimal_scenario(&run, w.p);
        let res = search_min_scenario(&run, w.p, &SearchOptions::default(), &Governor::unlimited());
        let exact = res.found().unwrap();
        assert!(greedy.len() >= exact.len());
        assert!(cwf_core::is_scenario(&run, w.p, &greedy));
    }

    /// An instance far beyond what milliseconds of exact search can finish:
    /// the saturated run has ~45 events, so the branch-and-bound tree dwarfs
    /// any node count reachable before a short deadline or cancellation.
    fn hard() -> (HittingSetWorkload, Run) {
        let mut rng = StdRng::seed_from_u64(42);
        let hs = HittingSet::random(14, 10, 5, &mut rng);
        let w = hitting_set_workload(hs);
        let run = w.saturated_run();
        (w, run)
    }

    #[test]
    fn deadline_cutoff_yields_greedy_anytime_answer() {
        let (w, run) = hard();
        let gov = Governor::with_deadline(Duration::from_millis(50));
        let started = Instant::now();
        let res = search_min_scenario(&run, w.p, &SearchOptions::default(), &gov);
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "the cutoff was prompt, not blocking"
        );
        let Verdict::Anytime(Some(witness), bound) = res else {
            panic!("expected an anytime answer, got {res:?}");
        };
        assert_eq!(bound.reason, Reason::Deadline);
        assert!(!witness.is_empty(), "the greedy upper bound is usable");
        assert!(cwf_core::is_scenario(&run, w.p, &witness));
        assert_eq!(bound.upper, Some(witness.len() as u64));
        assert!(bound.lower.unwrap() <= bound.upper.unwrap());
    }

    #[test]
    fn cross_thread_cancellation_interrupts_a_running_search() {
        let (w, run) = hard();
        let gov = Governor::unlimited();
        let token = gov.cancel_token();
        let canceller = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            token.cancel();
        });
        let res = search_min_scenario(&run, w.p, &SearchOptions::default(), &gov);
        canceller.join().unwrap();
        assert_eq!(res.reason(), Some(&Reason::Cancelled));
        assert!(gov.nodes_used() > 0, "the search was actually running");
        // Unrestricted optimization still hands back a greedy scenario.
        let witness = res.found().expect("anytime witness");
        assert!(cwf_core::is_scenario(&run, w.p, witness));
    }

    #[test]
    fn random_instances_are_well_formed() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let hs = HittingSet::random(5, 4, 3, &mut rng);
            assert_eq!(hs.sets.len(), 4);
            assert!(hs
                .sets
                .iter()
                .all(|s| !s.is_empty() && s.iter().all(|&i| i < 5)));
            let w = hitting_set_workload(hs);
            w.spec.validate().unwrap();
            let _ = w.canonical_run();
        }
    }
}
