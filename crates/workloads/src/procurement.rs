//! A realistic multi-peer procurement workflow.
//!
//! An employee submits purchase requests; small requests need a manager
//! approval, large ones additionally a finance sign-off; procurement places
//! the order, the vendor ships, and procurement notifies the employee.
//! Downstream facts are keyed by the originating request id, so `¬Key`
//! guards express "not yet processed".
//!
//! The employee sees only `Request` and `Notice`: explaining a notice
//! requires tracing through the invisible approval/order/shipment chain,
//! while *stalled* requests of other cycles contribute irrelevant silent
//! events that minimal faithful scenarios must drop. This is the scaling
//! workload of experiments E3 (polynomial minimal-faithful-scenario
//! extraction) and E4 (incremental maintenance).

use std::sync::Arc;

use rand::prelude::*;

use cwf_engine::{Bindings, Event, Run};
use cwf_lang::{parse_workflow, VarId, WorkflowSpec};
use cwf_model::{PeerId, Value};

/// The procurement workflow spec.
pub fn procurement_spec() -> Arc<WorkflowSpec> {
    Arc::new(
        parse_workflow(
            r#"
            schema {
                Request(K, Size);
                ApprovalM(K);
                ApprovalF(K);
                Order(K);
                Shipment(K);
                Notice(K);
            }
            peers {
                emp sees Request(*), Notice(*);
                mgr sees Request(*), ApprovalM(*), ApprovalF(*), Order(*),
                         Shipment(*), Notice(*);
                fin sees Request(*), ApprovalM(*), ApprovalF(*), Order(*),
                         Shipment(*), Notice(*);
                proc sees Request(*), ApprovalM(*), ApprovalF(*), Order(*),
                          Shipment(*), Notice(*);
                vendor sees Order(*), Shipment(*);
            }
            rules {
                submit_small @ emp: +Request(r, "small") :- ;
                submit_large @ emp: +Request(r, "large") :- ;
                approve_m @ mgr:
                    +ApprovalM(r) :- Request(r, s), not key ApprovalM(r);
                approve_f @ fin:
                    +ApprovalF(r) :- Request(r, "large"), not key ApprovalF(r);
                order_small @ proc:
                    +Order(r) :- Request(r, "small"), ApprovalM(r),
                                 not key Order(r);
                order_large @ proc:
                    +Order(r) :- Request(r, "large"), ApprovalM(r),
                                 ApprovalF(r), not key Order(r);
                ship @ vendor: +Shipment(r) :- Order(r), not key Shipment(r);
                notify @ proc:
                    +Notice(r) :- Order(r), Shipment(r), not key Notice(r);
            }
            "#,
        )
        .expect("procurement workflow parses"),
    )
}

/// A built procurement run with bookkeeping for the experiments.
pub struct ProcurementRun {
    /// The run.
    pub run: Run,
    /// The employee peer (the explained observer).
    pub emp: PeerId,
    /// Positions of the `notify` events, one per completed request.
    pub notices: Vec<usize>,
}

/// Builds a run completing `n_requests` purchase cycles (randomly small or
/// large). Before each cycle, `noise_requests` extra requests are submitted
/// and manager-approved but never complete — silent work irrelevant to the
/// completed cycles.
pub fn build_procurement_run(
    n_requests: usize,
    noise_requests: usize,
    rng: &mut impl Rng,
) -> ProcurementRun {
    let spec = procurement_spec();
    let emp = spec.collab().peer("emp").unwrap();
    let mut run = Run::new(Arc::clone(&spec));
    let mut notices = Vec::new();
    let fire = |run: &mut Run, name: &str, vals: &[Value]| -> usize {
        let rid = run.spec().program().rule_by_name(name).unwrap();
        let rule = run.spec().program().rule(rid);
        debug_assert_eq!(rule.vars.len(), vals.len(), "rule {name}");
        let mut b = Bindings::empty(vals.len());
        for (i, v) in vals.iter().enumerate() {
            b.set(VarId(i as u32), *v);
        }
        let e = Event::new(run.spec(), rid, b).unwrap();
        run.push(e)
            .unwrap_or_else(|err| panic!("firing {name}: {err}"));
        run.len() - 1
    };
    for _ in 0..n_requests {
        let large = rng.gen_bool(0.5);
        let size = Value::str(if large { "large" } else { "small" });
        let r = run.draw_fresh();
        fire(
            &mut run,
            if large {
                "submit_large"
            } else {
                "submit_small"
            },
            std::slice::from_ref(&r),
        );
        // Stalled noise requests: submitted and approved, never ordered.
        for _ in 0..noise_requests {
            let nr = run.draw_fresh();
            fire(&mut run, "submit_small", std::slice::from_ref(&nr));
            fire(&mut run, "approve_m", &[nr, Value::str("small")]);
        }
        fire(&mut run, "approve_m", &[r, size]);
        if large {
            fire(&mut run, "approve_f", std::slice::from_ref(&r));
            fire(&mut run, "order_large", std::slice::from_ref(&r));
        } else {
            fire(&mut run, "order_small", std::slice::from_ref(&r));
        }
        fire(&mut run, "ship", std::slice::from_ref(&r));
        notices.push(fire(&mut run, "notify", &[r]));
    }
    ProcurementRun { run, emp, notices }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwf_core::{explain, minimal_faithful_scenario, IncrementalExplainer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cycles_complete_and_are_visible_to_emp() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = build_procurement_run(3, 1, &mut rng);
        assert_eq!(p.notices.len(), 3);
        // emp sees the submissions (own + noise) and the notices.
        let view = p.run.view(p.emp);
        assert_eq!(
            view.len(),
            3 + 3 + 3,
            "3 main + 3 noise submits + 3 notices"
        );
    }

    #[test]
    fn explanation_traces_cycles_and_drops_stalled_approvals() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = build_procurement_run(1, 2, &mut rng);
        let expl = minimal_faithful_scenario(&p.run, p.emp);
        let rendered = explain(&p.run, p.emp).to_string();
        assert!(rendered.contains("notify@proc"));
        assert!(rendered.contains("ship@vendor"));
        // The two stalled approvals are irrelevant to emp's observations.
        let dropped_approvals = p
            .run
            .events()
            .iter()
            .enumerate()
            .filter(|(i, e)| {
                p.run.spec().program().rule(e.rule).name == "approve_m" && !expl.events.contains(*i)
            })
            .count();
        assert_eq!(dropped_approvals, 2);
    }

    #[test]
    fn incremental_matches_scratch_on_procurement() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = build_procurement_run(2, 1, &mut rng);
        let mut inc = IncrementalExplainer::new(Run::new(p.run.spec_arc()), p.emp);
        for i in 0..p.run.len() {
            inc.push(p.run.event(i).clone()).unwrap();
        }
        let scratch = minimal_faithful_scenario(&p.run, p.emp);
        assert_eq!(inc.minimal_events(), &scratch.events);
    }

    #[test]
    fn runs_scale_linearly_with_requests() {
        let mut rng = StdRng::seed_from_u64(4);
        let small = build_procurement_run(2, 0, &mut rng).run.len();
        let mut rng = StdRng::seed_from_u64(4);
        let big = build_procurement_run(6, 0, &mut rng).run.len();
        assert!(big > small * 2);
    }
}
