//! The transitive-closure program of Proposition 5.3.
//!
//! Peer `q` sees binary `R`, `S`, `T`; peer `p` sees only `R` and `T`. `p`
//! builds arbitrary `R`-paths; `q` saturates `S` with the transitive
//! closure of `R` and, once `S(0, 1)` is derivable, transfers it to `T`.
//! **No view program exists for `p`**: the visible insertion of `T(0, 1)`
//! is conditioned by an `R`-path of unbounded length — no rule with a
//! bounded body can express it. Accordingly the program is not h-bounded
//! for any `h`; the boundedness decider refutes each candidate `h`, and
//! synthesis at any fixed `h` is knowingly incomplete (experiment E12's
//! negative control).
//!
//! Binary relations are modeled with an explicit edge key:
//! `R(K, Src, Dst)`. Because head-only variables must take globally fresh
//! values, `p` grows paths with chaining rules (`edge0`/`extend`/`close`)
//! instead of one arbitrary-edge rule.

use std::sync::Arc;

use cwf_engine::{Bindings, Event, Run};
use cwf_lang::{parse_workflow, VarId, WorkflowSpec};
use cwf_model::Value;

/// The Proposition 5.3 workflow.
pub fn transitive_spec() -> Arc<WorkflowSpec> {
    Arc::new(
        parse_workflow(
            r#"
            schema {
                R(K, Src, Dst);
                S(K, Src, Dst);
                T(K, Src, Dst);
            }
            peers {
                p sees R(*), T(*);
                q sees R(*), S(*), T(*);
            }
            rules {
                edge01 @ p: +R(e, 0, 1) :- ;
                edge0  @ p: +R(e, 0, y) :- ;
                extend @ p: +R(e, y, z) :- R(k, x, y);
                close  @ p: +R(e, y, 1) :- R(k, x, y);
                base @ q: +S(e, x, y) :- R(k, x, y);
                step @ q: +S(e, x, z) :- S(k1, x, y), S(k2, y, z);
                emit @ q: +T(e, 0, 1) :- S(k, 0, 1);
            }
            "#,
        )
        .expect("proposition 5.3 program parses"),
    )
}

/// Builds a run where `p` lays an `R`-path `0 → … → 1` of `path_len ≥ 1`
/// edges and `q` derives `T(0, 1)` through the closure.
pub fn transitive_run(path_len: usize) -> Run {
    assert!(path_len >= 1);
    let spec = transitive_spec();
    let mut run = Run::new(Arc::clone(&spec));
    let fire = |run: &mut Run, name: &str, vals: &[Value]| {
        let rid = run.spec().program().rule_by_name(name).unwrap();
        let rule = run.spec().program().rule(rid);
        debug_assert_eq!(rule.vars.len(), vals.len(), "rule {name}");
        let mut b = Bindings::empty(vals.len());
        for (i, v) in vals.iter().enumerate() {
            b.set(VarId(i as u32), *v);
        }
        let e = Event::new(run.spec(), rid, b).unwrap();
        run.push(e)
            .unwrap_or_else(|err| panic!("firing {name}: {err}"));
    };
    // Nodes 0, f_1, …, f_{path_len−1}, 1; edge keys as we go.
    let mut nodes = vec![Value::int(0)];
    let mut edge_keys = Vec::new();
    if path_len == 1 {
        let e = run.draw_fresh();
        edge_keys.push(e);
        fire(&mut run, "edge01", &[e]);
        nodes.push(Value::int(1));
    } else {
        // 0 → f1.
        let e = run.draw_fresh();
        let f1 = run.draw_fresh();
        edge_keys.push(e);
        nodes.push(f1);
        fire(&mut run, "edge0", &[e, f1]);
        // f_i → f_{i+1}.
        for _ in 2..path_len {
            let e = run.draw_fresh();
            let next = run.draw_fresh();
            let prev_key = *edge_keys.last().expect("at least one edge");
            let prev_src = nodes[nodes.len() - 2];
            let cur = *nodes.last().expect("nodes non-empty");
            // extend: +R(e, y, z) :- R(k, x, y) — vars e, y, z, k, x.
            fire(&mut run, "extend", &[e, cur, next, prev_key, prev_src]);
            edge_keys.push(e);
            nodes.push(next);
        }
        // f_last → 1.
        let e = run.draw_fresh();
        let prev_key = *edge_keys.last().expect("edge exists");
        let prev_src = nodes[nodes.len() - 2];
        let cur = *nodes.last().expect("nodes non-empty");
        // close: +R(e, y, 1) :- R(k, x, y) — vars e, y, k, x.
        fire(&mut run, "close", &[e, cur, prev_key, prev_src]);
        edge_keys.push(e);
        nodes.push(Value::int(1));
    }
    // q copies the edges into S.
    let mut s_keys: Vec<Value> = Vec::new();
    for (i, w) in nodes.windows(2).enumerate() {
        let e = run.draw_fresh();
        // base: +S(e, x, y) :- R(k, x, y) — vars e, x, y, k.
        fire(&mut run, "base", &[e, w[0], w[1], edge_keys[i]]);
        s_keys.push(e);
    }
    // Fold the path left to right.
    let mut acc_key = s_keys[0];
    let acc_src = Value::int(0);
    for (i, k2) in s_keys.iter().enumerate().skip(1) {
        let e = run.draw_fresh();
        let mid = nodes[i];
        let dst = nodes[i + 1];
        // step: +S(e, x, z) :- S(k1, x, y), S(k2, y, z) — vars e,x,z,k1,y,k2.
        fire(&mut run, "step", &[e, acc_src, dst, acc_key, mid, *k2]);
        acc_key = e;
    }
    // emit: +T(e, 0, 1) :- S(k, 0, 1) — vars e, k.
    let e = run.draw_fresh();
    fire(&mut run, "emit", &[e, acc_key]);
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwf_analysis::{check_h_bounded, Limits};

    #[test]
    fn closure_reaches_t() {
        for len in [1usize, 3, 5] {
            let run = transitive_run(len);
            let t = run.spec().collab().schema().rel("T").unwrap();
            assert_eq!(run.current().rel(t).len(), 1, "path length {len}");
            let p = run.spec().collab().peer("p").unwrap();
            // p sees its own edge insertions and the final T insert.
            assert_eq!(run.visible_events(p).len(), len + 1);
        }
    }

    #[test]
    fn silent_relevant_chain_grows_with_path_length() {
        // The minimum p-faithful subrun of the final stage contains the
        // whole base/step/emit pyramid: 2·len events for a length-len path.
        for len in [1usize, 2, 4] {
            let run = transitive_run(len);
            let p = run.spec().collab().peer("p").unwrap();
            let expl = cwf_core::minimal_faithful_scenario(&run, p);
            // edges (len) + bases (len) + steps (len−1) + emit.
            assert_eq!(expl.events.len(), 3 * len, "len {len}");
        }
    }

    #[test]
    fn not_1_bounded() {
        // base;emit refutes h = 1.
        let spec = transitive_spec();
        let p = spec.collab().peer("p").unwrap();
        let limits = Limits {
            max_nodes: 2_000_000,
            max_tuples_per_rel: 1,
            extra_constants: Some(1),
        };
        let d = check_h_bounded(&spec, p, 1, &limits);
        assert!(d.counter_example().is_some(), "expected a counterexample");
    }

    /// The h = 2 refutation: base;step;emit over a seeded S tuple.
    #[test]
    fn not_2_bounded() {
        let spec = transitive_spec();
        let p = spec.collab().peer("p").unwrap();
        let limits = Limits {
            max_nodes: 60_000_000,
            max_tuples_per_rel: 1,
            extra_constants: Some(1),
        };
        let d = check_h_bounded(&spec, p, 2, &limits);
        assert!(d.counter_example().is_some(), "expected a counterexample");
    }
}
