//! An incident-triage workflow with *selection-based* visibility.
//!
//! Unlike the other workloads (whose views are plain projections), the
//! on-call responder sees a ticket **only while its severity is "high"**:
//! `Ticket@oncall = σ_{Sev="high"}(Ticket)`. The reporter files tickets
//! through a key-only view (severity starts `⊥`); the triager escalates by
//! writing `Sev := "high"` — a `⊥ → v` modification that makes the tuple
//! *appear* in the on-call view, so the escalation is visible there purely
//! through the selection, while staying **invisible to the reporter** (who
//! does not project `Sev`). This exercises:
//!
//! * visibility changes caused by attribute writes, not tuple creation;
//! * `att(R, q) = att(R@q) ∪ att(σ(R@q))` — the severity column is
//!   relevant to the on-call peer through the selection alone;
//! * modification faithfulness: explaining a resolution to the *reporter*
//!   must pull in the (reporter-invisible) escalation, because it wrote an
//!   attribute relevant to the resolving peer.

use std::sync::Arc;

use rand::prelude::*;

use cwf_engine::{Bindings, Event, Run};
use cwf_lang::{parse_workflow, VarId, WorkflowSpec};
use cwf_model::{PeerId, Value};

/// The triage workflow spec.
pub fn triage_spec() -> Arc<WorkflowSpec> {
    Arc::new(
        parse_workflow(
            r#"
            schema {
                Ticket(K, Sev);
                Ack(K);
                Resolved(K);
            }
            peers {
                reporter sees Ticket(K), Ack(*), Resolved(*);
                triager  sees Ticket(*), Ack(*), Resolved(*);
                oncall   sees Ticket(*) where Sev = "high",
                              Ack(*), Resolved(*);
            }
            rules {
                file @ reporter: +Ticket(t) :- ;
                escalate @ triager:
                    +Ticket(t, "high") :- Ticket(t, s), s = null;
                ack @ oncall:
                    +Ack(t) :- Ticket(t, "high"), not key Ack(t);
                resolve @ oncall:
                    +Resolved(t) :- Ticket(t, "high"), Ack(t),
                                    not key Resolved(t);
            }
            "#,
        )
        .expect("triage workflow parses"),
    )
}

/// A built triage run.
pub struct TriageRun {
    /// The run.
    pub run: Run,
    /// The reporter (key-only view of tickets).
    pub reporter: PeerId,
    /// The on-call responder (selection-limited view).
    pub oncall: PeerId,
    /// Positions of the escalation events, one per escalated ticket.
    pub escalations: Vec<usize>,
    /// Positions of the resolution events.
    pub resolutions: Vec<usize>,
}

/// Files `n_tickets` tickets and escalates/acks/resolves the first
/// `n_escalated` of them; the rest stay `⊥`-severity noise the on-call peer
/// never sees.
pub fn build_triage_run(n_tickets: usize, n_escalated: usize, rng: &mut impl Rng) -> TriageRun {
    assert!(n_escalated <= n_tickets);
    let spec = triage_spec();
    let reporter = spec.collab().peer("reporter").unwrap();
    let oncall = spec.collab().peer("oncall").unwrap();
    let mut run = Run::new(Arc::clone(&spec));
    let fire = |run: &mut Run, name: &str, vals: &[Value]| -> usize {
        let rid = run.spec().program().rule_by_name(name).unwrap();
        let rule = run.spec().program().rule(rid);
        debug_assert_eq!(rule.vars.len(), vals.len(), "rule {name}");
        let mut b = Bindings::empty(vals.len());
        for (i, v) in vals.iter().enumerate() {
            b.set(VarId(i as u32), *v);
        }
        let e = Event::new(run.spec(), rid, b).unwrap();
        run.push(e)
            .unwrap_or_else(|err| panic!("firing {name}: {err}"));
        run.len() - 1
    };
    let mut ids = Vec::new();
    for _ in 0..n_tickets {
        let t = run.draw_fresh();
        fire(&mut run, "file", std::slice::from_ref(&t));
        ids.push(t);
    }
    // Interleave escalations in a shuffled order for variety.
    let mut hot: Vec<Value> = ids.iter().take(n_escalated).cloned().collect();
    hot.shuffle(rng);
    let mut escalations = Vec::new();
    let mut resolutions = Vec::new();
    for t in hot {
        escalations.push(fire(&mut run, "escalate", &[t, Value::Null]));
        fire(&mut run, "ack", std::slice::from_ref(&t));
        resolutions.push(fire(&mut run, "resolve", &[t]));
    }
    TriageRun {
        run,
        reporter,
        oncall,
        escalations,
        resolutions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwf_core::{minimal_faithful_scenario, why, RunIndex};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn selection_drives_oncall_visibility() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = build_triage_run(3, 1, &mut rng);
        // Filing is invisible to on-call (⊥ severity fails the selection)…
        for i in 0..3 {
            assert!(!r.run.visible_at(i, r.oncall), "filing {i} is invisible");
        }
        // …the escalation is visible there purely through the selection…
        assert!(r.run.visible_at(r.escalations[0], r.oncall));
        // …and invisible to the reporter (who does not project Sev and
        // already saw the key).
        assert!(!r.run.visible_at(r.escalations[0], r.reporter));
    }

    #[test]
    fn reporter_explanation_pulls_in_the_hidden_escalation() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = build_triage_run(4, 2, &mut rng);
        let expl = minimal_faithful_scenario(&r.run, r.reporter);
        for &e in &r.escalations {
            assert!(
                expl.events.contains(e),
                "escalation {e} must explain the resolution"
            );
        }
        // Every event of this run is relevant to the reporter: filings are
        // its own, acks/resolutions are visible, and the escalations are
        // pulled in by modification faithfulness — the explanation is the
        // whole run.
        assert_eq!(expl.events.len(), r.run.len());
    }

    #[test]
    fn why_chain_blames_the_selection_attribute() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = build_triage_run(1, 1, &mut rng);
        let index = RunIndex::build(&r.run);
        let j = why(&r.run, &index, r.reporter, r.escalations[0])
            .expect("escalation is in the explanation");
        // The escalation is there because it wrote Sev (relevant via the
        // on-call selection) used by the ack/resolve events.
        let rendered = j.render(&r.run);
        assert!(rendered.contains("wrote Ticket"), "got: {rendered}");
        assert!(rendered.contains("Sev"), "got: {rendered}");
    }

    #[test]
    fn modification_faithfulness_rejects_dropping_the_escalation() {
        use cwf_core::{is_modification_faithful, EventSet};
        let mut rng = StdRng::seed_from_u64(4);
        let r = build_triage_run(1, 1, &mut rng);
        let index = RunIndex::build(&r.run);
        let full = EventSet::full(r.run.len());
        assert!(is_modification_faithful(&r.run, &index, r.reporter, &full));
        let mut without = full.clone();
        without.remove(r.escalations[0]);
        assert!(
            !is_modification_faithful(&r.run, &index, r.reporter, &without),
            "dropping the Sev writer must break modification faithfulness"
        );
    }
}
