//! # cwf-workloads — workload and reduction generators
//!
//! Everything the tests, examples, and benches run on:
//!
//! * the **Hitting-Set** reduction of Theorem 3.3 and the **UNSAT**
//!   reduction of Theorem 3.4 (hardness-shape workloads E1/E2);
//! * the paper's running examples (4.2, 5.1, 5.7, the staged variant, and
//!   Section 2's HR rule);
//! * two larger realistic workflows — **procurement** and **conference
//!   review** — used for scaling experiments E3/E4;
//! * the **transitive-closure** program of Proposition 5.3 (the negative
//!   control: no view program exists);
//! * **random propositional workflows** for fuzzing and property tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod examples;
pub mod hitting_set;
pub mod procurement;
pub mod random;
pub mod review;
pub mod transitive;
pub mod triage;
pub mod unsat;

pub use examples::{
    applicant_example, applicant_run, hiring_example, hiring_no_cfo, hiring_staged,
    hr_replace_example,
};
pub use hitting_set::{hitting_set_workload, HittingSet, HittingSetWorkload};
pub use procurement::{build_procurement_run, procurement_spec, ProcurementRun};
pub use random::{
    chaos_workload, random_propositional_spec, random_run, RandomSpecParams, RandomWorkload,
};
pub use review::{build_review_run, review_spec, ReviewRun};
pub use transitive::{transitive_run, transitive_spec};
pub use triage::{build_triage_run, triage_spec, TriageRun};
pub use unsat::{unsat_workload, Cnf, UnsatWorkload};
