//! The paper's running examples, as reusable workloads.
//!
//! * [`applicant_example`] — Example 4.2 (cto/ceo/assistant/applicant) with
//!   its canonical run `e f g h`;
//! * [`hiring_example`] — Example 5.1 (hr/cfo/ceo/Sue, with `cfoOK`);
//! * [`hiring_no_cfo`] — Example 5.7's intermediate program (not
//!   transparent for Sue);
//! * [`hiring_staged`] — the staged, transparent variant (Approved keyed by
//!   a fresh token carrying the stage id — see the design notes);
//! * [`hr_replace_example`] — the `Assign`/`Replace` rule of Section 2.

use std::sync::Arc;

use cwf_engine::{Bindings, Event, Run};
use cwf_lang::{parse_workflow, WorkflowSpec};

/// Example 4.2: the applicant sees only `Approval`; the cto's retracted ok
/// must not serve as the explanation of the approval.
pub fn applicant_example() -> Arc<WorkflowSpec> {
    Arc::new(
        parse_workflow(
            r#"
            schema { Ok(K); Approval(K); }
            peers {
                cto sees Ok(*), Approval(*);
                ceo sees Ok(*), Approval(*);
                assistant sees Ok(*), Approval(*);
                applicant sees Approval(*);
            }
            rules {
                e @ cto: +Ok(0) :- ;
                f @ cto: -key Ok(0) :- Ok(0);
                g @ ceo: +Ok(0) :- ;
                h @ assistant: +Approval(0) :- Ok(0);
            }
            "#,
        )
        .expect("example 4.2 parses"),
    )
}

/// The canonical run `e f g h` of Example 4.2.
pub fn applicant_run() -> Run {
    let spec = applicant_example();
    let mut run = Run::new(Arc::clone(&spec));
    for n in ["e", "f", "g", "h"] {
        let rid = spec.program().rule_by_name(n).unwrap();
        run.push(Event::new(&spec, rid, Bindings::empty(0)).unwrap())
            .expect("canonical run of example 4.2");
    }
    run
}

/// Example 5.1: hiring with a cfo sign-off that Sue cannot see.
///
/// One adjustment to the paper's literal rules: `+cfoOK@cfo(x) :-` has a
/// head-only `x`, which the run semantics forces to a globally *fresh*
/// value — it could then never match an existing candidate. We bind `x`
/// through `Cleared(x)` instead (the cfo signs off on cleared candidates),
/// which is the evident intent.
pub fn hiring_example() -> Arc<WorkflowSpec> {
    Arc::new(
        parse_workflow(
            r#"
            schema { Cleared(K); CfoOK(K); Approved(K); Hire(K); }
            peers {
                hr sees Cleared(*), CfoOK(*), Approved(*), Hire(*);
                cfo sees Cleared(*), CfoOK(*), Approved(*), Hire(*);
                ceo sees Cleared(*), CfoOK(*), Approved(*), Hire(*);
                sue sees Cleared(*), Hire(*);
            }
            rules {
                clear @ hr: +Cleared(x) :- ;
                cfo_ok @ cfo: +CfoOK(x) :- Cleared(x);
                approve @ ceo: +Approved(x) :- Cleared(x), CfoOK(x);
                hire @ hr: +Hire(x) :- Approved(x), not key Hire(x);
            }
            "#,
        )
        .expect("example 5.1 parses"),
    )
}

/// Example 5.7's first repair attempt: `cfoOK` removed, still not
/// transparent for Sue (the invisible `Approved` gates her transitions).
pub fn hiring_no_cfo() -> Arc<WorkflowSpec> {
    Arc::new(
        parse_workflow(
            r#"
            schema { Cleared(K); Approved(K); Hire(K); }
            peers {
                hr sees Cleared(*), Approved(*), Hire(*);
                ceo sees Cleared(*), Approved(*), Hire(*);
                sue sees Cleared(*), Hire(*);
            }
            rules {
                clear @ hr: +Cleared(x) :- ;
                approve @ ceo: +Approved(x) :- Cleared(x), not key Approved(x);
                hire @ hr: +Hire(x) :- Approved(x), not key Hire(x);
            }
            "#,
        )
        .expect("example 5.7 parses"),
    )
}

/// The staged, transparent hiring workflow (Example 5.7's final form).
/// Approvals are keyed by a fresh token and stamped with the current stage
/// id, so stale approvals can neither conflict nor be reused.
pub fn hiring_staged() -> Arc<WorkflowSpec> {
    Arc::new(
        parse_workflow(
            r#"
            schema { Stage(K, S); Cleared(K); Approved(K, X, S); Hire(K); }
            peers {
                sue sees Stage(*), Cleared(*), Hire(*);
                hr  sees Stage(*), Cleared(*), Approved(*), Hire(*);
                ceo sees Stage(*), Cleared(*), Approved(*), Hire(*);
            }
            rules {
                stage   @ sue: +Stage(0, s) :- not key Stage(0);
                clear   @ hr:  +Cleared(x), -key Stage(0) :- Stage(0, s);
                approve @ ceo: +Approved(k, x, s) :- Cleared(x), Stage(0, s);
                hire    @ hr:  +Hire(x), -key Stage(0)
                               :- Approved(k, x, s), Stage(0, s);
            }
            "#,
        )
        .expect("staged hiring parses"),
    )
}

/// Section 2's HR rule: replace employee `x` by `x′` on project `y`.
pub fn hr_replace_example() -> Arc<WorkflowSpec> {
    Arc::new(
        parse_workflow(
            r#"
            schema { Assign(K, Proj); Replace(K, New); }
            peers {
                hr sees Assign(*), Replace(*);
                board sees Assign(*), Replace(*);
            }
            rules {
                assign @ hr: +Assign(x, y) :- ;
                request @ board: +Replace(x, x2) :- Assign(x, y);
                replace @ hr:
                    -key Assign(x), +Assign(x2, y)
                    :- Assign(x, y), Replace(x, x2), x != x2;
            }
            "#,
        )
        .expect("HR example parses"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwf_core::{explain, minimal_faithful_scenario};
    use cwf_lang::VarId;
    use cwf_model::Value;

    #[test]
    fn applicant_explanation_is_gh() {
        let run = applicant_run();
        let applicant = run.spec().collab().peer("applicant").unwrap();
        let expl = minimal_faithful_scenario(&run, applicant);
        assert_eq!(expl.events.to_vec(), vec![2, 3]);
        let rendered = explain(&run, applicant).to_string();
        assert!(rendered.contains("g@ceo"));
        assert!(!rendered.contains("e@cto"), "the retracted ok is excluded");
    }

    #[test]
    fn hiring_example_runs_end_to_end() {
        let spec = hiring_example();
        let sue = spec.collab().peer("sue").unwrap();
        let mut run = Run::new(Arc::clone(&spec));
        let x = Value::str("sue");
        for name in ["clear", "cfo_ok", "approve", "hire"] {
            let rid = spec.program().rule_by_name(name).unwrap();
            let rule = spec.program().rule(rid);
            let mut b = Bindings::empty(rule.vars.len());
            b.set(VarId(0), x);
            run.push(Event::new(&spec, rid, b).unwrap()).unwrap();
        }
        // Sue saw the clearance and the hire; the cfo/ceo steps are hidden.
        assert_eq!(run.view(sue).len(), 2);
        let expl = minimal_faithful_scenario(&run, sue);
        assert_eq!(expl.events.len(), 4, "everything is relevant to the hire");
    }

    #[test]
    fn staged_hiring_cycles_through_stages() {
        let spec = hiring_staged();
        let mut run = Run::new(Arc::clone(&spec));
        let mut push = |name: &str, vals: Vec<Value>| {
            let rid = run.spec().program().rule_by_name(name).unwrap();
            let mut b = Bindings::empty(vals.len());
            for (i, v) in vals.into_iter().enumerate() {
                b.set(VarId(i as u32), v);
            }
            let e = Event::new(run.spec(), rid, b).unwrap();
            run.push(e).unwrap();
        };
        let s1 = Value::Fresh(1000);
        let s2 = Value::Fresh(2000);
        let x = Value::Fresh(3000);
        let k = Value::Fresh(4000);
        push("stage", vec![s1]);
        push("clear", vec![x, s1]);
        push("stage", vec![s2]);
        push("approve", vec![k, x, s2]);
        push("hire", vec![x, k, s2]);
        let hire = run.spec().collab().schema().rel("Hire").unwrap();
        assert!(run.current().rel(hire).contains_key(&x));
    }

    #[test]
    fn hr_replace_swaps_assignment() {
        let spec = hr_replace_example();
        let assign = spec.collab().schema().rel("Assign").unwrap();
        let mut run = Run::new(Arc::clone(&spec));
        let (alice, bob, proj) = (Value::str("alice"), Value::str("bob"), Value::str("apollo"));
        let mut push = |name: &str, vals: Vec<Value>| {
            let rid = run.spec().program().rule_by_name(name).unwrap();
            let rule = run.spec().program().rule(rid);
            let mut b = Bindings::empty(rule.vars.len());
            for (i, v) in vals.into_iter().enumerate() {
                b.set(VarId(i as u32), v);
            }
            let e = Event::new(run.spec(), rid, b).unwrap();
            run.push(e).unwrap();
        };
        push("assign", vec![alice, proj]);
        push("request", vec![alice, bob, proj]);
        push("replace", vec![alice, bob, proj]);
        assert!(!run.current().rel(assign).contains_key(&alice));
        let t = run.current().rel(assign).get(&bob).expect("bob assigned");
        assert_eq!(t.get(cwf_model::AttrId(1)), &proj);
    }
}
