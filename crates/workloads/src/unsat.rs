//! The UNSAT reduction of Theorem 3.4.
//!
//! For a Boolean formula `φ` over `x_1 … x_n` (with `φ(all-true) = false`),
//! the proof uses one relation `R` of arity `n + 2` (key `K`, one attribute
//! `A_{x_i}` per variable, and `A_q`); peers `p_{x_i}` seeing `K, A_{x_i}`,
//! a peer `q` seeing `K, A_q`, and the observer `p` seeing `π_K(R)` under
//! the selection
//!
//! ```text
//! σ_p = (A_q = 1) ∧ (δ ∨ δ_φ)      δ = ⋀_i A_{x_i} = 1
//! ```
//!
//! where `δ_φ` encodes `φ` with `A_{x_i} = 1` as the literal `x_i`. The run
//! `r_{x_1} … r_{x_n} e` is a minimal scenario at `p` **iff** `φ` is
//! unsatisfiable — the workload of experiment E2 (coNP-hard minimality
//! checking).

use std::sync::Arc;

use rand::prelude::*;

use cwf_engine::{Bindings, Event, Run};
use cwf_lang::{Program, RuleBuilder, Term, WorkflowSpec};
use cwf_model::{AttrId, CollabSchema, Condition, RelSchema, Schema, Value, ViewRel};

/// A CNF formula: clauses of non-zero literals (DIMACS-style; `-3` is
/// `¬x_3`, variables are `1..=n`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables.
    pub n: usize,
    /// The clauses.
    pub clauses: Vec<Vec<i32>>,
}

impl Cnf {
    /// Brute-force satisfiability (for cross-checks on small formulas).
    pub fn satisfiable(&self) -> bool {
        (0u32..(1 << self.n)).any(|mask| self.eval_mask(mask))
    }

    /// Evaluates under the assignment encoded in `mask` (bit `i−1` = `x_i`).
    pub fn eval_mask(&self, mask: u32) -> bool {
        self.clauses.iter().all(|clause| {
            clause.iter().any(|&lit| {
                let set = mask & (1 << (lit.unsigned_abs() as usize - 1)) != 0;
                if lit > 0 {
                    set
                } else {
                    !set
                }
            })
        })
    }

    /// Does `φ(all-true)` hold? The reduction requires it to be `false`.
    pub fn all_true_satisfies(&self) -> bool {
        self.eval_mask((1u32 << self.n) - 1)
    }

    /// A random k-CNF with the all-true assignment falsified (an all-negative
    /// clause is appended when needed), as required by the reduction.
    pub fn random(n: usize, k: usize, clause_len: usize, rng: &mut impl Rng) -> Self {
        let mut clauses: Vec<Vec<i32>> = (0..k)
            .map(|_| {
                let mut vars: Vec<usize> = (1..=n).collect();
                vars.shuffle(rng);
                vars.truncate(clause_len.min(n));
                vars.into_iter()
                    .map(|v| {
                        if rng.gen_bool(0.5) {
                            v as i32
                        } else {
                            -(v as i32)
                        }
                    })
                    .collect()
            })
            .collect();
        let mut cnf = Cnf {
            n,
            clauses: clauses.clone(),
        };
        if cnf.all_true_satisfies() {
            clauses.push((1..=n).map(|v| -(v as i32)).collect());
            cnf = Cnf { n, clauses };
        }
        cnf
    }
}

/// The generated Theorem 3.4 workload.
#[derive(Debug, Clone)]
pub struct UnsatWorkload {
    /// The workflow spec.
    pub spec: Arc<WorkflowSpec>,
    /// The observer peer `p`.
    pub p: cwf_model::PeerId,
    /// The formula.
    pub cnf: Cnf,
}

/// Builds the Theorem 3.4 workflow for `cnf`.
pub fn unsat_workload(cnf: Cnf) -> UnsatWorkload {
    let n = cnf.n;
    // R(K, A1 … An, Aq).
    let mut attrs = vec!["K".to_string()];
    for i in 1..=n {
        attrs.push(format!("A{i}"));
    }
    attrs.push("Aq".to_string());
    let mut schema = Schema::new();
    let r = schema
        .add_relation(RelSchema::new("R", attrs).unwrap())
        .unwrap();
    let a = |i: usize| AttrId(i as u32); // A_i at position i; Aq at n+1.
    let aq = a(n + 1);
    let mut collab = CollabSchema::new(schema);
    // Variable peers.
    let mut var_peers = Vec::new();
    for i in 1..=n {
        let px = collab.add_peer(format!("px{i}")).unwrap();
        collab
            .set_view(px, ViewRel::new(r, [a(i)], Condition::True))
            .unwrap();
        var_peers.push(px);
    }
    let q = collab.add_peer("q").unwrap();
    collab
        .set_view(q, ViewRel::new(r, [aq], Condition::True))
        .unwrap();
    // The observer: sees π_K(R) under σ_p.
    let p = collab.add_peer("p").unwrap();
    let delta = Condition::and((1..=n).map(|i| Condition::eq_const(a(i), 1i64)));
    let delta_phi = Condition::and(cnf.clauses.iter().map(|clause| {
        Condition::or(clause.iter().map(|&lit| {
            let base = Condition::eq_const(a(lit.unsigned_abs() as usize), 1i64);
            if lit > 0 {
                base
            } else {
                base.not()
            }
        }))
    }));
    let sigma = Condition::and([
        Condition::eq_const(aq, 1i64),
        Condition::or([delta, delta_phi]),
    ]);
    collab.set_view(p, ViewRel::new(r, [], sigma)).unwrap();
    // Rules: +R@px_i(0, 1) and +R@q(0, 1).
    let mut program = Program::new();
    for (i, &px) in var_peers.iter().enumerate() {
        program.add_rule(
            RuleBuilder::new(px, format!("rx{}", i + 1))
                .insert(r, [Term::Const(Value::int(0)), Term::Const(Value::int(1))])
                .build(),
        );
    }
    program.add_rule(
        RuleBuilder::new(q, "e")
            .insert(r, [Term::Const(Value::int(0)), Term::Const(Value::int(1))])
            .build(),
    );
    let spec = Arc::new(WorkflowSpec::new(collab, program).expect("reduction is well-formed"));
    UnsatWorkload { spec, p, cnf }
}

impl UnsatWorkload {
    /// The run `r_{x_1} … r_{x_n} e` of the proof.
    pub fn canonical_run(&self) -> Run {
        let mut run = Run::new(Arc::clone(&self.spec));
        for i in 1..=self.cnf.n {
            let rid = self.spec.program().rule_by_name(&format!("rx{i}")).unwrap();
            run.push(Event::new(&self.spec, rid, Bindings::empty(0)).unwrap())
                .expect("variable inserts merge via the chase");
        }
        let e = self.spec.program().rule_by_name("e").unwrap();
        run.push(Event::new(&self.spec, e, Bindings::empty(0)).unwrap())
            .expect("q's insert completes the tuple");
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwf_core::{is_minimal_exact, EventSet};
    use cwf_model::{Governor, Verdict};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// φ = (¬x1 ∨ ¬x2): satisfiable (e.g. x1 false), all-true falsifies.
    fn sat_formula() -> Cnf {
        Cnf {
            n: 2,
            clauses: vec![vec![-1, -2]],
        }
    }

    /// φ = (¬x1) ∧ (x1): unsatisfiable.
    fn unsat_formula() -> Cnf {
        Cnf {
            n: 1,
            clauses: vec![vec![-1], vec![1]],
        }
    }

    #[test]
    fn cnf_evaluation() {
        assert!(sat_formula().satisfiable());
        assert!(!sat_formula().all_true_satisfies());
        assert!(!unsat_formula().satisfiable());
    }

    #[test]
    fn p_sees_the_key_only_after_the_last_event() {
        let w = unsat_workload(sat_formula());
        let run = w.canonical_run();
        // p's view is empty until e sets Aq = 1.
        for i in 0..run.len() - 1 {
            assert!(!run.visible_at(i, w.p), "event {i} must be silent at p");
        }
        assert!(run.visible_at(run.len() - 1, w.p));
        assert_eq!(run.view(w.p).len(), 1);
    }

    #[test]
    fn theorem_3_4_satisfiable_formula_gives_non_minimal_run() {
        // φ satisfiable ⇒ a strict subsequence (the satisfying valuation's
        // inserts + e) is a scenario ⇒ ρ is not minimal.
        let w = unsat_workload(sat_formula());
        let run = w.canonical_run();
        let full = EventSet::full(run.len());
        assert_eq!(
            is_minimal_exact(&run, w.p, &full, &Governor::unlimited()),
            Verdict::Done(false)
        );
    }

    #[test]
    fn theorem_3_4_unsat_formula_gives_minimal_run() {
        let w = unsat_workload(unsat_formula());
        let run = w.canonical_run();
        let full = EventSet::full(run.len());
        assert_eq!(
            is_minimal_exact(&run, w.p, &full, &Governor::unlimited()),
            Verdict::Done(true)
        );
    }

    #[test]
    fn random_formulas_falsify_all_true() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let cnf = Cnf::random(4, 3, 2, &mut rng);
            assert!(!cnf.all_true_satisfies());
            let w = unsat_workload(cnf.clone());
            let run = w.canonical_run();
            // The theorem, end to end, on random formulas.
            let full = EventSet::full(run.len());
            let minimal = is_minimal_exact(&run, w.p, &full, &Governor::unlimited())
                .into_value()
                .unwrap();
            assert_eq!(minimal, !cnf.satisfiable(), "cnf: {cnf:?}");
        }
    }
}
