//! Run-level transparency and h-boundedness (Definition 6.4) and run
//! projections (Definition 6.6).
//!
//! While Section 5 analyses whole *programs*, Section 6's enforcement works
//! run by run: `tRuns_{p,h}(P)` is the set of runs every stage of which (a)
//! has a minimum p-faithful subrun of length ≤ h, and (b) transplants to
//! every p-fresh instance with the same p-view. The checkers here decide
//! membership against a caller-provided pool of candidate p-fresh instances
//! (exhaustive over a constant pool via `cwf-analysis`, or harvested from
//! sampled runs).

use std::collections::{BTreeMap, BTreeSet};

use cwf_analysis::{chain_fails_on, minimum_faithful_of_stage, stages};
use cwf_engine::{Event, GroundUpdate, Run};
use cwf_model::{AttrId, Instance, PeerId, RelId, Schema, Tuple, Value, KEY};

/// A violation of run-level transparency.
#[derive(Debug, Clone)]
pub struct RunTransparencyViolation {
    /// Index of the offending stage.
    pub stage: usize,
    /// The p-fresh instance the stage chain does not transplant to.
    pub against: Instance,
    /// Why.
    pub reason: String,
}

/// Is every closed stage's minimum p-faithful subrun of length ≤ h?
/// (The h-boundedness half of Definition 6.4.)
pub fn is_run_h_bounded(run: &Run, peer: PeerId, h: usize) -> bool {
    stages(run, peer).iter().all(|st| {
        match minimum_faithful_of_stage(run, peer, st) {
            Some((offsets, _)) => offsets.len() <= h,
            None => true, // open stage: no observation yet
        }
    })
}

/// Checks run-level transparency (Definition 6.4) against a pool of
/// candidate p-fresh instances.
pub fn run_transparency_violation(
    run: &Run,
    peer: PeerId,
    candidates: &[Instance],
) -> Option<RunTransparencyViolation> {
    let spec = run.spec_arc();
    for (si, st) in stages(run, peer).iter().enumerate() {
        let Some((_, sub)) = minimum_faithful_of_stage(run, peer, st) else {
            continue;
        };
        let pre = run.pre_instance(st.start);
        let chain: Vec<Event> = sub.events().to_vec();
        let mut new_vals: BTreeSet<Value> = BTreeSet::new();
        for e in &chain {
            new_vals.extend(e.new_values(run.spec()));
        }
        let view = run.spec().collab().view_of(pre, peer);
        for j in candidates {
            if j == pre || run.spec().collab().view_of(j, peer) != view {
                continue;
            }
            if !new_vals.is_disjoint(&j.adom()) {
                continue;
            }
            if let Some(reason) = chain_fails_on(&spec, peer, pre, j, &chain) {
                return Some(RunTransparencyViolation {
                    stage: si,
                    against: j.clone(),
                    reason,
                });
            }
        }
    }
    None
}

/// Membership in `tRuns_{p,h}(P)` relative to a candidate pool.
pub fn in_t_runs(run: &Run, peer: PeerId, h: usize, candidates: &[Instance]) -> bool {
    is_run_h_bounded(run, peer, h) && run_transparency_violation(run, peer, candidates).is_none()
}

/// Harvests the genuinely p-fresh instances a run witnesses: the empty
/// instance (if the run starts there) and every state immediately after a
/// p-visible event. These are valid candidate pools for
/// [`run_transparency_violation`] — Definition 6.4 quantifies over p-fresh
/// instances only, so arbitrary intermediate states must *not* be used.
pub fn p_fresh_candidates(run: &Run, peer: PeerId) -> Vec<Instance> {
    let mut out = Vec::new();
    if run.initial().is_empty() {
        out.push(run.initial().clone());
    }
    for i in 0..run.len() {
        if run.visible_at(i, peer) {
            out.push(run.instance(i).clone());
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Run projection (Definition 6.6)
// ---------------------------------------------------------------------------

/// A projection schema `Π`: a subset of the relations, each with a subset of
/// its attributes (always containing the key).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Projection {
    /// Relation → kept attributes (sorted, key first).
    pub rels: BTreeMap<RelId, Vec<AttrId>>,
}

impl Projection {
    /// A projection keeping the given attributes per relation (the key is
    /// added automatically).
    pub fn new(rels: impl IntoIterator<Item = (RelId, Vec<AttrId>)>) -> Self {
        let rels = rels
            .into_iter()
            .map(|(r, mut attrs)| {
                attrs.push(KEY);
                attrs.sort();
                attrs.dedup();
                (r, attrs)
            })
            .collect();
        Projection { rels }
    }

    /// The identity projection on a schema.
    pub fn identity(schema: &Schema) -> Self {
        Projection {
            rels: schema
                .rel_ids()
                .map(|r| (r, schema.relation(r).attr_ids().collect()))
                .collect(),
        }
    }

    /// Does `Π` keep everything `peer` can observe (its projected attributes
    /// and selection attributes)? Statically sufficient for `Π` to be *the
    /// identity for `peer`* on every run.
    pub fn covers_peer(&self, spec: &cwf_lang::WorkflowSpec, peer: PeerId) -> bool {
        spec.collab().visible_rels(peer).all(|r| {
            let Some(kept) = self.rels.get(&r) else {
                return false;
            };
            spec.collab()
                .relevant_attrs(peer, r)
                .expect("visible")
                .iter()
                .all(|a| kept.contains(a))
        })
    }

    /// Projects an instance (dropping relations outside `Π`, projecting the
    /// kept ones; the result is shaped like the original schema with `⊥` on
    /// removed attributes, so views remain comparable).
    pub fn project_instance(&self, schema: &Schema, inst: &Instance) -> Instance {
        let mut out = Instance::empty(schema);
        for (r, kept) in &self.rels {
            for t in inst.rel(*r).iter() {
                let arity = schema.relation(*r).arity();
                let padded = Tuple::padded(arity, kept.iter().map(|a| (*a, *t.get(*a))));
                out.rel_mut(*r)
                    .insert(padded)
                    .expect("keys preserved by projection");
            }
        }
        out
    }

    /// Projects one event's ground updates; `None` when the head empties
    /// (the event is removed from the projected run).
    pub fn project_updates(
        &self,
        updates: &[GroundUpdate],
        schema: &Schema,
    ) -> Option<Vec<GroundUpdate>> {
        let mut out = Vec::new();
        for u in updates {
            match u {
                GroundUpdate::Insert { rel, view_tuple: _ } => {
                    if let Some(kept) = self.rels.get(rel) {
                        let arity = schema.relation(*rel).arity();
                        // view_tuple here is peer-view width; the projected
                        // update keeps the intersection of attributes; we
                        // conservatively project the padded full tuple.
                        let _ = arity;
                        let _ = kept;
                        out.push(u.clone());
                    }
                }
                GroundUpdate::Delete { rel, .. } => {
                    if self.rels.contains_key(rel) {
                        out.push(u.clone());
                    }
                }
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    /// Projects a run: the sequence of projected instances plus, per event,
    /// the projected updates (`None` marks events removed by `Π`).
    pub fn project_run(&self, run: &Run) -> Vec<(Option<Vec<GroundUpdate>>, Instance)> {
        let schema = run.spec().collab().schema();
        (0..run.len())
            .map(|i| {
                (
                    self.project_updates(&run.event(i).ground_updates(run.spec()), schema),
                    self.project_instance(schema, run.instance(i)),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwf_engine::Bindings;
    use cwf_lang::parse_workflow;
    use std::sync::Arc;

    fn hiring() -> Arc<cwf_lang::WorkflowSpec> {
        Arc::new(
            parse_workflow(
                r#"
                schema { Cleared(K); Approved(K); Hire(K); }
                peers {
                    hr sees Cleared(*), Approved(*), Hire(*);
                    ceo sees Cleared(*), Approved(*), Hire(*);
                    sue sees Cleared(*), Hire(*);
                }
                rules {
                    clear @ hr: +Cleared(x) :- ;
                    approve @ ceo: +Approved(x) :- Cleared(x), not key Approved(x);
                    hire @ hr: +Hire(x) :- Approved(x), not key Hire(x);
                }
                "#,
            )
            .unwrap(),
        )
    }

    fn push(run: &mut Run, name: &str, vals: &[Value]) {
        let rid = run.spec().program().rule_by_name(name).unwrap();
        let mut b = Bindings::empty(vals.len());
        for (i, v) in vals.iter().enumerate() {
            b.set(cwf_lang::VarId(i as u32), *v);
        }
        let e = Event::new(run.spec(), rid, b).unwrap();
        run.push(e).unwrap();
    }

    #[test]
    fn run_h_boundedness_counts_stage_chains() {
        let spec = hiring();
        let sue = spec.collab().peer("sue").unwrap();
        let mut run = Run::new(Arc::clone(&spec));
        let x = Value::Fresh(100);
        push(&mut run, "clear", std::slice::from_ref(&x)); // visible, stage 0
        push(&mut run, "approve", std::slice::from_ref(&x)); // silent
        push(&mut run, "hire", std::slice::from_ref(&x)); // visible, stage 1: chain len 2
        assert!(is_run_h_bounded(&run, sue, 2));
        assert!(!is_run_h_bounded(&run, sue, 1));
    }

    #[test]
    fn stale_approval_breaks_run_transparency() {
        let spec = hiring();
        let sue = spec.collab().peer("sue").unwrap();
        // Run A: clear(x); approve(x); clear(y); hire(x).
        // The final stage [hire] depends on the Approved fact derived in an
        // earlier stage — the candidate p-fresh instance with the same
        // sue-view but *no* Approved fact witnesses the violation.
        let mut run = Run::new(Arc::clone(&spec));
        let x = Value::Fresh(100);
        let y = Value::Fresh(200);
        push(&mut run, "clear", std::slice::from_ref(&x));
        push(&mut run, "approve", std::slice::from_ref(&x));
        push(&mut run, "clear", std::slice::from_ref(&y));
        push(&mut run, "hire", std::slice::from_ref(&x));
        // Candidate: same view (Cleared{x,y}, no Hire) without Approved.
        let mut j = run.instance(2).clone();
        let approved = spec.collab().schema().rel("Approved").unwrap();
        j.rel_mut(approved).remove(&x);
        let v = run_transparency_violation(&run, sue, std::slice::from_ref(&j));
        let v = v.expect("stale approval must be flagged");
        assert_eq!(v.stage, 2);
        assert!(!in_t_runs(&run, sue, 3, &[j]));
    }

    #[test]
    fn same_stage_approval_is_transparent_against_itself() {
        let spec = hiring();
        let sue = spec.collab().peer("sue").unwrap();
        let mut run = Run::new(Arc::clone(&spec));
        let x = Value::Fresh(100);
        push(&mut run, "clear", std::slice::from_ref(&x));
        push(&mut run, "approve", std::slice::from_ref(&x));
        push(&mut run, "hire", std::slice::from_ref(&x));
        // Against the run's own p-fresh instances, no violation: the
        // approve is inside the observed stage. (Arbitrary intermediate
        // states are not p-fresh and must not be used as candidates.)
        let candidates = p_fresh_candidates(&run, sue);
        assert!(candidates.len() >= 2, "initial + post-visible states");
        assert!(run_transparency_violation(&run, sue, &candidates).is_none());
        assert!(in_t_runs(&run, sue, 2, &candidates));
    }

    #[test]
    fn projection_identity_and_covering() {
        let spec = hiring();
        let sue = spec.collab().peer("sue").unwrap();
        let schema = spec.collab().schema();
        let id = Projection::identity(schema);
        assert!(id.covers_peer(&spec, sue));
        // Drop Approved: still covers sue (sue never saw it).
        let cleared = schema.rel("Cleared").unwrap();
        let hire = schema.rel("Hire").unwrap();
        let proj = Projection::new([(cleared, vec![]), (hire, vec![])]);
        assert!(proj.covers_peer(&spec, sue));
        // Drop Cleared: no longer covers sue.
        let proj2 = Projection::new([(hire, vec![])]);
        assert!(!proj2.covers_peer(&spec, sue));
    }

    #[test]
    fn projection_of_runs_drops_hidden_relations() {
        let spec = hiring();
        let schema = spec.collab().schema();
        let cleared = schema.rel("Cleared").unwrap();
        let hire = schema.rel("Hire").unwrap();
        let approved = schema.rel("Approved").unwrap();
        let proj = Projection::new([(cleared, vec![]), (hire, vec![])]);
        let mut run = Run::new(Arc::clone(&spec));
        let x = Value::Fresh(100);
        push(&mut run, "clear", std::slice::from_ref(&x));
        push(&mut run, "approve", std::slice::from_ref(&x));
        push(&mut run, "hire", std::slice::from_ref(&x));
        let projected = proj.project_run(&run);
        assert_eq!(projected.len(), 3);
        // The approve event's head empties: removed.
        assert!(projected[1].0.is_none());
        assert!(projected[0].0.is_some());
        // Projected instances never contain Approved.
        for (_, inst) in &projected {
            assert!(inst.rel(approved).is_empty());
        }
        assert!(projected[2].1.rel(hire).contains_key(&x));
    }
}
