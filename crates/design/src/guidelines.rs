//! Design guidelines (C1)–(C4) for transparency and h-boundedness by
//! construction (Section 6, Theorem 6.2).
//!
//! The checks are syntactic sufficient conditions. They take a
//! [`Classification`] splitting the relations into *p-transparent* and
//! *p-opaque* (C3), with the relations visible at `p` always transparent and
//! the invisible transparent ones carrying a `StageID` attribute.

use std::collections::BTreeSet;
use std::fmt;

use cwf_lang::{Literal, Rule, Term, UpdateAtom, WorkflowSpec};
use cwf_model::{AttrId, PeerId, RelId};

use crate::pgraph::satisfies_c1;

/// The (C3) classification of relations for a designated peer.
#[derive(Debug, Clone)]
pub struct Classification {
    /// The p-transparent relations (must include everything `p` sees).
    pub transparent: BTreeSet<RelId>,
    /// The `Stage` relation (visible by all peers; key 0, one id column).
    pub stage: RelId,
    /// For each invisible transparent relation: its `StageID` attribute.
    pub stage_id_attr: std::collections::BTreeMap<RelId, AttrId>,
}

/// A violation of the design guidelines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuidelineViolation {
    /// (C1): some co-observer of a p-visible relation lacks a full view.
    C1,
    /// (C2): a rule producing p-invisible events is not guarded by `Stage`.
    C2MissingStageGuard {
        /// The offending rule name.
        rule: String,
    },
    /// (C2): a rule with p-visible updates does not delete the stage id.
    C2MissingStageDelete {
        /// The offending rule name.
        rule: String,
    },
    /// (C3): a relation visible at `p` was classified opaque.
    C3VisibleNotTransparent {
        /// The misclassified relation.
        rel: RelId,
    },
    /// (C3): an invisible transparent relation lacks a `StageID` attribute.
    C3MissingStageId {
        /// The offending relation.
        rel: RelId,
    },
    /// (C4)(i): a transparent-updating rule reads an opaque or negative fact.
    C4OpaqueBody {
        /// The offending rule name.
        rule: String,
    },
    /// (C4)(ii): a transparent-updating rule modifies a tuple that is not
    /// fresh-keyed and not provably from the current stage.
    C4BadUpdate {
        /// The offending rule name.
        rule: String,
    },
    /// (C4): a transparent-updating rule deletes from an invisible
    /// transparent relation (disallowed in the simplified guidelines).
    C4InvisibleDelete {
        /// The offending rule name.
        rule: String,
    },
}

impl fmt::Display for GuidelineViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuidelineViolation::C1 => write!(f, "(C1) violated: partial co-observer view"),
            GuidelineViolation::C2MissingStageGuard { rule } => {
                write!(f, "(C2) violated: rule {rule} lacks a Stage guard")
            }
            GuidelineViolation::C2MissingStageDelete { rule } => {
                write!(
                    f,
                    "(C2) violated: rule {rule} has visible updates but keeps Stage"
                )
            }
            GuidelineViolation::C3VisibleNotTransparent { rel } => {
                write!(
                    f,
                    "(C3) violated: visible relation {rel:?} classified opaque"
                )
            }
            GuidelineViolation::C3MissingStageId { rel } => {
                write!(
                    f,
                    "(C3) violated: transparent invisible {rel:?} lacks StageID"
                )
            }
            GuidelineViolation::C4OpaqueBody { rule } => {
                write!(
                    f,
                    "(C4)(i) violated: rule {rule} reads opaque/negative facts"
                )
            }
            GuidelineViolation::C4BadUpdate { rule } => {
                write!(
                    f,
                    "(C4)(ii) violated: rule {rule} has a non-stage-local update"
                )
            }
            GuidelineViolation::C4InvisibleDelete { rule } => {
                write!(
                    f,
                    "(C4) violated: rule {rule} deletes from an invisible transparent relation"
                )
            }
        }
    }
}

/// Checks guidelines (C1)–(C4) for `peer` under `class`. Returns all
/// violations found (empty = the program is transparent and h-bounded by
/// design, Theorem 6.2).
pub fn check_guidelines(
    spec: &WorkflowSpec,
    peer: PeerId,
    class: &Classification,
) -> Vec<GuidelineViolation> {
    let mut out = Vec::new();
    let collab = spec.collab();
    // (C1).
    if !satisfies_c1(spec, peer) {
        out.push(GuidelineViolation::C1);
    }
    // (C3): visibility ⊆ transparency; StageID columns present.
    for r in collab.visible_rels(peer) {
        if !class.transparent.contains(&r) {
            out.push(GuidelineViolation::C3VisibleNotTransparent { rel: r });
        }
    }
    for &r in &class.transparent {
        if !collab.sees(peer, r) && !class.stage_id_attr.contains_key(&r) {
            out.push(GuidelineViolation::C3MissingStageId { rel: r });
        }
    }
    // Per rule: (C2) and (C4).
    for rule in spec.program().rules() {
        check_rule(spec, peer, class, rule, &mut out);
    }
    out
}

fn check_rule(
    spec: &WorkflowSpec,
    peer: PeerId,
    class: &Classification,
    rule: &Rule,
    out: &mut Vec<GuidelineViolation>,
) {
    let collab = spec.collab();
    let is_stage_init = rule.head.len() == 1
        && matches!(&rule.head[0], UpdateAtom::Insert { rel, .. } if *rel == class.stage);
    let visible_updates = rule
        .head
        .iter()
        .any(|u| collab.sees(peer, u.rel()) && u.rel() != class.stage);
    let has_stage_guard = rule.body.iter().any(
        |l| matches!(l, Literal::Pos { rel, .. } | Literal::KeyPos { rel, .. } if *rel == class.stage),
    );
    let deletes_stage = rule
        .head
        .iter()
        .any(|u| matches!(u, UpdateAtom::Delete { rel, .. } if *rel == class.stage));
    // (C2): invisible-event rules are guarded; visible-update rules delete
    // the stage id. The stage-init rule itself is exempt.
    if !is_stage_init {
        if !visible_updates && !has_stage_guard {
            out.push(GuidelineViolation::C2MissingStageGuard {
                rule: rule.name.clone(),
            });
        }
        if visible_updates && !deletes_stage {
            out.push(GuidelineViolation::C2MissingStageDelete {
                rule: rule.name.clone(),
            });
        }
    }
    // (C4): rules updating transparent relations.
    let updates_transparent = rule
        .head
        .iter()
        .any(|u| class.transparent.contains(&u.rel()) && u.rel() != class.stage);
    if !updates_transparent || is_stage_init {
        return;
    }
    // (i) body: only positive facts over transparent relations (plus the
    // Stage guard and (dis)equalities).
    for l in &rule.body {
        let bad = match l {
            Literal::Pos { rel, .. } | Literal::KeyPos { rel, .. } => {
                *rel != class.stage && !class.transparent.contains(rel)
            }
            Literal::Neg { rel, .. } | Literal::KeyNeg { rel, .. } => *rel != class.stage,
            Literal::Eq(..) | Literal::Neq(..) => false,
        };
        if bad {
            out.push(GuidelineViolation::C4OpaqueBody {
                rule: rule.name.clone(),
            });
            break;
        }
    }
    // Stage-id variable: the second argument of the Stage guard, if any.
    let stage_var = rule.body.iter().find_map(|l| match l {
        Literal::Pos { rel, args } if *rel == class.stage && args.len() == 2 => args[1].as_var(),
        _ => None,
    });
    let body_vars = rule.body_vars();
    // (ii) each head update.
    for u in &rule.head {
        let rel = u.rel();
        if rel == class.stage || !class.transparent.contains(&rel) {
            continue;
        }
        match u {
            UpdateAtom::Delete { .. } => {
                if !collab.sees(peer, rel) {
                    out.push(GuidelineViolation::C4InvisibleDelete {
                        rule: rule.name.clone(),
                    });
                }
            }
            UpdateAtom::Insert { args, .. } => {
                if collab.sees(peer, rel) {
                    continue; // p-visible updates are fine
                }
                // An insert into an invisible transparent relation is
                // stage-local iff its StageID argument is the current stage
                // variable: any same-key tuple from an earlier stage carries
                // a different id, so the insert either creates a fresh
                // object, merges with a same-stage tuple, or chase-conflicts
                // and fails — never a cross-stage modification. (The
                // paper's own Example 5.7 rule `+Approved(x, s)` with `x`
                // bound by `Cleared(x)` relies on exactly this.)
                if let Some(sa) = class.stage_id_attr.get(&rel) {
                    let view = collab
                        .view(rule.peer, rel)
                        .expect("validated rule updates visible relations");
                    let ok = match view.position(*sa) {
                        Some(pos) => matches!(
                            (args.get(pos).and_then(Term::as_var), stage_var),
                            (Some(a), Some(s)) if a == s
                        ),
                        None => false,
                    };
                    if !ok {
                        out.push(GuidelineViolation::C4BadUpdate {
                            rule: rule.name.clone(),
                        });
                    }
                } else {
                    // No StageID column: only fresh-key creation is safe.
                    let key = &args[0];
                    let fresh_key = key.as_var().is_some_and(|v| !body_vars.contains(&v));
                    if !fresh_key {
                        out.push(GuidelineViolation::C4BadUpdate {
                            rule: rule.name.clone(),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwf_lang::parse_workflow;

    /// The staged, transparent hiring program of Example 5.7 (final form).
    pub(crate) fn staged_hiring() -> WorkflowSpec {
        parse_workflow(
            r#"
            schema { Stage(K, S); Cleared(K); Approved(K, X, S); Hire(K); }
            peers {
                sue sees Stage(*), Cleared(*), Hire(*);
                hr  sees Stage(*), Cleared(*), Approved(*), Hire(*);
                ceo sees Stage(*), Cleared(*), Approved(*), Hire(*);
            }
            rules {
                stage   @ sue: +Stage(0, s) :- not key Stage(0);
                clear   @ hr:  +Cleared(x), -key Stage(0) :- Stage(0, s);
                approve @ ceo: +Approved(k, x, s) :- Cleared(x), Stage(0, s);
                hire    @ hr:  +Hire(x), -key Stage(0)
                               :- Approved(k, x, s), Stage(0, s);
            }
            "#,
        )
        .unwrap()
    }

    pub(crate) fn staged_classification(spec: &WorkflowSpec) -> (PeerId, Classification) {
        let collab = spec.collab();
        let sue = collab.peer("sue").unwrap();
        let stage = collab.schema().rel("Stage").unwrap();
        let approved = collab.schema().rel("Approved").unwrap();
        let s_attr = collab.schema().relation(approved).attr("S").unwrap();
        let class = Classification {
            transparent: collab.schema().rel_ids().collect(),
            stage,
            stage_id_attr: [(approved, s_attr)].into_iter().collect(),
        };
        (sue, class)
    }

    #[test]
    fn staged_hiring_satisfies_the_guidelines() {
        let spec = staged_hiring();
        let (sue, class) = staged_classification(&spec);
        let violations = check_guidelines(&spec, sue, &class);
        assert!(violations.is_empty(), "got {violations:?}");
    }

    #[test]
    fn missing_stage_guard_is_flagged() {
        // `approve` without the Stage guard: (C2) and (C4)(ii) break.
        let spec = parse_workflow(
            r#"
            schema { Stage(K, S); Cleared(K); Approved(K, S); Hire(K); }
            peers {
                sue sees Stage(*), Cleared(*), Hire(*);
                hr  sees Stage(*), Cleared(*), Approved(*), Hire(*);
                ceo sees Stage(*), Cleared(*), Approved(*), Hire(*);
            }
            rules {
                stage   @ sue: +Stage(0, s) :- not key Stage(0);
                clear   @ hr:  +Cleared(x), -key Stage(0) :- Stage(0, s);
                approve @ ceo: +Approved(x, s2) :- Cleared(x), not key Approved(x);
                hire    @ hr:  +Hire(x), -key Stage(0)
                               :- Approved(x, s), Stage(0, s), not key Hire(x);
            }
            "#,
        )
        .unwrap();
        let (sue, class) = staged_classification(&spec);
        let violations = check_guidelines(&spec, sue, &class);
        assert!(violations.iter().any(
            |v| matches!(v, GuidelineViolation::C2MissingStageGuard { rule } if rule == "approve")
        ));
        assert!(violations
            .iter()
            .any(|v| matches!(v, GuidelineViolation::C4BadUpdate { rule } if rule == "approve")));
    }

    #[test]
    fn visible_update_must_delete_stage() {
        let spec = parse_workflow(
            r#"
            schema { Stage(K, S); Cleared(K); }
            peers {
                sue sees Stage(*), Cleared(*);
                hr  sees Stage(*), Cleared(*);
            }
            rules {
                stage @ sue: +Stage(0, s) :- not key Stage(0);
                clear @ hr:  +Cleared(x) :- Stage(0, s);
            }
            "#,
        )
        .unwrap();
        let collab = spec.collab();
        let sue = collab.peer("sue").unwrap();
        let class = Classification {
            transparent: collab.schema().rel_ids().collect(),
            stage: collab.schema().rel("Stage").unwrap(),
            stage_id_attr: Default::default(),
        };
        let violations = check_guidelines(&spec, sue, &class);
        assert!(violations.iter().any(
            |v| matches!(v, GuidelineViolation::C2MissingStageDelete { rule } if rule == "clear")
        ));
    }

    #[test]
    fn opaque_body_facts_are_flagged() {
        // Example 6.1's shape: a rule mixing a visible update with an opaque
        // body dependency.
        let spec = parse_workflow(
            r#"
            schema { Stage(K, S); R(K); T(K); }
            peers {
                p sees Stage(*), R(*);
                q sees Stage(*), R(*), T(*);
            }
            rules {
                stage @ p: +Stage(0, s) :- not key Stage(0);
                bad @ q: +R(x), -key Stage(0) :- T(x), Stage(0, s);
            }
            "#,
        )
        .unwrap();
        let collab = spec.collab();
        let p = collab.peer("p").unwrap();
        let t = collab.schema().rel("T").unwrap();
        let class = Classification {
            transparent: collab.schema().rel_ids().filter(|r| *r != t).collect(),
            stage: collab.schema().rel("Stage").unwrap(),
            stage_id_attr: Default::default(),
        };
        let violations = check_guidelines(&spec, p, &class);
        assert!(violations
            .iter()
            .any(|v| matches!(v, GuidelineViolation::C4OpaqueBody { rule } if rule == "bad")));
    }

    #[test]
    fn misclassification_is_flagged() {
        let spec = staged_hiring();
        let collab = spec.collab();
        let sue = collab.peer("sue").unwrap();
        let cleared = collab.schema().rel("Cleared").unwrap();
        let class = Classification {
            transparent: BTreeSet::new(), // everything opaque: wrong
            stage: collab.schema().rel("Stage").unwrap(),
            stage_id_attr: Default::default(),
        };
        let violations = check_guidelines(&spec, sue, &class);
        assert!(violations.iter().any(
            |v| matches!(v, GuidelineViolation::C3VisibleNotTransparent { rel } if *rel == cleared)
        ));
    }

    #[test]
    fn thm_6_2_staged_program_shows_no_sampled_transparency_violation() {
        // Theorem 6.2 ⇒ transparency; the sampling falsifier agrees.
        let spec = std::sync::Arc::new(staged_hiring());
        let sue = spec.collab().peer("sue").unwrap();
        assert!(cwf_analysis::sample_transparency_violation(&spec, sue, 25, 8, 11).is_none());
    }
}
