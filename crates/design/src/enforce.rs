//! Enforcing transparency and h-boundedness (Theorem 6.7, Corollary 6.8).
//!
//! The paper rewrites a TF program `P` into `Pᵗ` by shadowing every relation
//! `R` with `Rᵗ` — per-attribute transparency bits `tA`, a transparent-
//! deletion bit `dK`, and `h` step-provenance columns — at the cost of
//! exponentially many rules. [`TransparentEngine`] realizes the *semantics*
//! of that construction as an instrumented runtime instead (the substitution
//! is documented in DESIGN.md): it tracks exactly the information the `Rᵗ`
//! relations would hold and **blocks** any event that would make a p-visible
//! update depend on non-transparent facts or on more than `h` steps of the
//! current stage. Because the shadow state lives inside the engine, the
//! projection `Π` of Theorem 6.7 is the identity here, and the accepted
//! runs are exactly the transparent, h-bounded runs of `P`
//! (`Π(Runs(Pᵗ)) = tRuns_{p,h}(P)`) — tested against the Definition 6.4
//! checkers in [`crate::runs`].
//!
//! A schema-level rendering of the paper's `Rᵗ` layout is provided by
//! [`enrich_schema`] for exposition and for tooling that wants to
//! materialize the shadow state.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use cwf_engine::{EngineError, Event, GroundUpdate, Run};
use cwf_lang::{Literal, WorkflowSpec};
use cwf_model::{AttrId, PeerId, RelId, RelSchema, Schema, Value};

/// What the engine does when an event would violate the discipline
/// (Remark 6.9: blocking is one choice; alerting or rolling back the stage
/// are the others).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnforcementMode {
    /// Refuse the event; the run is unchanged (the paper's `Pᵗ` semantics).
    #[default]
    Block,
    /// Apply the event anyway but record an [`Alert`] — useful when the
    /// deployment wants visibility without stopping the business process.
    /// Accepted runs may then fall outside `tRuns_{p,h}`.
    Alert,
    /// Roll the run back to the beginning of the current stage (the last
    /// p-visible state) and refuse the event: the silent work that led to
    /// the violation is discarded wholesale.
    Rollback,
}

/// A recorded violation in [`EnforcementMode::Alert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// Position (in the accepted run) of the offending event.
    pub at: usize,
    /// Whether the violation was a provenance overflow (h-boundedness)
    /// rather than a transparency violation.
    pub provenance_overflow: bool,
}

/// Outcome of offering an event to the enforcement engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushOutcome {
    /// The event was applied; `transparent` tells whether it was a
    /// transparent event (non-transparent events may only touch invisible
    /// relations).
    Applied {
        /// Was the event transparent?
        transparent: bool,
    },
    /// The event was *blocked*: it would perform a p-visible update based on
    /// non-transparent information (Remark 6.9: the computation may block).
    BlockedNonTransparent,
    /// The event was blocked: its step provenance would exceed `h`
    /// (h-boundedness enforcement).
    BlockedProvenance,
    /// Rollback mode: the stage's silent events were discarded and the
    /// event refused. `undone` counts the discarded events.
    RolledBack {
        /// Number of silent events removed from the run.
        undone: usize,
    },
    /// Alert mode: the event was applied despite the violation; an
    /// [`Alert`] was recorded.
    AppliedWithAlert,
}

impl PushOutcome {
    /// Was the event applied?
    pub fn applied(&self) -> bool {
        matches!(self, PushOutcome::Applied { .. })
    }
}

/// Shadow metadata of one `(R, key)` object — the contents of the paper's
/// `Rᵗ` tuple.
#[derive(Debug, Clone, Default)]
struct FactMeta {
    /// Stage in which the current incarnation was created.
    created_stage: u64,
    /// Was the creating event transparent?
    created_transparent: bool,
    /// Per attribute: (written transparently?, stage of the write) — the
    /// `tA` bits.
    attr_writes: BTreeMap<AttrId, (bool, u64)>,
    /// Step-provenance of the fact (union over attributes — a conservative
    /// coarsening of the paper's per-attribute `Aˢᵢ` columns).
    steps: BTreeSet<u64>,
    /// Deletion record: (stage, transparent?) — the `dK` bit.
    deleted: Option<(u64, bool)>,
}

/// Statistics of an enforcement session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnforceStats {
    /// Events applied transparently.
    pub transparent: usize,
    /// Events applied opaquely (invisible updates only).
    pub opaque: usize,
    /// Events blocked for transparency.
    pub blocked_transparency: usize,
    /// Events blocked for provenance overflow (h-boundedness).
    pub blocked_provenance: usize,
}

/// The instrumented engine enforcing transparency and h-boundedness for one
/// peer (the runtime realization of `Pᵗ`).
#[derive(Debug, Clone)]
pub struct TransparentEngine {
    run: Run,
    peer: PeerId,
    h: usize,
    mode: EnforcementMode,
    meta: BTreeMap<(RelId, Value), FactMeta>,
    stage: u64,
    step: u64,
    stats: EnforceStats,
    alerts: Vec<Alert>,
    /// Index of the first event of the current stage (for rollback).
    stage_start: usize,
    /// Snapshot of the shadow state at the stage start (for rollback).
    stage_meta: BTreeMap<(RelId, Value), FactMeta>,
}

impl TransparentEngine {
    /// Starts enforcement over an empty run of `spec` for `peer` with bound
    /// `h`.
    pub fn new(spec: Arc<WorkflowSpec>, peer: PeerId, h: usize) -> Self {
        Self::with_mode(spec, peer, h, EnforcementMode::Block)
    }

    /// Starts enforcement with an explicit violation-handling mode
    /// (Remark 6.9).
    pub fn with_mode(
        spec: Arc<WorkflowSpec>,
        peer: PeerId,
        h: usize,
        mode: EnforcementMode,
    ) -> Self {
        TransparentEngine {
            run: Run::new(spec),
            peer,
            h,
            mode,
            meta: BTreeMap::new(),
            stage: 0,
            step: 0,
            stats: EnforceStats::default(),
            alerts: Vec::new(),
            stage_start: 0,
            stage_meta: BTreeMap::new(),
        }
    }

    /// The alerts recorded so far (only populated in
    /// [`EnforcementMode::Alert`]).
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// The accepted run so far (a plain run of the original program).
    pub fn run(&self) -> &Run {
        &self.run
    }

    /// Finishes, returning the accepted run.
    pub fn into_run(self) -> Run {
        self.run
    }

    /// Session statistics.
    pub fn stats(&self) -> EnforceStats {
        self.stats
    }

    /// The observing peer.
    pub fn peer(&self) -> PeerId {
        self.peer
    }

    /// Offers an event. `Err` means the event is not applicable at all (as
    /// in a plain run); `Ok(Blocked…)` means it is applicable but filtered
    /// out by the transparency/boundedness discipline — the run is left
    /// unchanged either way.
    pub fn push(&mut self, event: Event) -> Result<PushOutcome, EngineError> {
        let spec = self.run.spec_arc();
        // Validate without cloning the run: freshness against the history,
        // then a tentative application on the current instance only.
        let mut seen_fresh: Vec<Value> = Vec::new();
        for v in event.new_values(&spec) {
            if self.run.used_values().contains(&v) || seen_fresh.contains(&v) {
                return Err(EngineError::NotGloballyFresh { value: v });
            }
            seen_fresh.push(v);
        }
        let next = cwf_engine::apply_event(&spec, self.run.current(), &event)?;
        let visible = event.peer == self.peer
            || spec.collab().view_of(self.run.current(), self.peer)
                != spec.collab().view_of(&next, self.peer);
        // Classify the event.
        let (transparent, steps) = self.classify(&spec, &event);
        let touches_visible = event
            .ground_updates(&spec)
            .iter()
            .any(|u| spec.collab().sees(self.peer, u.rel()));
        if !transparent && (touches_visible || visible) {
            // A non-transparent event may not modify what p sees.
            let overflow =
                steps.len() + 1 > self.h && self.would_be_transparent_modulo_steps(&spec, &event);
            match self.mode {
                EnforcementMode::Block => {
                    if overflow {
                        self.stats.blocked_provenance += 1;
                        return Ok(PushOutcome::BlockedProvenance);
                    }
                    self.stats.blocked_transparency += 1;
                    return Ok(PushOutcome::BlockedNonTransparent);
                }
                EnforcementMode::Rollback => {
                    let undone = self.rollback_stage();
                    if overflow {
                        self.stats.blocked_provenance += 1;
                    } else {
                        self.stats.blocked_transparency += 1;
                    }
                    return Ok(PushOutcome::RolledBack { undone });
                }
                EnforcementMode::Alert => {
                    self.alerts.push(Alert {
                        at: self.run.len(),
                        provenance_overflow: overflow,
                    });
                    self.apply_accepted(&spec, event, (), visible, transparent, steps)?;
                    return Ok(PushOutcome::AppliedWithAlert);
                }
            }
        }
        // Accept.
        self.apply_accepted(&spec, event, (), visible, transparent, steps)?;
        Ok(PushOutcome::Applied { transparent })
    }

    /// Applies an accepted (or alert-mode) event and updates the shadow
    /// state. `steps` is the body provenance (without the current step).
    fn apply_accepted(
        &mut self,
        spec: &Arc<WorkflowSpec>,
        event: Event,
        _marker: (),
        visible: bool,
        transparent: bool,
        steps: BTreeSet<u64>,
    ) -> Result<(), EngineError> {
        let pre = self.run.current().clone();
        self.run
            .push(event.clone())
            .expect("validated above: the event applies");
        self.step += 1;
        let current_steps: BTreeSet<u64> = {
            let mut s = steps;
            s.insert(self.step);
            s
        };
        for upd in event.ground_updates(spec) {
            match upd {
                GroundUpdate::Insert { rel, view_tuple } => {
                    let key = *view_tuple.key();
                    let existed = pre.rel(rel).contains_key(&key);
                    let entry = self.meta.entry((rel, key));
                    let post_tuple = self
                        .run
                        .current()
                        .rel(rel)
                        .get(&key)
                        .cloned()
                        .expect("insert leaves the tuple present");
                    let m = entry.or_default();
                    if !existed || m.deleted.is_some() {
                        // (Re)creation — note (C3′) forbids re-creation of
                        // invisible keys, but visible ones may recur.
                        *m = FactMeta {
                            created_stage: self.stage,
                            created_transparent: transparent,
                            attr_writes: BTreeMap::new(),
                            steps: BTreeSet::new(),
                            deleted: None,
                        };
                    }
                    // Record attribute writes: every attribute that is
                    // non-⊥ now but had no recorded write.
                    for (a, v) in post_tuple.entries() {
                        if !v.is_null() && !m.attr_writes.contains_key(&a) {
                            m.attr_writes.insert(a, (transparent, self.stage));
                        }
                    }
                    m.steps.extend(current_steps.iter().copied());
                }
                GroundUpdate::Delete { rel, key } => {
                    let m = self.meta.entry((rel, key)).or_default();
                    m.deleted = Some((self.stage, transparent));
                    m.steps.extend(current_steps.iter().copied());
                }
            }
        }
        if transparent {
            self.stats.transparent += 1;
        } else {
            self.stats.opaque += 1;
        }
        if visible {
            // A p-visible event closes the stage: everything derived so far
            // becomes stale for transparency purposes. Snapshot the shadow
            // state so Rollback mode can restore it.
            self.stage += 1;
            self.stage_start = self.run.len();
            self.stage_meta = self.meta.clone();
        }
        Ok(())
    }

    /// Rollback mode: discards the current stage's silent events, restoring
    /// the last p-visible state (and the matching shadow state). Returns the
    /// number of discarded events.
    fn rollback_stage(&mut self) -> usize {
        let keep = self.stage_start;
        let undone = self.run.len() - keep;
        if undone == 0 {
            return 0;
        }
        let spec = self.run.spec_arc();
        let events: Vec<Event> = self.run.events()[..keep].to_vec();
        self.run = Run::replay(spec, self.run.initial().clone(), events)
            .expect("a prefix of a valid run replays");
        self.meta = self.stage_meta.clone();
        undone
    }

    /// Classifies an event: is every body fact transparently available, and
    /// what is the union of their step provenances? Returns
    /// `(transparent, steps)` where `transparent` already accounts for the
    /// `|H| ≤ h` cap.
    fn classify(&self, spec: &WorkflowSpec, event: &Event) -> (bool, BTreeSet<u64>) {
        let mut steps = BTreeSet::new();
        let mut all_transparent = true;
        let rule = spec.program().rule(event.rule);
        for lit in &rule.body {
            match lit {
                Literal::Pos { rel, args } => {
                    if spec.collab().sees(self.peer, *rel) {
                        continue; // p-visible facts are transparent, no steps
                    }
                    let key = event.valuation.resolve(&args[0]).expect("valuation total");
                    match self.meta.get(&(*rel, key)) {
                        Some(m)
                            if m.deleted.is_none()
                                && m.created_stage == self.stage
                                && m.created_transparent
                                && m.attr_writes.values().all(|(t, s)| *t && *s == self.stage) =>
                        {
                            steps.extend(m.steps.iter().copied());
                        }
                        // Pre-existing (initial-instance) facts have no
                        // meta: they are stale information.
                        _ => all_transparent = false,
                    }
                }
                Literal::KeyPos { rel, key } => {
                    if spec.collab().sees(self.peer, *rel) {
                        continue;
                    }
                    let k = event.valuation.resolve(key).expect("valuation total");
                    match self.meta.get(&(*rel, k)) {
                        Some(m)
                            if m.deleted.is_none()
                                && m.created_stage == self.stage
                                && m.created_transparent =>
                        {
                            steps.extend(m.steps.iter().copied());
                        }
                        _ => all_transparent = false,
                    }
                }
                Literal::Neg { rel, args } => {
                    if spec.collab().sees(self.peer, *rel) {
                        continue;
                    }
                    let key = event.valuation.resolve(&args[0]).expect("valuation total");
                    if !self.negative_transparent(*rel, &key, &mut steps) {
                        all_transparent = false;
                    }
                }
                Literal::KeyNeg { rel, key } => {
                    if spec.collab().sees(self.peer, *rel) {
                        continue;
                    }
                    let k = event.valuation.resolve(key).expect("valuation total");
                    if !self.negative_transparent(*rel, &k, &mut steps) {
                        all_transparent = false;
                    }
                }
                Literal::Eq(..) | Literal::Neq(..) => {}
            }
        }
        // The step budget: the event itself is one more step.
        if steps.len() + 1 > self.h {
            all_transparent = false;
        }
        (all_transparent, steps)
    }

    /// Is the *absence* of `(rel, key)` transparent? — never existed, or
    /// transparently created and deleted within the current stage.
    fn negative_transparent(&self, rel: RelId, key: &Value, steps: &mut BTreeSet<u64>) -> bool {
        match self.meta.get(&(rel, *key)) {
            None => true, // never existed: nothing hidden happened to it
            Some(m) => match m.deleted {
                Some((stage, transparent))
                    if transparent
                        && stage == self.stage
                        && m.created_transparent
                        && m.created_stage == self.stage =>
                {
                    steps.extend(m.steps.iter().copied());
                    true
                }
                _ => false,
            },
        }
    }

    /// Would the event be transparent if the step cap were infinite?
    /// (Distinguishes the two blocking reasons for reporting.)
    fn would_be_transparent_modulo_steps(&self, spec: &WorkflowSpec, event: &Event) -> bool {
        let saved_h = self.h;
        let mut clone = self.clone();
        clone.h = usize::MAX;
        let (t, _) = clone.classify(spec, event);
        let _ = saved_h;
        t
    }
}

/// Renders the paper's `Rᵗ` schema layout (Section 6's program
/// construction): per relation `R`, a relation `Rt` with `tA` bits per
/// attribute, a `dK` bit, and `h` step-provenance columns per attribute.
pub fn enrich_schema(schema: &Schema, h: usize) -> Schema {
    let mut out = Schema::new();
    for r in schema.rel_ids() {
        let rs = schema.relation(r);
        out.add_relation(rs.clone()).expect("names unique");
    }
    for r in schema.rel_ids() {
        let rs = schema.relation(r);
        let mut attrs: Vec<String> = vec!["K".to_string()];
        for a in rs.attrs() {
            attrs.push(format!("t{a}"));
        }
        attrs.push("dK".to_string());
        for a in rs.attrs() {
            for i in 1..=h {
                attrs.push(format!("{a}s{i}"));
            }
        }
        out.add_relation(RelSchema::new(format!("{}t", rs.name()), attrs).expect("valid"))
            .expect("suffixed names unique");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runs::{in_t_runs, is_run_h_bounded, run_transparency_violation};
    use cwf_engine::Bindings;
    use cwf_lang::parse_workflow;

    fn hiring() -> Arc<WorkflowSpec> {
        Arc::new(
            parse_workflow(
                r#"
                schema { Cleared(K); Approved(K); Hire(K); }
                peers {
                    hr sees Cleared(*), Approved(*), Hire(*);
                    ceo sees Cleared(*), Approved(*), Hire(*);
                    sue sees Cleared(*), Hire(*);
                }
                rules {
                    clear @ hr: +Cleared(x) :- ;
                    approve @ ceo: +Approved(x) :- Cleared(x), not key Approved(x);
                    hire @ hr: +Hire(x) :- Approved(x), not key Hire(x);
                }
                "#,
            )
            .unwrap(),
        )
    }

    fn ev(spec: &WorkflowSpec, name: &str, vals: &[Value]) -> Event {
        let rid = spec.program().rule_by_name(name).unwrap();
        let mut b = Bindings::empty(vals.len());
        for (i, v) in vals.iter().enumerate() {
            b.set(cwf_lang::VarId(i as u32), *v);
        }
        Event::new(spec, rid, b).unwrap()
    }

    #[test]
    fn same_stage_chain_is_accepted() {
        let spec = hiring();
        let sue = spec.collab().peer("sue").unwrap();
        let mut eng = TransparentEngine::new(Arc::clone(&spec), sue, 2);
        let x = Value::Fresh(100);
        assert!(eng
            .push(ev(&spec, "clear", std::slice::from_ref(&x)))
            .unwrap()
            .applied());
        assert!(eng
            .push(ev(&spec, "approve", std::slice::from_ref(&x)))
            .unwrap()
            .applied());
        assert!(eng
            .push(ev(&spec, "hire", std::slice::from_ref(&x)))
            .unwrap()
            .applied());
        assert_eq!(eng.stats().blocked_transparency, 0);
        assert_eq!(eng.run().len(), 3);
    }

    #[test]
    fn stale_approval_is_blocked() {
        let spec = hiring();
        let sue = spec.collab().peer("sue").unwrap();
        let mut eng = TransparentEngine::new(Arc::clone(&spec), sue, 3);
        let x = Value::Fresh(100);
        let y = Value::Fresh(200);
        assert!(eng
            .push(ev(&spec, "clear", std::slice::from_ref(&x)))
            .unwrap()
            .applied());
        assert!(eng
            .push(ev(&spec, "approve", std::slice::from_ref(&x)))
            .unwrap()
            .applied());
        // A sue-visible event ends the stage: the Approved fact goes stale.
        assert!(eng
            .push(ev(&spec, "clear", std::slice::from_ref(&y)))
            .unwrap()
            .applied());
        // Hiring x now relies on a previous-stage fact: blocked.
        assert_eq!(
            eng.push(ev(&spec, "hire", std::slice::from_ref(&x)))
                .unwrap(),
            PushOutcome::BlockedNonTransparent
        );
        assert_eq!(eng.run().len(), 3, "blocked event not recorded");
        assert_eq!(eng.stats().blocked_transparency, 1);
        // Re-approving within this stage unblocks (¬Key Approved(x)? it
        // still exists — approve is guarded, so it cannot re-fire; instead
        // hire stays blocked, which is exactly the filtering semantics).
        assert_eq!(
            eng.push(ev(&spec, "hire", &[x])).unwrap(),
            PushOutcome::BlockedNonTransparent
        );
    }

    #[test]
    fn accepted_runs_are_in_t_runs() {
        let spec = hiring();
        let sue = spec.collab().peer("sue").unwrap();
        let mut eng = TransparentEngine::new(Arc::clone(&spec), sue, 2);
        let x = Value::Fresh(100);
        let y = Value::Fresh(200);
        for (name, v) in [
            ("clear", &x),
            ("approve", &x),
            ("hire", &x),
            ("clear", &y),
            ("approve", &y),
            ("hire", &y),
        ] {
            assert!(eng
                .push(ev(&spec, name, std::slice::from_ref(v)))
                .unwrap()
                .applied());
        }
        let run = eng.into_run();
        // Definition 6.4 membership against the run's own p-fresh instances.
        let candidates = crate::runs::p_fresh_candidates(&run, sue);
        assert!(is_run_h_bounded(&run, sue, 2));
        assert!(run_transparency_violation(&run, sue, &candidates).is_none());
        assert!(in_t_runs(&run, sue, 2, &candidates));
    }

    #[test]
    fn provenance_overflow_blocks_long_chains() {
        // A chain program with h = 2 but chains of relevant length 3.
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { A(K); B(K); Out(K); }
                peers { q sees A(*), B(*), Out(*); p sees Out(*); }
                rules {
                    s1 @ q: +A(0) :- ;
                    s2 @ q: +B(0) :- A(0);
                    s3 @ q: +Out(0) :- B(0);
                }
                "#,
            )
            .unwrap(),
        );
        let p = spec.collab().peer("p").unwrap();
        let mut eng = TransparentEngine::new(Arc::clone(&spec), p, 2);
        assert!(eng.push(ev(&spec, "s1", &[])).unwrap().applied());
        assert!(eng.push(ev(&spec, "s2", &[])).unwrap().applied());
        // s3 would need steps {s1, s2, s3}: 3 > 2 ⇒ blocked for provenance.
        assert_eq!(
            eng.push(ev(&spec, "s3", &[])).unwrap(),
            PushOutcome::BlockedProvenance
        );
        // With h = 3 the same chain passes.
        let mut eng3 = TransparentEngine::new(Arc::clone(&spec), p, 3);
        for n in ["s1", "s2", "s3"] {
            assert!(eng3.push(ev(&spec, n, &[])).unwrap().applied());
        }
        assert!(is_run_h_bounded(eng3.run(), p, 3));
    }

    #[test]
    fn opaque_side_computation_is_allowed() {
        // Events touching only invisible relations proceed even when
        // non-transparent (stale facts): transparency constrains only what
        // p sees.
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { Sc(K); T(K); Out(K); }
                peers { q sees Sc(*), T(*), Out(*); p sees Out(*); }
                rules {
                    mk @ q: +Sc(0) :- ;
                    vis @ q: +Out(0) :- ;
                    opaque @ q: +T(0) :- Sc(0);
                }
                "#,
            )
            .unwrap(),
        );
        let p = spec.collab().peer("p").unwrap();
        let mut eng = TransparentEngine::new(Arc::clone(&spec), p, 1);
        assert!(eng.push(ev(&spec, "mk", &[])).unwrap().applied()); // stage 0
        assert!(eng.push(ev(&spec, "vis", &[])).unwrap().applied()); // stage ends
                                                                     // Sc(0) is now stale, but `opaque` only writes invisible T: allowed
                                                                     // as a non-transparent event.
        let out = eng.push(ev(&spec, "opaque", &[])).unwrap();
        assert_eq!(out, PushOutcome::Applied { transparent: false });
        assert_eq!(eng.stats().opaque, 1);
    }

    #[test]
    fn inapplicable_events_are_errors_not_blocks() {
        let spec = hiring();
        let sue = spec.collab().peer("sue").unwrap();
        let mut eng = TransparentEngine::new(Arc::clone(&spec), sue, 2);
        let x = Value::Fresh(100);
        assert!(eng.push(ev(&spec, "hire", &[x])).is_err());
    }

    #[test]
    fn alert_mode_applies_and_records() {
        let spec = hiring();
        let sue = spec.collab().peer("sue").unwrap();
        let mut eng =
            TransparentEngine::with_mode(Arc::clone(&spec), sue, 3, EnforcementMode::Alert);
        let x = Value::Fresh(100);
        let y = Value::Fresh(200);
        assert!(eng
            .push(ev(&spec, "clear", std::slice::from_ref(&x)))
            .unwrap()
            .applied());
        assert!(eng
            .push(ev(&spec, "approve", std::slice::from_ref(&x)))
            .unwrap()
            .applied());
        assert!(eng
            .push(ev(&spec, "clear", std::slice::from_ref(&y)))
            .unwrap()
            .applied());
        // The stale hire goes through, with an alert.
        assert_eq!(
            eng.push(ev(&spec, "hire", std::slice::from_ref(&x)))
                .unwrap(),
            PushOutcome::AppliedWithAlert
        );
        assert_eq!(eng.run().len(), 4);
        assert_eq!(eng.alerts().len(), 1);
        assert_eq!(eng.alerts()[0].at, 3);
        assert!(!eng.alerts()[0].provenance_overflow);
    }

    #[test]
    fn rollback_mode_discards_the_stage() {
        let spec = hiring();
        let sue = spec.collab().peer("sue").unwrap();
        let mut eng =
            TransparentEngine::with_mode(Arc::clone(&spec), sue, 3, EnforcementMode::Rollback);
        let x = Value::Fresh(100);
        let y = Value::Fresh(200);
        assert!(eng
            .push(ev(&spec, "clear", std::slice::from_ref(&x)))
            .unwrap()
            .applied());
        assert!(eng
            .push(ev(&spec, "approve", std::slice::from_ref(&x)))
            .unwrap()
            .applied());
        assert!(eng
            .push(ev(&spec, "clear", std::slice::from_ref(&y)))
            .unwrap()
            .applied());
        // Silent work in the new stage, then a violating hire with the old
        // approval: the stage (the approve-for-y below) is discarded.
        assert!(eng
            .push(ev(&spec, "approve", std::slice::from_ref(&y)))
            .unwrap()
            .applied());
        let before = eng.run().len();
        assert_eq!(before, 4);
        assert_eq!(
            eng.push(ev(&spec, "hire", std::slice::from_ref(&x)))
                .unwrap(),
            PushOutcome::RolledBack { undone: 1 }
        );
        // The approve-for-y was undone; the run ends at the last visible
        // event (clear(y)).
        assert_eq!(eng.run().len(), 3);
        let approved = spec.collab().schema().rel("Approved").unwrap();
        assert!(!eng.run().current().rel(approved).contains_key(&y));
        // The engine remains usable: redo the approval and hire y cleanly.
        assert!(eng
            .push(ev(&spec, "approve", std::slice::from_ref(&y)))
            .unwrap()
            .applied());
        assert!(eng.push(ev(&spec, "hire", &[y])).unwrap().applied());
    }

    #[test]
    fn rollback_with_empty_stage_undoes_nothing() {
        let spec = hiring();
        let sue = spec.collab().peer("sue").unwrap();
        let mut eng =
            TransparentEngine::with_mode(Arc::clone(&spec), sue, 3, EnforcementMode::Rollback);
        let x = Value::Fresh(100);
        assert!(eng
            .push(ev(&spec, "clear", std::slice::from_ref(&x)))
            .unwrap()
            .applied());
        assert!(eng
            .push(ev(&spec, "approve", std::slice::from_ref(&x)))
            .unwrap()
            .applied());
        assert!(eng
            .push(ev(&spec, "clear", &[Value::Fresh(200)]))
            .unwrap()
            .applied());
        // Immediately violating hire: the current stage has no silent events.
        assert_eq!(
            eng.push(ev(&spec, "hire", &[x])).unwrap(),
            PushOutcome::RolledBack { undone: 0 }
        );
        assert_eq!(eng.run().len(), 3);
    }

    #[test]
    fn enriched_schema_has_shadow_relations() {
        let spec = hiring();
        let schema = spec.collab().schema();
        let enriched = enrich_schema(schema, 2);
        assert_eq!(enriched.len(), schema.len() * 2);
        let shadow = enriched.rel("Clearedt").expect("shadow relation");
        let rs = enriched.relation(shadow);
        // K, tK, dK, Ks1, Ks2 for the unary Cleared.
        assert_eq!(rs.arity(), 5);
        assert!(rs.attr("dK").is_some());
        assert!(rs.attr("Ks2").is_some());
    }
}
