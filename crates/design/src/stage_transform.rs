//! Mechanical stage-discipline rewriting (Section 6, Example 5.7).
//!
//! Given a program and a designated peer `p`, [`add_stage_discipline`]
//! produces a staged variant in the spirit of the paper's Example 5.7
//! construction:
//!
//! * a fresh binary relation `Stage(K, S)`, visible to **all** peers, with
//!   an initialization rule `+Stage(0, s) :- ¬Key_Stage(0)` owned by `p`;
//! * every rule gains a `Stage(0, s)` guard, and every rule with a
//!   p-visible update additionally deletes `Key_Stage(0)` — so invisible
//!   work must re-establish a fresh stage id after each observation;
//! * every p-invisible relation `R(K, Ā)` is **re-keyed** as
//!   `R(K, Obj, Ā, StageID)`: the key becomes a fresh per-derivation token,
//!   the original key moves to the `Obj` column, and every tuple is stamped
//!   with the stage id that produced it.
//!
//! The re-keying goes beyond the paper's literal construction (which keeps
//! the original keys and stamps a stage column): with original keys, a
//! stale fact `R(x, s_old)` *chase-conflicts* with the current stage's
//! re-derivation `R(x, s_new)`, so hidden history can block visible
//! progress — a transparency leak under the uniform quantifier of
//! Definition 5.6 (see DESIGN.md, reading choice 5). Fresh tokens make
//! derivations from different stages coexist silently; joins go through the
//! `Obj` column and the current stage id, so stale rows are inert.
//!
//! The price is expressibility: `¬Key_R(x)` and `¬R(x, ū)` over an
//! invisible relation become *non-key* negations over the re-keyed schema,
//! which FCQ¬ cannot express — such rules are rejected
//! ([`StageTransformError::Inexpressible`]), as are deletions of invisible
//! tuples without a positive body witness. Visible relations are untouched.

use std::collections::BTreeMap;

use cwf_lang::{Literal, Program, Rule, Term, UpdateAtom, VarId, WorkflowSpec};
use cwf_model::{AttrId, CollabSchema, PeerId, RelId, RelSchema, Schema, Value, ViewRel};

use crate::guidelines::Classification;

/// Why the transform refused a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageTransformError {
    /// The schema already has a relation named `Stage`.
    StageNameTaken,
    /// A rule mixes p-visible updates with insertions into p-invisible
    /// relations: the discipline separates visible updates from
    /// stage-stamped invisible ones (cf. Example 6.1).
    MixedHead {
        /// The offending rule.
        rule: String,
    },
    /// A rule uses a construct the re-keyed schema cannot express
    /// (negation over an invisible relation, or a deletion without a
    /// positive witness).
    Inexpressible {
        /// The offending rule.
        rule: String,
        /// What exactly cannot be expressed.
        what: &'static str,
    },
}

impl std::fmt::Display for StageTransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageTransformError::StageNameTaken => {
                write!(f, "the schema already defines a relation named Stage")
            }
            StageTransformError::MixedHead { rule } => write!(
                f,
                "rule {rule} mixes p-visible updates with invisible insertions; \
                 split it before staging (cf. Example 6.1)"
            ),
            StageTransformError::Inexpressible { rule, what } => {
                write!(
                    f,
                    "rule {rule}: {what} is not expressible over the re-keyed schema"
                )
            }
        }
    }
}

impl std::error::Error for StageTransformError {}

/// The result of the transform: the staged spec plus the classification that
/// makes [`crate::guidelines::check_guidelines`] accept it.
#[derive(Debug, Clone)]
pub struct Staged {
    /// The staged workflow spec.
    pub spec: WorkflowSpec,
    /// The matching (C3) classification (Stage relation + StageID columns).
    pub classification: Classification,
}

/// Applies the stage discipline for `peer` (see module docs).
pub fn add_stage_discipline(
    spec: &WorkflowSpec,
    peer: PeerId,
) -> Result<Staged, StageTransformError> {
    let collab = spec.collab();
    let old_schema = collab.schema();
    if old_schema.rel("Stage").is_some() {
        return Err(StageTransformError::StageNameTaken);
    }
    // --- new schema -------------------------------------------------------
    let mut schema = Schema::new();
    let stage = schema
        .add_relation(RelSchema::new("Stage", ["K", "S"]).expect("valid"))
        .expect("name free");
    let mut rel_map: BTreeMap<RelId, RelId> = BTreeMap::new();
    let mut stage_id_attr: BTreeMap<RelId, AttrId> = BTreeMap::new();
    // For re-keyed relations: position of the Obj column (always 1).
    let mut rekeyed: BTreeMap<RelId, ()> = BTreeMap::new();
    for r in old_schema.rel_ids() {
        let rs = old_schema.relation(r);
        let invisible = !collab.sees(peer, r);
        let attrs: Vec<String> = if invisible {
            // K (token), Obj (old key), old non-key attrs, StageID.
            let mut a = vec!["K".to_string(), pick_name(rs, "Obj")];
            a.extend(rs.attrs()[1..].iter().cloned());
            a.push(pick_name(rs, "StageID"));
            a
        } else {
            rs.attrs().to_vec()
        };
        let nr = schema
            .add_relation(RelSchema::new(rs.name(), attrs).expect("distinct attrs"))
            .expect("names unique");
        rel_map.insert(r, nr);
        if invisible {
            stage_id_attr.insert(nr, AttrId(rs.arity() as u32 + 1));
            rekeyed.insert(r, ());
        }
    }
    // --- views --------------------------------------------------------------
    let mut new_collab = CollabSchema::new(schema);
    for q in collab.peer_ids() {
        let nq = new_collab
            .add_peer(collab.peer_name(q))
            .expect("names unique");
        debug_assert_eq!(nq, q);
    }
    for q in collab.peer_ids() {
        new_collab.set_full_view(q, stage).expect("valid");
        for r in collab.visible_rels(q).collect::<Vec<_>>() {
            let nr = rel_map[&r];
            let old_view = collab.view(q, r).expect("visible");
            if rekeyed.contains_key(&r) {
                // Re-keyed relation: expose the token, the shifted old
                // attributes, and the StageID.
                let mut attrs: Vec<AttrId> = vec![AttrId(0)];
                for a in old_view.attrs() {
                    attrs.push(AttrId(a.0 + 1)); // shifted by the token column
                }
                attrs.push(stage_id_attr[&nr]);
                // Selections over old attributes shift likewise.
                let selection = shift_condition(old_view.selection(), 1);
                new_collab
                    .set_view(q, ViewRel::new(nr, attrs, selection))
                    .expect("valid view");
            } else if old_view.is_full(collab.schema()) {
                new_collab.set_full_view(q, nr).expect("valid");
            } else {
                new_collab
                    .set_view(
                        q,
                        ViewRel::new(
                            nr,
                            old_view.attrs().iter().copied(),
                            old_view.selection().clone(),
                        ),
                    )
                    .expect("valid view");
            }
        }
    }
    // --- rules --------------------------------------------------------------
    let mut program = Program::new();
    {
        let mut b = cwf_lang::RuleBuilder::new(peer, "stage_init");
        let s = b.var("s");
        program.add_rule(
            b.key_neg(stage, Term::Const(Value::int(0)))
                .insert(stage, [Term::Const(Value::int(0)), s])
                .build(),
        );
    }
    for rule in spec.program().rules() {
        program.add_rule(transform_rule(spec, peer, rule, stage, &rel_map)?);
    }
    let staged_spec = WorkflowSpec::new(new_collab, program)
        .expect("staged rules are well-formed by construction");
    let classification = Classification {
        transparent: staged_spec.collab().schema().rel_ids().collect(),
        stage,
        stage_id_attr,
    };
    Ok(Staged {
        spec: staged_spec,
        classification,
    })
}

/// Picks an attribute name not already used by the relation.
fn pick_name(rs: &RelSchema, base: &str) -> String {
    let mut name = base.to_string();
    let mut i = 0;
    while rs.attrs().contains(&name) {
        i += 1;
        name = format!("{base}{i}");
    }
    name
}

/// Shifts every attribute id in a condition by `by` (the token column was
/// prepended).
fn shift_condition(c: &cwf_model::Condition, by: u32) -> cwf_model::Condition {
    use cwf_model::Condition as C;
    match c {
        C::True => C::True,
        C::False => C::False,
        C::EqConst(a, v) => C::EqConst(AttrId(a.0 + by), *v),
        C::EqAttr(a, b) => C::EqAttr(AttrId(a.0 + by), AttrId(b.0 + by)),
        C::Not(inner) => C::Not(Box::new(shift_condition(inner, by))),
        C::And(cs) => C::And(cs.iter().map(|c| shift_condition(c, by)).collect()),
        C::Or(cs) => C::Or(cs.iter().map(|c| shift_condition(c, by)).collect()),
    }
}

fn transform_rule(
    spec: &WorkflowSpec,
    peer: PeerId,
    rule: &Rule,
    stage: RelId,
    rel_map: &BTreeMap<RelId, RelId>,
) -> Result<Rule, StageTransformError> {
    let collab = spec.collab();
    let invisible = |r: RelId| !collab.sees(peer, r);
    let visible_update = rule.head.iter().any(|u| !invisible(u.rel()));
    let invisible_insert = rule
        .head
        .iter()
        .any(|u| u.is_insert() && invisible(u.rel()));
    if visible_update && invisible_insert {
        return Err(StageTransformError::MixedHead {
            rule: rule.name.clone(),
        });
    }
    let mut vars = rule.vars.clone();
    let fresh_var = |vars: &mut Vec<String>, base: &str| -> VarId {
        let mut name = base.to_string();
        let mut i = 0;
        while vars.contains(&name) {
            i += 1;
            name = format!("{base}{i}");
        }
        vars.push(name);
        VarId(vars.len() as u32 - 1)
    };
    let stage_var = fresh_var(&mut vars, "_stage");
    let s_term = Term::Var(stage_var);
    // Body: remap; re-keyed positive literals gain a token variable and the
    // stage id; negations over invisible relations are inexpressible.
    let mut body: Vec<Literal> = Vec::new();
    // Tokens bound per (rel, old-key term), for deletions to reuse.
    let mut tokens: Vec<(RelId, Term, VarId)> = Vec::new();
    for lit in &rule.body {
        match lit {
            Literal::Pos { rel, args } if invisible(*rel) => {
                let token = fresh_var(&mut vars, "_t");
                tokens.push((*rel, args[0].clone(), token));
                let mut new_args = vec![Term::Var(token)];
                new_args.extend(args.iter().cloned());
                new_args.push(s_term.clone());
                body.push(Literal::Pos {
                    rel: rel_map[rel],
                    args: new_args,
                });
            }
            Literal::KeyPos { rel, key } if invisible(*rel) => {
                // ∃ tuple with object `key` in the current stage.
                let token = fresh_var(&mut vars, "_t");
                tokens.push((*rel, key.clone(), token));
                let width = spec
                    .view_width(rule.peer, *rel)
                    .expect("validated rule sees the relation");
                let mut new_args = vec![Term::Var(token), key.clone()];
                for _ in 1..width {
                    new_args.push(Term::Var(fresh_var(&mut vars, "_z")));
                }
                new_args.push(s_term.clone());
                body.push(Literal::Pos {
                    rel: rel_map[rel],
                    args: new_args,
                });
            }
            Literal::Neg { rel, .. } | Literal::KeyNeg { rel, .. } if invisible(*rel) => {
                return Err(StageTransformError::Inexpressible {
                    rule: rule.name.clone(),
                    what: "negation over a p-invisible relation",
                });
            }
            Literal::Pos { rel, args } => body.push(Literal::Pos {
                rel: rel_map[rel],
                args: args.clone(),
            }),
            Literal::Neg { rel, args } => body.push(Literal::Neg {
                rel: rel_map[rel],
                args: args.clone(),
            }),
            Literal::KeyPos { rel, key } => body.push(Literal::KeyPos {
                rel: rel_map[rel],
                key: key.clone(),
            }),
            Literal::KeyNeg { rel, key } => body.push(Literal::KeyNeg {
                rel: rel_map[rel],
                key: key.clone(),
            }),
            eq => body.push(eq.clone()),
        }
    }
    body.push(Literal::Pos {
        rel: stage,
        args: vec![Term::Const(Value::int(0)), s_term.clone()],
    });
    // Head.
    let mut head: Vec<UpdateAtom> = Vec::new();
    for u in &rule.head {
        match u {
            UpdateAtom::Insert { rel, args } if invisible(*rel) => {
                let token = fresh_var(&mut vars, "_k");
                let mut new_args = vec![Term::Var(token)];
                new_args.extend(args.iter().cloned());
                new_args.push(s_term.clone());
                head.push(UpdateAtom::Insert {
                    rel: rel_map[rel],
                    args: new_args,
                });
            }
            UpdateAtom::Delete { rel, key } if invisible(*rel) => {
                // Delete through the token bound by a body witness.
                let Some((_, _, token)) = tokens.iter().find(|(r, k, _)| r == rel && k == key)
                else {
                    return Err(StageTransformError::Inexpressible {
                        rule: rule.name.clone(),
                        what: "deletion of an invisible tuple without a positive witness",
                    });
                };
                head.push(UpdateAtom::Delete {
                    rel: rel_map[rel],
                    key: Term::Var(*token),
                });
            }
            UpdateAtom::Insert { rel, args } => head.push(UpdateAtom::Insert {
                rel: rel_map[rel],
                args: args.clone(),
            }),
            UpdateAtom::Delete { rel, key } => head.push(UpdateAtom::Delete {
                rel: rel_map[rel],
                key: key.clone(),
            }),
        }
    }
    if visible_update {
        head.push(UpdateAtom::Delete {
            rel: stage,
            key: Term::Const(Value::int(0)),
        });
    }
    Ok(Rule {
        peer: rule.peer,
        name: rule.name.clone(),
        head,
        body,
        vars,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guidelines::check_guidelines;
    use cwf_lang::{normalize, parse_workflow, print_workflow};
    use std::sync::Arc;

    /// The raw (non-transparent) hiring program of Example 5.7.
    fn hiring() -> WorkflowSpec {
        parse_workflow(
            r#"
            schema { Cleared(K); Approved(K); Hire(K); }
            peers {
                hr sees Cleared(*), Approved(*), Hire(*);
                ceo sees Cleared(*), Approved(*), Hire(*);
                sue sees Cleared(*), Hire(*);
            }
            rules {
                clear @ hr: +Cleared(x) :- ;
                approve @ ceo: +Approved(x) :- Cleared(x);
                hire @ hr: +Hire(x) :- Approved(x);
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn staged_hiring_matches_the_construction() {
        let spec = hiring();
        let sue = spec.collab().peer("sue").unwrap();
        let staged = add_stage_discipline(&spec, sue).unwrap();
        let s = &staged.spec;
        // Stage exists and everyone sees it.
        let stage = s.collab().schema().rel("Stage").unwrap();
        for q in s.collab().peer_ids() {
            assert!(s.collab().sees(q, stage));
        }
        // Approved was re-keyed: K (token), Obj, StageID.
        let approved = s.collab().schema().rel("Approved").unwrap();
        let rs = s.collab().schema().relation(approved);
        assert_eq!(rs.attrs(), &["K", "Obj", "StageID"]);
        // Visible relations are untouched.
        let cleared = s.collab().schema().rel("Cleared").unwrap();
        assert_eq!(s.collab().schema().relation(cleared).arity(), 1);
        let printed = print_workflow(s);
        assert!(printed.contains("stage_init @ sue"));
        assert!(printed.contains("-key Stage(0)"));
        // The guidelines accept the result (Theorem 6.2 by construction).
        let violations = check_guidelines(s, sue, &staged.classification);
        assert!(violations.is_empty(), "got {violations:?}");
    }

    #[test]
    fn staged_program_runs_through_a_full_stage_cycle() {
        use cwf_engine::{Bindings, Event, Run};
        let spec = hiring();
        let sue = spec.collab().peer("sue").unwrap();
        let staged = Arc::new(add_stage_discipline(&spec, sue).unwrap().spec);
        let mut run = Run::new(Arc::clone(&staged));
        let fire = |run: &mut Run, name: &str, vals: &[Value]| {
            let rid = run.spec().program().rule_by_name(name).unwrap();
            let rule = run.spec().program().rule(rid);
            assert_eq!(rule.vars.len(), vals.len(), "rule {name}: {:?}", rule.vars);
            let mut b = Bindings::empty(vals.len());
            for (i, v) in vals.iter().enumerate() {
                b.set(cwf_lang::VarId(i as u32), *v);
            }
            let e = Event::new(run.spec(), rid, b).unwrap();
            run.push(e).unwrap_or_else(|err| panic!("{name}: {err}"));
        };
        let (s1, s2, x, k) = (
            Value::Fresh(100),
            Value::Fresh(200),
            Value::Fresh(300),
            Value::Fresh(400),
        );
        // stage_init(s); clear(x, s1); stage_init(s2);
        // approve: vars x, _stage, _k → [x, s2, k]; hire: x, _stage, _t.
        fire(&mut run, "stage_init", std::slice::from_ref(&s1));
        fire(&mut run, "clear", &[x, s1]);
        fire(&mut run, "stage_init", std::slice::from_ref(&s2));
        fire(&mut run, "approve", &[x, s2, k]);
        fire(&mut run, "hire", &[x, s2, k]);
        let hire = staged.collab().schema().rel("Hire").unwrap();
        assert!(run.current().rel(hire).contains_key(&x));
        // Stage is gone after the visible hire.
        let stage = staged.collab().schema().rel("Stage").unwrap();
        assert!(run.current().rel(stage).is_empty());
        // A second candidate in a new stage: stale approvals are inert —
        // re-approving x works fine (new token), unlike the key-preserving
        // construction where it would chase-conflict.
        let (s3, k2) = (Value::Fresh(500), Value::Fresh(600));
        fire(&mut run, "stage_init", std::slice::from_ref(&s3));
        fire(&mut run, "approve", &[x, s3, k2]);
        // But the *old* stamp cannot drive a hire in the new stage.
        let rid = staged.program().rule_by_name("hire").unwrap();
        let mut b = Bindings::empty(3);
        b.set(cwf_lang::VarId(0), x);
        b.set(cwf_lang::VarId(1), s2); // stale stage id
        b.set(cwf_lang::VarId(2), k);
        let stale = Event::new(&staged, rid, b).unwrap();
        assert!(run.push(stale).is_err(), "stale stamp must not fire");
    }

    #[test]
    fn staged_output_is_normal_formable_and_tf() {
        let spec = hiring();
        let sue = spec.collab().peer("sue").unwrap();
        let staged = add_stage_discipline(&spec, sue).unwrap();
        let nf = normalize(&staged.spec);
        let violations = crate::tf::check_tf(&nf.spec, sue, Some(staged.classification.stage));
        assert!(violations.is_empty(), "got {violations:?}");
    }

    #[test]
    fn sampled_transparency_holds_after_staging() {
        let spec = hiring();
        let sue = spec.collab().peer("sue").unwrap();
        let staged = Arc::new(add_stage_discipline(&spec, sue).unwrap().spec);
        assert!(
            cwf_analysis::sample_transparency_violation(&staged, sue, 25, 8, 5).is_none(),
            "the staged program shows no sampled violation (Theorem 6.2)"
        );
        // …whereas the raw program does.
        let raw = Arc::new(hiring());
        assert!(cwf_analysis::sample_transparency_violation(&raw, sue, 40, 6, 5).is_some());
    }

    #[test]
    fn name_collisions_are_rejected() {
        let spec = parse_workflow(
            r#"
            schema { Stage(K, S); }
            peers { p sees Stage(*); }
            rules { }
            "#,
        )
        .unwrap();
        let p = spec.collab().peer("p").unwrap();
        assert_eq!(
            add_stage_discipline(&spec, p).unwrap_err(),
            StageTransformError::StageNameTaken
        );
    }

    #[test]
    fn mixed_heads_are_rejected() {
        let spec = parse_workflow(
            r#"
            schema { R(K); T(K); }
            peers { p sees R(*); q sees R(*), T(*); }
            rules { both @ q: +R(x), +T(y) :- ; }
            "#,
        )
        .unwrap();
        let p = spec.collab().peer("p").unwrap();
        assert!(matches!(
            add_stage_discipline(&spec, p),
            Err(StageTransformError::MixedHead { .. })
        ));
    }

    #[test]
    fn invisible_negation_is_rejected() {
        let spec = parse_workflow(
            r#"
            schema { R(K); T(K); }
            peers { p sees R(*); q sees R(*), T(*); }
            rules { guard @ q: +R(x) :- not key T(0); }
            "#,
        )
        .unwrap();
        let p = spec.collab().peer("p").unwrap();
        assert!(matches!(
            add_stage_discipline(&spec, p),
            Err(StageTransformError::Inexpressible { .. })
        ));
    }

    #[test]
    fn invisible_deletions_need_a_witness() {
        // With a witness: fine (the token is reused for the deletion).
        let ok = parse_workflow(
            r#"
            schema { R(K); T(K); }
            peers { p sees R(*); q sees R(*), T(*); }
            rules {
                mk @ q: +T(t) :- ;
                rm @ q: -key T(t) :- T(t);
            }
            "#,
        )
        .unwrap();
        let p = ok.collab().peer("p").unwrap();
        let staged = add_stage_discipline(&ok, p).unwrap();
        // rm's deletion now targets the token column.
        let printed = print_workflow(&staged.spec);
        assert!(printed.contains("-key T(_t)"), "printed:\n{printed}");
    }
}
