//! Transparency-form (TF) programs (Definition 6.5).
//!
//! TF relaxes the design guidelines: instead of classifying *relations* as
//! transparent/opaque up front, transparency is tracked per *fact* at run
//! time (see [`crate::enforce`]). A normal-form program is TF for `p` when
//! it satisfies (C1), (C2), and
//!
//! * **(C3′)** — keys of p-invisible relations are never reused: an
//!   insertion `+R@q(x, ȳ)` either creates a key (`x` head-only) or
//!   modifies a tuple matched in the body;
//! * **(C4′)** — for p-invisible relations, selections only use attributes
//!   the selecting peer projects (so visibility of a fact never depends on
//!   values the peer cannot see).

use std::fmt;

use cwf_lang::{is_normal_form, Literal, UpdateAtom, WorkflowSpec};
use cwf_model::{PeerId, RelId};

use crate::pgraph::satisfies_c1;

/// A violation of transparency-form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TfViolation {
    /// The program is not in normal form (Proposition 2.3).
    NotNormalForm,
    /// (C1) fails.
    C1,
    /// (C2): no rule maintains the `Stage` relation — reported only when a
    /// stage relation was designated.
    C2 {
        /// Description of the missing maintenance obligation.
        detail: String,
    },
    /// (C3′): a rule may reuse a deleted key of an invisible relation.
    C3Prime {
        /// The offending rule name.
        rule: String,
        /// The relation whose key may be reused.
        rel: RelId,
    },
    /// (C4′): a selection on an invisible relation uses hidden attributes.
    C4Prime {
        /// The selecting peer.
        peer: PeerId,
        /// The relation concerned.
        rel: RelId,
    },
}

impl fmt::Display for TfViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TfViolation::NotNormalForm => write!(f, "program is not in normal form"),
            TfViolation::C1 => write!(f, "(C1) violated"),
            TfViolation::C2 { detail } => write!(f, "(C2) violated: {detail}"),
            TfViolation::C3Prime { rule, rel } => {
                write!(f, "(C3′) violated: rule {rule} may reuse a key of {rel:?}")
            }
            TfViolation::C4Prime { peer, rel } => write!(
                f,
                "(C4′) violated: peer {peer:?} selects {rel:?} on hidden attributes"
            ),
        }
    }
}

/// Checks transparency-form for `peer`. (C2) is checked structurally only
/// when `stage` designates the Stage relation; pass `None` for programs
/// whose stage discipline is enforced at run time by the
/// [`crate::enforce::TransparentEngine`].
pub fn check_tf(spec: &WorkflowSpec, peer: PeerId, stage: Option<RelId>) -> Vec<TfViolation> {
    let mut out = Vec::new();
    if !is_normal_form(spec.program()) {
        out.push(TfViolation::NotNormalForm);
    }
    if !satisfies_c1(spec, peer) {
        out.push(TfViolation::C1);
    }
    let collab = spec.collab();
    // (C2), structural part.
    if let Some(stage_rel) = stage {
        let has_init = spec.program().rules().iter().any(|r| {
            r.head.len() == 1
                && matches!(&r.head[0], UpdateAtom::Insert { rel, .. } if *rel == stage_rel)
                && r.body
                    .iter()
                    .any(|l| matches!(l, Literal::KeyNeg { rel, .. } if *rel == stage_rel))
        });
        if !has_init {
            out.push(TfViolation::C2 {
                detail: "no stage-initialization rule (+Stage(0, s) :- ¬Key_Stage(0))".into(),
            });
        }
    }
    // (C3′).
    for rule in spec.program().rules() {
        if rule.peer == peer {
            continue;
        }
        let body_vars = rule.body_vars();
        for u in &rule.head {
            let UpdateAtom::Insert { rel, args } = u else {
                continue;
            };
            if collab.sees(peer, *rel) {
                continue;
            }
            let key = &args[0];
            let fresh = key.as_var().is_some_and(|v| !body_vars.contains(&v));
            let witnessed = rule.body.iter().any(|l| {
                matches!(l, Literal::Pos { rel: r, args: bargs } if r == rel && &bargs[0] == key)
            });
            if !fresh && !witnessed {
                out.push(TfViolation::C3Prime {
                    rule: rule.name.clone(),
                    rel: *rel,
                });
            }
        }
    }
    // (C4′).
    for rel in collab.schema().rel_ids() {
        if collab.sees(peer, rel) {
            continue;
        }
        for q in collab.peer_ids() {
            if let Some(view) = collab.view(q, rel) {
                let projected: std::collections::BTreeSet<_> =
                    view.attrs().iter().copied().collect();
                if !view
                    .selection()
                    .attrs()
                    .iter()
                    .all(|a| projected.contains(a))
                {
                    out.push(TfViolation::C4Prime { peer: q, rel });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwf_lang::{normalize, parse_workflow};
    use cwf_model::{AttrId, Condition, ViewRel};

    #[test]
    fn staged_hiring_is_tf() {
        let spec = parse_workflow(
            r#"
            schema { Stage(K, S); Cleared(K); Approved(K, X, S); Hire(K); }
            peers {
                sue sees Stage(*), Cleared(*), Hire(*);
                hr  sees Stage(*), Cleared(*), Approved(*), Hire(*);
                ceo sees Stage(*), Cleared(*), Approved(*), Hire(*);
            }
            rules {
                stage   @ sue: +Stage(0, s) :- not key Stage(0);
                clear   @ hr:  +Cleared(x), -key Stage(0) :- Stage(0, s);
                approve @ ceo: +Approved(k, x, s) :- Cleared(x), Stage(0, s);
                hire    @ hr:  +Hire(x), -key Stage(0)
                               :- Approved(k, x, s), Stage(0, s);
            }
            "#,
        )
        .unwrap();
        let sue = spec.collab().peer("sue").unwrap();
        let stage = spec.collab().schema().rel("Stage").unwrap();
        // The program is already in normal form except deletions: normalize.
        let nf = normalize(&spec);
        let violations = check_tf(&nf.spec, sue, Some(stage));
        assert!(violations.is_empty(), "got {violations:?}");
    }

    #[test]
    fn key_reuse_is_flagged() {
        let spec = parse_workflow(
            r#"
            schema { Hidden(K, A); Out(K); }
            peers {
                p sees Out(*);
                q sees Hidden(*), Out(*);
            }
            rules {
                // Reuses key x of invisible Hidden without matching it.
                reuse @ q: +Hidden(x, "v") :- Out(x);
                ok_new @ q: +Hidden(y, "v") :- ;
                ok_mod @ q: +Hidden(x, "w") :- Hidden(x, "v");
            }
            "#,
        )
        .unwrap();
        let p = spec.collab().peer("p").unwrap();
        let nf = normalize(&spec);
        let violations = check_tf(&nf.spec, p, None);
        assert_eq!(
            violations
                .iter()
                .filter(
                    |v| matches!(v, TfViolation::C3Prime { rule, .. } if rule.starts_with("reuse"))
                )
                .count(),
            1
        );
        assert!(!violations
            .iter()
            .any(|v| matches!(v, TfViolation::C3Prime { rule, .. } if rule.starts_with("ok_"))));
    }

    #[test]
    fn hidden_selection_attributes_are_flagged() {
        // q's view of Hidden selects on attribute A but projects it away.
        let base = parse_workflow(
            r#"
            schema { Hidden(K, A); Out(K); }
            peers { p sees Out(*); q sees Hidden(*), Out(*); }
            rules { mk @ q: +Out(x) :- ; }
            "#,
        )
        .unwrap();
        let (mut collab, prog) = base.into_parts();
        let q = collab.peer("q").unwrap();
        let hidden = collab.schema().rel("Hidden").unwrap();
        collab
            .set_view(
                q,
                ViewRel::new(hidden, [], Condition::eq_const(AttrId(1), "x")),
            )
            .unwrap();
        let spec = cwf_lang::WorkflowSpec::new(collab, prog).unwrap();
        let p = spec.collab().peer("p").unwrap();
        let violations = check_tf(&spec, p, None);
        assert!(violations
            .iter()
            .any(|v| matches!(v, TfViolation::C4Prime { rel, .. } if *rel == hidden)));
    }

    #[test]
    fn non_normal_form_and_missing_stage_init_flagged() {
        let spec = parse_workflow(
            r#"
            schema { Stage(K, S); A(K); }
            peers { p sees Stage(*), A(*); q sees Stage(*), A(*); }
            rules {
                // Deletion without witness: not normal form.
                del @ q: -key A(x) :- key A(x);
            }
            "#,
        )
        .unwrap();
        let p = spec.collab().peer("p").unwrap();
        let stage = spec.collab().schema().rel("Stage").unwrap();
        let violations = check_tf(&spec, p, Some(stage));
        assert!(violations.contains(&TfViolation::NotNormalForm));
        assert!(violations
            .iter()
            .any(|v| matches!(v, TfViolation::C2 { .. })));
    }
}
