//! # cwf-design — transparent workflow design and enforcement
//!
//! Section 6 of the paper: design guidelines (C1)–(C4) giving transparency
//! and h-boundedness by construction (Theorem 6.2), boundedness via
//! p-acyclicity with the `(ab+1)^d` bound (Theorem 6.3), transparency-form
//! (TF) programs (Definition 6.5), run-level transparency / h-boundedness
//! and run projections (Definitions 6.4/6.6), and the enforcement engine
//! realizing `Pᵗ` (Theorem 6.7, Corollary 6.8) by filtering out runs that
//! violate either property.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enforce;
pub mod guidelines;
pub mod pgraph;
pub mod runs;
pub mod stage_transform;
pub mod tf;

pub use enforce::{
    enrich_schema, Alert, EnforceStats, EnforcementMode, PushOutcome, TransparentEngine,
};
pub use guidelines::{check_guidelines, Classification, GuidelineViolation};
pub use pgraph::{acyclicity_bound, is_p_acyclic, p_graph, satisfies_c1, thm_6_3_applies, PGraph};
pub use runs::{
    in_t_runs, is_run_h_bounded, p_fresh_candidates, run_transparency_violation, Projection,
    RunTransparencyViolation,
};
pub use stage_transform::{add_stage_discipline, StageTransformError, Staged};
pub use tf::{check_tf, TfViolation};
