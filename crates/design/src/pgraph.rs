//! The p-graph and boundedness by acyclicity (Theorem 6.3).
//!
//! For a *linear-head* program satisfying (C1), the p-graph has the
//! relations as nodes and an edge `R → Q` whenever `Q` is invisible at `p`
//! and some rule's head updates `R` while its body mentions `Q`. If, for
//! every `R ∈ D@p`, the subgraph reachable from `R` is acyclic, the program
//! is h-bounded for `p` with `h = (ab + 1)^d` where `b` is the maximum
//! number of facts in a body, `d = |D|`, and `a` is the maximum arity plus
//! one.

use std::collections::{BTreeMap, BTreeSet};

use cwf_lang::{Literal, UpdateAtom, WorkflowSpec};
use cwf_model::{PeerId, RelId};

/// The dependency graph of Theorem 6.3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PGraph {
    /// Edges `R → Q` ("the update of R depends on invisible Q").
    pub edges: BTreeSet<(RelId, RelId)>,
}

impl PGraph {
    /// Successors of `r`.
    pub fn successors(&self, r: RelId) -> impl Iterator<Item = RelId> + '_ {
        self.edges
            .iter()
            .filter(move |(from, _)| *from == r)
            .map(|(_, to)| *to)
    }

    /// All nodes reachable from `r` (excluding `r` unless on a cycle).
    pub fn reachable(&self, r: RelId) -> BTreeSet<RelId> {
        let mut out = BTreeSet::new();
        let mut stack: Vec<RelId> = self.successors(r).collect();
        while let Some(n) = stack.pop() {
            if out.insert(n) {
                stack.extend(self.successors(n));
            }
        }
        out
    }

    /// Is the subgraph induced by `nodes` acyclic?
    pub fn acyclic_within(&self, nodes: &BTreeSet<RelId>) -> bool {
        // Kahn-style: repeatedly strip nodes with no in-edges from within.
        let mut remaining: BTreeSet<RelId> = nodes.clone();
        loop {
            let removable: Vec<RelId> = remaining
                .iter()
                .copied()
                .filter(|n| {
                    !self
                        .edges
                        .iter()
                        .any(|(f, t)| t == n && remaining.contains(f) && remaining.contains(t))
                })
                .collect();
            if removable.is_empty() {
                return remaining.is_empty();
            }
            for n in removable {
                remaining.remove(&n);
            }
        }
    }

    /// The longest path length (#edges) starting from `r`, or `None` if a
    /// cycle is reachable. (The `g` in the proof of Theorem 6.3.)
    pub fn longest_path_from(&self, r: RelId) -> Option<usize> {
        fn go(
            g: &PGraph,
            n: RelId,
            visiting: &mut BTreeSet<RelId>,
            memo: &mut BTreeMap<RelId, Option<usize>>,
        ) -> Option<usize> {
            if let Some(m) = memo.get(&n) {
                return *m;
            }
            if !visiting.insert(n) {
                return None; // cycle
            }
            let mut best = 0usize;
            for s in g.successors(n).collect::<Vec<_>>() {
                best = best.max(1 + go(g, s, visiting, memo)?);
            }
            visiting.remove(&n);
            memo.insert(n, Some(best));
            Some(best)
        }
        go(self, r, &mut BTreeSet::new(), &mut BTreeMap::new())
    }
}

/// Builds the p-graph of `spec` for `peer`.
pub fn p_graph(spec: &WorkflowSpec, peer: PeerId) -> PGraph {
    let mut edges = BTreeSet::new();
    for rule in spec.program().rules() {
        let heads: Vec<RelId> = rule.head.iter().map(UpdateAtom::rel).collect();
        let body_rels: Vec<RelId> = rule
            .body
            .iter()
            .filter_map(|l| match l {
                Literal::Pos { rel, .. }
                | Literal::Neg { rel, .. }
                | Literal::KeyPos { rel, .. }
                | Literal::KeyNeg { rel, .. } => Some(*rel),
                _ => None,
            })
            .collect();
        for &r in &heads {
            for &q in &body_rels {
                if !spec.collab().sees(peer, q) {
                    edges.insert((r, q));
                }
            }
        }
    }
    PGraph { edges }
}

/// Is the program p-acyclic: for every relation visible at `peer`, the
/// reachable subgraph of the p-graph is acyclic?
pub fn is_p_acyclic(spec: &WorkflowSpec, peer: PeerId) -> bool {
    let g = p_graph(spec, peer);
    spec.collab().visible_rels(peer).all(|r| {
        let mut nodes = g.reachable(r);
        nodes.insert(r);
        g.acyclic_within(&nodes)
    })
}

/// Does Theorem 6.3 apply: linear heads and condition (C1)?
pub fn thm_6_3_applies(spec: &WorkflowSpec, peer: PeerId) -> bool {
    spec.program().is_linear_head() && satisfies_c1(spec, peer)
}

/// Condition (C1): every peer that sees a relation visible at `peer` sees it
/// fully (all attributes, selection `true`).
pub fn satisfies_c1(spec: &WorkflowSpec, peer: PeerId) -> bool {
    let collab = spec.collab();
    collab.visible_rels(peer).all(|r| {
        collab.peer_ids().all(|q| match collab.view(q, r) {
            Some(v) => v.is_full(collab.schema()),
            None => true,
        })
    })
}

/// The Theorem 6.3 bound `h = (ab + 1)^d` (saturating).
pub fn acyclicity_bound(spec: &WorkflowSpec) -> u64 {
    let b = spec.program().max_body_facts() as u64;
    let d = spec.collab().schema().len() as u32;
    let a = spec.collab().schema().max_arity() as u64 + 1;
    (a.saturating_mul(b).saturating_add(1)).saturating_pow(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwf_lang::parse_workflow;

    fn chain_spec() -> WorkflowSpec {
        parse_workflow(
            r#"
            schema { A(K); B(K); Out(K); }
            peers { q sees A(*), B(*), Out(*); p sees Out(*); }
            rules {
                s1 @ q: +A(0) :- ;
                s2 @ q: +B(0) :- A(0);
                s3 @ q: +Out(0) :- B(0);
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn chain_graph_edges_and_acyclicity() {
        let spec = chain_spec();
        let p = spec.collab().peer("p").unwrap();
        let g = p_graph(&spec, p);
        let a = spec.collab().schema().rel("A").unwrap();
        let b = spec.collab().schema().rel("B").unwrap();
        let out = spec.collab().schema().rel("Out").unwrap();
        assert!(g.edges.contains(&(b, a)), "B's rule reads invisible A");
        assert!(g.edges.contains(&(out, b)));
        assert!(!g.edges.contains(&(a, b)));
        assert!(is_p_acyclic(&spec, p));
        assert!(thm_6_3_applies(&spec, p));
        assert_eq!(g.longest_path_from(out), Some(2));
        assert_eq!(g.reachable(out), BTreeSet::from([a, b]));
    }

    #[test]
    fn cyclic_invisible_recursion_is_detected() {
        // Mutual recursion through invisible relations: not p-acyclic.
        let spec = parse_workflow(
            r#"
            schema { A(K); B(K); Out(K); }
            peers { q sees A(*), B(*), Out(*); p sees Out(*); }
            rules {
                ab @ q: +A(x) :- B(x);
                ba @ q: +B(x) :- A(x);
                o  @ q: +Out(x) :- A(x);
            }
            "#,
        )
        .unwrap();
        let p = spec.collab().peer("p").unwrap();
        assert!(!is_p_acyclic(&spec, p));
        let g = p_graph(&spec, p);
        let out = spec.collab().schema().rel("Out").unwrap();
        assert_eq!(g.longest_path_from(out), None, "cycle reachable");
    }

    #[test]
    fn cycles_unreachable_from_visible_relations_are_fine() {
        // A/B recurse, but Out does not depend on them.
        let spec = parse_workflow(
            r#"
            schema { A(K); B(K); Out(K); }
            peers { q sees A(*), B(*), Out(*); p sees Out(*); }
            rules {
                ab @ q: +A(x) :- B(x);
                ba @ q: +B(x) :- A(x);
                o  @ q: +Out(0) :- ;
            }
            "#,
        )
        .unwrap();
        let p = spec.collab().peer("p").unwrap();
        assert!(is_p_acyclic(&spec, p));
    }

    #[test]
    fn c1_detects_partial_co_observers() {
        // q sees Out only partially: (C1) fails for p.
        let spec = parse_workflow(
            r#"
            schema { Out(K, X); }
            peers { q sees Out(K); p sees Out(*); }
            rules { o @ q: +Out(x) :- ; }
            "#,
        )
        .unwrap();
        let p = spec.collab().peer("p").unwrap();
        assert!(!satisfies_c1(&spec, p));
        assert!(!thm_6_3_applies(&spec, p));
    }

    #[test]
    fn non_linear_heads_exclude_thm_6_3() {
        let spec = parse_workflow(
            r#"
            schema { A(K); B(K); }
            peers { p sees A(*), B(*); }
            rules { two @ p: +A(0), +B(0) :- ; }
            "#,
        )
        .unwrap();
        let p = spec.collab().peer("p").unwrap();
        assert!(!spec.program().is_linear_head());
        assert!(!thm_6_3_applies(&spec, p));
    }

    #[test]
    fn bound_formula() {
        let spec = chain_spec();
        // b = 1, d = 3, a = 1 + 1 = 2 ⇒ (2·1 + 1)^3 = 27.
        assert_eq!(acyclicity_bound(&spec), 27);
    }

    #[test]
    fn bound_dominates_measured_chains() {
        // The actual silent-relevant chain in chain_spec has length 3; the
        // Theorem 6.3 bound 27 dominates it (loose, as expected — E9).
        let spec = std::sync::Arc::new(chain_spec());
        let p = spec.collab().peer("p").unwrap();
        let limits = cwf_analysis::Limits {
            max_nodes: 200_000,
            max_tuples_per_rel: 1,
            extra_constants: Some(0),
        };
        let measured = cwf_analysis::find_bound(&spec, p, 6, &limits).unwrap();
        assert!(measured as u64 <= acyclicity_bound(&spec));
        assert_eq!(measured, 3);
    }
}
