//! The chaos sweep driver: runs the seeded whole-system simulation over a
//! range of seeds and reports failures as machine-readable repro lines.
//!
//! ```sh
//! cargo run -p cwf-bench --release --bin chaos -- --seeds 100
//! cargo run -p cwf-bench --release --bin chaos -- \
//!     --seeds 200 --steps 60 --profile all --out chaos-failures.txt
//! ```
//!
//! Options (all optional):
//!
//! * `--seeds N` — seeds per profile (default 20)
//! * `--start S` — first seed (default 0; seeds are `S..S+N`)
//! * `--steps M` — generated actions per trace (default 40)
//! * `--profile default|crash|storage|mod|partition|commit|reshard|all` —
//!   fault profile (default `all`; `mod` is the modification-heavy profile,
//!   which runs over the null-filling task-tracker spec unless `--spec
//!   random` is given; `partition` enables the shard actions — partitions,
//!   failovers, hand-offs — and `reshard` additionally drives live shard
//!   splits, merges, and rebalances; both are most interesting with
//!   `--shards` > 1)
//! * `--shards N` — run the traces against the sharded state plane with
//!   `N` shards instead of the single coordinator (omit the flag for the
//!   single-coordinator harness; `--shards 1` exercises the plane's
//!   shards=1 equivalence path)
//! * `--spec editorial|random` — workflow under test (default `editorial`;
//!   `random` derives a fresh propositional spec per seed)
//! * `--out PATH` — also append failure lines to PATH (for CI artifacts)
//!
//! On failure, two lines per incident:
//!
//! ```text
//! CHAOS-FAIL seed=17 profile=crash-heavy spec=editorial oracle=wal-replay step=12 detail=...
//! CHAOS-TRACE seed=17 submit(3) pump(2) crash(8) ...
//! ```
//!
//! The trace is the *minimized* repro: paste it into
//! `cwf_engine::chaos::parse_trace` and replay with `ChaosSim::run_trace`
//! (or `ShardChaosSim::run_trace` when `--shards` was given — the failure
//! line then carries a `shards=` field) under the same seed, profile, and
//! spec. Exit status is 1 iff any seed failed.

use std::fmt::Write as _;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use cwf_engine::chaos::{
    default_spec, format_trace, modification_spec, ChaosProfile, ChaosSim, ShardChaosSim,
};
use cwf_workloads::chaos_workload;

struct Options {
    seeds: u64,
    start: u64,
    steps: usize,
    profiles: Vec<ChaosProfile>,
    shards: Option<usize>,
    random_spec: bool,
    out: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        seeds: 20,
        start: 0,
        steps: 40,
        profiles: all_profiles(),
        shards: None,
        random_spec: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--seeds" => {
                opts.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--start" => {
                opts.start = value("--start")?
                    .parse()
                    .map_err(|e| format!("--start: {e}"))?
            }
            "--steps" => {
                opts.steps = value("--steps")?
                    .parse()
                    .map_err(|e| format!("--steps: {e}"))?
            }
            "--profile" => {
                opts.profiles = match value("--profile")?.as_str() {
                    "default" => vec![ChaosProfile::Default],
                    "crash" => vec![ChaosProfile::CrashHeavy],
                    "storage" => vec![ChaosProfile::StorageHeavy],
                    "mod" => vec![ChaosProfile::ModificationHeavy],
                    "partition" => vec![ChaosProfile::PartitionHeavy],
                    "commit" => vec![ChaosProfile::CommitHeavy],
                    "reshard" => vec![ChaosProfile::ReshardHeavy],
                    "all" => all_profiles(),
                    other => return Err(format!("unknown profile {other:?}")),
                }
            }
            "--shards" => {
                let n: usize = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".into());
                }
                opts.shards = Some(n);
            }
            "--spec" => {
                opts.random_spec = match value("--spec")?.as_str() {
                    "editorial" => false,
                    "random" => true,
                    other => return Err(format!("unknown spec {other:?}")),
                }
            }
            "--out" => opts.out = Some(value("--out")?),
            other => return Err(format!("unknown flag {other:?} (see module docs)")),
        }
    }
    Ok(opts)
}

fn all_profiles() -> Vec<ChaosProfile> {
    vec![
        ChaosProfile::Default,
        ChaosProfile::CrashHeavy,
        ChaosProfile::StorageHeavy,
        ChaosProfile::ModificationHeavy,
        ChaosProfile::PartitionHeavy,
        ChaosProfile::CommitHeavy,
        ChaosProfile::ReshardHeavy,
    ]
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("chaos: {e}");
            return ExitCode::from(2);
        }
    };
    let spec_name = if opts.random_spec {
        "random"
    } else {
        "editorial"
    };
    let started = Instant::now();
    let mut failures = String::new();
    let mut runs = 0u64;
    let mut failed = 0u64;
    let mut events = 0usize;
    let mut restarts = 0u64;
    for &profile in &opts.profiles {
        for seed in opts.start..opts.start + opts.seeds {
            let spec = if opts.random_spec {
                chaos_workload(seed).spec
            } else if profile == ChaosProfile::ModificationHeavy {
                modification_spec()
            } else {
                default_spec()
            };
            runs += 1;
            let outcome = match opts.shards {
                Some(n) => ShardChaosSim::new(spec, profile, n).check_seed(seed, opts.steps),
                None => ChaosSim::new(spec, profile).check_seed(seed, opts.steps),
            };
            match outcome {
                Ok(report) => {
                    events += report.events;
                    restarts += report.restarts;
                }
                Err(f) => {
                    failed += 1;
                    let shards_field = opts
                        .shards
                        .map(|n| format!(" shards={n}"))
                        .unwrap_or_default();
                    let _ = writeln!(
                        failures,
                        "CHAOS-FAIL seed={} profile={} spec={}{} oracle={} step={} detail={}",
                        f.seed,
                        f.profile.name(),
                        spec_name,
                        shards_field,
                        f.oracle,
                        f.step,
                        f.detail.replace('\n', " | "),
                    );
                    let _ = writeln!(
                        failures,
                        "CHAOS-TRACE seed={} {}",
                        f.seed,
                        format_trace(f.repro()),
                    );
                }
            }
        }
        println!(
            "profile {:<13} done ({} seeds, {:.1}s elapsed)",
            profile.name(),
            opts.seeds,
            started.elapsed().as_secs_f64()
        );
    }
    print!("{failures}");
    if let (Some(path), false) = (&opts.out, failures.is_empty()) {
        match std::fs::File::options()
            .create(true)
            .append(true)
            .open(path)
        {
            Ok(mut f) => {
                let _ = f.write_all(failures.as_bytes());
            }
            Err(e) => eprintln!("chaos: cannot write {path}: {e}"),
        }
    }
    println!(
        "chaos: {runs} runs, {failed} failures, {events} events accepted, \
         {restarts} crash-restarts, {:.1}s",
        started.elapsed().as_secs_f64()
    );
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
