//! Bench regression check: re-runs the plane benchmarks and compares
//! their *normalized* metrics against the checked-in baselines.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p cwf-bench --bin bench_check
//! ```
//!
//! Raw events/s numbers shift with the host, so the check compares
//! hardware-independent ratios only:
//!
//! * `BENCH_view_plane.json` — the incremental-maintenance `speedup`
//!   (rescan cost over plane cost);
//! * `BENCH_shard_plane.json` — each `plane_N_shards_events_per_sec`
//!   relative to `coordinator_events_per_sec` (the sharding overhead);
//! * `BENCH_dist_admission.json` — each durable plane throughput relative
//!   to `coordinator_wal_events_per_sec` (the distributed-admission
//!   overhead);
//! * `BENCH_reshard_admission.json` — admission throughput with a live
//!   split in flight relative to the idle map (the resharding tax);
//! * `BENCH_par_analysis.json` — the 4-thread min-scenario and boundedness
//!   speedups over the sequential oracle (the pooled-analysis overhead);
//! * `BENCH_provenance.json` — the explain-from-index speedup over a
//!   witness-reconstructing scenario search, and the cone-pruning node
//!   reduction on byte-identical minimum-scenario verdicts.
//!
//! A fresh ratio more than 25% below its baseline is a regression: the
//! check prints every comparison, restores the baseline files (the bench
//! binaries overwrite them in place), and exits non-zero if any ratio
//! regressed.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// Allowed slack: fresh ratio must be at least this fraction of baseline.
const FLOOR: f64 = 0.75;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Pulls the number out of a `"key": 12.5,`-style line. The bench files
/// are flat one-level JSON written by our own benches, so a hand-rolled
/// scan is enough (no JSON dependency).
fn metric(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    for line in json.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix(&needle) {
            let value = rest
                .trim_start_matches(':')
                .trim()
                .trim_end_matches(',')
                .trim_matches('"');
            return value.parse().ok();
        }
    }
    None
}

struct Check {
    label: String,
    baseline: f64,
    fresh: f64,
}

impl Check {
    fn regressed(&self) -> bool {
        self.fresh < self.baseline * FLOOR
    }
}

/// The normalized ratios of one bench file: `(label, numerator, denominator)`
/// key pairs; a ratio with no denominator key is the metric itself.
fn ratios(experiment: &str) -> Vec<(String, String, Option<String>)> {
    match experiment {
        "BENCH_view_plane.json" => vec![("speedup".into(), "speedup".into(), None)],
        "BENCH_shard_plane.json" => [1, 2, 4]
            .iter()
            .map(|n| {
                (
                    format!("plane_{n}_shards / coordinator"),
                    format!("plane_{n}_shards_events_per_sec"),
                    Some("coordinator_events_per_sec".into()),
                )
            })
            .collect(),
        "BENCH_dist_admission.json" => [1, 2, 4]
            .iter()
            .map(|n| {
                (
                    format!("durable plane_{n}_shards / coordinator+wal"),
                    format!("plane_{n}_shards_events_per_sec"),
                    Some("coordinator_wal_events_per_sec".into()),
                )
            })
            .collect(),
        "BENCH_reshard_admission.json" => vec![(
            "admission during split / idle".into(),
            "migrating_4_shards_events_per_sec".into(),
            Some("idle_4_shards_events_per_sec".into()),
        )],
        "BENCH_provenance.json" => vec![
            (
                "explain speedup over scenario search".into(),
                "explain_speedup".into(),
                None,
            ),
            (
                "cone node reduction".into(),
                "cone_node_reduction".into(),
                None,
            ),
        ],
        "BENCH_par_analysis.json" => vec![
            (
                "min-scenario speedup at 4 threads".into(),
                "min_scenario_speedup_4t".into(),
                None,
            ),
            (
                "boundedness speedup at 4 threads".into(),
                "boundedness_speedup_4t".into(),
                None,
            ),
        ],
        _ => Vec::new(),
    }
}

fn extract(json: &str, num: &str, den: &Option<String>) -> Option<f64> {
    let n = metric(json, num)?;
    match den {
        Some(d) => {
            let d = metric(json, d)?;
            (d > 0.0).then_some(n / d)
        }
        None => Some(n),
    }
}

fn main() -> ExitCode {
    let root = repo_root();
    let files = [
        ("BENCH_view_plane.json", "view_plane"),
        ("BENCH_shard_plane.json", "shard_plane"),
        ("BENCH_dist_admission.json", "dist_admission"),
        ("BENCH_reshard_admission.json", "reshard_admission"),
        ("BENCH_par_analysis.json", "par_analysis"),
        ("BENCH_provenance.json", "provenance"),
    ];
    // Snapshot the checked-in baselines before the benches overwrite them.
    let mut baselines = Vec::new();
    for (file, bench) in files {
        let path = root.join(file);
        match std::fs::read_to_string(&path) {
            Ok(s) => baselines.push((file, bench, path, s)),
            Err(e) => {
                eprintln!("bench_check: missing baseline {file}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Re-run the three benches (each rewrites its JSON at the repo root).
    for (file, bench, ..) in &baselines {
        println!("bench_check: running {bench} ...");
        let status = Command::new(env!("CARGO"))
            .args(["bench", "-q", "-p", "cwf-bench", "--bench", bench])
            .current_dir(&root)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("bench_check: bench {bench} exited with {s}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("bench_check: cannot run bench {bench} for {file}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Compare normalized ratios, then restore the baselines in place so
    // the working tree stays clean.
    let mut checks = Vec::new();
    let mut broken = false;
    for (file, _, path, baseline) in &baselines {
        let fresh = std::fs::read_to_string(path).unwrap_or_default();
        for (label, num, den) in ratios(file) {
            match (extract(baseline, &num, &den), extract(&fresh, &num, &den)) {
                (Some(b), Some(f)) => checks.push(Check {
                    label: format!("{file}: {label}"),
                    baseline: b,
                    fresh: f,
                }),
                _ => {
                    eprintln!("bench_check: cannot extract {label} from {file}");
                    broken = true;
                }
            }
        }
        if let Err(e) = std::fs::write(path, baseline) {
            eprintln!("bench_check: cannot restore baseline {file}: {e}");
            broken = true;
        }
    }
    let mut regressed = false;
    for c in &checks {
        let verdict = if c.regressed() {
            regressed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "bench_check: {:<55} baseline {:>7.3}  fresh {:>7.3}  ({:+.1}%)  {verdict}",
            c.label,
            c.baseline,
            c.fresh,
            (c.fresh / c.baseline - 1.0) * 100.0,
        );
    }
    if regressed || broken {
        eprintln!(
            "bench_check: FAILED (a normalized ratio fell more than {:.0}% below baseline)",
            (1.0 - FLOOR) * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!(
            "bench_check: all normalized ratios within {:.0}% of baseline",
            (1.0 - FLOOR) * 100.0
        );
        ExitCode::SUCCESS
    }
}
