//! The experiment runner: regenerates every experiment table of
//! EXPERIMENTS.md (E1–E12, DESIGN.md §5).
//!
//! ```sh
//! cargo run -p cwf-bench --release --bin experiments
//! ```
//!
//! The paper (PODS 2018 theory) has no empirical tables; each experiment
//! checks the *shape* its theorem predicts — who wins, how costs scale,
//! where bounds sit. Absolute numbers are machine-dependent.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use cwf_analysis::{
    check_h_bounded, check_transparent, expand_view_run, find_bound, mirror_run,
    sample_transparency_violation, synthesize_view_program, Limits,
};
use cwf_bench::{chain_observer, chain_program};
use cwf_core::{
    is_minimal_exact, is_one_minimal, minimal_faithful_scenario, one_minimal_scenario,
    search_min_scenario, tp_closure, EventSet, IncrementalExplainer, RunIndex, SearchOptions,
};
use cwf_design::{
    acyclicity_bound, in_t_runs, is_p_acyclic, p_fresh_candidates, TransparentEngine,
};
use cwf_engine::{Run, Simulator};
use cwf_model::{Governor, Verdict};
use cwf_workloads::{
    build_procurement_run, build_review_run, hiring_no_cfo, hitting_set_workload, transitive_spec,
    unsat_workload, Cnf, HittingSet,
};

fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

fn ms(d: Duration) -> String {
    format!("{:>10.3} ms", d.as_secs_f64() * 1e3)
}

fn header(id: &str, title: &str) {
    println!("\n============================================================");
    println!("{id} — {title}");
    println!("============================================================");
}

fn main() {
    e1_min_scenario();
    e2_minimality();
    e3_faithful();
    e4_incremental();
    e5_semiring();
    e6_boundedness();
    e7_transparency();
    e8_synthesis();
    e9_acyclicity();
    e10_enforcement();
    e11_engine();
    e12_negative_control();
    e13_tree_equivalence();
    e14_stage_transform();
    println!("\nall experiments completed");
}

fn e1_min_scenario() {
    header(
        "E1",
        "Theorem 3.3: minimum scenario is NP-complete (exact vs greedy)",
    );
    println!(
        "{:>4} {:>7} {:>9} {:>14} {:>14} {:>7}",
        "n", "run", "min(exact)", "exact", "greedy", "greedy_len"
    );
    for n in [3usize, 5, 7, 9] {
        let mut rng = StdRng::seed_from_u64(42);
        let hs = HittingSet::random(n, 3, 3, &mut rng);
        let w = hitting_set_workload(hs);
        let run = w.saturated_run();
        let (exact, t_exact) = time(|| {
            search_min_scenario(&run, w.p, &SearchOptions::default(), &Governor::unlimited())
                .into_value()
                .flatten()
                .expect("scenario exists")
        });
        let (greedy, t_greedy) = time(|| one_minimal_scenario(&run, w.p));
        println!(
            "{:>4} {:>7} {:>10} {} {} {:>7}",
            n,
            run.len(),
            exact.len(),
            ms(t_exact),
            ms(t_greedy),
            greedy.len()
        );
    }
    println!("shape: exact time grows exponentially in n; greedy stays polynomial;");
    println!("       greedy length ≥ exact length (1-minimal need not be minimum).");
}

fn e2_minimality() {
    header("E2", "Theorem 3.4: minimality testing is coNP-complete");
    println!("{:>4} {:>14} {:>14}", "n", "exact", "1-minimal");
    for n in [2usize, 4, 6, 8] {
        let mut clauses = vec![vec![1i32]];
        for i in 1..n {
            clauses.push(vec![-(i as i32), i as i32 + 1]);
        }
        clauses.push(vec![-(n as i32)]);
        let cnf = Cnf { n, clauses };
        assert!(!cnf.satisfiable());
        let w = unsat_workload(cnf);
        let run = w.canonical_run();
        let full = EventSet::full(run.len());
        let (r_exact, t_exact) =
            time(|| is_minimal_exact(&run, w.p, &full, &Governor::unlimited()));
        assert_eq!(r_exact, Verdict::Done(true));
        let (r_one, t_one) = time(|| is_one_minimal(&run, w.p, &full));
        assert!(r_one);
        println!("{:>4} {} {}", n, ms(t_exact), ms(t_one));
    }
    println!("shape: exact grows exponentially with the CNF variables (UNSAT check);");
    println!("       1-minimality stays polynomial.");
}

fn e3_faithful() {
    header("E3", "Theorem 4.7: minimal faithful scenario in PTIME");
    println!(
        "{:>9} {:>9} {:>14} {:>10}",
        "requests", "events", "extract", "kept"
    );
    for requests in [5usize, 10, 20, 40, 80] {
        let mut rng = StdRng::seed_from_u64(7);
        let p = build_procurement_run(requests, 1, &mut rng);
        let (expl, t) = time(|| minimal_faithful_scenario(&p.run, p.emp));
        println!(
            "{:>9} {:>9} {} {:>10}",
            requests,
            p.run.len(),
            ms(t),
            expl.events.len()
        );
    }
    println!("shape: extraction time grows polynomially (near-linearly) with run length.");
}

fn e4_incremental() {
    header(
        "E4",
        "Section 4: incremental maintenance vs recompute-per-event",
    );
    println!(
        "{:>9} {:>9} {:>14} {:>14} {:>8}",
        "requests", "events", "incremental", "recompute", "speedup"
    );
    for requests in [5usize, 10, 20, 40] {
        let mut rng = StdRng::seed_from_u64(11);
        let p = build_procurement_run(requests, 1, &mut rng);
        let (_, t_inc) = time(|| {
            let mut inc = IncrementalExplainer::new(Run::new(p.run.spec_arc()), p.emp);
            for i in 0..p.run.len() {
                inc.push(p.run.event(i).clone()).unwrap();
            }
            inc.minimal_events().len()
        });
        let (_, t_scratch) = time(|| {
            let mut run = Run::new(p.run.spec_arc());
            let mut last = 0;
            for i in 0..p.run.len() {
                run.push(p.run.event(i).clone()).unwrap();
                last = minimal_faithful_scenario(&run, p.emp).events.len();
            }
            last
        });
        println!(
            "{:>9} {:>9} {} {} {:>7.1}x",
            requests,
            p.run.len(),
            ms(t_inc),
            ms(t_scratch),
            t_scratch.as_secs_f64() / t_inc.as_secs_f64()
        );
    }
    println!("shape: the incremental/recompute gap widens with run length.");
}

fn e5_semiring() {
    header("E5", "Theorem 4.8: semiring operations scale linearly");
    println!(
        "{:>7} {:>14} {:>14} {:>14}",
        "events", "closure", "union", "intersect"
    );
    for len in [50usize, 100, 200, 400] {
        let mut rng = StdRng::seed_from_u64(5);
        let params = cwf_workloads::RandomSpecParams {
            n_rels: 10,
            n_rules: 20,
            ..Default::default()
        };
        let w = cwf_workloads::random_propositional_spec(&params, &mut rng);
        let run = cwf_workloads::random_run(&w.spec, len, 1);
        if run.is_empty() {
            continue;
        }
        let index = RunIndex::build(&run);
        let n = run.len();
        let a = tp_closure(&run, &index, w.observer, &EventSet::from_iter(n, [0]));
        let b = tp_closure(&run, &index, w.observer, &EventSet::from_iter(n, [n - 1]));
        let (_, t_cl) =
            time(|| tp_closure(&run, &index, w.observer, &EventSet::from_iter(n, [n / 2])));
        let (_, t_u) = time(|| a.union(&b));
        let (_, t_i) = time(|| a.intersection(&b));
        println!("{:>7} {} {} {}", n, ms(t_cl), ms(t_u), ms(t_i));
    }
    println!("shape: all three linear in the run length (bitset + worklist).");
}

fn e6_boundedness() {
    header("E6", "Theorem 5.10: deciding h-boundedness (PSPACE)");
    let limits = Limits {
        max_nodes: 200_000_000,
        max_tuples_per_rel: 1,
        extra_constants: Some(0),
    };
    println!("{:>3} {:>14} {:>14}", "k", "refute h=k", "confirm h=k+1");
    for k in [1usize, 2, 3, 4] {
        let spec = chain_program(k);
        let p = chain_observer(&spec);
        let (d, t_ref) = time(|| check_h_bounded(&spec, p, k, &limits));
        assert!(d.counter_example().is_some());
        let (d2, t_conf) = time(|| check_h_bounded(&spec, p, k + 1, &limits));
        assert!(d2.holds());
        println!("{:>3} {} {}", k, ms(t_ref), ms(t_conf));
    }
    println!("shape: cost grows exponentially with the chain length (search over C_h+1).");
}

fn e7_transparency() {
    header(
        "E7",
        "Theorem 5.11: deciding transparency of h-bounded programs",
    );
    let spec = hiring_no_cfo();
    let sue = spec.collab().peer("sue").unwrap();
    println!(
        "{:>12} {:>14} {:>9}",
        "pool extras", "exhaustive", "verdict"
    );
    for extra in [3usize, 4, 5, 6] {
        let limits = Limits {
            max_nodes: 500_000_000,
            max_tuples_per_rel: 1,
            extra_constants: Some(extra),
        };
        let (d, t) = time(|| check_transparent(&spec, sue, 2, &limits));
        println!(
            "{:>12} {} {:>9}",
            extra,
            ms(t),
            if d.counter_example().is_some() {
                "refuted"
            } else {
                "?"
            }
        );
    }
    let (v, t) = time(|| sample_transparency_violation(&spec, sue, 40, 6, 7));
    println!(
        "{:>12} {} {:>9}",
        "sampled",
        ms(t),
        if v.is_some() { "refuted" } else { "?" }
    );
    println!("shape: exhaustive cost grows steeply with the pool; sampling is cheap.");
}

fn e8_synthesis() {
    header("E8", "Theorem 5.13: view-program synthesis + validation");
    let spec = hiring_no_cfo();
    let sue = spec.collab().peer("sue").unwrap();
    let limits = Limits {
        max_nodes: 500_000_000,
        max_tuples_per_rel: 1,
        extra_constants: Some(2),
    };
    println!(
        "{:>3} {:>14} {:>8} {:>9}",
        "h", "synthesize", "ω-rules", "skipped"
    );
    let mut keep = None;
    for h in [1usize, 2, 3] {
        let (synth, t) = time(|| synthesize_view_program(&spec, sue, h, &limits).unwrap());
        println!(
            "{:>3} {} {:>8} {:>9}",
            h,
            ms(t),
            synth.omega_rules.len(),
            synth.skipped_delete_reinsert
        );
        if h == 2 {
            keep = Some(synth);
        }
    }
    let synth = keep.expect("h=2 synthesis kept");
    // Completeness + soundness over sampled runs.
    let mut ok_mirror = 0;
    let mut ok_expand = 0;
    for seed in 0..20u64 {
        let mut sim = Simulator::new(Run::new(Arc::clone(&spec)), StdRng::seed_from_u64(seed));
        sim.steps(8).unwrap();
        if mirror_run(&synth, &sim.into_run()).is_ok() {
            ok_mirror += 1;
        }
        let mut sim = Simulator::new(
            Run::new(Arc::clone(&synth.view_spec)),
            StdRng::seed_from_u64(seed),
        );
        sim.steps(5).unwrap();
        if expand_view_run(&synth, &spec, &sim.into_run()).is_ok() {
            ok_expand += 1;
        }
    }
    println!(
        "completeness (mirror): {ok_mirror}/20 runs   soundness (expand): {ok_expand}/20 runs"
    );
    println!("shape: size/time grow with h; sampled soundness & completeness are total.");
}

fn e9_acyclicity() {
    header(
        "E9",
        "Theorem 6.3: the (ab+1)^d bound vs the measured bound",
    );
    let limits = Limits {
        max_nodes: 200_000_000,
        max_tuples_per_rel: 1,
        extra_constants: Some(0),
    };
    println!(
        "{:>3} {:>9} {:>12} {:>10} {:>14}",
        "k", "acyclic", "bound", "measured", "decide time"
    );
    for k in [1usize, 2, 3] {
        let spec = chain_program(k);
        let p = chain_observer(&spec);
        assert!(is_p_acyclic(&spec, p));
        let bound = acyclicity_bound(&spec);
        let (measured, t) = time(|| find_bound(&spec, p, 6, &limits).unwrap());
        println!(
            "{:>3} {:>9} {:>12} {:>10} {}",
            k,
            "yes",
            bound,
            measured,
            ms(t)
        );
    }
    println!("shape: the static bound dominates the measured bound by orders of magnitude;");
    println!("       the p-graph analysis itself is effectively free.");
}

fn e10_enforcement() {
    header(
        "E10",
        "Theorem 6.7: enforcement engine overhead & filtering",
    );
    let spec = hiring_no_cfo();
    let sue = spec.collab().peer("sue").unwrap();
    println!(
        "{:>7} {:>14} {:>14} {:>9}",
        "cycles", "plain", "enforced", "overhead"
    );
    for cycles in [10usize, 25, 50, 100] {
        let mut events = Vec::new();
        for i in 0..cycles {
            let x = cwf_model::Value::Fresh(10_000 + i as u64);
            for name in ["clear", "approve", "hire"] {
                let rid = spec.program().rule_by_name(name).unwrap();
                let mut b = cwf_engine::Bindings::empty(1);
                b.set(cwf_lang::VarId(0), x);
                events.push(cwf_engine::Event::new(&spec, rid, b).unwrap());
            }
        }
        let (_, t_plain) = time(|| {
            let mut run = Run::new(Arc::clone(&spec));
            for e in &events {
                run.push(e.clone()).unwrap();
            }
            run.len()
        });
        let (_, t_enf) = time(|| {
            let mut eng = TransparentEngine::new(Arc::clone(&spec), sue, 3);
            for e in &events {
                eng.push(e.clone()).unwrap();
            }
            eng.run().len()
        });
        println!(
            "{:>7} {} {} {:>8.2}x",
            cycles,
            ms(t_plain),
            ms(t_enf),
            t_enf.as_secs_f64() / t_plain.as_secs_f64()
        );
    }
    // Filtering: a stale-approval run is blocked and the accepted prefix is
    // in tRuns.
    let mut eng = TransparentEngine::new(Arc::clone(&spec), sue, 3);
    let fire = |eng: &mut TransparentEngine, name: &str, x: u64| {
        let rid = spec.program().rule_by_name(name).unwrap();
        let mut b = cwf_engine::Bindings::empty(1);
        b.set(cwf_lang::VarId(0), cwf_model::Value::Fresh(x));
        eng.push(cwf_engine::Event::new(&spec, rid, b).unwrap())
            .unwrap()
    };
    fire(&mut eng, "clear", 1);
    fire(&mut eng, "approve", 1);
    fire(&mut eng, "clear", 2);
    let blocked = !fire(&mut eng, "hire", 1).applied();
    let run = eng.into_run();
    let candidates = p_fresh_candidates(&run, sue);
    println!(
        "stale-approval hire blocked: {blocked}; accepted run ∈ tRuns: {}",
        in_t_runs(&run, sue, 3, &candidates)
    );
    println!("shape: constant-factor overhead; non-transparent runs are filtered.");
}

fn e11_engine() {
    header("E11", "substrate: engine throughput");
    println!(
        "{:>9} {:>9} {:>14} {:>12}",
        "requests", "events", "build", "events/s"
    );
    for requests in [10usize, 20, 40, 80] {
        let (built, t) = time(|| {
            let mut rng = StdRng::seed_from_u64(13);
            build_procurement_run(requests, 1, &mut rng)
        });
        let eps = built.run.len() as f64 / t.as_secs_f64();
        println!(
            "{:>9} {:>9} {} {:>12.0}",
            requests,
            built.run.len(),
            ms(t),
            eps
        );
    }
    let mut rng = StdRng::seed_from_u64(21);
    let r = build_review_run(20, 2, &mut rng);
    println!(
        "review workload: {} events, author sees {}",
        r.run.len(),
        r.run.view(r.author).len()
    );
}

fn e13_tree_equivalence() {
    header(
        "E13",
        "Remark 5.2: tree equivalence of synthesized view programs",
    );
    use cwf_analysis::{sample_tree_divergence, synthesize_view_program};
    let limits = Limits {
        max_nodes: 100_000_000,
        max_tuples_per_rel: 1,
        extra_constants: Some(2),
    };
    // Positive case: the guarded hiring workflow.
    let spec = hiring_no_cfo();
    let sue = spec.collab().peer("sue").unwrap();
    let synth = synthesize_view_program(&spec, sue, 2, &limits).unwrap();
    let (d, t) = time(|| sample_tree_divergence(&spec, &synth, sue, 2, &limits, 10, 6, 3));
    println!(
        "hiring (guarded):   divergence = {:<5} {}",
        d.is_some(),
        ms(t)
    );
    // Negative case: an invisible lock rules out a visible emission.
    let lock_spec = Arc::new(
        cwf_lang::parse_workflow(
            r#"
            schema { Req(K); Lock(K); Out(K); }
            peers {
                q sees Req(*), Lock(*), Out(*);
                p sees Req(*), Out(*);
            }
            rules {
                req @ p: +Req(x) :- ;
                lock @ q: +Lock(x) :- Req(x), not key Lock(x);
                emit @ q: +Out(x) :- Req(x), not key Lock(x), not key Out(x);
            }
            "#,
        )
        .unwrap(),
    );
    let p = lock_spec.collab().peer("p").unwrap();
    let synth2 = synthesize_view_program(&lock_spec, p, 1, &limits).unwrap();
    let (d2, t2) = time(|| sample_tree_divergence(&lock_spec, &synth2, p, 1, &limits, 20, 6, 11));
    println!(
        "lock (hidden choice): divergence = {:<5} {}",
        d2.is_some(),
        ms(t2)
    );
    println!("shape: transparent input ⇒ trees agree on samples; hidden choices diverge.");
}

fn e14_stage_transform() {
    header(
        "E14",
        "Section 6: the mechanical stage-discipline transform",
    );
    use cwf_design::add_stage_discipline;
    let raw = Arc::new(
        cwf_lang::parse_workflow(
            r#"
            schema { Cleared(K); Approved(K); Hire(K); }
            peers {
                hr sees Cleared(*), Approved(*), Hire(*);
                ceo sees Cleared(*), Approved(*), Hire(*);
                sue sees Cleared(*), Hire(*);
            }
            rules {
                clear @ hr: +Cleared(x) :- ;
                approve @ ceo: +Approved(x) :- Cleared(x);
                hire @ hr: +Hire(x) :- Approved(x);
            }
            "#,
        )
        .unwrap(),
    );
    let sue = raw.collab().peer("sue").unwrap();
    let (staged, t) = time(|| add_stage_discipline(&raw, sue).unwrap());
    println!(
        "transform: {} — rules {} → {}, relations {} → {}",
        ms(t),
        raw.program().rules().len(),
        staged.spec.program().rules().len(),
        raw.collab().schema().len(),
        staged.spec.collab().schema().len()
    );
    // Transparency status before/after (sampled falsifier).
    let (before, tb) = time(|| sample_transparency_violation(&raw, sue, 40, 6, 5).is_some());
    let staged_arc = Arc::new(staged.spec.clone());
    let (after, ta) = time(|| sample_transparency_violation(&staged_arc, sue, 25, 8, 5).is_some());
    println!(
        "sampled violation: raw = {before} ({}), staged = {after} ({})",
        ms(tb),
        ms(ta)
    );
    println!("shape: the transform removes the sampled transparency violations at the");
    println!("       cost of one Stage relation, stage guards, and re-keyed invisible state.");
}

fn e12_negative_control() {
    header(
        "E12",
        "Prop 5.3 / Thm 5.4: no view program for the closure workflow",
    );
    let spec = transitive_spec();
    let p = spec.collab().peer("p").unwrap();
    let limits = Limits {
        max_nodes: 100_000_000,
        max_tuples_per_rel: 1,
        extra_constants: Some(1),
    };
    println!("{:>3} {:>16} {:>14}", "h", "h-bounded?", "decide time");
    for h in [1usize, 2] {
        let (d, t) = time(|| check_h_bounded(&spec, p, h, &limits));
        println!(
            "{:>3} {:>16} {}",
            h,
            if d.counter_example().is_some() {
                "refuted"
            } else {
                "?"
            },
            ms(t)
        );
    }
    println!("shape: every candidate h is refuted — consistent with the impossibility");
    println!("       result (unbounded silent-relevant chains ⇒ no view program).");
}
