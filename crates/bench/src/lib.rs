//! # cwf-bench — shared fixtures for the benchmark harness
//!
//! Each Criterion bench under `benches/` regenerates one experiment of
//! DESIGN.md §5 (E1–E12); the `experiments` binary prints the corresponding
//! tables for EXPERIMENTS.md. This library hosts the fixtures shared by
//! both.

#![forbid(unsafe_code)]

use std::sync::Arc;

use cwf_engine::Run;
use cwf_lang::{parse_workflow, WorkflowSpec};
use cwf_model::PeerId;

/// A linear silent-chain program `s_0 → … → s_{k−1} → Out` where only `Out`
/// is visible to `p` — its minimal silent-relevant chain has length `k + 1`,
/// so it is `(k+1)`-bounded and not `k`-bounded (fixture for E6/E9).
pub fn chain_program(k: usize) -> Arc<WorkflowSpec> {
    let mut schema = String::new();
    let mut rules = String::new();
    let mut sees = String::new();
    for i in 0..k {
        schema.push_str(&format!("L{i}(K); "));
        sees.push_str(&format!("L{i}(*), "));
        if i == 0 {
            rules.push_str("s0 @ q: +L0(0) :- ;\n");
        } else {
            rules.push_str(&format!("s{i} @ q: +L{i}(0) :- L{}(0);\n", i - 1));
        }
    }
    schema.push_str("Out(K);");
    let last_body = if k == 0 {
        String::new()
    } else {
        format!("L{}(0)", k - 1)
    };
    rules.push_str(&format!("out @ q: +Out(0) :- {last_body};\n"));
    let src = format!(
        "schema {{ {schema} }}\n\
         peers {{ q sees {sees}Out(*); p sees Out(*); }}\n\
         rules {{ {rules} }}"
    );
    Arc::new(parse_workflow(&src).expect("chain program parses"))
}

/// The observer peer of a [`chain_program`].
pub fn chain_observer(spec: &WorkflowSpec) -> PeerId {
    spec.collab().peer("p").expect("observer exists")
}

/// Fires the full chain of a [`chain_program`] as one run.
pub fn chain_run(spec: &Arc<WorkflowSpec>, k: usize) -> Run {
    let mut run = Run::new(Arc::clone(spec));
    for i in 0..k {
        let rid = spec.program().rule_by_name(&format!("s{i}")).unwrap();
        run.push(cwf_engine::Event::new(spec, rid, cwf_engine::Bindings::empty(0)).unwrap())
            .unwrap();
    }
    let rid = spec.program().rule_by_name("out").unwrap();
    run.push(cwf_engine::Event::new(spec, rid, cwf_engine::Bindings::empty(0)).unwrap())
        .unwrap();
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_program_shapes() {
        for k in [0usize, 1, 3] {
            let spec = chain_program(k);
            assert_eq!(spec.program().rules().len(), k + 1);
            let run = chain_run(&spec, k);
            assert_eq!(run.len(), k + 1);
            let p = chain_observer(&spec);
            assert_eq!(run.visible_events(p), vec![k]);
        }
    }
}
