//! E11 — substrate sanity: engine throughput and chase cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use cwf_model::{chase_with, Instance, RelSchema, Schema, Tuple, Value};
use cwf_workloads::build_procurement_run;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_engine_throughput");
    group.sample_size(10);
    for requests in [10usize, 20, 40] {
        let mut rng = StdRng::seed_from_u64(13);
        let built = build_procurement_run(requests, 1, &mut rng);
        let n = built.run.len() as u64;
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(
            BenchmarkId::new("procurement_run", n),
            &requests,
            |b, &r| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(13);
                    build_procurement_run(r, 1, &mut rng).run.len()
                })
            },
        );
    }
    // Chase micro-benchmark: merging into instances of growing size.
    let schema = Schema::from_relations([RelSchema::new("R", ["K", "A", "B"]).unwrap()]).unwrap();
    let r = schema.rel("R").unwrap();
    for size in [100usize, 1000, 10_000] {
        let mut inst = Instance::empty(&schema);
        for i in 0..size {
            inst.rel_mut(r)
                .insert(Tuple::new([
                    Value::int(i as i64),
                    Value::str("a"),
                    Value::Null,
                ]))
                .unwrap();
        }
        group.bench_with_input(BenchmarkId::new("chase_with", size), &size, |b, &s| {
            b.iter(|| {
                chase_with(
                    &schema,
                    &inst,
                    r,
                    Tuple::new([Value::int((s / 2) as i64), Value::Null, Value::str("b")]),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
