//! E16 — incremental view plane vs from-scratch view rescans.
//!
//! Builds a long modification-heavy run over a 10-peer workflow (full views,
//! non-key-attribute `⊥` selections, and six constant shards), then measures
//! the cost of producing every peer's view at *every* prefix two ways:
//!
//! * **plane** — bootstrap each peer once and roll the stored per-event
//!   [`ViewDelta`]s forward (`peer_delta` + `apply_to_view`), exactly what
//!   `Run::push` and the coordinator do in production;
//! * **rescan** — recompute `CollabSchema::view_of` from scratch for every
//!   `(step, peer)` pair, what the engine did before the view plane.
//!
//! Besides the criterion-style timings, the bench writes the measured totals
//! and the speedup to `BENCH_view_plane.json` at the repository root
//! (consumed by EXPERIMENTS.md E16). The acceptance bar is a ≥5× speedup.

use std::time::Instant;

use criterion::black_box;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cwf_engine::{candidates, complete, materialize_view, peer_delta, Run};
use cwf_lang::parse_workflow;
use cwf_model::{CollabSchema, PeerId};

use std::sync::Arc;

const STEPS: usize = 240;
const WARMUP: usize = 2;
const ITERS: usize = 20;

/// Ten peers over one relation: two full views, two `⊥`-selections on
/// non-key attributes (tuples leave `intake` when claimed and leave
/// `unsorted` when tagged), and six constant shards (tuples enter `v{j}`
/// when tagged `"v{j}"`). The rules only null-fill, so almost every event
/// past the opens is an in-place modification.
fn bench_spec() -> Arc<cwf_lang::WorkflowSpec> {
    Arc::new(
        parse_workflow(
            r#"
            schema { Item(K, Owner, Val); }
            peers {
                lead sees Item(*);
                audit sees Item(*);
                intake sees Item(K, Val) where Owner = null;
                unsorted sees Item(K) where Val = null;
                v0 sees Item(K, Owner) where Val = "v0";
                v1 sees Item(K, Owner) where Val = "v1";
                v2 sees Item(K, Owner) where Val = "v2";
                v3 sees Item(K, Owner) where Val = "v3";
                v4 sees Item(K, Owner) where Val = "v4";
                v5 sees Item(K, Owner) where Val = "v5";
            }
            rules {
                open @ lead: +Item(t, null, null) :- ;
                claim @ lead: +Item(t, o, null) :- Item(t, null, null);
                tag0 @ lead: +Item(t, null, "v0") :- Item(t, o, null), o != null;
                tag1 @ lead: +Item(t, null, "v1") :- Item(t, o, null), o != null;
                tag2 @ lead: +Item(t, null, "v2") :- Item(t, o, null), o != null;
                tag3 @ lead: +Item(t, null, "v3") :- Item(t, o, null), o != null;
                tag4 @ lead: +Item(t, null, "v4") :- Item(t, o, null), o != null;
                tag5 @ lead: +Item(t, null, "v5") :- Item(t, o, null), o != null;
                prune @ lead: -key Item(t) :- Item(t, o, "v5");
            }
            "#,
        )
        .expect("the bench spec parses"),
    )
}

/// Drives a random modification-heavy workload to exactly `STEPS` accepted
/// events (every third step forces an `open` so the instance keeps growing).
fn build_run() -> Run {
    let spec = bench_spec();
    let mut run = Run::new(Arc::clone(&spec));
    let mut rng = StdRng::seed_from_u64(16);
    let open = spec
        .program()
        .rule_ids()
        .find(|&r| spec.program().rule(r).name == "open")
        .expect("the spec has an open rule");
    let mut attempts = 0usize;
    while run.len() < STEPS {
        attempts += 1;
        assert!(attempts < STEPS * 20, "workload generation stalled");
        let cands = candidates(&run);
        let cand = if run.len().is_multiple_of(3) {
            cands
                .iter()
                .find(|c| c.rule == open)
                .expect("open is always fireable")
                .clone()
        } else {
            cands[rng.gen_range(0..cands.len())].clone()
        };
        let event = complete(&mut run, &cand);
        let _ = run.push(event); // chase conflicts / subsumption: just retry
    }
    run
}

/// Every peer's view at every prefix via the incremental plane: one
/// bootstrap per peer, then one delta application per accepted event.
fn plane_pass(collab: &CollabSchema, run: &Run, peers: &[PeerId]) -> usize {
    let mut checksum = 0usize;
    for &p in peers {
        let mut view = materialize_view(collab, p, run.initial());
        for i in 0..run.len() {
            peer_delta(collab, p, run.diff(i), run.instance(i)).apply_to_view(&mut view);
            checksum += view.total_tuples();
        }
    }
    checksum
}

/// The same views by full rescans: `view_of` from scratch per (step, peer).
fn rescan_pass(collab: &CollabSchema, run: &Run, peers: &[PeerId]) -> usize {
    let mut checksum = 0usize;
    for &p in peers {
        for i in 0..run.len() {
            checksum += collab.view_of(run.instance(i), p).total_tuples();
        }
    }
    checksum
}

fn time_passes<F: FnMut() -> usize>(mut f: F) -> (f64, usize) {
    let mut checksum = 0;
    for _ in 0..WARMUP {
        checksum = black_box(f());
    }
    let start = Instant::now();
    for _ in 0..ITERS {
        checksum = black_box(f());
    }
    (start.elapsed().as_secs_f64() / ITERS as f64, checksum)
}

fn main() {
    let run = build_run();
    let collab = run.spec().collab();
    let peers: Vec<PeerId> = collab.peer_ids().collect();
    let final_tuples = run.current().total_tuples();
    let modified: usize = (0..run.len()).map(|i| run.diff(i).modified.len()).sum();

    let (plane_s, plane_sum) = time_passes(|| plane_pass(collab, &run, &peers));
    let (rescan_s, rescan_sum) = time_passes(|| rescan_pass(collab, &run, &peers));
    assert_eq!(
        plane_sum, rescan_sum,
        "both strategies must produce identical views at every prefix"
    );

    let pairs = (run.len() * peers.len()) as f64;
    let speedup = rescan_s / plane_s;
    println!(
        "E16_view_plane/plane   ... {:>10.0} ns/iter ({:.1} ns per step×peer)",
        plane_s * 1e9,
        plane_s * 1e9 / pairs
    );
    println!(
        "E16_view_plane/rescan  ... {:>10.0} ns/iter ({:.1} ns per step×peer)",
        rescan_s * 1e9,
        rescan_s * 1e9 / pairs
    );
    println!(
        "E16_view_plane: {} steps, {} peers, {} tuples final, {} in-place \
         modifications, speedup {:.1}x",
        run.len(),
        peers.len(),
        final_tuples,
        modified,
        speedup
    );

    let json = format!(
        "{{\n  \"experiment\": \"E16_view_plane\",\n  \"steps\": {},\n  \
         \"peers\": {},\n  \"final_tuples\": {},\n  \"modified_tuples\": {},\n  \
         \"plane_ms_per_pass\": {:.3},\n  \"rescan_ms_per_pass\": {:.3},\n  \
         \"plane_ns_per_step_peer\": {:.1},\n  \"rescan_ns_per_step_peer\": {:.1},\n  \
         \"speedup\": {:.2}\n}}\n",
        run.len(),
        peers.len(),
        final_tuples,
        modified,
        plane_s * 1e3,
        rescan_s * 1e3,
        plane_s * 1e9 / pairs,
        rescan_s * 1e9 / pairs,
        speedup
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_view_plane.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("E16_view_plane: cannot write {path}: {e}");
    }
}
