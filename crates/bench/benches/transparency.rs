//! E7 — Theorem 5.11: deciding transparency of h-bounded programs.
//!
//! Cost on the hiring program (Example 5.7) grows with the constant-pool
//! size; the sampled falsifier is orders of magnitude cheaper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cwf_analysis::{check_transparent, sample_transparency_violation, Limits};
use cwf_workloads::hiring_no_cfo;

fn bench_transparency(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_transparency");
    group.sample_size(10);
    let spec = hiring_no_cfo();
    let sue = spec.collab().peer("sue").unwrap();
    for extra in [3usize, 4, 5] {
        let limits = Limits {
            max_nodes: 100_000_000,
            max_tuples_per_rel: 1,
            extra_constants: Some(extra),
        };
        group.bench_with_input(BenchmarkId::new("exhaustive", extra), &extra, |b, _| {
            b.iter(|| {
                assert!(check_transparent(&spec, sue, 2, &limits)
                    .counter_example()
                    .is_some())
            })
        });
    }
    group.bench_function("sampled_falsifier", |b| {
        b.iter(|| sample_transparency_violation(&spec, sue, 40, 6, 7).is_some())
    });
    group.finish();
}

criterion_group!(benches, bench_transparency);
criterion_main!(benches);
