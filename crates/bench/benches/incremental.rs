//! E4 — incremental maintenance (end of Section 4): maintaining the minimal
//! faithful scenario per event beats recomputing it from scratch after
//! every event, with a gap that widens with the run length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use cwf_core::{minimal_faithful_scenario, IncrementalExplainer};
use cwf_engine::Run;
use cwf_workloads::build_procurement_run;

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4_incremental");
    group.sample_size(10);
    for requests in [5usize, 10, 20] {
        let mut rng = StdRng::seed_from_u64(11);
        let p = build_procurement_run(requests, 1, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("incremental", p.run.len()),
            &requests,
            |b, _| {
                b.iter(|| {
                    let mut inc = IncrementalExplainer::new(Run::new(p.run.spec_arc()), p.emp);
                    for i in 0..p.run.len() {
                        inc.push(p.run.event(i).clone()).unwrap();
                    }
                    inc.minimal_events().len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("recompute_each_event", p.run.len()),
            &requests,
            |b, _| {
                b.iter(|| {
                    // From-scratch after every event: replay prefixes.
                    let mut run = Run::new(p.run.spec_arc());
                    let mut last = 0;
                    for i in 0..p.run.len() {
                        run.push(p.run.event(i).clone()).unwrap();
                        last = minimal_faithful_scenario(&run, p.emp).events.len();
                    }
                    last
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
