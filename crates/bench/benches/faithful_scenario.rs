//! E3 — Theorem 4.7: the minimal faithful scenario is computable in
//! polynomial time.
//!
//! Extraction time over procurement runs grows polynomially (near-linearly)
//! with the run length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use cwf_core::minimal_faithful_scenario;
use cwf_workloads::build_procurement_run;

fn bench_faithful(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_faithful_scenario");
    group.sample_size(10);
    for requests in [5usize, 10, 20, 40] {
        let mut rng = StdRng::seed_from_u64(7);
        let p = build_procurement_run(requests, 1, &mut rng);
        group.throughput(Throughput::Elements(p.run.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("events", p.run.len()),
            &requests,
            |b, _| b.iter(|| minimal_faithful_scenario(&p.run, p.emp)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_faithful);
criterion_main!(benches);
