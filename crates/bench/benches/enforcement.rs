//! E10 — Theorem 6.7: run-time enforcement overhead.
//!
//! Driving the hiring workflow through the TransparentEngine costs a small
//! constant factor over the plain engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

use cwf_design::TransparentEngine;
use cwf_engine::{Bindings, Event, Run};
use cwf_lang::VarId;
use cwf_model::Value;
use cwf_workloads::hiring_no_cfo;

fn events(spec: &Arc<cwf_lang::WorkflowSpec>, cycles: usize) -> Vec<Event> {
    let mut out = Vec::new();
    for i in 0..cycles {
        let x = Value::Fresh(10_000 + i as u64);
        for name in ["clear", "approve", "hire"] {
            let rid = spec.program().rule_by_name(name).unwrap();
            let mut b = Bindings::empty(1);
            b.set(VarId(0), x);
            out.push(Event::new(spec, rid, b).unwrap());
        }
    }
    out
}

fn bench_enforcement(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_enforcement");
    let spec = hiring_no_cfo();
    let sue = spec.collab().peer("sue").unwrap();
    for cycles in [10usize, 25, 50] {
        let evs = events(&spec, cycles);
        group.bench_with_input(BenchmarkId::new("plain_run", cycles), &cycles, |b, _| {
            b.iter(|| {
                let mut run = Run::new(Arc::clone(&spec));
                for e in &evs {
                    run.push(e.clone()).unwrap();
                }
                run.len()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("transparent_engine", cycles),
            &cycles,
            |b, _| {
                b.iter(|| {
                    let mut eng = TransparentEngine::new(Arc::clone(&spec), sue, 3);
                    for e in &evs {
                        eng.push(e.clone()).unwrap();
                    }
                    eng.run().len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_enforcement);
criterion_main!(benches);
