//! E8 — Theorem 5.13: view-program synthesis.
//!
//! Synthesis time (and, in the experiments table, program size) grows with
//! the bound h; mirroring runs through the synthesized program (the
//! completeness direction, with provenance) is cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

use cwf_analysis::{mirror_run, synthesize_view_program, Limits};
use cwf_engine::{Run, Simulator};
use cwf_workloads::hiring_no_cfo;

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8_synthesis");
    group.sample_size(10);
    let spec = hiring_no_cfo();
    let sue = spec.collab().peer("sue").unwrap();
    let limits = Limits {
        max_nodes: 100_000_000,
        max_tuples_per_rel: 1,
        extra_constants: Some(2),
    };
    for h in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::new("synthesize", h), &h, |b, _| {
            b.iter(|| synthesize_view_program(&spec, sue, h, &limits).unwrap())
        });
    }
    let synth = synthesize_view_program(&spec, sue, 2, &limits).unwrap();
    let mut sim = Simulator::new(Run::new(Arc::clone(&spec)), StdRng::seed_from_u64(3));
    sim.steps(10).unwrap();
    let run = sim.into_run();
    group.bench_function("mirror_run", |b| {
        b.iter(|| mirror_run(&synth, &run).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
