//! E6 — Theorem 5.10: deciding h-boundedness (PSPACE).
//!
//! Decision cost over the silent-chain family grows exponentially with the
//! chain length (the search space over C_{h+1} explodes), matching the
//! theorem's complexity shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cwf_analysis::{check_h_bounded, Limits};
use cwf_bench::{chain_observer, chain_program};

fn bench_boundedness(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6_boundedness");
    group.sample_size(10);
    let limits = Limits {
        max_nodes: 50_000_000,
        max_tuples_per_rel: 1,
        extra_constants: Some(0),
    };
    for k in [1usize, 2, 3] {
        let spec = chain_program(k);
        let p = chain_observer(&spec);
        // Refute (k)-boundedness: find the length-(k+1) chain.
        group.bench_with_input(BenchmarkId::new("refute", k), &k, |b, _| {
            b.iter(|| {
                assert!(check_h_bounded(&spec, p, k, &limits)
                    .counter_example()
                    .is_some())
            })
        });
        // Confirm (k+1)-boundedness: exhaust the space.
        group.bench_with_input(BenchmarkId::new("confirm", k), &k, |b, _| {
            b.iter(|| assert!(check_h_bounded(&spec, p, k + 1, &limits).holds()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_boundedness);
criterion_main!(benches);
