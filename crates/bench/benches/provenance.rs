//! E22 — the provenance plane pays for itself twice.
//!
//! Builds a run whose observer peer sees only the tip of a small derivation
//! chain buried in unrelated churn, then measures:
//!
//! * **explain** — answering "why does the peer see this fact?" from the
//!   maintained provenance index ([`Run::explain_fact`]) versus the
//!   pre-provenance way: a minimum-scenario search that reconstructs a
//!   witness set from scratch. The ratio is `explain_speedup`.
//! * **cone pruning** — the same minimum-scenario search with the
//!   provenance-cone restriction on (the default) and off
//!   ([`SearchOptions::no_cone`]), compared by governor node count on
//!   byte-identical verdicts. The ratio is `cone_node_reduction`.
//!
//! Timings print criterion-style; the measured numbers land in
//! `BENCH_provenance.json` at the repository root (consumed by
//! EXPERIMENTS.md E22 and gated by `bench_check`).

use std::sync::Arc;
use std::time::Instant;

use criterion::black_box;

use cwf_core::{search_min_scenario, SearchOptions};
use cwf_engine::{Bindings, Event, Run};
use cwf_lang::parse_workflow;
use cwf_model::{Governor, RelId, Value};

const WARMUP: usize = 2;
const ITERS: usize = 30;
/// Churn events surrounding the five-event derivation chain.
const NOISE: usize = 27;

/// A five-event alternative-derivation chain (`a1`/`a2` feed `b1`/`b2`
/// feed `ok`) visible to the observer `p` only at its tip, drowned in
/// `Noise` churn the cone provably excludes.
fn bench_spec() -> Arc<cwf_lang::WorkflowSpec> {
    Arc::new(
        parse_workflow(
            r#"
            schema { Noise(K); V1(K); V2(K); C1(K); OK(K); }
            peers {
                w sees Noise(*), V1(*), V2(*), C1(*), OK(*);
                p sees OK(*);
            }
            rules {
                churn @ w: +Noise(0) :- ;
                wipe @ w: -key Noise(0) :- Noise(0);
                a1 @ w: +V1(0) :- ;
                a2 @ w: +V2(0) :- ;
                b1 @ w: +C1(0) :- V1(0);
                b2 @ w: +C1(0) :- V2(0);
                ok @ w: +OK(0) :- C1(0);
            }
            "#,
        )
        .expect("the bench spec parses"),
    )
}

/// Fires `name` (all rules are propositional, so bindings are empty).
fn fire(run: &mut Run, name: &str) {
    let spec = run.spec_arc();
    let rid = spec
        .program()
        .rule_by_name(name)
        .expect("the bench spec has the rule");
    let event = Event::new(&spec, rid, Bindings::empty(0)).expect("rule fires");
    run.push(event).expect("the scripted event is accepted");
}

/// `NOISE` alternating churn/wipe events with the chain spliced through
/// them: `a1`/`a2` a quarter in, `b1`/`b2` at the middle, `ok` at the
/// three-quarter mark.
fn build_run() -> Run {
    let spec = bench_spec();
    let mut run = Run::new(Arc::clone(&spec));
    run.enable_provenance();
    let mut fired = 0usize;
    while fired < NOISE {
        match fired {
            n if n == NOISE / 4 => {
                fire(&mut run, "a1");
                fire(&mut run, "a2");
            }
            n if n == NOISE / 2 => {
                fire(&mut run, "b1");
                fire(&mut run, "b2");
            }
            n if n == 3 * NOISE / 4 => fire(&mut run, "ok"),
            _ => {}
        }
        fire(
            &mut run,
            if fired.is_multiple_of(2) {
                "churn"
            } else {
                "wipe"
            },
        );
        fired += 1;
    }
    run
}

fn time_passes<T, F: FnMut() -> T>(mut f: F) -> f64 {
    for _ in 0..WARMUP {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..ITERS {
        black_box(f());
    }
    start.elapsed().as_secs_f64() / ITERS as f64
}

fn main() {
    let run = build_run();
    let p = run
        .spec()
        .collab()
        .peer_ids()
        .last()
        .expect("the bench spec has peers");
    let facts: Vec<(RelId, Value)> = run
        .provenance()
        .expect("enabled")
        .peer_iter(p)
        .map(|(rel, key, _)| (rel, *key))
        .collect();
    assert!(!facts.is_empty(), "the observer must see the chain tip");

    // Explain from the index vs reconstructing a witness by search. The
    // lookup is nanoseconds, so batch it to keep the timer noise-free.
    const BATCH: usize = 1_000;
    let explain_s = time_passes(|| {
        for _ in 0..BATCH {
            for (rel, key) in &facts {
                let prov = run.explain_fact(p, *rel, key).expect("visible fact");
                assert!(!black_box(prov).is_zero());
            }
        }
    }) / BATCH as f64;
    let search_opts = SearchOptions::default();
    let search_s = time_passes(|| {
        search_min_scenario(&run, p, &search_opts, &Governor::unlimited())
            .found()
            .expect("a scenario exists")
            .clone()
    });
    let explain_speedup = search_s / explain_s;

    // Cone pruning: node counts of byte-identical searches.
    let unpruned_opts = SearchOptions {
        no_cone: true,
        ..Default::default()
    };
    let pruned_gov = Governor::unlimited();
    let pruned = search_min_scenario(&run, p, &search_opts, &pruned_gov);
    let unpruned_gov = Governor::unlimited();
    let unpruned = search_min_scenario(&run, p, &unpruned_opts, &unpruned_gov);
    assert_eq!(
        pruned, unpruned,
        "cone-pruned and unpruned searches must agree"
    );
    let cone_nodes = pruned_gov.nodes_used();
    let full_nodes = unpruned_gov.nodes_used();
    let cone_node_reduction = full_nodes as f64 / cone_nodes as f64;

    println!(
        "E22_provenance/explain ... {:>10.0} ns/iter ({} facts)",
        explain_s * 1e9,
        facts.len()
    );
    println!(
        "E22_provenance/search  ... {:>10.0} ns/iter",
        search_s * 1e9
    );
    println!(
        "E22_provenance: {} events, explain speedup {:.0}x, search nodes \
         {} pruned vs {} unpruned ({:.1}x reduction)",
        run.len(),
        explain_speedup,
        cone_nodes,
        full_nodes,
        cone_node_reduction
    );

    let json = format!(
        "{{\n  \"experiment\": \"E22_provenance\",\n  \"events\": {},\n  \
         \"facts\": {},\n  \"explain_ns\": {:.1},\n  \"search_ns\": {:.1},\n  \
         \"explain_speedup\": {:.2},\n  \"cone_nodes\": {},\n  \
         \"full_nodes\": {},\n  \"cone_node_reduction\": {:.2}\n}}\n",
        run.len(),
        facts.len(),
        explain_s * 1e9,
        search_s * 1e9,
        explain_speedup,
        cone_nodes,
        full_nodes,
        cone_node_reduction
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_provenance.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("E22_provenance: cannot write {path}: {e}");
    }
}
