//! E14 — Section 6: the mechanical stage-discipline transform, and the
//! runtime cost of the staged program relative to the raw one.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use cwf_design::add_stage_discipline;
use cwf_engine::{Bindings, Event, Run};
use cwf_lang::{parse_workflow, VarId};
use cwf_model::Value;

fn raw_spec() -> Arc<cwf_lang::WorkflowSpec> {
    Arc::new(
        parse_workflow(
            r#"
            schema { Cleared(K); Approved(K); Hire(K); }
            peers {
                hr sees Cleared(*), Approved(*), Hire(*);
                ceo sees Cleared(*), Approved(*), Hire(*);
                sue sees Cleared(*), Hire(*);
            }
            rules {
                clear @ hr: +Cleared(x) :- ;
                approve @ ceo: +Approved(x) :- Cleared(x);
                hire @ hr: +Hire(x) :- Approved(x);
            }
            "#,
        )
        .unwrap(),
    )
}

fn bench_stage_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("E14_stage_transform");
    let raw = raw_spec();
    let sue = raw.collab().peer("sue").unwrap();
    group.bench_function("transform", |b| {
        b.iter(|| add_stage_discipline(&raw, sue).unwrap())
    });
    // Runtime: 20 hiring cycles, raw vs staged.
    let staged = Arc::new(add_stage_discipline(&raw, sue).unwrap().spec);
    group.bench_function("run_raw_20_cycles", |b| {
        b.iter(|| {
            let mut run = Run::new(Arc::clone(&raw));
            for i in 0..20u64 {
                let x = Value::Fresh(1_000 + i);
                for name in ["clear", "approve", "hire"] {
                    let rid = raw.program().rule_by_name(name).unwrap();
                    let mut bnd = Bindings::empty(1);
                    bnd.set(VarId(0), x);
                    run.push(Event::new(&raw, rid, bnd).unwrap()).unwrap();
                }
            }
            run.len()
        })
    });
    group.bench_function("run_staged_20_cycles", |b| {
        b.iter(|| {
            let mut run = Run::new(Arc::clone(&staged));
            for i in 0..20u64 {
                let x = Value::Fresh(1_000 + 10 * i);
                let s1 = Value::Fresh(1_001 + 10 * i);
                let s2 = Value::Fresh(1_002 + 10 * i);
                let k = Value::Fresh(1_003 + 10 * i);
                let fire = |run: &mut Run, name: &str, vals: &[Value]| {
                    let rid = run.spec().program().rule_by_name(name).unwrap();
                    let mut bnd = Bindings::empty(vals.len());
                    for (vi, v) in vals.iter().enumerate() {
                        bnd.set(VarId(vi as u32), *v);
                    }
                    let e = Event::new(run.spec(), rid, bnd).unwrap();
                    run.push(e).unwrap();
                };
                // stage; clear (ends stage); stage; approve; hire.
                fire(&mut run, "stage_init", std::slice::from_ref(&s1));
                fire(&mut run, "clear", &[x, s1]);
                fire(&mut run, "stage_init", std::slice::from_ref(&s2));
                fire(&mut run, "approve", &[x, s2, k]);
                fire(&mut run, "hire", &[x, s2, k]);
            }
            run.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stage_transform);
criterion_main!(benches);
