//! E20 — elastic resharding: admission throughput during an active
//! migration vs an idle map.
//!
//! Drives one fixed scripted workload (the editorial chaos spec, seeded
//! candidate walk, `STEPS` accepted events) through a durable 4-shard
//! [`ShardPlane`] twice. The *idle* pass submits everything against a
//! quiescent shard map. The *migrating* pass loads the first half, begins
//! a live split of shard 0 (freezing a real snapshot), then submits the
//! second half while stepping the snapshot copy one fact per admission,
//! and pays for the cutover and convergence at the end — so every
//! second-half admission happens with a migration in flight and the
//! measured time includes the whole protocol: plan record, copy, oplog
//! tail replay, fenced cutover.
//!
//! Writes `BENCH_reshard_admission.json` at the repository root (consumed
//! by EXPERIMENTS.md E20 and `bench_check`, which watches the
//! migrating/idle ratio). The acceptance bar: admission stays *live* —
//! the migrating pass lands on the identical state and its throughput is
//! the same order of magnitude as idle, not a stop-the-world outage.

use std::sync::Arc;
use std::time::Instant;

use criterion::black_box;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cwf_engine::chaos::default_spec;
use cwf_engine::transport::Transport;
use cwf_engine::{
    candidates, complete, Event, MemBackend, PerfectTransport, Run, ShardId, ShardPlane,
    ShardPlaneConfig, SyncPolicy, Wal, WalOptions,
};
use cwf_lang::WorkflowSpec;

const STEPS: usize = 200;
const WARMUP: usize = 1;
const ITERS: usize = 8;

fn opts() -> WalOptions {
    WalOptions {
        sync: SyncPolicy::Always,
        snapshot_every: Some(64),
    }
}

/// One seeded workload, replayable on any deployment: accepted events only.
fn build_events(spec: &Arc<WorkflowSpec>) -> Vec<Event> {
    let mut run = Run::new(Arc::clone(spec));
    let mut rng = StdRng::seed_from_u64(20);
    let mut events = Vec::new();
    let mut attempts = 0usize;
    while events.len() < STEPS {
        attempts += 1;
        assert!(attempts < STEPS * 20, "workload generation stalled");
        let cands = candidates(&run);
        let cand = cands[rng.gen_range(0..cands.len())].clone();
        let event = complete(&mut run, &cand);
        if run.push(event.clone()).is_ok() {
            events.push(event);
        }
    }
    events
}

fn time_passes<F: FnMut() -> usize>(mut f: F) -> (f64, usize) {
    let mut checksum = 0;
    for _ in 0..WARMUP {
        checksum = black_box(f());
    }
    let start = Instant::now();
    for _ in 0..ITERS {
        checksum = black_box(f());
    }
    (start.elapsed().as_secs_f64() / ITERS as f64, checksum)
}

/// A fresh durable plane over per-shard in-memory streams.
fn durable_plane(spec: &Arc<WorkflowSpec>, shards: usize) -> ShardPlane {
    let wals: Vec<Wal> = (0..shards)
        .map(|_| Wal::create(Box::new(MemBackend::new()), opts()).expect("fresh backend"))
        .collect();
    let transports: Vec<Box<dyn Transport>> = (0..shards)
        .map(|_| Box::new(PerfectTransport::new()) as Box<dyn Transport>)
        .collect();
    ShardPlane::with_parts(
        Arc::clone(spec),
        transports,
        Some(wals),
        ShardPlaneConfig::with_shards(shards),
    )
}

/// Submit everything against a quiescent 4-shard map and converge.
fn idle_pass(spec: &Arc<WorkflowSpec>, events: &[Event]) -> usize {
    let mut plane = durable_plane(spec, 4);
    for e in events {
        plane.submit(e.clone()).expect("accepted events replay");
    }
    assert!(plane.converge(10_000).is_converged());
    plane.union_state().total_tuples()
}

/// Load the first half, split shard 0 live, submit the second half with
/// the migration in flight (one copy step per admission), cut over, and
/// converge. Returns the same checksum as the idle pass.
fn migrating_pass(spec: &Arc<WorkflowSpec>, events: &[Event]) -> (usize, u64) {
    let mut plane = durable_plane(spec, 4);
    let half = events.len() / 2;
    for e in &events[..half] {
        plane.submit(e.clone()).expect("accepted events replay");
    }
    let wal = Wal::create(Box::new(MemBackend::new()), opts()).expect("fresh backend");
    assert!(
        plane
            .begin_split(ShardId(0), Box::new(PerfectTransport::new()), Some(wal))
            .expect("healthy plane"),
        "the split must be plannable"
    );
    for e in &events[half..] {
        plane.step_reshard(1);
        plane.submit(e.clone()).expect("admission during migration");
    }
    assert!(plane.finish_reshard().expect("healthy plane"));
    assert!(plane.converge(10_000).is_converged());
    let migrated = plane.plane_stats().keys_migrated;
    (plane.union_state().total_tuples(), migrated)
}

fn main() {
    let spec = default_spec();
    let events = build_events(&spec);

    let (idle_s, idle_sum) = time_passes(|| idle_pass(&spec, &events));
    let mut migrated = 0u64;
    let (mig_s, mig_sum) = time_passes(|| {
        let (sum, m) = migrating_pass(&spec, &events);
        migrated = m;
        sum
    });
    assert_eq!(
        mig_sum, idle_sum,
        "the migrating pass must land on the identical state"
    );
    assert!(migrated > 0, "the split must move a real snapshot");

    let eps = |s: f64| STEPS as f64 / s;
    println!(
        "E20_reshard_admission/idle@4       ... {:>9.0} events/s",
        eps(idle_s)
    );
    println!(
        "E20_reshard_admission/migrating@4  ... {:>9.0} events/s ({:.2}x vs idle, {migrated} keys migrated)",
        eps(mig_s),
        idle_s / mig_s
    );

    let json = format!(
        "{{\n  \"experiment\": \"E20_reshard_admission\",\n  \"steps\": {STEPS},\n  \
         \"idle_4_shards_events_per_sec\": {:.0},\n  \
         \"migrating_4_shards_events_per_sec\": {:.0},\n  \
         \"keys_migrated\": {migrated},\n  \"hardware_threads\": {}\n}}\n",
        eps(idle_s),
        eps(mig_s),
        std::thread::available_parallelism().map_or(0, |n| n.get()),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_reshard_admission.json"
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("E20_reshard_admission: cannot write {path}: {e}");
    }
}
