//! E17 — the parallel analysis engine at 1/2/4/8 worker threads.
//!
//! Runs the two hottest governed analyses at every pool size against the
//! sequential oracle and checks the verdicts stay byte-identical while the
//! wall clock (hopefully) drops:
//!
//! * **min-scenario** — branch-and-bound over a hard hitting-set reduction
//!   (`search_min_scenario_pooled`, shared atomic incumbent);
//! * **boundedness** — confirming 5-boundedness of the silent-chain family's
//!   k = 4 program (`check_h_bounded_pooled`, batched level-1 split; the
//!   E6 workload, at the size where exhausting the space costs seconds).
//!
//! Besides the timings, the bench writes per-thread-count results, the
//! measured speedups, and `hardware_threads` (the parallelism the host
//! actually offers) to `BENCH_par_analysis.json` at the repository root
//! (consumed by EXPERIMENTS.md E17). Speedups are only meaningful when
//! `hardware_threads` exceeds the pool size — on a single-core host every
//! pool size collapses to time-slicing and ≈1× is the honest expectation.

use std::time::Instant;

use criterion::black_box;
use rand::rngs::StdRng;
use rand::SeedableRng;

use cwf_analysis::{check_h_bounded_pooled, Limits};
use cwf_bench::{chain_observer, chain_program};
use cwf_core::{search_min_scenario_pooled, SearchOptions};
use cwf_model::{Governor, Pool};
use cwf_workloads::{hitting_set_workload, HittingSet};

const WARMUP: usize = 1;
const ITERS: usize = 3;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn time_passes<T: PartialEq + std::fmt::Debug, F: FnMut() -> T>(mut f: F) -> (f64, T) {
    let mut out = None;
    for _ in 0..WARMUP {
        out = Some(black_box(f()));
    }
    let start = Instant::now();
    for _ in 0..ITERS {
        out = Some(black_box(f()));
    }
    (start.elapsed().as_secs_f64() / ITERS as f64, out.unwrap())
}

fn main() {
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut rng = StdRng::seed_from_u64(42);
    let hs = hitting_set_workload(HittingSet::random(12, 5, 3, &mut rng));
    let run = hs.saturated_run();
    let opts = SearchOptions::default();

    let spec = chain_program(4);
    let p = chain_observer(&spec);
    let limits = Limits {
        max_nodes: 50_000_000,
        max_tuples_per_rel: 1,
        extra_constants: Some(0),
    };

    let mut min_times = Vec::new();
    let mut bound_times = Vec::new();
    let mut min_oracle = None;
    let mut bound_oracle = None;
    for threads in THREADS {
        let pool = Pool::with_threads(threads);
        let (t_min, v_min) = time_passes(|| {
            search_min_scenario_pooled(&run, hs.p, &opts, &Governor::unlimited(), &pool)
        });
        let (t_bound, v_bound) = time_passes(|| {
            format!(
                "{:?}",
                check_h_bounded_pooled(
                    &spec,
                    p,
                    5,
                    &limits,
                    &Governor::with_nodes(limits.max_nodes),
                    &pool,
                )
            )
        });
        match &min_oracle {
            None => min_oracle = Some(v_min),
            Some(oracle) => assert_eq!(&v_min, oracle, "min-scenario diverges at {threads}"),
        }
        match &bound_oracle {
            None => bound_oracle = Some(v_bound),
            Some(oracle) => assert_eq!(&v_bound, oracle, "boundedness diverges at {threads}"),
        }
        println!(
            "E17_par_analysis/min_scenario/t{threads}  ... {:>10.0} ns/iter",
            t_min * 1e9
        );
        println!(
            "E17_par_analysis/boundedness/t{threads}   ... {:>10.0} ns/iter",
            t_bound * 1e9
        );
        min_times.push(t_min);
        bound_times.push(t_bound);
    }

    let speedup =
        |times: &[f64], t: usize| times[0] / times[THREADS.iter().position(|&x| x == t).unwrap()];
    println!(
        "E17_par_analysis: hardware_threads={hardware}, min-scenario speedup \
         2t {:.2}x / 4t {:.2}x / 8t {:.2}x, boundedness speedup 2t {:.2}x / \
         4t {:.2}x / 8t {:.2}x",
        speedup(&min_times, 2),
        speedup(&min_times, 4),
        speedup(&min_times, 8),
        speedup(&bound_times, 2),
        speedup(&bound_times, 4),
        speedup(&bound_times, 8),
    );

    let row = |times: &[f64]| {
        THREADS
            .iter()
            .zip(times)
            .map(|(t, s)| format!("    {{\"threads\": {t}, \"ms\": {:.3}}}", s * 1e3))
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let json = format!(
        "{{\n  \"experiment\": \"E17_par_analysis\",\n  \
         \"hardware_threads\": {hardware},\n  \
         \"min_scenario\": [\n{}\n  ],\n  \
         \"boundedness\": [\n{}\n  ],\n  \
         \"min_scenario_speedup_4t\": {:.2},\n  \
         \"boundedness_speedup_4t\": {:.2}\n}}\n",
        row(&min_times),
        row(&bound_times),
        speedup(&min_times, 4),
        speedup(&bound_times, 4),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_par_analysis.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("E17_par_analysis: cannot write {path}: {e}");
    }
}
