//! E17 — the parallel analysis engine at 1/2/4/8 worker threads, plus the
//! chunked-claiming granularity sweep (E21).
//!
//! Runs the two hottest governed analyses at every pool size against the
//! sequential oracle and checks the verdicts stay byte-identical while the
//! wall clock (hopefully) drops:
//!
//! * **min-scenario** — branch-and-bound over a hard hitting-set reduction
//!   (`search_min_scenario_pooled`, shared atomic incumbent);
//! * **boundedness** — confirming 5-boundedness of the silent-chain family's
//!   k = 4 program (`check_h_bounded_pooled`, batched level-1 split; the
//!   E6 workload, at the size where exhausting the space costs seconds).
//!
//! On top of the thread sweep (at the default chunk), the bench sweeps the
//! work-claiming granularity at 4 threads — chunk sizes 1/8/64 against the
//! default 16 — asserting the verdicts stay byte-identical at every
//! granularity (chunking only changes *which worker* computes an item,
//! never the item→slot mapping).
//!
//! Besides the timings, the bench writes per-thread-count results, the
//! chunk-sweep rows, the measured speedups, and `hardware_threads` (the
//! parallelism the host actually offers) to `BENCH_par_analysis.json` (v2)
//! at the repository root (consumed by EXPERIMENTS.md E17/E21). Speedups
//! are only meaningful when `hardware_threads` exceeds the pool size — on
//! a single-core host every pool size collapses to time-slicing and ≈1× is
//! the honest expectation.

use std::time::Instant;

use criterion::black_box;
use rand::rngs::StdRng;
use rand::SeedableRng;

use cwf_analysis::{check_h_bounded_pooled, Limits};
use cwf_bench::{chain_observer, chain_program};
use cwf_core::{search_min_scenario_pooled, SearchOptions};
use cwf_model::{Governor, Pool, DEFAULT_CHUNK};
use cwf_workloads::{hitting_set_workload, HittingSet};

const WARMUP: usize = 1;
const ITERS: usize = 3;
const THREADS: [usize; 4] = [1, 2, 4, 8];
const CHUNKS: [usize; 3] = [1, 8, 64];

/// Times `f` over `ITERS` passes and reports the **median** pass — robust
/// against the scheduling spikes a shared single-core host injects, which
/// matters when the quantity of interest is a ratio of two timings.
fn time_passes<T: PartialEq + std::fmt::Debug, F: FnMut() -> T>(mut f: F) -> (f64, T) {
    let mut out = None;
    for _ in 0..WARMUP {
        out = Some(black_box(f()));
    }
    let mut passes = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        let start = Instant::now();
        out = Some(black_box(f()));
        passes.push(start.elapsed().as_secs_f64());
    }
    passes.sort_by(f64::total_cmp);
    (passes[ITERS / 2], out.unwrap())
}

fn main() {
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut rng = StdRng::seed_from_u64(42);
    let hs = hitting_set_workload(HittingSet::random(12, 5, 3, &mut rng));
    let run = hs.saturated_run();
    let opts = SearchOptions::default();

    let spec = chain_program(4);
    let p = chain_observer(&spec);
    let limits = Limits {
        max_nodes: 50_000_000,
        max_tuples_per_rel: 1,
        extra_constants: Some(0),
    };

    let mut min_times = Vec::new();
    let mut bound_times = Vec::new();
    let mut min_oracle = None;
    let mut bound_oracle = None;
    let mut measure =
        |pool: &Pool, tag: &str, min_times: &mut Vec<f64>, bound_times: &mut Vec<f64>| {
            let (t_min, v_min) = time_passes(|| {
                search_min_scenario_pooled(&run, hs.p, &opts, &Governor::unlimited(), pool)
            });
            let (t_bound, v_bound) = time_passes(|| {
                format!(
                    "{:?}",
                    check_h_bounded_pooled(
                        &spec,
                        p,
                        5,
                        &limits,
                        &Governor::with_nodes(limits.max_nodes),
                        pool,
                    )
                )
            });
            match &min_oracle {
                None => min_oracle = Some(v_min),
                Some(oracle) => assert_eq!(&v_min, oracle, "min-scenario diverges at {tag}"),
            }
            match &bound_oracle {
                None => bound_oracle = Some(v_bound),
                Some(oracle) => assert_eq!(&v_bound, oracle, "boundedness diverges at {tag}"),
            }
            println!(
                "E17_par_analysis/min_scenario/{tag}  ... {:>10.0} ns/iter",
                t_min * 1e9
            );
            println!(
                "E17_par_analysis/boundedness/{tag}   ... {:>10.0} ns/iter",
                t_bound * 1e9
            );
            min_times.push(t_min);
            bound_times.push(t_bound);
        };

    for threads in THREADS {
        let pool = Pool::with_threads(threads);
        measure(
            &pool,
            &format!("t{threads}"),
            &mut min_times,
            &mut bound_times,
        );
    }

    // Granularity sweep: 4 workers claiming 1/8/64 items per atomic grab
    // (the thread sweep above already covers the default chunk of 16).
    let mut min_chunk_times = Vec::new();
    let mut bound_chunk_times = Vec::new();
    for chunk in CHUNKS {
        let pool = Pool::with_chunk(4, chunk);
        measure(
            &pool,
            &format!("t4c{chunk}"),
            &mut min_chunk_times,
            &mut bound_chunk_times,
        );
    }

    // Paired speedup measurement: alternate sequential and 4-thread passes
    // and take the median of per-pair ratios, so slow host drift (frequency
    // scaling, co-tenants) cancels out of the headline metrics instead of
    // landing on whichever sweep config ran last.
    const PAIRS: usize = 3;
    let seq_pool = Pool::sequential();
    let par_pool = Pool::with_threads(4);
    let mut min_ratios = Vec::with_capacity(PAIRS);
    let mut bound_ratios = Vec::with_capacity(PAIRS);
    for _ in 0..PAIRS {
        let run_min = |pool: &Pool| {
            let start = Instant::now();
            black_box(search_min_scenario_pooled(
                &run,
                hs.p,
                &opts,
                &Governor::unlimited(),
                pool,
            ));
            start.elapsed().as_secs_f64()
        };
        let run_bound = |pool: &Pool| {
            let start = Instant::now();
            black_box(check_h_bounded_pooled(
                &spec,
                p,
                5,
                &limits,
                &Governor::with_nodes(limits.max_nodes),
                pool,
            ));
            start.elapsed().as_secs_f64()
        };
        min_ratios.push(run_min(&seq_pool) / run_min(&par_pool));
        bound_ratios.push(run_bound(&seq_pool) / run_bound(&par_pool));
    }
    min_ratios.sort_by(f64::total_cmp);
    bound_ratios.sort_by(f64::total_cmp);
    let min_speedup_4t = min_ratios[PAIRS / 2];
    let bound_speedup_4t = bound_ratios[PAIRS / 2];

    let speedup =
        |times: &[f64], t: usize| times[0] / times[THREADS.iter().position(|&x| x == t).unwrap()];
    println!(
        "E17_par_analysis: hardware_threads={hardware}, min-scenario speedup \
         2t {:.2}x / 4t {:.2}x (paired) / 8t {:.2}x, boundedness speedup \
         2t {:.2}x / 4t {:.2}x (paired) / 8t {:.2}x",
        speedup(&min_times, 2),
        min_speedup_4t,
        speedup(&min_times, 8),
        speedup(&bound_times, 2),
        bound_speedup_4t,
        speedup(&bound_times, 8),
    );

    let row = |times: &[f64]| {
        THREADS
            .iter()
            .zip(times)
            .map(|(t, s)| {
                format!(
                    "    {{\"threads\": {t}, \"chunk\": {DEFAULT_CHUNK}, \"ms\": {:.3}}}",
                    s * 1e3
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let chunk_row = |times: &[f64]| {
        CHUNKS
            .iter()
            .zip(times)
            .map(|(c, s)| {
                format!(
                    "    {{\"threads\": 4, \"chunk\": {c}, \"ms\": {:.3}}}",
                    s * 1e3
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let json = format!(
        "{{\n  \"experiment\": \"E17_par_analysis\",\n  \
         \"version\": 2,\n  \
         \"hardware_threads\": {hardware},\n  \
         \"default_chunk\": {DEFAULT_CHUNK},\n  \
         \"min_scenario\": [\n{}\n  ],\n  \
         \"min_scenario_chunk_sweep\": [\n{}\n  ],\n  \
         \"boundedness\": [\n{}\n  ],\n  \
         \"boundedness_chunk_sweep\": [\n{}\n  ],\n  \
         \"min_scenario_seq_ms\": {:.3},\n  \
         \"min_scenario_speedup_4t\": {:.2},\n  \
         \"boundedness_speedup_4t\": {:.2}\n}}\n",
        row(&min_times),
        chunk_row(&min_chunk_times),
        row(&bound_times),
        chunk_row(&bound_chunk_times),
        min_times[0] * 1e3,
        min_speedup_4t,
        bound_speedup_4t,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_par_analysis.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("E17_par_analysis: cannot write {path}: {e}");
    }
}
