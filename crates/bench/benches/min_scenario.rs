//! E1 — Theorem 3.3: minimum-scenario search is NP-complete.
//!
//! Exact branch-and-bound search time grows exponentially with the number
//! of Hitting-Set elements, while the greedy 1-minimal extraction stays
//! polynomial.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use cwf_core::{one_minimal_scenario, search_min_scenario, SearchOptions};
use cwf_model::Governor;
use cwf_workloads::{hitting_set_workload, HittingSet};

fn bench_min_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_min_scenario");
    group.sample_size(10);
    for n in [3usize, 5, 7] {
        let mut rng = StdRng::seed_from_u64(42);
        let hs = HittingSet::random(n, 3, 3, &mut rng);
        let w = hitting_set_workload(hs);
        let run = w.saturated_run();
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| {
                let res = search_min_scenario(
                    &run,
                    w.p,
                    &SearchOptions::default(),
                    &Governor::unlimited(),
                );
                res.found().expect("scenario exists").clone()
            })
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| one_minimal_scenario(&run, w.p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_min_scenario);
criterion_main!(benches);
