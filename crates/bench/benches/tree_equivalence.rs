//! E13 — Remark 5.2: sampled tree-equivalence checking.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use cwf_analysis::{sample_tree_divergence, synthesize_view_program, Limits};
use cwf_workloads::hiring_no_cfo;

fn bench_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("E13_tree_equivalence");
    group.sample_size(10);
    let limits = Limits {
        max_nodes: 100_000_000,
        max_tuples_per_rel: 1,
        extra_constants: Some(2),
    };
    let spec = hiring_no_cfo();
    let sue = spec.collab().peer("sue").unwrap();
    let synth = synthesize_view_program(&spec, sue, 2, &limits).unwrap();
    group.bench_function("hiring_10_runs", |b| {
        b.iter(|| {
            assert!(sample_tree_divergence(&spec, &synth, sue, 2, &limits, 10, 6, 3).is_none())
        })
    });
    let lock_spec = Arc::new(
        cwf_lang::parse_workflow(
            r#"
            schema { Req(K); Lock(K); Out(K); }
            peers {
                q sees Req(*), Lock(*), Out(*);
                p sees Req(*), Out(*);
            }
            rules {
                req @ p: +Req(x) :- ;
                lock @ q: +Lock(x) :- Req(x), not key Lock(x);
                emit @ q: +Out(x) :- Req(x), not key Lock(x), not key Out(x);
            }
            "#,
        )
        .unwrap(),
    );
    let p = lock_spec.collab().peer("p").unwrap();
    let synth2 = synthesize_view_program(&lock_spec, p, 1, &limits).unwrap();
    group.bench_function("lock_divergence", |b| {
        b.iter(|| {
            assert!(sample_tree_divergence(&lock_spec, &synth2, p, 1, &limits, 20, 6, 11).is_some())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tree);
criterion_main!(benches);
