//! E5 — Theorem 4.8: semiring operations on faithful scenarios.
//!
//! Closure computation (T_p^ω) and the union/intersection operators are
//! linear in the run length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use cwf_core::{tp_closure, EventSet, RunIndex};
use cwf_workloads::{random_propositional_spec, random_run, RandomSpecParams};

fn bench_semiring(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_semiring_ops");
    for len in [50usize, 100, 200] {
        let mut rng = StdRng::seed_from_u64(5);
        let params = RandomSpecParams {
            n_rels: 10,
            n_rules: 20,
            ..Default::default()
        };
        let w = random_propositional_spec(&params, &mut rng);
        let run = random_run(&w.spec, len, 1);
        let index = RunIndex::build(&run);
        let n = run.len();
        if n == 0 {
            continue;
        }
        let a = tp_closure(&run, &index, w.observer, &EventSet::from_iter(n, [0]));
        let b2 = tp_closure(&run, &index, w.observer, &EventSet::from_iter(n, [n - 1]));
        group.bench_with_input(BenchmarkId::new("closure", n), &len, |b, _| {
            b.iter(|| tp_closure(&run, &index, w.observer, &EventSet::from_iter(n, [n / 2])))
        });
        group.bench_with_input(BenchmarkId::new("union", n), &len, |bch, _| {
            bch.iter(|| a.union(&b2))
        });
        group.bench_with_input(BenchmarkId::new("intersection", n), &len, |bch, _| {
            bch.iter(|| a.intersection(&b2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_semiring);
criterion_main!(benches);
