//! E12 — durability: coordinator recovery cost, full replay vs
//! snapshot + tail.
//!
//! Replaying the whole journal is linear in the run length; periodic
//! instance snapshots cap the replayed tail at `snapshot_every` events, so
//! recovery time stays flat as the log grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

use cwf_engine::{Bindings, Coordinator, Event, MemBackend, SyncPolicy, Wal, WalOptions};
use cwf_lang::{parse_workflow, VarId, WorkflowSpec};

fn spec() -> Arc<WorkflowSpec> {
    Arc::new(
        parse_workflow(
            r#"
            schema { Doc(K); }
            peers { author sees Doc(*); editor sees Doc(*); }
            rules { draft @ author: +Doc(d) :- ; }
            "#,
        )
        .unwrap(),
    )
}

/// Journals `n` accepted events and returns the raw log bytes.
fn journal(spec: &Arc<WorkflowSpec>, n: usize, opts: WalOptions) -> Vec<u8> {
    let backend = MemBackend::new();
    let wal = Wal::create(Box::new(backend.clone()), opts).unwrap();
    let mut c = Coordinator::with_wal(Arc::clone(spec), wal);
    let draft = spec.program().rule_by_name("draft").unwrap();
    for _ in 0..n {
        let d = c.draw_fresh();
        let mut b = Bindings::empty(1);
        b.set(VarId(0), d);
        c.submit(Event::new(spec, draft, b).unwrap()).unwrap();
    }
    backend.bytes()
}

fn bench_recovery(c: &mut Criterion) {
    let spec = spec();
    let mut group = c.benchmark_group("E12_coordinator_recovery");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(n as u64));
        for (label, snapshot_every) in [("full_replay", None), ("snapshot_tail", Some(256))] {
            let opts = WalOptions {
                sync: SyncPolicy::Never,
                snapshot_every,
            };
            let bytes = journal(&spec, n, opts);
            group.bench_with_input(BenchmarkId::new(label, n), &bytes, |b, bytes| {
                b.iter(|| {
                    let backend = MemBackend::from_bytes(bytes.clone());
                    let r = Wal::recover(Box::new(backend), Arc::clone(&spec), opts).unwrap();
                    assert_eq!(r.report.last_seq as usize, n);
                    r.report.events_replayed
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
