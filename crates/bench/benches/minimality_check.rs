//! E2 — Theorem 3.4: testing scenario minimality is coNP-complete.
//!
//! The exact minimality check on the UNSAT-reduction runs grows
//! exponentially with the number of CNF variables; the polynomial
//! 1-minimality check stays flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cwf_core::{is_minimal_exact, is_one_minimal, EventSet};
use cwf_model::{Governor, Verdict};
use cwf_workloads::{unsat_workload, Cnf};

/// An unsatisfiable chain formula over n variables:
/// (x1) ∧ (¬x1 ∨ x2) ∧ … ∧ (¬x_{n−1} ∨ x_n) ∧ (¬x_n).
fn unsat_chain(n: usize) -> Cnf {
    let mut clauses = vec![vec![1i32]];
    for i in 1..n {
        clauses.push(vec![-(i as i32), i as i32 + 1]);
    }
    clauses.push(vec![-(n as i32)]);
    Cnf { n, clauses }
}

fn bench_minimality(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2_minimality_check");
    group.sample_size(10);
    for n in [2usize, 4, 6] {
        let cnf = unsat_chain(n);
        assert!(!cnf.satisfiable());
        let w = unsat_workload(cnf);
        let run = w.canonical_run();
        let full = EventSet::full(run.len());
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| {
                assert_eq!(
                    is_minimal_exact(&run, w.p, &full, &Governor::unlimited()),
                    Verdict::Done(true)
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("one_minimal", n), &n, |b, _| {
            b.iter(|| assert!(is_one_minimal(&run, w.p, &full)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_minimality);
criterion_main!(benches);
