//! E9 — Theorem 6.3: boundedness by p-acyclicity.
//!
//! The p-graph analysis is effectively free compared to the semantic
//! boundedness decision; the experiments table additionally records how
//! loose the (ab+1)^d bound is against the measured chain length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cwf_analysis::{find_bound, Limits};
use cwf_bench::{chain_observer, chain_program};
use cwf_design::{acyclicity_bound, is_p_acyclic, p_graph};

fn bench_acyclicity(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_acyclic_bound");
    for k in [2usize, 4, 8, 16] {
        let spec = chain_program(k);
        let p = chain_observer(&spec);
        group.bench_with_input(BenchmarkId::new("pgraph_analysis", k), &k, |b, _| {
            b.iter(|| {
                let g = p_graph(&spec, p);
                assert!(is_p_acyclic(&spec, p));
                (g.edges.len(), acyclicity_bound(&spec))
            })
        });
    }
    // The semantic decision for one small case, as the contrast point.
    let spec = chain_program(2);
    let p = chain_observer(&spec);
    let limits = Limits {
        max_nodes: 50_000_000,
        max_tuples_per_rel: 1,
        extra_constants: Some(0),
    };
    let mut group2 = group;
    group2.sample_size(10);
    group2.bench_function("semantic_find_bound_k2", |b| {
        b.iter(|| find_bound(&spec, p, 4, &limits).unwrap())
    });
    group2.finish();
}

criterion_group!(benches, bench_acyclicity);
criterion_main!(benches);
