//! E18 — sharded state plane: submit throughput vs the single coordinator
//! and hand-off latency.
//!
//! Drives one fixed scripted workload (the editorial chaos spec, seeded
//! candidate walk, `STEPS` accepted events) through the single
//! [`Coordinator`] and through [`ShardPlane`] at 1, 2, and 4 shards — all
//! on perfect transports, no WAL — measuring end-to-end accepted events
//! per second including delivery pumping and the final convergence sweep.
//! Then it measures hand-off latency: `begin` + `finish` cut-over on the
//! busiest shard, both immediately (snapshot only) and after the oplog
//! tail has grown mid-transfer (snapshot + tail replay + peer resync).
//!
//! Writes `BENCH_shard_plane.json` at the repository root (consumed by
//! EXPERIMENTS.md E18). Shards on a single-core host cannot *run*
//! concurrently — the plane's win here is isolation and blast-radius, not
//! parallel speedup — so the acceptance bar is overhead-shaped: shards=1
//! within 1.5× of the raw coordinator, not a throughput multiple.

use std::sync::Arc;
use std::time::Instant;

use criterion::black_box;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cwf_engine::chaos::default_spec;
use cwf_engine::{candidates, complete, Coordinator, Event, PerfectTransport, Run, ShardPlane};
use cwf_lang::WorkflowSpec;

const STEPS: usize = 200;
const WARMUP: usize = 1;
const ITERS: usize = 8;

/// One seeded workload, replayable on any deployment: accepted events only.
fn build_events(spec: &Arc<WorkflowSpec>) -> Vec<Event> {
    let mut run = Run::new(Arc::clone(spec));
    let mut rng = StdRng::seed_from_u64(18);
    let mut events = Vec::new();
    let mut attempts = 0usize;
    while events.len() < STEPS {
        attempts += 1;
        assert!(attempts < STEPS * 20, "workload generation stalled");
        let cands = candidates(&run);
        let cand = cands[rng.gen_range(0..cands.len())].clone();
        let event = complete(&mut run, &cand);
        if run.push(event.clone()).is_ok() {
            events.push(event);
        }
    }
    events
}

fn time_passes<F: FnMut() -> usize>(mut f: F) -> (f64, usize) {
    let mut checksum = 0;
    for _ in 0..WARMUP {
        checksum = black_box(f());
    }
    let start = Instant::now();
    for _ in 0..ITERS {
        checksum = black_box(f());
    }
    (start.elapsed().as_secs_f64() / ITERS as f64, checksum)
}

/// Submit everything through a fresh single coordinator and converge.
fn coordinator_pass(spec: &Arc<WorkflowSpec>, events: &[Event]) -> usize {
    let mut c = Coordinator::new(Arc::clone(spec));
    for e in events {
        c.submit(e.clone()).expect("accepted events replay");
    }
    c.converge(10_000);
    assert!(c.audit().is_ok());
    c.run().current().total_tuples()
}

/// Submit everything through a fresh `shards`-shard plane and converge.
fn plane_pass(spec: &Arc<WorkflowSpec>, events: &[Event], shards: usize) -> usize {
    let mut plane = ShardPlane::new(Arc::clone(spec), shards);
    for e in events {
        plane.submit(e.clone()).expect("accepted events replay");
    }
    assert!(plane.converge(10_000).is_converged());
    plane.union_state().total_tuples()
}

/// Mean hand-off latency in seconds: `split` events land before `begin`,
/// the rest grow the oplog tail mid-transfer (untimed), and the timed
/// sections are `begin_handoff` (snapshot) plus `finish_handoff` (tail
/// replay, cut-over, peer resync) on shard 0 of a 4-shard plane.
fn handoff_latency(spec: &Arc<WorkflowSpec>, events: &[Event], split: usize) -> (f64, u64) {
    let mut total = 0.0;
    let mut tail = 0;
    for _ in 0..ITERS {
        let mut plane = ShardPlane::new(Arc::clone(spec), 4);
        for e in &events[..split] {
            plane.submit(e.clone()).expect("accepted events replay");
        }
        let head = plane.oplog(cwf_engine::ShardId(0)).last_seq();
        let begin = Instant::now();
        assert!(plane.begin_handoff(cwf_engine::ShardId(0)));
        total += begin.elapsed().as_secs_f64();
        for e in &events[split..] {
            plane.submit(e.clone()).expect("accepted events replay");
        }
        tail = plane.oplog(cwf_engine::ShardId(0)).last_seq() - head;
        let finish = Instant::now();
        assert!(plane.finish_handoff(Box::new(PerfectTransport::new())));
        total += finish.elapsed().as_secs_f64();
        assert!(plane.converge(10_000).is_converged());
    }
    (total / ITERS as f64, tail)
}

fn main() {
    let spec = default_spec();
    let events = build_events(&spec);

    let (coord_s, coord_sum) = time_passes(|| coordinator_pass(&spec, &events));
    let mut plane_results = Vec::new();
    for shards in [1usize, 2, 4] {
        let (s, sum) = time_passes(|| plane_pass(&spec, &events, shards));
        assert_eq!(
            sum, coord_sum,
            "the plane at {shards} shards must land on the coordinator's state"
        );
        plane_results.push((shards, s));
    }

    // Hand-off immediately after the snapshot (empty tail) and with the
    // whole second half of the workload replayed as tail records.
    let (ho_empty_s, ho_empty_tail) =
        handoff_latency(&spec, &events[..events.len() / 2], STEPS / 2);
    assert_eq!(ho_empty_tail, 0, "an immediate hand-off has no tail");
    let (ho_tail_s, ho_tail_records) = handoff_latency(&spec, &events, STEPS / 2);

    let eps = |s: f64| STEPS as f64 / s;
    println!(
        "E18_shard_plane/coordinator ... {:>9.0} events/s",
        eps(coord_s)
    );
    for &(shards, s) in &plane_results {
        println!(
            "E18_shard_plane/shards={shards}    ... {:>9.0} events/s ({:.2}x vs coordinator)",
            eps(s),
            coord_s / s
        );
    }
    println!(
        "E18_shard_plane/handoff     ... {:>9.1} us empty tail, {:.1} us with {} tail records",
        ho_empty_s * 1e6,
        ho_tail_s * 1e6,
        ho_tail_records
    );

    let mut json = format!(
        "{{\n  \"experiment\": \"E18_shard_plane\",\n  \"steps\": {STEPS},\n  \
         \"coordinator_events_per_sec\": {:.0},\n",
        eps(coord_s)
    );
    for &(shards, s) in &plane_results {
        json.push_str(&format!(
            "  \"plane_{shards}_shards_events_per_sec\": {:.0},\n",
            eps(s)
        ));
    }
    json.push_str(&format!(
        "  \"handoff_empty_tail_us\": {:.1},\n  \"handoff_with_tail_us\": {:.1},\n  \
         \"handoff_tail_records\": {ho_tail_records},\n  \"hardware_threads\": {}\n}}\n",
        ho_empty_s * 1e6,
        ho_tail_s * 1e6,
        std::thread::available_parallelism().map_or(0, |n| n.get()),
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard_plane.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("E18_shard_plane: cannot write {path}: {e}");
    }
}
