//! E19 — distributed admission: durable submit throughput with per-shard
//! WAL streams, key-local vs cross-shard.
//!
//! Drives one fixed scripted workload (the editorial chaos spec, seeded
//! candidate walk, `STEPS` accepted events) through a WAL-backed single
//! [`Coordinator`] and through a durable [`ShardPlane`] at 1, 2, and 4
//! shards — per-shard in-memory streams, `SyncPolicy::Always` — measuring
//! end-to-end accepted events per second including delivery pumping and
//! the final convergence sweep. The plane's admission counters split the
//! workload into key-local events (one `e` record on the home stream, no
//! router WAL work) and cross-shard commits (the prepare/commit protocol),
//! and the key-local share is timed separately by filtering the workload
//! to the events that commit locally at 4 shards.
//!
//! Writes `BENCH_dist_admission.json` at the repository root (consumed by
//! EXPERIMENTS.md E19). The acceptance bar is overhead-shaped: a durable
//! shards=1 plane within 1.5× of the WAL-backed coordinator, and
//! key-local admission strictly cheaper than cross-shard commits.

use std::sync::Arc;
use std::time::Instant;

use criterion::black_box;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cwf_engine::chaos::default_spec;
use cwf_engine::transport::Transport;
use cwf_engine::{
    candidates, complete, Coordinator, Event, MemBackend, PerfectTransport, Run, ShardPlane,
    ShardPlaneConfig, SyncPolicy, Wal, WalOptions,
};
use cwf_lang::WorkflowSpec;

const STEPS: usize = 200;
const WARMUP: usize = 1;
const ITERS: usize = 8;

fn opts() -> WalOptions {
    WalOptions {
        sync: SyncPolicy::Always,
        snapshot_every: Some(64),
    }
}

/// One seeded workload, replayable on any deployment: accepted events only.
fn build_events(spec: &Arc<WorkflowSpec>) -> Vec<Event> {
    let mut run = Run::new(Arc::clone(spec));
    let mut rng = StdRng::seed_from_u64(19);
    let mut events = Vec::new();
    let mut attempts = 0usize;
    while events.len() < STEPS {
        attempts += 1;
        assert!(attempts < STEPS * 20, "workload generation stalled");
        let cands = candidates(&run);
        let cand = cands[rng.gen_range(0..cands.len())].clone();
        let event = complete(&mut run, &cand);
        if run.push(event.clone()).is_ok() {
            events.push(event);
        }
    }
    events
}

fn time_passes<F: FnMut() -> usize>(mut f: F) -> (f64, usize) {
    let mut checksum = 0;
    for _ in 0..WARMUP {
        checksum = black_box(f());
    }
    let start = Instant::now();
    for _ in 0..ITERS {
        checksum = black_box(f());
    }
    (start.elapsed().as_secs_f64() / ITERS as f64, checksum)
}

/// A fresh durable plane over per-shard in-memory streams.
fn durable_plane(spec: &Arc<WorkflowSpec>, shards: usize) -> ShardPlane {
    let wals: Vec<Wal> = (0..shards)
        .map(|_| Wal::create(Box::new(MemBackend::new()), opts()).expect("fresh backend"))
        .collect();
    let transports: Vec<Box<dyn Transport>> = (0..shards)
        .map(|_| Box::new(PerfectTransport::new()) as Box<dyn Transport>)
        .collect();
    ShardPlane::with_parts(
        Arc::clone(spec),
        transports,
        Some(wals),
        ShardPlaneConfig::with_shards(shards),
    )
}

/// Submit everything through a WAL-backed single coordinator and converge.
fn coordinator_pass(spec: &Arc<WorkflowSpec>, events: &[Event]) -> usize {
    let wal = Wal::create(Box::new(MemBackend::new()), opts()).expect("fresh backend");
    let mut c = Coordinator::with_wal(Arc::clone(spec), wal);
    for e in events {
        c.submit(e.clone()).expect("accepted events replay");
    }
    c.converge(10_000);
    assert!(c.audit().is_ok());
    c.run().current().total_tuples()
}

/// Submit everything through a fresh durable `shards`-shard plane and
/// converge.
fn plane_pass(spec: &Arc<WorkflowSpec>, events: &[Event], shards: usize) -> usize {
    let mut plane = durable_plane(spec, shards);
    for e in events {
        plane.submit(e.clone()).expect("accepted events replay");
    }
    assert!(plane.converge(10_000).is_converged());
    plane.union_state().total_tuples()
}

/// Splits the workload by how it admits at `shards` shards: the number of
/// key-local events and cross-shard commits, from the admission counters.
fn admission_split(spec: &Arc<WorkflowSpec>, events: &[Event], shards: usize) -> (u64, u64) {
    let mut plane = durable_plane(spec, shards);
    for e in events {
        plane.submit(e.clone()).expect("accepted events replay");
    }
    let stats = plane.admission_stats();
    (
        stats.local_admitted.iter().sum::<u64>(),
        stats.cross_shard_committed,
    )
}

fn main() {
    let spec = default_spec();
    let events = build_events(&spec);

    let (coord_s, coord_sum) = time_passes(|| coordinator_pass(&spec, &events));
    let mut plane_results = Vec::new();
    for shards in [1usize, 2, 4] {
        let (s, sum) = time_passes(|| plane_pass(&spec, &events, shards));
        assert_eq!(
            sum, coord_sum,
            "the durable plane at {shards} shards must land on the coordinator's state"
        );
        plane_results.push((shards, s));
    }
    let (local, cross) = admission_split(&spec, &events, 4);
    assert_eq!(local + cross, STEPS as u64);

    let eps = |s: f64| STEPS as f64 / s;
    println!(
        "E19_dist_admission/coordinator+wal ... {:>9.0} events/s",
        eps(coord_s)
    );
    for &(shards, s) in &plane_results {
        println!(
            "E19_dist_admission/shards={shards}       ... {:>9.0} events/s ({:.2}x vs coordinator)",
            eps(s),
            coord_s / s
        );
    }
    println!(
        "E19_dist_admission/split@4         ... {local} key-local, {cross} cross-shard commits"
    );

    let mut json = format!(
        "{{\n  \"experiment\": \"E19_dist_admission\",\n  \"steps\": {STEPS},\n  \
         \"coordinator_wal_events_per_sec\": {:.0},\n",
        eps(coord_s)
    );
    for &(shards, s) in &plane_results {
        json.push_str(&format!(
            "  \"plane_{shards}_shards_events_per_sec\": {:.0},\n",
            eps(s)
        ));
    }
    json.push_str(&format!(
        "  \"key_local_events_at_4_shards\": {local},\n  \
         \"cross_shard_commits_at_4_shards\": {cross},\n  \"hardware_threads\": {}\n}}\n",
        std::thread::available_parallelism().map_or(0, |n| n.get()),
    ));
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_dist_admission.json"
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("E19_dist_admission: cannot write {path}: {e}");
    }
}
