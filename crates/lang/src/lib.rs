//! # cwf-lang — the rule language of collaborative workflows
//!
//! Substrate crate implementing the workflow-program syntax of Section 2:
//! FCQ¬ bodies (positive/negative literals, `Key` views, (dis)equalities),
//! update heads (insertions/deletions), per-peer rules, validation (safety,
//! view arities, the distinct-update condition), the normal form of
//! Proposition 2.3, and a concrete syntax with parser and pretty-printer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lint;
pub mod normal_form;
pub mod parser;
pub mod spec;

pub use ast::{Literal, Program, Rule, RuleBuilder, RuleId, Term, UpdateAtom, VarId};
pub use error::{LangError, Pos};
pub use lint::{lint, Lint};
pub use normal_form::{is_normal_form, is_normal_form_rule, normalize, NormalForm};
pub use parser::{parse_workflow, print_rule, print_workflow};
pub use spec::WorkflowSpec;
