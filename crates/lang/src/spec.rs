//! Workflow specifications and static validation.
//!
//! A *workflow spec* `W` is a collaborative schema `S` together with a
//! workflow program (Section 2). [`WorkflowSpec::validate`] enforces the
//! syntactic well-formedness conditions of the paper:
//!
//! * every rule belongs to a peer of `S` and only mentions relations of
//!   `D@p` with view-width argument lists;
//! * *safety*: every body variable occurs in some positive literal;
//! * the *distinct-update* condition: two updates of the same relation in
//!   one head must have keys that are distinct constants, or the body must
//!   contain the explicit disequality `x ≠ x′`.

use serde::{Deserialize, Serialize};

use cwf_model::{CollabSchema, PeerId, RelId};

use crate::ast::{Literal, Program, Rule, Term, UpdateAtom};
use crate::error::LangError;

/// A collaborative schema plus a workflow program over it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowSpec {
    collab: CollabSchema,
    program: Program,
}

impl WorkflowSpec {
    /// Bundles a schema and a program, validating the program against the
    /// schema.
    pub fn new(collab: CollabSchema, program: Program) -> Result<Self, LangError> {
        let spec = WorkflowSpec { collab, program };
        spec.validate()?;
        Ok(spec)
    }

    /// Bundles without validating (used by internal transformations whose
    /// output is correct by construction; tests re-validate).
    pub fn new_unchecked(collab: CollabSchema, program: Program) -> Self {
        WorkflowSpec { collab, program }
    }

    /// The collaborative schema `S`.
    pub fn collab(&self) -> &CollabSchema {
        &self.collab
    }

    /// The workflow program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Splits the spec into its parts.
    pub fn into_parts(self) -> (CollabSchema, Program) {
        (self.collab, self.program)
    }

    /// The width of the view of `rel` at `peer`, if visible.
    pub fn view_width(&self, peer: PeerId, rel: RelId) -> Option<usize> {
        self.collab.view(peer, rel).map(|v| v.attrs().len())
    }

    /// Validates every rule (see module docs). Returns the first violation.
    pub fn validate(&self) -> Result<(), LangError> {
        let mut names: Vec<&str> = Vec::new();
        for rule in self.program.rules() {
            if names.contains(&rule.name.as_str()) {
                return Err(LangError::DuplicateRuleName {
                    name: rule.name.clone(),
                });
            }
            names.push(&rule.name);
            self.validate_rule(rule)?;
        }
        Ok(())
    }

    fn validate_rule(&self, rule: &Rule) -> Result<(), LangError> {
        let peer = rule.peer;
        if peer.index() >= self.collab.peer_count() {
            return Err(LangError::UnknownPeer {
                rule: rule.name.clone(),
                peer,
            });
        }
        // Relation visibility and arities.
        let check_rel = |rel: RelId, args: Option<usize>| -> Result<(), LangError> {
            let Some(view) = self.collab.view(peer, rel) else {
                return Err(LangError::RelationNotVisible {
                    rule: rule.name.clone(),
                    peer,
                    rel,
                });
            };
            if let Some(got) = args {
                let expected = view.attrs().len();
                if got != expected {
                    return Err(LangError::ArityMismatch {
                        rule: rule.name.clone(),
                        rel,
                        expected,
                        got,
                    });
                }
            }
            Ok(())
        };
        for lit in &rule.body {
            match lit {
                Literal::Pos { rel, args } | Literal::Neg { rel, args } => {
                    check_rel(*rel, Some(args.len()))?
                }
                Literal::KeyPos { rel, .. } | Literal::KeyNeg { rel, .. } => check_rel(*rel, None)?,
                Literal::Eq(..) | Literal::Neq(..) => {}
            }
        }
        for upd in &rule.head {
            match upd {
                UpdateAtom::Insert { rel, args } => check_rel(*rel, Some(args.len()))?,
                UpdateAtom::Delete { rel, .. } => check_rel(*rel, None)?,
            }
        }
        // Safety: every body variable occurs in a positive literal.
        let positive = rule.positive_vars();
        for v in rule.body_vars() {
            if !positive.contains(&v) {
                return Err(LangError::UnsafeVariable {
                    rule: rule.name.clone(),
                    var: rule.vars[v.index()].clone(),
                });
            }
        }
        // Distinct-update condition. A key term that is a head-only
        // variable is instantiated to a globally fresh value by the run
        // semantics, hence distinct from every other key — such pairs are
        // accepted without an explicit disequality.
        let body_vars = rule.body_vars();
        let is_fresh_var = |t: &Term| t.as_var().is_some_and(|v| !body_vars.contains(&v));
        for (i, a) in rule.head.iter().enumerate() {
            for b in &rule.head[i + 1..] {
                if a.rel() != b.rel() {
                    continue;
                }
                let (ka, kb) = (a.key_term(), b.key_term());
                let ok = match (ka, kb) {
                    (Term::Const(x), Term::Const(y)) => x != y,
                    _ if is_fresh_var(ka) || is_fresh_var(kb) => ka != kb,
                    _ => rule.body_has_neq(ka, kb),
                };
                if !ok {
                    return Err(LangError::ConflictingUpdates {
                        rule: rule.name.clone(),
                        rel: a.rel(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::RuleBuilder;
    use cwf_model::{Condition, RelSchema, Schema, Value, ViewRel};

    /// Schema: Assign(K, Proj), Replace(K, New); peer hr sees both fully;
    /// peer sue sees nothing.
    fn collab() -> (CollabSchema, PeerId, PeerId, RelId, RelId) {
        let schema = Schema::from_relations([
            RelSchema::new("Assign", ["K", "Proj"]).unwrap(),
            RelSchema::new("Replace", ["K", "New"]).unwrap(),
        ])
        .unwrap();
        let assign = schema.rel("Assign").unwrap();
        let replace = schema.rel("Replace").unwrap();
        let mut cs = CollabSchema::new(schema);
        let hr = cs.add_peer("hr").unwrap();
        let sue = cs.add_peer("sue").unwrap();
        cs.set_full_view(hr, assign).unwrap();
        cs.set_full_view(hr, replace).unwrap();
        (cs, hr, sue, assign, replace)
    }

    fn hr_replace_rule(hr: PeerId, assign: RelId, replace: RelId) -> crate::ast::Rule {
        let mut b = RuleBuilder::new(hr, "replace");
        let x = b.var("x");
        let x2 = b.var("x2");
        let y = b.var("y");
        b.delete(assign, x.clone())
            .insert(assign, [x2.clone(), y.clone()])
            .pos(assign, [x.clone(), y.clone()])
            .pos(replace, [x.clone(), x2.clone()])
            .neq(x, x2)
            .build()
    }

    #[test]
    fn hr_example_validates() {
        let (cs, hr, _, assign, replace) = collab();
        let mut prog = Program::new();
        prog.add_rule(hr_replace_rule(hr, assign, replace));
        WorkflowSpec::new(cs, prog).unwrap();
    }

    #[test]
    fn invisible_relation_rejected() {
        let (cs, _, sue, assign, _) = collab();
        let mut prog = Program::new();
        let mut b = RuleBuilder::new(sue, "peek");
        let x = b.var("x");
        let y = b.var("y");
        prog.add_rule(b.pos(assign, [x.clone(), y]).delete(assign, x).build());
        assert!(matches!(
            WorkflowSpec::new(cs, prog),
            Err(LangError::RelationNotVisible { .. })
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (cs, hr, _, assign, _) = collab();
        let mut prog = Program::new();
        let mut b = RuleBuilder::new(hr, "bad");
        let x = b.var("x");
        prog.add_rule(b.pos(assign, [x.clone()]).delete(assign, x).build());
        assert!(matches!(
            WorkflowSpec::new(cs, prog),
            Err(LangError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn unsafe_variable_rejected() {
        let (cs, hr, _, assign, _) = collab();
        let mut prog = Program::new();
        let mut b = RuleBuilder::new(hr, "unsafe");
        let x = b.var("x");
        let y = b.var("y");
        // y occurs only in a disequality: unsafe.
        prog.add_rule(
            b.pos(assign, [x.clone(), Term::Const(Value::str("p"))])
                .neq(x.clone(), y)
                .delete(assign, x)
                .build(),
        );
        assert!(matches!(
            WorkflowSpec::new(cs, prog),
            Err(LangError::UnsafeVariable { .. })
        ));
    }

    #[test]
    fn unsafe_variable_in_negative_literal_rejected() {
        let (cs, hr, _, assign, _) = collab();
        let mut prog = Program::new();
        let mut b = RuleBuilder::new(hr, "negonly");
        let x = b.var("x");
        prog.add_rule(
            b.key_neg(assign, x.clone())
                .insert(assign, [x, Term::Const(Value::str("p"))])
                .build(),
        );
        assert!(matches!(
            WorkflowSpec::new(cs, prog),
            Err(LangError::UnsafeVariable { .. })
        ));
    }

    #[test]
    fn conflicting_updates_need_disequality() {
        let (cs, hr, _, assign, replace) = collab();
        // Without x ≠ x2 the rule must be rejected.
        let mut prog = Program::new();
        let mut b = RuleBuilder::new(hr, "noneq");
        let x = b.var("x");
        let x2 = b.var("x2");
        let y = b.var("y");
        prog.add_rule(
            b.delete(assign, x.clone())
                .insert(assign, [x2.clone(), y.clone()])
                .pos(assign, [x.clone(), y.clone()])
                .pos(replace, [x, x2])
                .build(),
        );
        assert!(matches!(
            WorkflowSpec::new(cs, prog),
            Err(LangError::ConflictingUpdates { .. })
        ));
    }

    #[test]
    fn same_constant_keys_rejected_distinct_allowed() {
        let (cs, hr, _, assign, _) = collab();
        let mk = |k1: i64, k2: i64| {
            let mut prog = Program::new();
            let b = RuleBuilder::new(hr, "consts");
            prog.add_rule(
                b.insert(
                    assign,
                    [Term::Const(Value::int(k1)), Term::Const(Value::str("p"))],
                )
                .insert(
                    assign,
                    [Term::Const(Value::int(k2)), Term::Const(Value::str("q"))],
                )
                .build(),
            );
            WorkflowSpec::new(cs.clone(), prog)
        };
        assert!(matches!(
            mk(1, 1),
            Err(LangError::ConflictingUpdates { .. })
        ));
        assert!(mk(1, 2).is_ok());
    }

    #[test]
    fn duplicate_rule_names_rejected() {
        let (cs, hr, _, assign, _) = collab();
        let mut prog = Program::new();
        for _ in 0..2 {
            let b = RuleBuilder::new(hr, "same");
            prog.add_rule(
                b.insert(
                    assign,
                    [Term::Const(Value::int(1)), Term::Const(Value::str("p"))],
                )
                .build(),
            );
        }
        assert!(matches!(
            WorkflowSpec::new(cs, prog),
            Err(LangError::DuplicateRuleName { .. })
        ));
    }

    #[test]
    fn unknown_peer_rejected() {
        let (cs, _, _, assign, _) = collab();
        let mut prog = Program::new();
        let b = RuleBuilder::new(PeerId(9), "ghost");
        prog.add_rule(
            b.insert(
                assign,
                [Term::Const(Value::int(1)), Term::Const(Value::str("p"))],
            )
            .build(),
        );
        assert!(matches!(
            WorkflowSpec::new(cs, prog),
            Err(LangError::UnknownPeer { .. })
        ));
    }

    #[test]
    fn view_width_reflects_projection() {
        let (mut cs, _, sue, assign, _) = collab();
        cs.set_view(sue, ViewRel::new(assign, [], Condition::True))
            .unwrap();
        let spec = WorkflowSpec::new_unchecked(cs, Program::new());
        assert_eq!(spec.view_width(sue, assign), Some(1), "key only");
        assert_eq!(spec.view_width(sue, RelId(1)), None);
    }
}
