//! Abstract syntax of workflow programs (Section 2).
//!
//! A *rule at peer p* is `Update :- Cond` where `Cond` is a full conjunctive
//! query with negation (FCQ¬) over `D@p` and `Update` is a sequence of
//! insertion atoms `+R@p(x̄)` and deletion atoms `−Key_{R@p}(x)`.
//!
//! Variables are rule-local: each rule carries its own variable name table
//! and [`VarId`]s index into it.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use cwf_model::{PeerId, RelId, Value};

/// Index of a variable within a rule's variable table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub u32);

impl VarId {
    /// Zero-based index usable with slices.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Index of a rule within a program.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RuleId(pub u32);

impl RuleId {
    /// Zero-based index usable with slices.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A term: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A rule variable.
    Var(VarId),
    /// A domain constant (possibly `⊥`).
    Const(Value),
}

impl Term {
    /// The variable, if this term is one.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if this term is one.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(v) => Some(v),
        }
    }
}

impl From<VarId> for Term {
    fn from(v: VarId) -> Self {
        Term::Var(v)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

/// A literal of an FCQ¬ body over `D@p`.
///
/// Positional convention: the arguments of `Pos`/`Neg` literals follow the
/// *view* attribute order of `R@p` (sorted ids, key first), so `args[0]` is
/// always the key term.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Literal {
    /// `R@p(x̄)`.
    Pos {
        /// The viewed relation.
        rel: RelId,
        /// Arguments in view order; `args[0]` is the key.
        args: Vec<Term>,
    },
    /// `¬R@p(x̄)` (absent in normal form).
    Neg {
        /// The viewed relation.
        rel: RelId,
        /// Arguments in view order; `args[0]` is the key.
        args: Vec<Term>,
    },
    /// `Key_{R@p}(y)` (syntactic sugar; absent in normal form).
    KeyPos {
        /// The viewed relation.
        rel: RelId,
        /// The key term.
        key: Term,
    },
    /// `¬Key_{R@p}(y)` — *not* expressible as sugar, fundamental.
    KeyNeg {
        /// The viewed relation.
        rel: RelId,
        /// The key term.
        key: Term,
    },
    /// `x = y`.
    Eq(Term, Term),
    /// `x ≠ y`.
    Neq(Term, Term),
}

impl Literal {
    /// Is this a positive literal for the purpose of the safety condition?
    /// (`R(ū)` and its sugar `Key_R(y)` both bind variables.)
    pub fn is_positive(&self) -> bool {
        matches!(self, Literal::Pos { .. } | Literal::KeyPos { .. })
    }

    /// All terms of the literal.
    pub fn terms(&self) -> Vec<&Term> {
        match self {
            Literal::Pos { args, .. } | Literal::Neg { args, .. } => args.iter().collect(),
            Literal::KeyPos { key, .. } | Literal::KeyNeg { key, .. } => vec![key],
            Literal::Eq(a, b) | Literal::Neq(a, b) => vec![a, b],
        }
    }

    /// All variables of the literal.
    pub fn vars(&self) -> BTreeSet<VarId> {
        self.terms().into_iter().filter_map(Term::as_var).collect()
    }
}

/// An update atom of a rule head.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateAtom {
    /// `+R@p(x̄)` — arguments in view order, `args[0]` the key.
    Insert {
        /// The viewed relation.
        rel: RelId,
        /// Arguments in view order; `args[0]` is the key.
        args: Vec<Term>,
    },
    /// `−Key_{R@p}(x)`.
    Delete {
        /// The viewed relation.
        rel: RelId,
        /// The key term.
        key: Term,
    },
}

impl UpdateAtom {
    /// The relation updated by this atom.
    pub fn rel(&self) -> RelId {
        match self {
            UpdateAtom::Insert { rel, .. } | UpdateAtom::Delete { rel, .. } => *rel,
        }
    }

    /// The key term of the updated tuple.
    pub fn key_term(&self) -> &Term {
        match self {
            UpdateAtom::Insert { args, .. } => &args[0],
            UpdateAtom::Delete { key, .. } => key,
        }
    }

    /// All variables of the atom.
    pub fn vars(&self) -> BTreeSet<VarId> {
        match self {
            UpdateAtom::Insert { args, .. } => args.iter().filter_map(Term::as_var).collect(),
            UpdateAtom::Delete { key, .. } => key.as_var().into_iter().collect(),
        }
    }

    /// Is this an insertion?
    pub fn is_insert(&self) -> bool {
        matches!(self, UpdateAtom::Insert { .. })
    }
}

/// A rule `Update :- Cond` at a peer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// The peer owning the rule.
    pub peer: PeerId,
    /// A human-readable rule name (unique within a program).
    pub name: String,
    /// The update sequence (head).
    pub head: Vec<UpdateAtom>,
    /// The FCQ¬ condition (body).
    pub body: Vec<Literal>,
    /// Variable name table; `VarId(i)` is `vars[i]`.
    pub vars: Vec<String>,
}

impl Rule {
    /// Variables occurring in the body.
    pub fn body_vars(&self) -> BTreeSet<VarId> {
        self.body.iter().flat_map(|l| l.vars()).collect()
    }

    /// Variables bound by *positive* body literals (the safety set).
    pub fn positive_vars(&self) -> BTreeSet<VarId> {
        self.body
            .iter()
            .filter(|l| l.is_positive())
            .flat_map(|l| l.vars())
            .collect()
    }

    /// Variables occurring in the head.
    pub fn head_vars(&self) -> BTreeSet<VarId> {
        self.head.iter().flat_map(|u| u.vars()).collect()
    }

    /// Head-only variables: these must be instantiated to globally fresh
    /// values by the run semantics (Section 2).
    pub fn fresh_vars(&self) -> BTreeSet<VarId> {
        let body = self.body_vars();
        self.head_vars()
            .into_iter()
            .filter(|v| !body.contains(v))
            .collect()
    }

    /// All constants of the rule (contributes to `const(P)`).
    pub fn constants(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        for l in &self.body {
            for t in l.terms() {
                if let Term::Const(v) = t {
                    out.insert(*v);
                }
            }
        }
        for u in &self.head {
            match u {
                UpdateAtom::Insert { args, .. } => {
                    for t in args {
                        if let Term::Const(v) = t {
                            out.insert(*v);
                        }
                    }
                }
                UpdateAtom::Delete { key, .. } => {
                    if let Term::Const(v) = key {
                        out.insert(*v);
                    }
                }
            }
        }
        out
    }

    /// Does the body contain the syntactic disequality `a ≠ b` (in either
    /// orientation)?
    pub fn body_has_neq(&self, a: &Term, b: &Term) -> bool {
        self.body.iter().any(|l| match l {
            Literal::Neq(x, y) => (x == a && y == b) || (x == b && y == a),
            _ => false,
        })
    }

    /// Number of relational facts in the body (the `b` of Theorem 6.3).
    pub fn body_fact_count(&self) -> usize {
        self.body
            .iter()
            .filter(|l| {
                matches!(
                    l,
                    Literal::Pos { .. }
                        | Literal::Neg { .. }
                        | Literal::KeyPos { .. }
                        | Literal::KeyNeg { .. }
                )
            })
            .count()
    }

    /// Is the head a single update (a *linear-head* rule, Section 6)?
    pub fn is_linear_head(&self) -> bool {
        self.head.len() == 1
    }
}

/// A workflow program: a finite set of rules, each owned by a peer.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Program {
    rules: Vec<Rule>,
}

impl Program {
    /// The empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule, returning its id.
    pub fn add_rule(&mut self, rule: Rule) -> RuleId {
        let id = RuleId(self.rules.len() as u32);
        self.rules.push(rule);
        id
    }

    /// All rules in id order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The rule with id `r`.
    pub fn rule(&self, r: RuleId) -> &Rule {
        &self.rules[r.index()]
    }

    /// All rule ids.
    pub fn rule_ids(&self) -> impl ExactSizeIterator<Item = RuleId> {
        (0..self.rules.len() as u32).map(RuleId)
    }

    /// The ids of the rules belonging to `peer`.
    pub fn rules_of(&self, peer: PeerId) -> impl Iterator<Item = RuleId> + '_ {
        self.rules
            .iter()
            .enumerate()
            .filter(move |(_, r)| r.peer == peer)
            .map(|(i, _)| RuleId(i as u32))
    }

    /// Resolves a rule by name.
    pub fn rule_by_name(&self, name: &str) -> Option<RuleId> {
        self.rules
            .iter()
            .position(|r| r.name == name)
            .map(|i| RuleId(i as u32))
    }

    /// `const(P)`: the constants used in the program, together with `⊥`
    /// (Section 5).
    pub fn const_set(&self) -> BTreeSet<Value> {
        let mut out: BTreeSet<Value> = self.rules.iter().flat_map(Rule::constants).collect();
        out.insert(Value::Null);
        out
    }

    /// Maximum number of updates in any rule head (the `M` used to build
    /// trivially complete view programs, Section 5).
    pub fn max_head_updates(&self) -> usize {
        self.rules.iter().map(|r| r.head.len()).max().unwrap_or(0)
    }

    /// Maximum number of relational facts in any rule body (the `b` of
    /// Theorem 6.3).
    pub fn max_body_facts(&self) -> usize {
        self.rules
            .iter()
            .map(Rule::body_fact_count)
            .max()
            .unwrap_or(0)
    }

    /// Are all rule heads single updates (Section 6's *linear-head* class)?
    pub fn is_linear_head(&self) -> bool {
        self.rules.iter().all(Rule::is_linear_head)
    }
}

/// A builder for constructing rules programmatically (the parser and the
/// workload generators both use it).
#[derive(Debug, Clone)]
pub struct RuleBuilder {
    peer: PeerId,
    name: String,
    head: Vec<UpdateAtom>,
    body: Vec<Literal>,
    vars: Vec<String>,
}

impl RuleBuilder {
    /// Starts a rule named `name` at `peer`.
    pub fn new(peer: PeerId, name: impl Into<String>) -> Self {
        RuleBuilder {
            peer,
            name: name.into(),
            head: Vec::new(),
            body: Vec::new(),
            vars: Vec::new(),
        }
    }

    /// Interns a variable name, returning its id (idempotent per name).
    pub fn var(&mut self, name: impl AsRef<str>) -> Term {
        let name = name.as_ref();
        let id = match self.vars.iter().position(|v| v == name) {
            Some(i) => VarId(i as u32),
            None => {
                self.vars.push(name.to_string());
                VarId(self.vars.len() as u32 - 1)
            }
        };
        Term::Var(id)
    }

    /// Adds `+rel(args)` to the head.
    pub fn insert(mut self, rel: RelId, args: impl IntoIterator<Item = Term>) -> Self {
        self.head.push(UpdateAtom::Insert {
            rel,
            args: args.into_iter().collect(),
        });
        self
    }

    /// Adds `−Key_rel(key)` to the head.
    pub fn delete(mut self, rel: RelId, key: Term) -> Self {
        self.head.push(UpdateAtom::Delete { rel, key });
        self
    }

    /// Adds a positive body literal.
    pub fn pos(mut self, rel: RelId, args: impl IntoIterator<Item = Term>) -> Self {
        self.body.push(Literal::Pos {
            rel,
            args: args.into_iter().collect(),
        });
        self
    }

    /// Adds a negative body literal.
    pub fn neg(mut self, rel: RelId, args: impl IntoIterator<Item = Term>) -> Self {
        self.body.push(Literal::Neg {
            rel,
            args: args.into_iter().collect(),
        });
        self
    }

    /// Adds `Key_rel(key)` to the body.
    pub fn key_pos(mut self, rel: RelId, key: Term) -> Self {
        self.body.push(Literal::KeyPos { rel, key });
        self
    }

    /// Adds `¬Key_rel(key)` to the body.
    pub fn key_neg(mut self, rel: RelId, key: Term) -> Self {
        self.body.push(Literal::KeyNeg { rel, key });
        self
    }

    /// Adds `a = b` to the body.
    pub fn eq(mut self, a: Term, b: Term) -> Self {
        self.body.push(Literal::Eq(a, b));
        self
    }

    /// Adds `a ≠ b` to the body.
    pub fn neq(mut self, a: Term, b: Term) -> Self {
        self.body.push(Literal::Neq(a, b));
        self
    }

    /// Finishes the rule.
    pub fn build(self) -> Rule {
        Rule {
            peer: self.peer,
            name: self.name,
            head: self.head,
            body: self.body,
            vars: self.vars,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: PeerId = PeerId(0);
    const R: RelId = RelId(0);
    const S: RelId = RelId(1);

    /// The HR example of Section 2:
    /// `−Key_Assign(x), +Assign(x′, y) :- Assign(x, y), Replace(x, x′), x ≠ x′`.
    fn hr_rule() -> Rule {
        let mut b = RuleBuilder::new(P, "replace");
        let x = b.var("x");
        let x2 = b.var("x2");
        let y = b.var("y");
        b.delete(R, x.clone())
            .insert(R, [x2.clone(), y.clone()])
            .pos(R, [x.clone(), y.clone()])
            .pos(S, [x.clone(), x2.clone()])
            .neq(x, x2)
            .build()
    }

    #[test]
    fn var_interning_is_idempotent() {
        let mut b = RuleBuilder::new(P, "r");
        let x1 = b.var("x");
        let x2 = b.var("x");
        let y = b.var("y");
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
    }

    #[test]
    fn var_sets() {
        let r = hr_rule();
        assert_eq!(r.vars, vec!["x", "x2", "y"]);
        assert_eq!(r.body_vars().len(), 3);
        assert_eq!(r.head_vars().len(), 3);
        assert!(r.fresh_vars().is_empty());
        assert_eq!(r.positive_vars().len(), 3);
    }

    #[test]
    fn fresh_vars_are_head_only() {
        let mut b = RuleBuilder::new(P, "mint");
        let k = b.var("k");
        let r = b.insert(R, [k, Term::Const(Value::str("c"))]).build();
        assert_eq!(r.fresh_vars().len(), 1);
    }

    #[test]
    fn body_has_neq_checks_both_orientations() {
        let r = hr_rule();
        let x = Term::Var(VarId(0));
        let x2 = Term::Var(VarId(1));
        assert!(r.body_has_neq(&x, &x2));
        assert!(r.body_has_neq(&x2, &x));
        let y = Term::Var(VarId(2));
        assert!(!r.body_has_neq(&x, &y));
    }

    #[test]
    fn constants_and_const_set() {
        let mut prog = Program::new();
        let mut b = RuleBuilder::new(P, "c");
        let x = b.var("x");
        prog.add_rule(
            b.insert(R, [x.clone(), Term::Const(Value::int(7))])
                .pos(R, [x, Term::Const(Value::str("a"))])
                .build(),
        );
        let consts = prog.const_set();
        assert!(consts.contains(&Value::Null), "⊥ is always in const(P)");
        assert!(consts.contains(&Value::int(7)));
        assert!(consts.contains(&Value::str("a")));
        assert_eq!(consts.len(), 3);
    }

    #[test]
    fn program_accessors() {
        let mut prog = Program::new();
        let id = prog.add_rule(hr_rule());
        assert_eq!(prog.rule_by_name("replace"), Some(id));
        assert_eq!(prog.rule_by_name("nope"), None);
        assert_eq!(prog.rules_of(P).count(), 1);
        assert_eq!(prog.rules_of(PeerId(9)).count(), 0);
        assert_eq!(prog.max_head_updates(), 2);
        assert_eq!(prog.max_body_facts(), 2);
        assert!(!prog.is_linear_head());
    }

    #[test]
    fn literal_classification() {
        let pos = Literal::Pos {
            rel: R,
            args: vec![Term::Var(VarId(0))],
        };
        let keyneg = Literal::KeyNeg {
            rel: R,
            key: Term::Var(VarId(0)),
        };
        let keypos = Literal::KeyPos {
            rel: R,
            key: Term::Var(VarId(0)),
        };
        assert!(pos.is_positive());
        assert!(keypos.is_positive());
        assert!(!keyneg.is_positive());
        assert_eq!(keyneg.vars().len(), 1);
    }

    #[test]
    fn update_atom_accessors() {
        let ins = UpdateAtom::Insert {
            rel: R,
            args: vec![Term::Const(Value::int(0))],
        };
        let del = UpdateAtom::Delete {
            rel: S,
            key: Term::Var(VarId(1)),
        };
        assert!(ins.is_insert());
        assert!(!del.is_insert());
        assert_eq!(ins.rel(), R);
        assert_eq!(del.rel(), S);
        assert_eq!(ins.key_term(), &Term::Const(Value::int(0)));
        assert_eq!(del.vars().len(), 1);
    }
}
