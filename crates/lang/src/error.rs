//! Errors of the language layer: validation and parsing.

use std::fmt;

use cwf_model::{ModelError, PeerId, RelId};

/// A source position (1-based line and column) for parse errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors raised while validating or parsing workflow programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// An underlying schema error.
    Model(ModelError),
    /// Two rules share a name.
    DuplicateRuleName {
        /// The repeated rule name.
        name: String,
    },
    /// A rule references a peer id outside the collaborative schema.
    UnknownPeer {
        /// The offending rule name.
        rule: String,
        /// The unknown peer.
        peer: PeerId,
    },
    /// A rule at `peer` uses relation `rel` that the peer does not see.
    RelationNotVisible {
        /// The offending rule name.
        rule: String,
        /// The rule's peer.
        peer: PeerId,
        /// The invisible relation.
        rel: RelId,
    },
    /// A literal or update has the wrong number of arguments for the view.
    ArityMismatch {
        /// The offending rule name.
        rule: String,
        /// The relation concerned.
        rel: RelId,
        /// Expected view width.
        expected: usize,
        /// Actual argument count.
        got: usize,
    },
    /// The safety condition is violated: a body variable does not occur in
    /// any positive literal.
    UnsafeVariable {
        /// The offending rule name.
        rule: String,
        /// The unsafe variable's name.
        var: String,
    },
    /// Two updates of the same relation may touch the same key: either both
    /// keys are the same constant, or the body lacks the required `x ≠ x′`.
    ConflictingUpdates {
        /// The offending rule name.
        rule: String,
        /// The doubly-updated relation.
        rel: RelId,
    },
    /// A parse error at a position.
    Parse {
        /// Where the error occurred.
        pos: Pos,
        /// What went wrong.
        message: String,
    },
    /// A name used in the program text could not be resolved.
    Unresolved {
        /// Where the name occurred.
        pos: Pos,
        /// The kind of name (relation, peer, attribute).
        kind: &'static str,
        /// The name itself.
        name: String,
    },
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Model(e) => write!(f, "{e}"),
            LangError::DuplicateRuleName { name } => {
                write!(f, "duplicate rule name {name}")
            }
            LangError::UnknownPeer { rule, peer } => {
                write!(f, "rule {rule}: unknown peer {peer:?}")
            }
            LangError::RelationNotVisible { rule, peer, rel } => write!(
                f,
                "rule {rule}: relation {rel:?} is not visible at peer {peer:?}"
            ),
            LangError::ArityMismatch {
                rule,
                rel,
                expected,
                got,
            } => write!(
                f,
                "rule {rule}: relation {rel:?} expects {expected} view arguments, got {got}"
            ),
            LangError::UnsafeVariable { rule, var } => write!(
                f,
                "rule {rule}: variable {var} does not occur in a positive body literal"
            ),
            LangError::ConflictingUpdates { rule, rel } => write!(
                f,
                "rule {rule}: two updates of relation {rel:?} may touch the same key \
                 (need distinct constants or an explicit x ≠ x′ in the body)"
            ),
            LangError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            LangError::Unresolved { pos, kind, name } => {
                write!(f, "unresolved {kind} `{name}` at {pos}")
            }
        }
    }
}

impl std::error::Error for LangError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LangError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for LangError {
    fn from(e: ModelError) -> Self {
        LangError::Model(e)
    }
}
