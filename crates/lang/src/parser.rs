//! A concrete syntax for workflow specifications.
//!
//! ```text
//! schema {
//!   Assign(K, Proj);
//!   Replace(K, New);
//! }
//! peers {
//!   hr sees Assign(*), Replace(*);
//!   sue sees Assign(K) where Proj = "apollo";
//! }
//! rules {
//!   replace @ hr:
//!     -key Assign(x), +Assign(x2, y)
//!     :- Assign(x, y), Replace(x, x2), x != x2;
//! }
//! ```
//!
//! * Relation arguments in rule bodies/heads are positional **in view
//!   order** (schema attribute order restricted to the visible attributes,
//!   key first).
//! * `R(*)` in a `sees` clause grants a full view; `R(K, A)` projects; an
//!   optional `where <condition>` adds a selection over the *full* attribute
//!   set of `R`.
//! * Constants: `"strings"`, integers, `null` (⊥), `true`, `false`.
//!   Identifiers in term position are variables.
//! * Body literals: `R(t, u)`, `not R(t, u)`, `key R(t)`, `not key R(t)`,
//!   `t = u`, `t != u`. Head atoms: `+R(t, u)`, `-key R(t)`.
//! * Comments run from `//` or `#` to end of line.

use cwf_model::{CollabSchema, Condition, PeerId, RelId, RelSchema, Schema, Value, ViewRel};

use crate::ast::{Literal, Program, Rule, RuleBuilder, Term, UpdateAtom};
use crate::error::{LangError, Pos};
use crate::spec::WorkflowSpec;

/// Parses a complete workflow specification and validates it.
///
/// ```
/// use cwf_lang::parse_workflow;
/// let spec = parse_workflow(r#"
///     schema { Task(K); Done(K); }
///     peers { a sees Task(*), Done(*); b sees Task(*), Done(*); }
///     rules {
///         mk  @ a: +Task(t) :- ;
///         fin @ b: +Done(d) :- Task(d), not key Done(d);
///     }
/// "#).unwrap();
/// assert_eq!(spec.program().rules().len(), 2);
/// assert!(spec.collab().peer("a").is_some());
/// ```
pub fn parse_workflow(input: &str) -> Result<WorkflowSpec, LangError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, at: 0 };
    let spec = p.workflow()?;
    spec.validate()?;
    Ok(spec)
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Semi,
    Colon,
    At,
    Plus,
    Minus,
    Star,
    Eq,
    Neq,
    Turnstile,
    Eof,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    pos: Pos,
}

fn lex(input: &str) -> Result<Vec<Spanned>, LangError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut chars = input.chars().peekable();
    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }
    loop {
        let pos = Pos { line, col };
        let Some(&c) = chars.peek() else {
            out.push(Spanned { tok: Tok::Eof, pos });
            return Ok(out);
        };
        match c {
            c if c.is_whitespace() => {
                bump!();
            }
            '/' => {
                bump!();
                if chars.peek() == Some(&'/') {
                    while let Some(&n) = chars.peek() {
                        if n == '\n' {
                            break;
                        }
                        bump!();
                    }
                } else {
                    return Err(LangError::Parse {
                        pos,
                        message: "unexpected `/` (use `//` for comments)".into(),
                    });
                }
            }
            '#' => {
                while let Some(&n) = chars.peek() {
                    if n == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '{' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::LBrace,
                    pos,
                });
            }
            '}' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::RBrace,
                    pos,
                });
            }
            '(' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::LParen,
                    pos,
                });
            }
            ')' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::RParen,
                    pos,
                });
            }
            ',' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::Comma,
                    pos,
                });
            }
            ';' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::Semi,
                    pos,
                });
            }
            '@' => {
                bump!();
                out.push(Spanned { tok: Tok::At, pos });
            }
            '+' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::Plus,
                    pos,
                });
            }
            '*' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::Star,
                    pos,
                });
            }
            '=' => {
                bump!();
                out.push(Spanned { tok: Tok::Eq, pos });
            }
            '!' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Spanned { tok: Tok::Neq, pos });
                } else {
                    return Err(LangError::Parse {
                        pos,
                        message: "expected `!=`".into(),
                    });
                }
            }
            ':' => {
                bump!();
                if chars.peek() == Some(&'-') {
                    bump!();
                    out.push(Spanned {
                        tok: Tok::Turnstile,
                        pos,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Colon,
                        pos,
                    });
                }
            }
            '-' => {
                bump!();
                if chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                    let mut n = String::from("-");
                    while let Some(&d) = chars.peek() {
                        if d.is_ascii_digit() {
                            n.push(d);
                            bump!();
                        } else {
                            break;
                        }
                    }
                    let v = n.parse::<i64>().map_err(|_| LangError::Parse {
                        pos,
                        message: format!("invalid integer {n}"),
                    })?;
                    out.push(Spanned {
                        tok: Tok::Int(v),
                        pos,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Minus,
                        pos,
                    });
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        Some('"') => break,
                        Some('\\') => match bump!() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('n') => s.push('\n'),
                            other => {
                                return Err(LangError::Parse {
                                    pos,
                                    message: format!("invalid escape {other:?}"),
                                })
                            }
                        },
                        Some(ch) => s.push(ch),
                        None => {
                            return Err(LangError::Parse {
                                pos,
                                message: "unterminated string".into(),
                            })
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    pos,
                });
            }
            c if c.is_ascii_digit() => {
                let mut n = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        n.push(d);
                        bump!();
                    } else {
                        break;
                    }
                }
                let v = n.parse::<i64>().map_err(|_| LangError::Parse {
                    pos,
                    message: format!("invalid integer {n}"),
                })?;
                out.push(Spanned {
                    tok: Tok::Int(v),
                    pos,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '\'' {
                        s.push(d);
                        bump!();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Ident(s),
                    pos,
                });
            }
            other => {
                return Err(LangError::Parse {
                    pos,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
}

// --------------------------------------------------------------- parser --

struct Parser {
    tokens: Vec<Spanned>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.at].tok
    }

    fn pos(&self) -> Pos {
        self.tokens[self.at].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.at].tok.clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), LangError> {
        if self.peek() == &tok {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn err(&self, message: String) -> LangError {
        LangError::Parse {
            pos: self.pos(),
            message,
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, LangError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), LangError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn workflow(&mut self) -> Result<WorkflowSpec, LangError> {
        // schema { ... }
        self.keyword("schema")?;
        self.expect(Tok::LBrace, "`{`")?;
        let mut schema = Schema::new();
        while self.peek() != &Tok::RBrace {
            let pos = self.pos();
            let name = self.ident("relation name")?;
            self.expect(Tok::LParen, "`(`")?;
            let mut attrs = Vec::new();
            loop {
                attrs.push(self.ident("attribute name")?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(Tok::RParen, "`)`")?;
            self.expect(Tok::Semi, "`;`")?;
            let rel = RelSchema::new(name, attrs).map_err(LangError::Model)?;
            schema.add_relation(rel).map_err(|e| match e {
                e @ cwf_model::ModelError::DuplicateRelation { .. } => LangError::Model(e),
                e => LangError::Parse {
                    pos,
                    message: e.to_string(),
                },
            })?;
        }
        self.bump(); // }

        // peers { ... }
        self.keyword("peers")?;
        self.expect(Tok::LBrace, "`{`")?;
        let mut collab = CollabSchema::new(schema);
        while self.peek() != &Tok::RBrace {
            let peer_name = self.ident("peer name")?;
            let peer = collab.add_peer(peer_name).map_err(LangError::Model)?;
            self.keyword("sees")?;
            // `sees ;` declares a peer with an empty view schema.
            if self.peek() != &Tok::Semi {
                loop {
                    self.view_decl(&mut collab, peer)?;
                    if self.peek() == &Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(Tok::Semi, "`;`")?;
        }
        self.bump(); // }

        // rules { ... }
        self.keyword("rules")?;
        self.expect(Tok::LBrace, "`{`")?;
        let mut program = Program::new();
        while self.peek() != &Tok::RBrace {
            let rule = self.rule_decl(&collab)?;
            program.add_rule(rule);
        }
        self.bump(); // }
        if self.peek() != &Tok::Eof {
            return Err(self.err("trailing input after `rules` block".into()));
        }
        Ok(WorkflowSpec::new_unchecked(collab, program))
    }

    fn resolve_rel(&self, collab: &CollabSchema, name: &str, pos: Pos) -> Result<RelId, LangError> {
        collab.schema().rel(name).ok_or(LangError::Unresolved {
            pos,
            kind: "relation",
            name: name.to_string(),
        })
    }

    fn view_decl(&mut self, collab: &mut CollabSchema, peer: PeerId) -> Result<(), LangError> {
        let pos = self.pos();
        let rel_name = self.ident("relation name")?;
        let rel = self.resolve_rel(collab, &rel_name, pos)?;
        self.expect(Tok::LParen, "`(`")?;
        let attrs: Vec<cwf_model::AttrId> = if self.peek() == &Tok::Star {
            self.bump();
            collab.schema().relation(rel).attr_ids().collect()
        } else {
            let mut out = Vec::new();
            loop {
                let pos = self.pos();
                let a = self.ident("attribute name")?;
                let id = collab
                    .schema()
                    .relation(rel)
                    .attr(&a)
                    .ok_or(LangError::Unresolved {
                        pos,
                        kind: "attribute",
                        name: a,
                    })?;
                out.push(id);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            out
        };
        self.expect(Tok::RParen, "`)`")?;
        let selection = if self.at_keyword("where") {
            self.bump();
            self.condition(collab, rel)?
        } else {
            Condition::True
        };
        collab
            .set_view(peer, ViewRel::new(rel, attrs, selection))
            .map_err(LangError::Model)
    }

    /// condition := and_cond ("or" and_cond)*
    fn condition(&mut self, collab: &CollabSchema, rel: RelId) -> Result<Condition, LangError> {
        let mut parts = vec![self.and_cond(collab, rel)?];
        while self.at_keyword("or") {
            self.bump();
            parts.push(self.and_cond(collab, rel)?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            Condition::Or(parts)
        })
    }

    fn and_cond(&mut self, collab: &CollabSchema, rel: RelId) -> Result<Condition, LangError> {
        let mut parts = vec![self.not_cond(collab, rel)?];
        while self.at_keyword("and") {
            self.bump();
            parts.push(self.not_cond(collab, rel)?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            Condition::And(parts)
        })
    }

    fn not_cond(&mut self, collab: &CollabSchema, rel: RelId) -> Result<Condition, LangError> {
        if self.at_keyword("not") {
            self.bump();
            return Ok(self.not_cond(collab, rel)?.not());
        }
        if self.peek() == &Tok::LParen {
            self.bump();
            let c = self.condition(collab, rel)?;
            self.expect(Tok::RParen, "`)`")?;
            return Ok(c);
        }
        if self.at_keyword("true") {
            self.bump();
            return Ok(Condition::True);
        }
        if self.at_keyword("false") {
            self.bump();
            return Ok(Condition::False);
        }
        // attr = (const | attr)
        let pos = self.pos();
        let lhs = self.ident("attribute name")?;
        let a = collab
            .schema()
            .relation(rel)
            .attr(&lhs)
            .ok_or(LangError::Unresolved {
                pos,
                kind: "attribute",
                name: lhs,
            })?;
        self.expect(Tok::Eq, "`=`")?;
        match self.peek().clone() {
            Tok::Str(s) => {
                self.bump();
                Ok(Condition::EqConst(a, Value::str(s)))
            }
            Tok::Int(i) => {
                self.bump();
                Ok(Condition::EqConst(a, Value::Int(i)))
            }
            Tok::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "null" => Ok(Condition::EqConst(a, Value::Null)),
                    "true" => Ok(Condition::EqConst(a, Value::Bool(true))),
                    "false" => Ok(Condition::EqConst(a, Value::Bool(false))),
                    other => {
                        let pos = self.pos();
                        let b = collab.schema().relation(rel).attr(other).ok_or(
                            LangError::Unresolved {
                                pos,
                                kind: "attribute",
                                name: other.to_string(),
                            },
                        )?;
                        Ok(Condition::EqAttr(a, b))
                    }
                }
            }
            other => Err(self.err(format!("expected constant or attribute, found {other:?}"))),
        }
    }

    fn rule_decl(&mut self, collab: &CollabSchema) -> Result<Rule, LangError> {
        let rule_name = self.ident("rule name")?;
        self.expect(Tok::At, "`@`")?;
        let pos = self.pos();
        let peer_name = self.ident("peer name")?;
        let peer = collab.peer(&peer_name).ok_or(LangError::Unresolved {
            pos,
            kind: "peer",
            name: peer_name,
        })?;
        self.expect(Tok::Colon, "`:`")?;
        let mut builder = RuleBuilder::new(peer, rule_name);
        // head
        loop {
            match self.peek().clone() {
                Tok::Plus => {
                    self.bump();
                    let pos = self.pos();
                    let rel_name = self.ident("relation name")?;
                    let rel = self.resolve_rel(collab, &rel_name, pos)?;
                    let args = self.term_list(&mut builder)?;
                    builder = builder.insert(rel, args);
                }
                Tok::Minus => {
                    self.bump();
                    self.keyword("key")?;
                    let pos = self.pos();
                    let rel_name = self.ident("relation name")?;
                    let rel = self.resolve_rel(collab, &rel_name, pos)?;
                    self.expect(Tok::LParen, "`(`")?;
                    let key = self.term(&mut builder)?;
                    self.expect(Tok::RParen, "`)`")?;
                    builder = builder.delete(rel, key);
                }
                other => return Err(self.err(format!("expected `+` or `-key`, found {other:?}"))),
            }
            if self.peek() == &Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(Tok::Turnstile, "`:-`")?;
        // body (possibly empty, terminated by `;`)
        if self.peek() != &Tok::Semi {
            loop {
                builder = self.body_literal(collab, builder)?;
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::Semi, "`;`")?;
        Ok(builder.build())
    }

    fn body_literal(
        &mut self,
        collab: &CollabSchema,
        mut builder: RuleBuilder,
    ) -> Result<RuleBuilder, LangError> {
        // not R(...) | not key R(t) | key R(t) | R(...) | t (=|!=) t
        if self.at_keyword("not") {
            self.bump();
            if self.at_keyword("key") {
                self.bump();
                let pos = self.pos();
                let rel_name = self.ident("relation name")?;
                let rel = self.resolve_rel(collab, &rel_name, pos)?;
                self.expect(Tok::LParen, "`(`")?;
                let key = self.term(&mut builder)?;
                self.expect(Tok::RParen, "`)`")?;
                return Ok(builder.key_neg(rel, key));
            }
            let pos = self.pos();
            let rel_name = self.ident("relation name")?;
            let rel = self.resolve_rel(collab, &rel_name, pos)?;
            let args = self.term_list(&mut builder)?;
            return Ok(builder.neg(rel, args));
        }
        if self.at_keyword("key") {
            self.bump();
            let pos = self.pos();
            let rel_name = self.ident("relation name")?;
            let rel = self.resolve_rel(collab, &rel_name, pos)?;
            self.expect(Tok::LParen, "`(`")?;
            let key = self.term(&mut builder)?;
            self.expect(Tok::RParen, "`)`")?;
            return Ok(builder.key_pos(rel, key));
        }
        // Either a relational literal `R(...)` (ident followed by `(`) or a
        // comparison `t (=|!=) t`.
        if let Tok::Ident(name) = self.peek().clone() {
            if self.tokens[self.at + 1].tok == Tok::LParen && collab.schema().rel(&name).is_some() {
                let pos = self.pos();
                self.bump();
                let rel = self.resolve_rel(collab, &name, pos)?;
                let args = self.term_list(&mut builder)?;
                return Ok(builder.pos(rel, args));
            }
        }
        let lhs = self.term(&mut builder)?;
        match self.bump() {
            Tok::Eq => {
                let rhs = self.term(&mut builder)?;
                Ok(builder.eq(lhs, rhs))
            }
            Tok::Neq => {
                let rhs = self.term(&mut builder)?;
                Ok(builder.neq(lhs, rhs))
            }
            other => Err(self.err(format!("expected `=` or `!=`, found {other:?}"))),
        }
    }

    fn term_list(&mut self, builder: &mut RuleBuilder) -> Result<Vec<Term>, LangError> {
        self.expect(Tok::LParen, "`(`")?;
        let mut out = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                out.push(self.term(builder)?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "`)`")?;
        Ok(out)
    }

    fn term(&mut self, builder: &mut RuleBuilder) -> Result<Term, LangError> {
        match self.peek().clone() {
            Tok::Str(s) => {
                self.bump();
                Ok(Term::Const(Value::str(s)))
            }
            Tok::Int(i) => {
                self.bump();
                Ok(Term::Const(Value::Int(i)))
            }
            Tok::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "null" => Ok(Term::Const(Value::Null)),
                    "true" => Ok(Term::Const(Value::Bool(true))),
                    "false" => Ok(Term::Const(Value::Bool(false))),
                    _ => Ok(builder.var(name)),
                }
            }
            other => Err(self.err(format!("expected term, found {other:?}"))),
        }
    }
}

// ------------------------------------------------------ pretty printing --

/// Renders a workflow spec back into the concrete syntax accepted by
/// [`parse_workflow`] (`parse ∘ print` is the identity up to variable ids —
/// property-tested).
pub fn print_workflow(spec: &WorkflowSpec) -> String {
    let collab = spec.collab();
    let schema = collab.schema();
    let mut out = String::new();
    out.push_str("schema {\n");
    for r in schema.rel_ids() {
        let rs = schema.relation(r);
        out.push_str(&format!("  {}({});\n", rs.name(), rs.attrs().join(", ")));
    }
    out.push_str("}\n\npeers {\n");
    for p in collab.peer_ids() {
        let views: Vec<String> = collab
            .visible_rels(p)
            .map(|r| {
                let v = collab.view(p, r).expect("visible rel has view");
                let rs = schema.relation(r);
                let attrs = if v.attrs().len() == rs.arity() {
                    "*".to_string()
                } else {
                    v.attrs()
                        .iter()
                        .map(|a| rs.attr_name(*a).to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                let mut s = format!("{}({})", rs.name(), attrs);
                if v.selection() != &Condition::True {
                    s.push_str(&format!(" where {}", print_condition(v.selection(), rs)));
                }
                s
            })
            .collect();
        out.push_str(&format!(
            "  {} sees {};\n",
            collab.peer_name(p),
            views.join(", ")
        ));
    }
    out.push_str("}\n\nrules {\n");
    for rule in spec.program().rules() {
        out.push_str(&format!("  {}\n", print_rule(rule, spec)));
    }
    out.push_str("}\n");
    out
}

fn print_condition(c: &Condition, rs: &RelSchema) -> String {
    fn value(v: &Value) -> String {
        match v {
            Value::Null => "null".into(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Str(s) => format!("{:?}", s.as_ref()),
            Value::Fresh(n) => format!("\"ν{n}\""),
        }
    }
    match c {
        Condition::True => "true".into(),
        Condition::False => "false".into(),
        Condition::EqConst(a, v) => format!("{} = {}", rs.attr_name(*a), value(v)),
        Condition::EqAttr(a, b) => format!("{} = {}", rs.attr_name(*a), rs.attr_name(*b)),
        Condition::Not(inner) => format!("not ({})", print_condition(inner, rs)),
        Condition::And(cs) => {
            if cs.is_empty() {
                "true".into()
            } else {
                format!(
                    "({})",
                    cs.iter()
                        .map(|c| print_condition(c, rs))
                        .collect::<Vec<_>>()
                        .join(" and ")
                )
            }
        }
        Condition::Or(cs) => {
            if cs.is_empty() {
                "false".into()
            } else {
                format!(
                    "({})",
                    cs.iter()
                        .map(|c| print_condition(c, rs))
                        .collect::<Vec<_>>()
                        .join(" or ")
                )
            }
        }
    }
}

/// Renders one rule in concrete syntax.
pub fn print_rule(rule: &Rule, spec: &WorkflowSpec) -> String {
    let collab = spec.collab();
    let schema = collab.schema();
    let term = |t: &Term| -> String {
        match t {
            Term::Var(v) => rule.vars[v.index()].clone(),
            Term::Const(Value::Null) => "null".into(),
            Term::Const(Value::Bool(b)) => b.to_string(),
            Term::Const(Value::Int(i)) => i.to_string(),
            Term::Const(Value::Str(s)) => format!("{:?}", s.as_ref()),
            Term::Const(Value::Fresh(n)) => format!("\"ν{n}\""),
        }
    };
    let terms = |ts: &[Term]| ts.iter().map(&term).collect::<Vec<_>>().join(", ");
    let head: Vec<String> = rule
        .head
        .iter()
        .map(|u| match u {
            UpdateAtom::Insert { rel, args } => {
                format!("+{}({})", schema.relation(*rel).name(), terms(args))
            }
            UpdateAtom::Delete { rel, key } => {
                format!("-key {}({})", schema.relation(*rel).name(), term(key))
            }
        })
        .collect();
    let body: Vec<String> = rule
        .body
        .iter()
        .map(|l| match l {
            Literal::Pos { rel, args } => {
                format!("{}({})", schema.relation(*rel).name(), terms(args))
            }
            Literal::Neg { rel, args } => {
                format!("not {}({})", schema.relation(*rel).name(), terms(args))
            }
            Literal::KeyPos { rel, key } => {
                format!("key {}({})", schema.relation(*rel).name(), term(key))
            }
            Literal::KeyNeg { rel, key } => {
                format!("not key {}({})", schema.relation(*rel).name(), term(key))
            }
            Literal::Eq(a, b) => format!("{} = {}", term(a), term(b)),
            Literal::Neq(a, b) => format!("{} != {}", term(a), term(b)),
        })
        .collect();
    format!(
        "{} @ {}: {} :- {};",
        rule.name,
        collab.peer_name(rule.peer),
        head.join(", "),
        body.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const HR: &str = r#"
        schema {
            Assign(K, Proj);
            Replace(K, New);
        }
        peers {
            hr sees Assign(*), Replace(*);
            sue sees Assign(K) where Proj = "apollo";
        }
        rules {
            replace @ hr:
                -key Assign(x), +Assign(x2, y)
                :- Assign(x, y), Replace(x, x2), x != x2;
        }
    "#;

    #[test]
    fn parses_hr_example() {
        let spec = parse_workflow(HR).unwrap();
        assert_eq!(spec.collab().peer_count(), 2);
        assert_eq!(spec.program().rules().len(), 1);
        let rule = &spec.program().rules()[0];
        assert_eq!(rule.name, "replace");
        assert_eq!(rule.head.len(), 2);
        assert_eq!(rule.body.len(), 3);
        assert_eq!(rule.vars, vec!["x", "x2", "y"]);
    }

    #[test]
    fn parses_projected_view_and_selection() {
        let spec = parse_workflow(HR).unwrap();
        let sue = spec.collab().peer("sue").unwrap();
        let assign = spec.collab().schema().rel("Assign").unwrap();
        let v = spec.collab().view(sue, assign).unwrap();
        assert_eq!(v.attrs().len(), 1, "key-only view");
        assert!(matches!(v.selection(), Condition::EqConst(..)));
    }

    #[test]
    fn parses_propositional_program_with_empty_bodies() {
        let src = r#"
            schema { V1(K); OK(K); }
            peers { q sees V1(*), OK(*); p sees OK(*); }
            rules {
                a1 @ q: +V1(0) :- ;
                c  @ q: +OK(0) :- V1(0);
            }
        "#;
        let spec = parse_workflow(src).unwrap();
        assert_eq!(spec.program().rules().len(), 2);
        assert!(spec.program().rules()[0].body.is_empty());
    }

    #[test]
    fn parses_all_literal_forms() {
        let src = r#"
            schema { R(K, A); S(K); }
            peers { p sees R(*), S(*); }
            rules {
                r @ p: +R(x, y), -key S(z)
                  :- R(x, y), not R(x, "a"), key R(x), not key R(z),
                     S(z), x = y, x != z, y != null;
            }
        "#;
        let spec = parse_workflow(src).unwrap();
        let rule = &spec.program().rules()[0];
        assert_eq!(rule.body.len(), 8);
        assert!(matches!(rule.body[1], Literal::Neg { .. }));
        assert!(matches!(rule.body[2], Literal::KeyPos { .. }));
        assert!(matches!(rule.body[3], Literal::KeyNeg { .. }));
        assert!(matches!(
            rule.body[7],
            Literal::Neq(_, Term::Const(Value::Null))
        ));
    }

    #[test]
    fn where_conditions_support_boolean_structure() {
        let src = r#"
            schema { R(K, A, B); }
            peers {
                p sees R(K) where (A = "x" and not (B = null)) or A = B;
                q sees R(*);
            }
            rules { }
        "#;
        let spec = parse_workflow(src).unwrap();
        let p = spec.collab().peer("p").unwrap();
        let r = spec.collab().schema().rel("R").unwrap();
        let sel = spec.collab().view(p, r).unwrap().selection().clone();
        assert!(matches!(sel, Condition::Or(_)));
    }

    #[test]
    fn unresolved_names_are_reported() {
        let bad_rel = "schema { R(K); } peers { p sees Q(*); } rules { }";
        assert!(matches!(
            parse_workflow(bad_rel),
            Err(LangError::Unresolved {
                kind: "relation",
                ..
            })
        ));
        let bad_peer = "schema { R(K); } peers { p sees R(*); } rules { r @ z: +R(0) :- ; }";
        assert!(matches!(
            parse_workflow(bad_peer),
            Err(LangError::Unresolved { kind: "peer", .. })
        ));
        let bad_attr = "schema { R(K); } peers { p sees R(Z); } rules { }";
        assert!(matches!(
            parse_workflow(bad_attr),
            Err(LangError::Unresolved {
                kind: "attribute",
                ..
            })
        ));
    }

    #[test]
    fn parse_errors_carry_positions() {
        let err = parse_workflow("schema { R(K) }").unwrap_err();
        match err {
            LangError::Parse { pos, .. } => assert_eq!(pos.line, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_and_negative_ints() {
        let src = r#"
            schema { R(K); }   // relations
            peers { p sees R(*); }  # peers
            rules { r @ p: +R(-5) :- ; }
        "#;
        let spec = parse_workflow(src).unwrap();
        let rule = &spec.program().rules()[0];
        assert!(matches!(
            &rule.head[0],
            UpdateAtom::Insert { args, .. } if args[0] == Term::Const(Value::Int(-5))
        ));
    }

    #[test]
    fn validation_runs_after_parse() {
        // Unsafe variable: y only in head of a *body-less* rule is fine
        // (fresh), but y in a disequality only is rejected.
        let src = r#"
            schema { R(K); }
            peers { p sees R(*); }
            rules { r @ p: +R(x) :- x != y; }
        "#;
        assert!(matches!(
            parse_workflow(src),
            Err(LangError::UnsafeVariable { .. })
        ));
    }

    #[test]
    fn print_parse_round_trip() {
        let spec = parse_workflow(HR).unwrap();
        let printed = print_workflow(&spec);
        let back = parse_workflow(&printed).unwrap();
        assert_eq!(&spec, &back);
    }

    #[test]
    fn round_trip_with_rich_conditions_and_literals() {
        let src = r#"
            schema { R(K, A); S(K); }
            peers {
                p sees R(K) where A = null or A = "x";
                q sees R(*), S(*);
            }
            rules {
                r @ q: +R(x, y), -key S(z)
                  :- R(x, y), not key S(z), S(z), x != z;
            }
        "#;
        let spec = parse_workflow(src).unwrap();
        let back = parse_workflow(&print_workflow(&spec)).unwrap();
        assert_eq!(spec, back);
    }
}
