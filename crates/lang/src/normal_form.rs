//! Normal-form programs (Proposition 2.3).
//!
//! A workflow program is in *normal form* if
//!
//! 1. each rule whose head contains a deletion `−Key_{R@q}(x)` also contains
//!    a literal `R@q(x, ū)` in its body (making explicit that deletions are
//!    effective), and
//! 2. rule bodies contain no negative literals `¬R@q(x, ū)` and no positive
//!    `Key_{R@q}(x)` literals.
//!
//! The rewriting follows the paper's construction: positive `Key` literals
//! become full positive literals with fresh variables; a negative literal
//! `¬R@q(x, ū)` is case-split into (a) `¬Key_{R@q}(x)` (no visible tuple with
//! key `x`) and (b) one rule per non-key view attribute `A`, asserting a
//! visible tuple `R@q(x, z̄)` with `ū(A) ≠ z̄(A)`. A rule with several
//! negative literals yields the cartesian product of case choices; the map
//! `θ` sends each produced rule back to its original.

use cwf_model::PeerId;

use crate::ast::{Literal, Program, Rule, RuleId, Term, UpdateAtom, VarId};
use crate::spec::WorkflowSpec;

/// The result of normalization: the normal-form spec and the rule map `θ`
/// (`theta[new_rule.index()]` is the originating rule of `new_rule`).
#[derive(Debug, Clone)]
pub struct NormalForm {
    /// The normal-form workflow spec (same collaborative schema).
    pub spec: WorkflowSpec,
    /// `θ`: new rule id → original rule id.
    pub theta: Vec<RuleId>,
}

impl NormalForm {
    /// The original rule that produced `new_rule`.
    pub fn origin(&self, new_rule: RuleId) -> RuleId {
        self.theta[new_rule.index()]
    }
}

/// Is `rule` in normal form (conditions (i) and (ii) above)?
pub fn is_normal_form_rule(rule: &Rule) -> bool {
    let no_banned_literals = rule
        .body
        .iter()
        .all(|l| !matches!(l, Literal::Neg { .. } | Literal::KeyPos { .. }));
    let deletions_witnessed = rule.head.iter().all(|u| match u {
        UpdateAtom::Delete { rel, key } => rule.body.iter().any(|l| match l {
            Literal::Pos { rel: r, args } => r == rel && &args[0] == key,
            _ => false,
        }),
        UpdateAtom::Insert { .. } => true,
    });
    no_banned_literals && deletions_witnessed
}

/// Is every rule of `program` in normal form?
pub fn is_normal_form(program: &Program) -> bool {
    program.rules().iter().all(is_normal_form_rule)
}

/// Normalizes a validated spec per Proposition 2.3.
pub fn normalize(spec: &WorkflowSpec) -> NormalForm {
    let mut program = Program::new();
    let mut theta = Vec::new();
    for (idx, rule) in spec.program().rules().iter().enumerate() {
        let origin = RuleId(idx as u32);
        for new_rule in normalize_rule(spec, rule) {
            program.add_rule(new_rule);
            theta.push(origin);
        }
    }
    NormalForm {
        spec: WorkflowSpec::new_unchecked(spec.collab().clone(), program),
        theta,
    }
}

/// Produces the set `Rules(r)` of normal-form rules for one rule.
fn normalize_rule(spec: &WorkflowSpec, rule: &Rule) -> Vec<Rule> {
    // Work on a mutable copy whose variable table we may extend.
    let mut fresh = FreshVars::new(rule.vars.clone());

    // Step 1: replace positive Key literals and collect negative literals
    // for the case split; everything else passes through.
    let mut base_body: Vec<Literal> = Vec::new();
    let mut negatives: Vec<(cwf_model::RelId, Vec<Term>)> = Vec::new();
    for lit in &rule.body {
        match lit {
            Literal::KeyPos { rel, key } => {
                let width = spec
                    .view_width(rule.peer, *rel)
                    .expect("validated rule views exist");
                let mut args = vec![key.clone()];
                for _ in 1..width {
                    args.push(Term::Var(fresh.next()));
                }
                base_body.push(Literal::Pos { rel: *rel, args });
            }
            Literal::Neg { rel, args } => negatives.push((*rel, args.clone())),
            other => base_body.push(other.clone()),
        }
    }

    // Step 2: cartesian case split over the negative literals.
    // A case for ¬R(x, ū) is either KeyNeg(x) or, per non-key position i,
    // Pos(R, (x, z̄)) ∧ ū[i] ≠ z̄[i].
    #[derive(Clone)]
    enum Case {
        NoKey,
        DiffersAt(usize),
    }
    let mut case_sets: Vec<Vec<Case>> = Vec::new();
    for (_, args) in &negatives {
        let mut cases = vec![Case::NoKey];
        for i in 1..args.len() {
            cases.push(Case::DiffersAt(i));
        }
        case_sets.push(cases);
    }

    let mut out = Vec::new();
    let mut selection = vec![0usize; case_sets.len()];
    loop {
        // Emit the rule for the current case selection.
        let mut body = base_body.clone();
        let mut vars_for_rule = fresh.clone();
        for (ci, (rel, args)) in negatives.iter().enumerate() {
            match case_sets[ci][selection[ci]] {
                Case::NoKey => body.push(Literal::KeyNeg {
                    rel: *rel,
                    key: args[0].clone(),
                }),
                Case::DiffersAt(i) => {
                    let mut pos_args = vec![args[0].clone()];
                    let mut z_at_i = None;
                    for j in 1..args.len() {
                        let z = Term::Var(vars_for_rule.next());
                        if j == i {
                            z_at_i = Some(z.clone());
                        }
                        pos_args.push(z);
                    }
                    body.push(Literal::Pos {
                        rel: *rel,
                        args: pos_args,
                    });
                    body.push(Literal::Neq(
                        args[i].clone(),
                        z_at_i.expect("i is a non-key position"),
                    ));
                }
            }
        }
        // Step 3 (condition (i)): witness every deletion.
        let mut head = rule.head.clone();
        for u in &mut head {
            if let UpdateAtom::Delete { rel, key } = u {
                let witnessed = body.iter().any(|l| match l {
                    Literal::Pos { rel: r, args } => r == rel && &args[0] == key,
                    _ => false,
                });
                if !witnessed {
                    let width = spec
                        .view_width(rule.peer, *rel)
                        .expect("validated rule views exist");
                    let mut args = vec![key.clone()];
                    for _ in 1..width {
                        args.push(Term::Var(vars_for_rule.next()));
                    }
                    body.push(Literal::Pos { rel: *rel, args });
                }
            }
        }
        let name = if case_sets.is_empty() && out.is_empty() && selection.is_empty() {
            rule.name.clone()
        } else {
            format!("{}#nf{}", rule.name, out.len())
        };
        out.push(Rule {
            peer: rule.peer,
            name,
            head,
            body,
            vars: vars_for_rule.into_names(),
        });
        // Advance the case selection (odometer).
        let mut i = 0;
        loop {
            if i == selection.len() {
                return dedup_names(rule.peer, rule, out);
            }
            selection[i] += 1;
            if selection[i] < case_sets[i].len() {
                break;
            }
            selection[i] = 0;
            i += 1;
        }
    }
}

/// Keeps the original rule name when only one rule was produced.
fn dedup_names(_peer: PeerId, original: &Rule, mut rules: Vec<Rule>) -> Vec<Rule> {
    if rules.len() == 1 {
        rules[0].name = original.name.clone();
    }
    rules
}

/// Allocator of fresh variable names over an existing table.
#[derive(Clone)]
struct FreshVars {
    names: Vec<String>,
    counter: usize,
}

impl FreshVars {
    fn new(names: Vec<String>) -> Self {
        FreshVars { names, counter: 0 }
    }

    fn next(&mut self) -> VarId {
        loop {
            let candidate = format!("_z{}", self.counter);
            self.counter += 1;
            if !self.names.contains(&candidate) {
                let id = VarId(self.names.len() as u32);
                self.names.push(candidate);
                return id;
            }
        }
    }

    fn into_names(self) -> Vec<String> {
        self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::RuleBuilder;
    use cwf_model::{CollabSchema, Condition, RelId, RelSchema, Schema, Value, ViewRel};

    fn two_rel_spec() -> (WorkflowSpec, PeerId, RelId, RelId) {
        let schema = Schema::from_relations([
            RelSchema::new("R", ["K", "A"]).unwrap(),
            RelSchema::new("S", ["K", "B"]).unwrap(),
        ])
        .unwrap();
        let r = schema.rel("R").unwrap();
        let s = schema.rel("S").unwrap();
        let mut cs = CollabSchema::new(schema);
        let p = cs.add_peer("p").unwrap();
        cs.set_full_view(p, r).unwrap();
        cs.set_full_view(p, s).unwrap();
        (WorkflowSpec::new_unchecked(cs, Program::new()), p, r, s)
    }

    fn with_rules(spec: &WorkflowSpec, rules: Vec<Rule>) -> WorkflowSpec {
        let mut prog = Program::new();
        for r in rules {
            prog.add_rule(r);
        }
        WorkflowSpec::new(spec.collab().clone(), prog).expect("test rules are valid")
    }

    #[test]
    fn already_normal_rule_passes_through() {
        let (spec, p, r, _) = two_rel_spec();
        let mut b = RuleBuilder::new(p, "ok");
        let x = b.var("x");
        let y = b.var("y");
        let rule = b.pos(r, [x.clone(), y.clone()]).insert(r, [x, y]).build();
        assert!(is_normal_form_rule(&rule));
        let spec = with_rules(&spec, vec![rule.clone()]);
        let nf = normalize(&spec);
        assert_eq!(nf.spec.program().rules().len(), 1);
        assert_eq!(nf.spec.program().rules()[0], rule);
        assert_eq!(nf.origin(RuleId(0)), RuleId(0));
    }

    #[test]
    fn key_pos_becomes_full_positive_literal() {
        let (spec, p, r, _) = two_rel_spec();
        let mut b = RuleBuilder::new(p, "kp");
        let x = b.var("x");
        let rule = b
            .key_pos(r, x.clone())
            .insert(r, [x, Term::Const(Value::str("a"))])
            .build();
        assert!(!is_normal_form_rule(&rule));
        let spec = with_rules(&spec, vec![rule]);
        let nf = normalize(&spec);
        let rules = nf.spec.program().rules();
        assert_eq!(rules.len(), 1);
        assert!(is_normal_form_rule(&rules[0]));
        // Key literal became R(x, _z0).
        assert!(matches!(
            &rules[0].body[0],
            Literal::Pos { args, .. } if args.len() == 2
        ));
    }

    #[test]
    fn deletion_gets_witness_literal() {
        let (spec, p, r, s) = two_rel_spec();
        let mut b = RuleBuilder::new(p, "del");
        let x = b.var("x");
        let y = b.var("y");
        let rule = b.pos(s, [x.clone(), y]).delete(r, x).build();
        assert!(!is_normal_form_rule(&rule));
        let spec = with_rules(&spec, vec![rule]);
        let nf = normalize(&spec);
        let got = &nf.spec.program().rules()[0];
        assert!(is_normal_form_rule(got));
        // A positive literal over R with the deleted key was added.
        assert!(got.body.iter().any(|l| matches!(
            l,
            Literal::Pos { rel, args } if *rel == r && args[0] == Term::Var(VarId(0))
        )));
    }

    #[test]
    fn negative_literal_case_splits() {
        let (spec, p, r, s) = two_rel_spec();
        let mut b = RuleBuilder::new(p, "neg");
        let x = b.var("x");
        let y = b.var("y");
        let rule = b
            .pos(s, [x.clone(), y.clone()])
            .neg(r, [x.clone(), y.clone()])
            .insert(s, [Term::Const(Value::int(0)), Term::Const(Value::int(1))])
            .build();
        let spec = with_rules(&spec, vec![rule]);
        let nf = normalize(&spec);
        let rules = nf.spec.program().rules();
        // R has one non-key attribute ⇒ 2 cases: ¬Key_R(x), and
        // R(x, z) ∧ y ≠ z.
        assert_eq!(rules.len(), 2);
        assert!(rules.iter().all(is_normal_form_rule));
        assert!(rules.iter().any(|r2| r2
            .body
            .iter()
            .any(|l| matches!(l, Literal::KeyNeg { rel, .. } if *rel == r))));
        assert!(rules.iter().any(|r2| {
            r2.body.iter().any(|l| matches!(l, Literal::Neq(..)))
                && r2
                    .body
                    .iter()
                    .any(|l| matches!(l, Literal::Pos { rel, .. } if *rel == r))
        }));
        // θ maps both back to the original.
        assert_eq!(nf.origin(RuleId(0)), RuleId(0));
        assert_eq!(nf.origin(RuleId(1)), RuleId(0));
    }

    #[test]
    fn two_negatives_produce_product_of_cases() {
        let (spec, p, r, s) = two_rel_spec();
        let mut b = RuleBuilder::new(p, "neg2");
        let x = b.var("x");
        let y = b.var("y");
        let rule = b
            .pos(s, [x.clone(), y.clone()])
            .neg(r, [x.clone(), y.clone()])
            .neg(s, [y.clone(), x.clone()])
            .insert(s, [Term::Const(Value::int(0)), Term::Const(Value::int(1))])
            .build();
        let spec = with_rules(&spec, vec![rule]);
        let nf = normalize(&spec);
        // 2 cases per negative literal ⇒ 4 rules.
        assert_eq!(nf.spec.program().rules().len(), 4);
        assert!(is_normal_form(nf.spec.program()));
        assert!(nf.theta.iter().all(|t| *t == RuleId(0)));
    }

    #[test]
    fn unary_view_negative_literal_yields_only_keyneg() {
        // When the view is key-only, ¬R(x) has no "differs at" cases.
        let schema =
            Schema::from_relations([RelSchema::proposition("T"), RelSchema::proposition("U")])
                .unwrap();
        let t = schema.rel("T").unwrap();
        let u = schema.rel("U").unwrap();
        let mut cs = CollabSchema::new(schema);
        let p = cs.add_peer("p").unwrap();
        cs.set_full_view(p, t).unwrap();
        cs.set_full_view(p, u).unwrap();
        let mut b = RuleBuilder::new(p, "prop");
        let x = b.var("x");
        let rule = b
            .pos(u, [x.clone()])
            .neg(t, [x.clone()])
            .insert(t, [x])
            .build();
        let mut prog = Program::new();
        prog.add_rule(rule);
        let spec = WorkflowSpec::new(cs, prog).unwrap();
        let nf = normalize(&spec);
        let rules = nf.spec.program().rules();
        assert_eq!(rules.len(), 1);
        assert!(matches!(rules[0].body[1], Literal::KeyNeg { .. }));
    }

    #[test]
    fn projected_view_width_used_for_witnesses() {
        // p sees only (K) of R: the deletion witness literal has width 1.
        let schema = Schema::from_relations([RelSchema::new("R", ["K", "A"]).unwrap()]).unwrap();
        let r = schema.rel("R").unwrap();
        let mut cs = CollabSchema::new(schema);
        let p = cs.add_peer("p").unwrap();
        cs.set_view(p, ViewRel::new(r, [], Condition::True))
            .unwrap();
        let mut b = RuleBuilder::new(p, "del");
        let x = b.var("x");
        let rule = b.pos(r, [x.clone()]).delete(r, x).build();
        let mut prog = Program::new();
        prog.add_rule(rule);
        let spec = WorkflowSpec::new(cs, prog).unwrap();
        let nf = normalize(&spec);
        assert!(is_normal_form(nf.spec.program()));
    }
}
