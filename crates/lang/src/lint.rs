//! Static lints for workflow specifications.
//!
//! Beyond the hard well-formedness rules enforced by
//! [`crate::spec::WorkflowSpec::validate`], these lints catch *probable
//! mistakes* that are still legal programs: rules that can never fire,
//! relations nobody writes or reads, peers without capabilities, dead
//! selection conditions, and losslessness violations. Each lint names the
//! culprit and explains the consequence.

use std::collections::BTreeSet;
use std::fmt;

use cwf_model::{solver, Condition, PeerId, RelId};

use crate::ast::{Literal, Rule, Term, UpdateAtom};
use crate::spec::WorkflowSpec;

/// One finding of the linter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lint {
    /// A rule whose body contains contradictory (dis)equalities — it can
    /// never fire.
    UnsatisfiableBody {
        /// The dead rule.
        rule: String,
    },
    /// A rule with an empty head (no effect even when it fires).
    EmptyHead {
        /// The rule.
        rule: String,
    },
    /// A relation no rule ever inserts into: it stays empty in every run
    /// from `∅`, so every positive literal over it is dead.
    NeverInserted {
        /// The relation name.
        relation: String,
    },
    /// A relation no rule ever reads or deletes — write-only state.
    NeverRead {
        /// The relation name.
        relation: String,
    },
    /// A peer owning no rules (it can never act; it may still observe).
    PeerWithoutRules {
        /// The peer name.
        peer: String,
    },
    /// A peer whose view schema is empty (it can neither act nor observe).
    BlindPeer {
        /// The peer name.
        peer: String,
    },
    /// A view whose selection condition is unsatisfiable — the view is
    /// always empty.
    DeadSelection {
        /// The peer name.
        peer: String,
        /// The relation name.
        relation: String,
    },
    /// The collaborative schema is not lossless for an attribute: its value
    /// can be silently lost (Example 2.2).
    NotLossless {
        /// The relation name.
        relation: String,
        /// The uncovered attribute.
        attribute: String,
    },
    /// A rule reads a relation it also inserts into with the same constant
    /// key and no guard — a likely unintended no-op loop.
    SelfFeeding {
        /// The rule.
        rule: String,
        /// The relation name.
        relation: String,
    },
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::UnsatisfiableBody { rule } => {
                write!(f, "rule {rule} can never fire: its body is unsatisfiable")
            }
            Lint::EmptyHead { rule } => write!(f, "rule {rule} has no updates"),
            Lint::NeverInserted { relation } => write!(
                f,
                "relation {relation} is never inserted into: positive literals over it are dead"
            ),
            Lint::NeverRead { relation } => {
                write!(
                    f,
                    "relation {relation} is write-only (never read or deleted)"
                )
            }
            Lint::PeerWithoutRules { peer } => write!(f, "peer {peer} owns no rules"),
            Lint::BlindPeer { peer } => write!(f, "peer {peer} sees no relations"),
            Lint::DeadSelection { peer, relation } => write!(
                f,
                "peer {peer}'s view of {relation} has an unsatisfiable selection: always empty"
            ),
            Lint::NotLossless {
                relation,
                attribute,
            } => write!(
                f,
                "attribute {attribute} of {relation} is not covered by the peer views: \
                 its value can be lost (losslessness, Definition 2.1)"
            ),
            Lint::SelfFeeding { rule, relation } => write!(
                f,
                "rule {rule} re-inserts the tuple of {relation} it just read — likely a no-op"
            ),
        }
    }
}

/// Runs all lints over a validated spec.
pub fn lint(spec: &WorkflowSpec) -> Vec<Lint> {
    let mut out = Vec::new();
    lint_rules(spec, &mut out);
    lint_relations(spec, &mut out);
    lint_peers(spec, &mut out);
    lint_views(spec, &mut out);
    out
}

fn lint_rules(spec: &WorkflowSpec, out: &mut Vec<Lint>) {
    for rule in spec.program().rules() {
        if rule.head.is_empty() {
            out.push(Lint::EmptyHead {
                rule: rule.name.clone(),
            });
        }
        if has_contradictory_comparisons(rule) {
            out.push(Lint::UnsatisfiableBody {
                rule: rule.name.clone(),
            });
        }
        // Self-feeding: body Pos and head Insert with identical ground args.
        for lit in &rule.body {
            let Literal::Pos { rel, args } = lit else {
                continue;
            };
            for u in &rule.head {
                if let UpdateAtom::Insert { rel: r2, args: a2 } = u {
                    if rel == r2 && args == a2 {
                        out.push(Lint::SelfFeeding {
                            rule: rule.name.clone(),
                            relation: spec.collab().schema().relation(*rel).name().to_string(),
                        });
                    }
                }
            }
        }
    }
}

/// Detects bodies made unsatisfiable by their (dis)equality literals alone:
/// `x = a ∧ x = b` for distinct constants, `x ≠ x`, `a = b` for distinct
/// constants, or `x = y ∧ x ≠ y` (propagated through equality classes).
fn has_contradictory_comparisons(rule: &Rule) -> bool {
    // Union-find over terms via indices into a term table.
    let mut terms: Vec<Term> = Vec::new();
    let id_of = |t: &Term, terms: &mut Vec<Term>| -> usize {
        if let Some(i) = terms.iter().position(|x| x == t) {
            i
        } else {
            terms.push(t.clone());
            terms.len() - 1
        }
    };
    let mut eqs: Vec<(usize, usize)> = Vec::new();
    let mut neqs: Vec<(usize, usize)> = Vec::new();
    for lit in &rule.body {
        match lit {
            Literal::Eq(a, b) => {
                let (x, y) = (id_of(a, &mut terms), id_of(b, &mut terms));
                eqs.push((x, y));
            }
            Literal::Neq(a, b) => {
                let (x, y) = (id_of(a, &mut terms), id_of(b, &mut terms));
                neqs.push((x, y));
            }
            _ => {}
        }
    }
    let mut parent: Vec<usize> = (0..terms.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    for (x, y) in eqs {
        let (rx, ry) = (find(&mut parent, x), find(&mut parent, y));
        parent[rx] = ry;
    }
    // Conflicting constants in one class?
    for i in 0..terms.len() {
        for j in (i + 1)..terms.len() {
            if let (Term::Const(a), Term::Const(b)) = (&terms[i], &terms[j]) {
                if a != b && find(&mut parent, i) == find(&mut parent, j) {
                    return true;
                }
            }
        }
    }
    // A disequality within one class?
    for (x, y) in neqs {
        if find(&mut parent, x) == find(&mut parent, y) {
            return true;
        }
    }
    false
}

fn lint_relations(spec: &WorkflowSpec, out: &mut Vec<Lint>) {
    let schema = spec.collab().schema();
    let mut inserted: BTreeSet<RelId> = BTreeSet::new();
    let mut read: BTreeSet<RelId> = BTreeSet::new();
    for rule in spec.program().rules() {
        for u in &rule.head {
            match u {
                UpdateAtom::Insert { rel, .. } => {
                    inserted.insert(*rel);
                }
                UpdateAtom::Delete { rel, .. } => {
                    read.insert(*rel);
                }
            }
        }
        for l in &rule.body {
            match l {
                Literal::Pos { rel, .. }
                | Literal::Neg { rel, .. }
                | Literal::KeyPos { rel, .. }
                | Literal::KeyNeg { rel, .. } => {
                    read.insert(*rel);
                }
                _ => {}
            }
        }
    }
    for r in schema.rel_ids() {
        let name = schema.relation(r).name().to_string();
        if !inserted.contains(&r) {
            out.push(Lint::NeverInserted {
                relation: name.clone(),
            });
        }
        if !read.contains(&r) {
            out.push(Lint::NeverRead { relation: name });
        }
    }
}

fn lint_peers(spec: &WorkflowSpec, out: &mut Vec<Lint>) {
    let collab = spec.collab();
    let owners: BTreeSet<PeerId> = spec.program().rules().iter().map(|r| r.peer).collect();
    for p in collab.peer_ids() {
        if collab.visible_rels(p).next().is_none() {
            out.push(Lint::BlindPeer {
                peer: collab.peer_name(p).to_string(),
            });
        } else if !owners.contains(&p) {
            out.push(Lint::PeerWithoutRules {
                peer: collab.peer_name(p).to_string(),
            });
        }
    }
}

fn lint_views(spec: &WorkflowSpec, out: &mut Vec<Lint>) {
    let collab = spec.collab();
    for p in collab.peer_ids() {
        for r in collab.visible_rels(p).collect::<Vec<_>>() {
            let v = collab.view(p, r).expect("visible");
            if !solver::satisfiable(v.selection()) {
                out.push(Lint::DeadSelection {
                    peer: collab.peer_name(p).to_string(),
                    relation: collab.schema().relation(r).name().to_string(),
                });
            }
        }
    }
    // Losslessness, reported as a lint (the model also exposes it as a hard
    // check for schemas that want to enforce it).
    if let Err(cwf_model::ModelError::NotLossless {
        relation,
        attribute,
        ..
    }) = collab.check_losslessness()
    {
        out.push(Lint::NotLossless {
            relation,
            attribute,
        });
    }
    let _ = Condition::True; // keep the import local to this module's intent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_workflow;

    #[test]
    fn clean_program_has_only_expected_lints() {
        let spec = parse_workflow(
            r#"
            schema { Task(K); Done(K); }
            peers { a sees Task(*), Done(*); b sees Task(*), Done(*); }
            rules {
                mk @ a: +Task(t) :- ;
                fin @ b: +Done(d) :- Task(d), not key Done(d);
            }
            "#,
        )
        .unwrap();
        let lints = lint(&spec);
        assert!(lints.is_empty(), "got {lints:?}");
    }

    #[test]
    fn unsatisfiable_bodies_are_caught() {
        let spec = parse_workflow(
            r#"
            schema { R(K, A); }
            peers { p sees R(*); }
            rules {
                dead1 @ p: +R(x, "z") :- R(x, y), y = "a", y = "b";
                dead2 @ p: +R(x, "z") :- R(x, y), x != x;
                live  @ p: +R(x, "z") :- R(x, y), y = "a", y != "b";
            }
            "#,
        )
        .unwrap();
        let lints = lint(&spec);
        let dead: Vec<&Lint> = lints
            .iter()
            .filter(|l| matches!(l, Lint::UnsatisfiableBody { .. }))
            .collect();
        assert_eq!(dead.len(), 2, "got {lints:?}");
    }

    #[test]
    fn equality_chains_propagate() {
        let spec = parse_workflow(
            r#"
            schema { R(K, A); }
            peers { p sees R(*); }
            rules {
                chained @ p: +R(x, "z")
                    :- R(x, y), R(x2, y2), x = x2, x2 = y, x != y;
            }
            "#,
        )
        .unwrap();
        let lints = lint(&spec);
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::UnsatisfiableBody { rule } if rule == "chained")));
    }

    #[test]
    fn dead_relations_and_peers_are_caught() {
        let spec = parse_workflow(
            r#"
            schema { Used(K); Ghost(K); Sink(K); }
            peers {
                worker sees Used(*), Ghost(*), Sink(*);
                watcher sees Used(*);
            }
            rules {
                mk @ worker: +Used(x) :- ;
                log @ worker: +Sink(x) :- Used(x);
            }
            "#,
        )
        .unwrap();
        let lints = lint(&spec);
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::NeverInserted { relation } if relation == "Ghost")));
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::NeverRead { relation } if relation == "Ghost")));
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::NeverRead { relation } if relation == "Sink")));
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::PeerWithoutRules { peer } if peer == "watcher")));
    }

    #[test]
    fn blind_peers_and_dead_selections_are_caught() {
        let spec = parse_workflow(
            r#"
            schema { R(K, A); }
            peers {
                p sees R(*);
                nobody sees ;
                narrow sees R(K) where A = "x" and A = "y";
            }
            rules { mk @ p: +R(x, "x") :- ; }
            "#,
        )
        .unwrap();
        let lints = lint(&spec);
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::BlindPeer { peer } if peer == "nobody")));
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::DeadSelection { peer, .. } if peer == "narrow")));
    }

    #[test]
    fn losslessness_is_reported_as_a_lint() {
        // Example 2.2's schema: attribute B only visible under A = ⊥.
        let spec = parse_workflow(
            r#"
            schema { R(K, A, B); }
            peers {
                p sees R(*) where A = null;
                q sees R(K, A);
            }
            rules { mk @ q: +R(x, y) :- ; }
            "#,
        )
        .unwrap();
        let lints = lint(&spec);
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::NotLossless { attribute, .. } if attribute == "B")));
    }

    #[test]
    fn self_feeding_rules_are_caught() {
        let spec = parse_workflow(
            r#"
            schema { R(K, A); }
            peers { p sees R(*); }
            rules { noop @ p: +R(x, y) :- R(x, y); }
            "#,
        )
        .unwrap();
        let lints = lint(&spec);
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::SelfFeeding { rule, .. } if rule == "noop")));
    }

    #[test]
    fn empty_heads_are_caught() {
        // The parser requires a head, so build programmatically.
        use crate::ast::{Program, RuleBuilder};
        let base = parse_workflow(
            r#"
            schema { R(K); }
            peers { p sees R(*); }
            rules { mk @ p: +R(x) :- ; }
            "#,
        )
        .unwrap();
        let (collab, _) = base.into_parts();
        let mut prog = Program::new();
        let p = collab.peer("p").unwrap();
        let r = collab.schema().rel("R").unwrap();
        let mut b = RuleBuilder::new(p, "void");
        let x = b.var("x");
        prog.add_rule(b.pos(r, [x]).build());
        let spec = WorkflowSpec::new(collab, prog).unwrap();
        assert!(lint(&spec)
            .iter()
            .any(|l| matches!(l, Lint::EmptyHead { rule } if rule == "void")));
    }
}
