//! The semiring of p-faithful subsequences (Theorem 4.8).
//!
//! For a fixed run `ρ` and peer `p`, the subsequences of `e(ρ)` that are
//! fixed-points of `T_p(ρ, ·)` (boundary + modification p-faithful) are
//! closed under
//!
//! * **addition** `α₁ + α₂` — union of events (by additivity of `T_p`), and
//! * **multiplication** `α₁ * α₂` — intersection of events (by monotonicity
//!   of `T_p`),
//!
//! with the empty subsequence as additive identity and `e(ρ)` as
//! multiplicative identity. The p-faithful *scenarios* (those containing all
//! visible events) are closed under both operations as well; closure under
//! multiplication is exactly why the minimal p-faithful scenario is unique.

use cwf_engine::Run;
use cwf_model::PeerId;

use crate::faithful::is_tp_fixpoint;
use crate::index::RunIndex;
use crate::set::EventSet;

/// A p-faithful subsequence of a specific run, validated on construction.
///
/// The run/index are *not* stored; a `Faithful` value is only meaningful
/// relative to the `(run, peer)` it was validated against — operations check
/// universe compatibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Faithful {
    peer: PeerId,
    events: EventSet,
}

impl Faithful {
    /// Validates that `events` is boundary + modification p-faithful for
    /// `peer` in `run` (a `T_p` fixpoint).
    pub fn new(run: &Run, index: &RunIndex, peer: PeerId, events: EventSet) -> Option<Faithful> {
        is_tp_fixpoint(run, index, peer, &events).then_some(Faithful { peer, events })
    }

    /// The additive identity: the empty subsequence (vacuously faithful).
    pub fn zero(run: &Run, peer: PeerId) -> Faithful {
        Faithful {
            peer,
            events: EventSet::empty(run.len()),
        }
    }

    /// The multiplicative identity: the whole run `e(ρ)` (faithful by
    /// construction — every requirement event is present).
    pub fn one(run: &Run, peer: PeerId) -> Faithful {
        Faithful {
            peer,
            events: EventSet::full(run.len()),
        }
    }

    /// The observing peer.
    pub fn peer(&self) -> PeerId {
        self.peer
    }

    /// The underlying event set.
    pub fn events(&self) -> &EventSet {
        &self.events
    }

    /// Addition: union of events. Closure is Theorem 4.8 — and is verified
    /// by a debug assertion in tests via [`Faithful::new`].
    pub fn add(&self, other: &Faithful) -> Faithful {
        assert_eq!(self.peer, other.peer, "operands observe the same peer");
        Faithful {
            peer: self.peer,
            events: self.events.union(&other.events),
        }
    }

    /// Multiplication: intersection of events.
    pub fn mul(&self, other: &Faithful) -> Faithful {
        assert_eq!(self.peer, other.peer, "operands observe the same peer");
        Faithful {
            peer: self.peer,
            events: self.events.intersection(&other.events),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tp::tp_closure;
    use cwf_engine::{Bindings, Event};
    use cwf_lang::parse_workflow;
    use std::sync::Arc;

    /// A run with several independent object lifecycles, giving a rich
    /// lattice of faithful subsequences.
    fn run() -> Run {
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { A(K); B(K); Out(K); }
                peers {
                    q sees A(*), B(*), Out(*);
                    p sees Out(*);
                }
                rules {
                    mk_a @ q: +A(0) :- ;
                    rm_a @ q: -key A(0) :- A(0);
                    mk_b @ q: +B(0) :- ;
                    out  @ q: +Out(0) :- B(0);
                }
                "#,
            )
            .unwrap(),
        );
        let mut run = Run::new(Arc::clone(&spec));
        for n in ["mk_a", "rm_a", "mk_b", "out"] {
            let rid = spec.program().rule_by_name(n).unwrap();
            run.push(Event::new(&spec, rid, Bindings::empty(0)).unwrap())
                .unwrap();
        }
        run
    }

    /// All T_p fixpoints of the 4-event run, by enumeration.
    fn all_fixpoints(run: &Run, index: &RunIndex, p: PeerId) -> Vec<EventSet> {
        (0u32..16)
            .map(|mask| EventSet::from_iter(4, (0..4).filter(|i| mask & (1 << i) != 0)))
            .filter(|s| is_tp_fixpoint(run, index, p, s))
            .collect()
    }

    use crate::faithful::is_tp_fixpoint;
    use cwf_model::PeerId;

    #[test]
    fn closure_under_addition_and_multiplication() {
        let run = run();
        let index = RunIndex::build(&run);
        let p = run.spec().collab().peer("p").unwrap();
        let fixpoints = all_fixpoints(&run, &index, p);
        assert!(fixpoints.len() >= 4, "the lattice is non-trivial");
        for a in &fixpoints {
            for b in &fixpoints {
                let fa = Faithful::new(&run, &index, p, a.clone()).unwrap();
                let fb = Faithful::new(&run, &index, p, b.clone()).unwrap();
                let sum = fa.add(&fb);
                let prod = fa.mul(&fb);
                assert!(
                    Faithful::new(&run, &index, p, sum.events().clone()).is_some(),
                    "union of fixpoints is a fixpoint: {a:?} + {b:?}"
                );
                assert!(
                    Faithful::new(&run, &index, p, prod.events().clone()).is_some(),
                    "intersection of fixpoints is a fixpoint: {a:?} * {b:?}"
                );
            }
        }
    }

    #[test]
    fn semiring_laws() {
        let run = run();
        let index = RunIndex::build(&run);
        let p = run.spec().collab().peer("p").unwrap();
        let fixpoints = all_fixpoints(&run, &index, p);
        let zero = Faithful::zero(&run, p);
        let one = Faithful::one(&run, p);
        assert!(Faithful::new(&run, &index, p, zero.events().clone()).is_some());
        assert!(Faithful::new(&run, &index, p, one.events().clone()).is_some());
        let lift = |s: &EventSet| Faithful::new(&run, &index, p, s.clone()).unwrap();
        for a in &fixpoints {
            let fa = lift(a);
            // Identities.
            assert_eq!(fa.add(&zero), fa);
            assert_eq!(fa.mul(&one), fa);
            assert_eq!(fa.mul(&zero), zero, "annihilation");
            // Idempotence (this is a lattice-like semiring).
            assert_eq!(fa.add(&fa), fa);
            assert_eq!(fa.mul(&fa), fa);
            for b in &fixpoints {
                let fb = lift(b);
                // Commutativity.
                assert_eq!(fa.add(&fb), fb.add(&fa));
                assert_eq!(fa.mul(&fb), fb.mul(&fa));
                for c in &fixpoints {
                    let fc = lift(c);
                    // Associativity.
                    assert_eq!(fa.add(&fb).add(&fc), fa.add(&fb.add(&fc)));
                    assert_eq!(fa.mul(&fb).mul(&fc), fa.mul(&fb.mul(&fc)));
                    // Distributivity.
                    assert_eq!(fa.mul(&fb.add(&fc)), fa.mul(&fb).add(&fa.mul(&fc)));
                }
            }
        }
    }

    #[test]
    fn tp_is_additive_on_seeds() {
        // Lemma A.1: T_p(ρ, α₁ + α₂) = T_p(ρ, α₁) + T_p(ρ, α₂) — checked on
        // closures over all singleton seeds.
        let run = run();
        let index = RunIndex::build(&run);
        let p = run.spec().collab().peer("p").unwrap();
        for i in 0..run.len() {
            for j in 0..run.len() {
                let si = EventSet::from_iter(run.len(), [i]);
                let sj = EventSet::from_iter(run.len(), [j]);
                let joint = tp_closure(&run, &index, p, &si.union(&sj));
                let split =
                    tp_closure(&run, &index, p, &si).union(&tp_closure(&run, &index, p, &sj));
                assert_eq!(joint, split, "additivity for seeds {{{i}}}, {{{j}}}");
            }
        }
    }

    #[test]
    fn new_rejects_non_fixpoints() {
        let run = run();
        let index = RunIndex::build(&run);
        let p = run.spec().collab().peer("p").unwrap();
        // {mk_a} alone misses its closed lifecycle's right boundary rm_a.
        let bad = EventSet::from_iter(4, [0]);
        assert!(Faithful::new(&run, &index, p, bad).is_none());
    }

    #[test]
    #[should_panic(expected = "same peer")]
    fn cross_peer_operations_panic() {
        let run = run();
        let p = run.spec().collab().peer("p").unwrap();
        let q = run.spec().collab().peer("q").unwrap();
        let _ = Faithful::zero(&run, p).add(&Faithful::zero(&run, q));
    }
}
