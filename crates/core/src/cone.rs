//! Provenance cones for scenario-search pruning.
//!
//! [`peer_cone`] computes, in one linear pass over the run, a set of event
//! positions that provably contains every minimum and every minimal
//! scenario of the run at a peer. The optimizing searches of
//! [`crate::minimum`] and the enumeration of [`crate::minimal`] restrict
//! themselves to this cone by default, shrinking the exponential subset
//! space without changing any completed answer.
//!
//! The cone is deliberately *wider* than the explanation cone of the
//! engine's provenance plane (`Run::prov_cone`). An explanation only needs
//! the closed writer history of what the peer actually observed;
//! byte-identical search pruning additionally has to keep every event that
//! could *impersonate* a visible write in some sub-replay — e.g. a
//! re-insertion that was a no-op in the original run but re-creates the
//! fact once the original writer is dropped from the subsequence. Two
//! generalisations achieve that:
//!
//! * **Seeds.** Besides the events visible at the peer, every event with a
//!   head update on a peer-visible relation seeds the cone: only such
//!   events can ever produce a view delta at the peer, in any replay.
//! * **Histories.** The per-key history joins the closure of every event
//!   whose head *targets* the key, not just of those whose update changed
//!   the instance — an insert that was a no-op is still a potential writer
//!   once earlier writers are dropped.
//!
//! With both, any event `x` outside the cone (a) touches no peer-visible
//! relation in its head, so its delta at the peer is empty in every
//! replay, and (b) targets no key in the footprint `K(e)` of any cone
//! event `e` after it — otherwise `x` would sit in `e`'s key history and
//! hence in the cone. So for any scenario `S`, dropping `S`'s non-cone
//! events leaves the replay of the remaining events byte-identical on
//! their footprints and removes no visible step: `S ∩ cone` is a scenario
//! too. A minimum or minimal scenario therefore never leaves the cone.

use std::collections::BTreeMap;

use cwf_engine::Run;
use cwf_model::{PeerId, RelId, Value};

use crate::set::EventSet;

/// The closed dependency sets `D(e_i)` of every event: the event itself,
/// plus — for every key in its footprint `K(e_i)` — the closures of every
/// earlier event whose head targeted that key (actual writers and no-op
/// inserters alike).
pub fn closed_deps(run: &Run) -> Vec<EventSet> {
    let n = run.len();
    let spec = run.spec();
    let mut hist: BTreeMap<(RelId, Value), EventSet> = BTreeMap::new();
    let mut deps = Vec::with_capacity(n);
    for i in 0..n {
        let event = run.event(i);
        let mut d = EventSet::empty(n);
        d.insert(i);
        for (rel, keys) in event.key_occurrences(spec) {
            for k in keys {
                if let Some(h) = hist.get(&(rel, k)) {
                    d = d.union(h);
                }
            }
        }
        // Every key the head targets gains this event's closure — whether
        // or not the update changed the instance.
        for u in event.ground_updates(spec) {
            let entry = hist
                .entry((u.rel(), *u.key()))
                .or_insert_with(|| EventSet::empty(n));
            *entry = entry.union(&d);
        }
        deps.push(d);
    }
    deps
}

/// The pruning cone of `peer`: the union of [`closed_deps`] over the
/// seed events — those visible at `peer` plus those whose head updates a
/// relation `peer` sees. Every minimum and every minimal scenario of the
/// run at `peer` is a subset of this set.
pub fn peer_cone(run: &Run, peer: PeerId) -> EventSet {
    let spec = run.spec();
    let collab = spec.collab();
    let deps = closed_deps(run);
    let mut cone = EventSet::empty(run.len());
    for (i, d) in deps.iter().enumerate() {
        let seed = run.visible_at(i, peer)
            || run
                .event(i)
                .ground_updates(spec)
                .iter()
                .any(|u| collab.sees(peer, u.rel()));
        if seed {
            cone = cone.union(d);
        }
    }
    cone
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimal::all_minimal_scenarios;
    use cwf_engine::{Bindings, Event};
    use cwf_lang::parse_workflow;
    use cwf_model::Governor;
    use std::sync::Arc;

    fn run_of(src: &str, names: &[&str]) -> Run {
        let spec = Arc::new(parse_workflow(src).unwrap());
        let mut run = Run::new(Arc::clone(&spec));
        for n in names {
            let rid = spec.program().rule_by_name(n).unwrap();
            run.push(Event::new(&spec, rid, Bindings::empty(0)).unwrap())
                .unwrap();
        }
        run
    }

    const HITTING: &str = r#"
        schema { V1(K); V2(K); V3(K); C1(K); C2(K); OK(K); }
        peers {
            q sees V1(*), V2(*), V3(*), C1(*), C2(*), OK(*);
            p sees OK(*);
        }
        rules {
            a1 @ q: +V1(0) :- ;
            a2 @ q: +V2(0) :- ;
            a3 @ q: +V3(0) :- ;
            b11 @ q: +C1(0) :- V1(0);
            b22 @ q: +C2(0) :- V2(0);
            ok @ q: +OK(0) :- C1(0), C2(0);
        }
    "#;

    #[test]
    fn cone_drops_events_no_derivation_can_use() {
        let run = run_of(HITTING, &["a1", "a2", "a3", "b11", "b22", "ok"]);
        let p = run.spec().collab().peer("p").unwrap();
        // a3 feeds nothing the observer can ever see: pruned.
        assert_eq!(peer_cone(&run, p).to_vec(), vec![0, 1, 3, 4, 5]);
        // q sees everything, so everything is in q's cone.
        let q = run.spec().collab().peer("q").unwrap();
        assert_eq!(peer_cone(&run, q), EventSet::full(run.len()));
    }

    #[test]
    fn cone_keeps_noop_reinsertions_as_alternative_writers() {
        // b2 re-inserts C1(0) as a no-op (b1 already created it), yet once
        // b1 is dropped b2 re-creates the fact: {a2, b2, ok} is a scenario
        // that a visible-writers-only cone would lose.
        let run = run_of(
            r#"
            schema { V1(K); V2(K); C1(K); OK(K); }
            peers {
                q sees V1(*), V2(*), C1(*), OK(*);
                p sees OK(*);
            }
            rules {
                a1 @ q: +V1(0) :- ;
                a2 @ q: +V2(0) :- ;
                b1 @ q: +C1(0) :- V1(0);
                b2 @ q: +C1(0) :- V2(0);
                ok @ q: +OK(0) :- C1(0);
            }
            "#,
            &["a1", "a2", "b1", "b2", "ok"],
        );
        let p = run.spec().collab().peer("p").unwrap();
        let cone = peer_cone(&run, p);
        assert_eq!(cone, EventSet::full(run.len()), "b2 must stay in the cone");
    }

    #[test]
    fn every_minimal_scenario_is_inside_the_cone() {
        let run = run_of(HITTING, &["a1", "a2", "a3", "b11", "b22", "ok"]);
        let p = run.spec().collab().peer("p").unwrap();
        let cone = peer_cone(&run, p);
        let minimal = all_minimal_scenarios(&run, p, 64, &Governor::unlimited())
            .into_value()
            .unwrap();
        assert!(!minimal.is_empty());
        for s in &minimal {
            assert!(s.is_subset(&cone), "{s:?} escapes the cone {cone:?}");
        }
    }
}
