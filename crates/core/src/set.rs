//! Sets of event positions (subsequences of `e(ρ)`).
//!
//! Subsequences of a run's event sequence are the universe over which
//! scenarios, faithfulness and the `T_p` operator are defined. We represent
//! them as fixed-universe bitsets: the universe is the run length, elements
//! are event positions, and the subsequence order is inherited from the run.

use std::fmt;

/// A set of event positions over a fixed universe `0..universe`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventSet {
    universe: usize,
    words: Vec<u64>,
}

impl EventSet {
    /// The empty set over `0..universe`.
    pub fn empty(universe: usize) -> Self {
        EventSet {
            universe,
            words: vec![0; universe.div_ceil(64)],
        }
    }

    /// The full set `{0, …, universe−1}`.
    pub fn full(universe: usize) -> Self {
        let mut s = Self::empty(universe);
        for i in 0..universe {
            s.insert(i);
        }
        s
    }

    /// Builds a set from positions.
    pub fn from_iter(universe: usize, iter: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::empty(universe);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// The universe size (run length).
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Inserts a position; returns `true` if it was new.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.universe,
            "position {i} outside universe {}",
            self.universe
        );
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes a position; returns `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.universe);
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.universe {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Iterates elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Elements as a sorted vector.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Union (the paper's `α₁ + α₂`). Universes must match.
    pub fn union(&self, other: &EventSet) -> EventSet {
        assert_eq!(self.universe, other.universe);
        EventSet {
            universe: self.universe,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// Intersection (the paper's `α₁ * α₂`). Universes must match.
    pub fn intersection(&self, other: &EventSet) -> EventSet {
        assert_eq!(self.universe, other.universe);
        EventSet {
            universe: self.universe,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Is `self ⊆ other` (the subsequence order `⊴`)?
    pub fn is_subset(&self, other: &EventSet) -> bool {
        self.universe == other.universe
            && self
                .words
                .iter()
                .zip(&other.words)
                .all(|(a, b)| a & !b == 0)
    }

    /// Is `self ⊂ other` strictly?
    pub fn is_strict_subset(&self, other: &EventSet) -> bool {
        self.is_subset(other) && self != other
    }

    /// Enlarges the universe (elements are preserved). Used by incremental
    /// maintenance as the run grows.
    pub fn grow(&mut self, universe: usize) {
        assert!(universe >= self.universe, "universe can only grow");
        self.universe = universe;
        self.words.resize(universe.div_ceil(64), 0);
    }
}

impl fmt::Debug for EventSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = EventSet::empty(100);
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3), "second insert is a no-op");
        assert!(s.insert(99));
        assert!(s.contains(3));
        assert!(s.contains(99));
        assert!(!s.contains(4));
        assert!(!s.contains(1000), "out of universe is absent, not a panic");
        assert_eq!(s.len(), 2);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_is_sorted() {
        let s = EventSet::from_iter(200, [150, 3, 64, 65, 0]);
        assert_eq!(s.to_vec(), vec![0, 3, 64, 65, 150]);
    }

    #[test]
    fn set_algebra() {
        let a = EventSet::from_iter(10, [1, 2, 3]);
        let b = EventSet::from_iter(10, [3, 4]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 4]);
        assert_eq!(a.intersection(&b).to_vec(), vec![3]);
        assert!(a.intersection(&b).is_subset(&a));
        assert!(a.intersection(&b).is_strict_subset(&a));
        assert!(a.is_subset(&a));
        assert!(!a.is_strict_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn full_and_empty() {
        let f = EventSet::full(70);
        assert_eq!(f.len(), 70);
        assert!(EventSet::empty(70).is_subset(&f));
        assert_eq!(f.universe(), 70);
        // Universe 0 works.
        let z = EventSet::empty(0);
        assert!(z.is_empty());
        assert_eq!(z.to_vec(), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        EventSet::empty(5).insert(5);
    }
}
