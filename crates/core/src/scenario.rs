//! Subruns and scenarios (Section 3, Definition 3.2).
//!
//! A *subrun* of `ρ` is a run whose event sequence is a subsequence of
//! `e(ρ)`; a *scenario of `ρ` at `p`* is a subrun observationally equivalent
//! to `ρ` for `p` (`ρ@p = ρ̂@p`).

use cwf_engine::{EventView, Run, RunView, ScratchRun};
use cwf_model::PeerId;

use crate::set::EventSet;

/// Does the subsequence `events` of `run`'s events yield a subrun?
/// Streams through a history-free [`ScratchRun`] — no intermediate
/// instances are retained, and the replay stops at the first rejection.
pub fn is_subrun(run: &Run, events: &EventSet) -> bool {
    let mut sub = ScratchRun::restart_of(run);
    events.iter().all(|i| sub.try_push(run.event(i)).is_ok())
}

/// Replays the subsequence, returning the subrun if it exists.
pub fn subrun(run: &Run, events: &EventSet) -> Option<Run> {
    run.try_subrun(&events.to_vec()).ok()
}

/// Is `events` a scenario of `run` at `peer`? (Definition 3.2: it yields a
/// subrun whose `peer`-view equals the run's.)
pub fn is_scenario(run: &Run, peer: PeerId, events: &EventSet) -> bool {
    is_scenario_against(run, peer, events, &run.view(peer))
}

/// Scenario test against a precomputed target view (avoids recomputing
/// `ρ@p` inside search loops).
///
/// Streams the replay: each visible step is compared against the next
/// expected `(e@p, I@p)` observation as soon as it is produced, bailing out
/// on the first mismatch instead of materializing the whole subrun view.
/// Decision-identical to `subrun(..).view(peer) == target`.
pub fn is_scenario_against(run: &Run, peer: PeerId, events: &EventSet, target: &RunView) -> bool {
    if target.peer != peer {
        return false;
    }
    let mut sub = ScratchRun::restart_of(run);
    let mut matched = 0;
    for i in events.iter() {
        let event = run.event(i);
        if sub.try_push(event).is_err() {
            return false;
        }
        let own = event.peer == peer;
        if own || sub.changed(peer) {
            let Some(expected) = target.steps.get(matched) else {
                return false;
            };
            let event_matches = match (&expected.event, own) {
                (EventView::Own(e), true) => e == event,
                (EventView::World, false) => true,
                _ => false,
            };
            if !event_matches || expected.view != *sub.view(peer) {
                return false;
            }
            matched += 1;
        }
    }
    matched == target.steps.len()
}

/// The positions of the events of `run` visible at `peer`, as a set — every
/// scenario's view must reproduce exactly these observations, and every
/// p-faithful subsequence must *contain* them (Definition 4.5).
pub fn visible_set(run: &Run, peer: PeerId) -> EventSet {
    EventSet::from_iter(run.len(), run.visible_events(peer))
}

/// Total order on event sets by their characteristic bitmask (position 0 is
/// the least significant bit) — the order the exhaustive mask enumeration of
/// [`crate::minimal::all_minimal_scenarios`] visits candidates in. The
/// parallel enumeration asserts its merged output respects this order,
/// which is what makes it byte-identical to the sequential sweep.
pub fn mask_order(a: &EventSet, b: &EventSet) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    // Compare the *largest* differing position: whichever set contains it
    // has the numerically larger mask. Walk both sorted position lists from
    // the top.
    let av = a.to_vec();
    let bv = b.to_vec();
    let (mut i, mut j) = (av.len(), bv.len());
    loop {
        match (i, j) {
            (0, 0) => return Ordering::Equal,
            (0, _) => return Ordering::Less,
            (_, 0) => return Ordering::Greater,
            _ => match av[i - 1].cmp(&bv[j - 1]) {
                Ordering::Less => return Ordering::Less,
                Ordering::Greater => return Ordering::Greater,
                Ordering::Equal => {
                    i -= 1;
                    j -= 1;
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwf_engine::{Bindings, Event};
    use cwf_lang::parse_workflow;
    use std::sync::Arc;

    /// The hitting-set-flavoured workflow of Theorem 3.3 with two ways to
    /// derive C1.
    fn run_with(names: &[&str]) -> Run {
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { V1(K); V2(K); C1(K); OK(K); }
                peers {
                    q sees V1(*), V2(*), C1(*), OK(*);
                    p sees OK(*);
                }
                rules {
                    a1 @ q: +V1(0) :- ;
                    a2 @ q: +V2(0) :- ;
                    b1 @ q: +C1(0) :- V1(0);
                    b2 @ q: +C1(0) :- V2(0);
                    ok @ q: +OK(0) :- C1(0);
                }
                "#,
            )
            .unwrap(),
        );
        let mut run = Run::new(Arc::clone(&spec));
        for n in names {
            let rid = spec.program().rule_by_name(n).unwrap();
            run.push(Event::new(&spec, rid, Bindings::empty(0)).unwrap())
                .unwrap();
        }
        run
    }

    #[test]
    fn the_run_itself_is_a_scenario() {
        let run = run_with(&["a1", "a2", "b1", "ok"]);
        let p = run.spec().collab().peer("p").unwrap();
        let all = EventSet::full(run.len());
        assert!(is_subrun(&run, &all));
        assert!(is_scenario(&run, p, &all));
    }

    #[test]
    fn irrelevant_events_can_be_dropped() {
        let run = run_with(&["a1", "a2", "b1", "ok"]);
        let p = run.spec().collab().peer("p").unwrap();
        // a2 (position 1) is irrelevant to p.
        let sub = EventSet::from_iter(run.len(), [0, 2, 3]);
        assert!(is_scenario(&run, p, &sub));
        // …but not to q, who observes every event.
        let q = run.spec().collab().peer("q").unwrap();
        assert!(!is_scenario(&run, q, &sub));
    }

    #[test]
    fn alternative_derivations_are_scenarios_for_p() {
        let run = run_with(&["a1", "a2", "b1", "b2", "ok"]);
        let p = run.spec().collab().peer("p").unwrap();
        // Derive C1 via a2/b2 instead of a1/b1: same observations at p.
        let alt = EventSet::from_iter(run.len(), [1, 3, 4]);
        assert!(is_scenario(&run, p, &alt));
        // Note: b2 (position 3) is a *different event* than b1, and both
        // insert the same C1 fact — for p both appear as ω.
    }

    #[test]
    fn broken_dependencies_are_not_subruns() {
        let run = run_with(&["a1", "b1", "ok"]);
        let p = run.spec().collab().peer("p").unwrap();
        // Dropping a1 leaves b1's body unsatisfied.
        let bad = EventSet::from_iter(run.len(), [1, 2]);
        assert!(!is_subrun(&run, &bad));
        assert!(!is_scenario(&run, p, &bad));
    }

    #[test]
    fn subruns_missing_observations_are_not_scenarios() {
        let run = run_with(&["a1", "b1", "ok"]);
        let p = run.spec().collab().peer("p").unwrap();
        // a1 alone is a subrun but shows p nothing.
        let tiny = EventSet::from_iter(run.len(), [0]);
        assert!(is_subrun(&run, &tiny));
        assert!(!is_scenario(&run, p, &tiny));
        // The empty subsequence is a subrun and (for this run) not a
        // scenario either.
        assert!(is_subrun(&run, &EventSet::empty(run.len())));
        assert!(!is_scenario(&run, p, &EventSet::empty(run.len())));
    }

    #[test]
    fn mask_order_is_the_numeric_bitmask_order() {
        use std::cmp::Ordering;
        let set = |xs: &[usize]| EventSet::from_iter(6, xs.iter().copied());
        // Enumerate all 6-bit masks; mask_order must agree with u64 order.
        let sets: Vec<(u64, EventSet)> = (0u64..64)
            .map(|m| {
                (
                    m,
                    EventSet::from_iter(6, (0..6).filter(|i| m & (1 << i) != 0)),
                )
            })
            .collect();
        for (ma, a) in &sets {
            for (mb, b) in &sets {
                assert_eq!(mask_order(a, b), ma.cmp(mb), "{a:?} vs {b:?}");
            }
        }
        // Spot checks: {0,1} (mask 3) sits between {1} (2) and {2} (4).
        assert_eq!(mask_order(&set(&[1]), &set(&[0, 1])), Ordering::Less);
        assert_eq!(mask_order(&set(&[0, 1]), &set(&[2])), Ordering::Less);
    }

    #[test]
    fn visible_set_matches_run_view() {
        let run = run_with(&["a1", "a2", "b1", "ok"]);
        let p = run.spec().collab().peer("p").unwrap();
        assert_eq!(visible_set(&run, p).to_vec(), vec![3]);
        let q = run.spec().collab().peer("q").unwrap();
        assert_eq!(visible_set(&run, q).to_vec(), vec![0, 1, 2, 3]);
    }
}
