//! Minimal scenarios: greedy extraction and the exact (coNP-hard) minimality
//! test (Theorem 3.4).
//!
//! A scenario is *minimal* when no strict subsequence of it is a scenario.
//! Testing minimality is coNP-complete, so the exact test
//! ([`is_minimal_exact`]) delegates to the exponential search of
//! [`crate::minimum`] restricted to strict subsequences. The greedy
//! [`shrink_to_one_minimal`] removes events one at a time until no single
//! removal preserves the scenario property — this yields a *1-minimal*
//! scenario in polynomial time (the paper's greedy procedure for the
//! Hitting-Set runs), which need not be minimal in general.

use std::sync::atomic::{AtomicUsize, Ordering};

use cwf_engine::{Run, RunView};
use cwf_model::{Bound, Governor, PeerId, Pool, Reason, Verdict};

use crate::minimum::{search_min_scenario, SearchOptions};
use crate::scenario::{is_scenario, is_scenario_against};
use crate::set::EventSet;

/// Runs with fewer events than this (i.e. fewer than 2^10 candidate masks)
/// enumerate sequentially even under a multi-worker pool.
const PAR_MIN_MASK_BITS: usize = 10;

/// Greedily shrinks `start` (which must be a scenario of `run` at `peer`)
/// by single-event removals until 1-minimal. Removal candidates are tried
/// from the latest event backwards.
///
/// # Panics
///
/// Panics (debug assertion) if `start` is not a scenario.
pub fn shrink_to_one_minimal(run: &Run, peer: PeerId, start: &EventSet) -> EventSet {
    debug_assert!(is_scenario(run, peer, start), "start must be a scenario");
    let target = run.view(peer);
    let mut current = start.clone();
    loop {
        let mut shrunk = false;
        for i in current.to_vec().into_iter().rev() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if is_scenario_against(run, peer, &candidate, &target) {
                current = candidate;
                shrunk = true;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

/// Greedy minimal scenario of the full run (starting from all events).
pub fn one_minimal_scenario(run: &Run, peer: PeerId) -> EventSet {
    shrink_to_one_minimal(run, peer, &EventSet::full(run.len()))
}

/// Is `candidate` 1-minimal: a scenario none of whose single-event removals
/// is a scenario? (Polynomial.)
pub fn is_one_minimal(run: &Run, peer: PeerId, candidate: &EventSet) -> bool {
    let target = run.view(peer);
    if !is_scenario_against(run, peer, candidate, &target) {
        return false;
    }
    for i in candidate.iter() {
        let mut c = candidate.clone();
        c.remove(i);
        if is_scenario_against(run, peer, &c, &target) {
            return false;
        }
    }
    true
}

/// Exact minimality (Definition 3.2): no strict subsequence of `candidate`
/// is a scenario. coNP-hard, so the test is governed: `Exhausted` when `gov`
/// cuts the underlying search off before either a strict-subsequence
/// scenario (a witness of non-minimality) or an exhaustive refutation is
/// found.
pub fn is_minimal_exact(
    run: &Run,
    peer: PeerId,
    candidate: &EventSet,
    gov: &Governor,
) -> Verdict<bool> {
    gov.guard(|| {
        if !is_scenario(run, peer, candidate) {
            return Verdict::Done(false);
        }
        if candidate.is_empty() {
            return Verdict::Done(true);
        }
        let opts = SearchOptions {
            allowed: Some(candidate.clone()),
            max_len: Some(candidate.len() - 1),
            first_found: true,
            ..Default::default()
        };
        match search_min_scenario(run, peer, &opts, gov) {
            // Any strict-subsequence scenario — even one found after a
            // cutoff — is a definitive witness of non-minimality.
            Verdict::Done(Some(_)) | Verdict::Anytime(Some(_), _) => Verdict::Done(false),
            Verdict::Done(None) => Verdict::Done(true),
            Verdict::Anytime(None, b) => Verdict::Exhausted(b.reason),
            Verdict::Exhausted(reason) => Verdict::Exhausted(reason),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwf_engine::{Bindings, Event};
    use cwf_lang::parse_workflow;
    use std::sync::Arc;

    fn hitting_run(extra_b: bool) -> Run {
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { V1(K); V2(K); C1(K); OK(K); }
                peers {
                    q sees V1(*), V2(*), C1(*), OK(*);
                    p sees OK(*);
                }
                rules {
                    a1 @ q: +V1(0) :- ;
                    a2 @ q: +V2(0) :- ;
                    b1 @ q: +C1(0) :- V1(0);
                    b2 @ q: +C1(0) :- V2(0);
                    ok @ q: +OK(0) :- C1(0);
                }
                "#,
            )
            .unwrap(),
        );
        let mut run = Run::new(Arc::clone(&spec));
        let names: &[&str] = if extra_b {
            &["a1", "a2", "b1", "b2", "ok"]
        } else {
            &["a1", "b1", "ok"]
        };
        for n in names {
            let rid = spec.program().rule_by_name(n).unwrap();
            run.push(Event::new(&spec, rid, Bindings::empty(0)).unwrap())
                .unwrap();
        }
        run
    }

    #[test]
    fn greedy_shrinks_to_a_scenario() {
        let run = hitting_run(true);
        let p = run.spec().collab().peer("p").unwrap();
        let minimal = one_minimal_scenario(&run, p);
        assert!(is_scenario(&run, p, &minimal));
        assert!(is_one_minimal(&run, p, &minimal));
        // From 5 events down to 3: one (a), one (b), ok.
        assert_eq!(minimal.len(), 3);
    }

    #[test]
    fn greedy_result_is_exactly_minimal_here() {
        let run = hitting_run(true);
        let p = run.spec().collab().peer("p").unwrap();
        let minimal = one_minimal_scenario(&run, p);
        assert_eq!(
            is_minimal_exact(&run, p, &minimal, &Governor::unlimited()),
            Verdict::Done(true)
        );
    }

    #[test]
    fn full_run_is_not_minimal_when_redundant() {
        let run = hitting_run(true);
        let p = run.spec().collab().peer("p").unwrap();
        let full = EventSet::full(run.len());
        assert_eq!(
            is_minimal_exact(&run, p, &full, &Governor::unlimited()),
            Verdict::Done(false)
        );
        assert!(!is_one_minimal(&run, p, &full));
    }

    #[test]
    fn tight_run_is_minimal() {
        let run = hitting_run(false);
        let p = run.spec().collab().peer("p").unwrap();
        let full = EventSet::full(run.len());
        assert_eq!(
            is_minimal_exact(&run, p, &full, &Governor::unlimited()),
            Verdict::Done(true)
        );
        assert!(is_one_minimal(&run, p, &full));
    }

    #[test]
    fn non_scenarios_are_not_minimal() {
        let run = hitting_run(false);
        let p = run.spec().collab().peer("p").unwrap();
        let not_scenario = EventSet::from_iter(run.len(), [0]);
        assert_eq!(
            is_minimal_exact(&run, p, &not_scenario, &Governor::with_nodes(1_000)),
            Verdict::Done(false)
        );
        assert!(!is_one_minimal(&run, p, &not_scenario));
    }

    #[test]
    fn budget_exhaustion_returns_unknown() {
        let run = hitting_run(true);
        let p = run.spec().collab().peer("p").unwrap();
        let full = EventSet::full(run.len());
        assert_eq!(
            is_minimal_exact(&run, p, &full, &Governor::with_nodes(1)),
            Verdict::Exhausted(Reason::Nodes)
        );
    }

    #[test]
    fn empty_candidate_on_empty_view() {
        // A run invisible to p: the empty subsequence is its minimal scenario.
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { A(K); OK(K); }
                peers { q sees A(*), OK(*); p sees OK(*); }
                rules { a @ q: +A(0) :- ; }
                "#,
            )
            .unwrap(),
        );
        let mut run = Run::new(Arc::clone(&spec));
        let rid = spec.program().rule_by_name("a").unwrap();
        run.push(Event::new(&spec, rid, Bindings::empty(0)).unwrap())
            .unwrap();
        let p = spec.collab().peer("p").unwrap();
        let empty = EventSet::empty(run.len());
        assert!(is_scenario(&run, p, &empty));
        assert_eq!(
            is_minimal_exact(&run, p, &empty, &Governor::with_nodes(1_000)),
            Verdict::Done(true)
        );
        assert_eq!(one_minimal_scenario(&run, p), empty);
    }
}

/// Enumerates **all** minimal scenarios of `run` at `peer`, up to `max`
/// results (exponential in general — minimal scenarios are not unique,
/// which is precisely the paper's motivation for faithfulness).
///
/// Governed: each candidate mask costs one governor tick. On a cutoff the
/// verdict is `Anytime(partial, bound)` where `partial` holds the minimal
/// scenarios confirmed so far — sound, because a strict subset always has a
/// numerically smaller mask and is therefore enumerated first — and
/// `bound.lower` counts them.
pub fn all_minimal_scenarios(
    run: &Run,
    peer: PeerId,
    max: usize,
    gov: &Governor,
) -> Verdict<Vec<EventSet>> {
    all_minimal_scenarios_pooled(run, peer, max, gov, Pool::global())
}

/// [`all_minimal_scenarios`] on an explicit [`Pool`].
///
/// With more than one worker the 2^n mask space is cut into contiguous
/// ranges enumerated concurrently. Workers prune against their **local**
/// finds only (still sound: a pruned mask has a strict-subset scenario, so
/// it cannot be minimal), and the merged chunk results — concatenated in
/// chunk order, i.e. global mask order — pass through the same exact
/// minimality filter as the sequential sweep. Both paths therefore emit
/// exactly the minimal scenarios in mask order: byte-identical output on
/// every completed enumeration. On a governor cutoff only the chunks before
/// (and the partial finds of) the first cut-off chunk contribute, keeping
/// the anytime answer's "strict subsets were enumerated first" soundness
/// argument intact; the runaway `max * 8` guard counts finds across all
/// workers and so may trip slightly earlier than sequentially.
pub fn all_minimal_scenarios_pooled(
    run: &Run,
    peer: PeerId,
    max: usize,
    gov: &Governor,
    pool: &Pool,
) -> Verdict<Vec<EventSet>> {
    all_minimal_impl(run, peer, max, gov, pool, true)
}

/// [`all_minimal_scenarios_pooled`] with cone pruning disabled: the raw
/// `2^n` sweep over every event subset. Same answers on every completed
/// enumeration — this is the reference the differential battery compares
/// the pruned sweep against, and the honest baseline for benchmarks.
pub fn all_minimal_scenarios_unpruned(
    run: &Run,
    peer: PeerId,
    max: usize,
    gov: &Governor,
    pool: &Pool,
) -> Verdict<Vec<EventSet>> {
    all_minimal_impl(run, peer, max, gov, pool, false)
}

fn all_minimal_impl(
    run: &Run,
    peer: PeerId,
    max: usize,
    gov: &Governor,
    pool: &Pool,
    use_cone: bool,
) -> Verdict<Vec<EventSet>> {
    gov.guard(|| {
        // Collect scenarios by exhaustive mask enumeration, then filter to
        // the minimal ones (no strict subsequence among the collected set is
        // also a scenario). Masks range over subsets of the provenance cone
        // (every minimal scenario lies inside it, see [`crate::cone`]), so
        // the sweep costs 2^|cone| instead of 2^n.
        let target = run.view(peer);
        let n = run.len();
        let cone: Vec<usize> = if use_cone {
            crate::cone::peer_cone(run, peer).to_vec()
        } else {
            (0..n).collect()
        };
        if cone.len() > 24 {
            // 2^|cone| enumeration is the point here; keep it honest. The
            // result set (and the masks) would not fit any sane memory
            // account.
            return Verdict::Exhausted(Reason::Memory);
        }
        let bits = cone.len();
        let (scenarios, stopped) = if pool.is_sequential() || bits < PAR_MIN_MASK_BITS {
            collect_scenarios_range(run, peer, &target, &cone, 0, 1u64 << bits, gov, max, None)
        } else {
            collect_scenarios_parallel(run, peer, &target, &cone, gov, max, pool)
        };
        // Masks are enumerated in increasing numeric order, not subset
        // order, so finish with an exact minimality filter.
        let mut minimal: Vec<EventSet> = Vec::new();
        for s in &scenarios {
            if !scenarios.iter().any(|o| o.is_strict_subset(s)) {
                minimal.push(s.clone());
            }
        }
        minimal.truncate(max);
        match stopped {
            None => Verdict::Done(minimal),
            Some(reason) => {
                let found = minimal.len() as u64;
                Verdict::Anytime(
                    minimal,
                    Bound {
                        reason,
                        lower: Some(found),
                        upper: None,
                    },
                )
            }
        }
    })
}

/// Enumerates the masks in `[lo, hi)` in increasing order — bit `b` of a
/// mask selects position `cone[b]`, so compact-mask order equals the
/// expanded global mask order (bit expansion into fixed ascending positions
/// is monotone) — collecting every scenario that has no strict subset among
/// the scenarios already collected *by this call*. `found` (when running as
/// a pool worker) is the cross-worker find counter backing the runaway
/// guard.
#[allow(clippy::too_many_arguments)]
fn collect_scenarios_range(
    run: &Run,
    peer: PeerId,
    target: &RunView,
    cone: &[usize],
    lo: u64,
    hi: u64,
    gov: &Governor,
    max: usize,
    found: Option<&AtomicUsize>,
) -> (Vec<EventSet>, Option<Reason>) {
    let n = run.len();
    let mut scenarios: Vec<EventSet> = Vec::new();
    let mut stopped = None;
    for mask in lo..hi {
        if let Err(reason) = gov.tick() {
            stopped = Some(reason);
            break;
        }
        let set = EventSet::from_iter(
            n,
            cone.iter()
                .enumerate()
                .filter(|(b, _)| mask & (1 << *b) != 0)
                .map(|(_, &i)| i),
        );
        // Cheap pruning: a superset of a known minimal scenario with
        // extra events may still be a non-minimal scenario — skip replay
        // when a known scenario is a strict subset (it cannot be
        // minimal).
        if scenarios.iter().any(|s| s.is_strict_subset(&set)) {
            continue;
        }
        if is_scenario_against(run, peer, &set, target) {
            scenarios.push(set);
            let total = match found {
                Some(counter) => counter.fetch_add(1, Ordering::Relaxed) + 1,
                None => scenarios.len(),
            };
            if total > max * 8 {
                stopped = Some(Reason::Memory); // runaway; raise `max`
                break;
            }
        }
    }
    (scenarios, stopped)
}

/// Fans the mask space out over the pool in contiguous chunks and merges
/// the per-chunk finds back into global mask order.
fn collect_scenarios_parallel(
    run: &Run,
    peer: PeerId,
    target: &RunView,
    cone: &[usize],
    gov: &Governor,
    max: usize,
    pool: &Pool,
) -> (Vec<EventSet>, Option<Reason>) {
    let total = 1u64 << cone.len();
    let chunks = ((pool.threads() * 8) as u64).min(total);
    let found = AtomicUsize::new(0);
    let bounds: Vec<(u64, u64)> = (0..chunks)
        .map(|c| (total * c / chunks, total * (c + 1) / chunks))
        .collect();
    let outs = pool.run(bounds, |_, (lo, hi)| {
        collect_scenarios_range(run, peer, target, cone, lo, hi, gov, max, Some(&found))
    });
    let mut scenarios: Vec<EventSet> = Vec::new();
    let mut stopped = None;
    for (part, stop) in outs {
        scenarios.extend(part);
        if let Some(reason) = stop {
            // Chunks after the first cut-off one may well have completed,
            // but the anytime answer is only sound over a contiguous prefix
            // of the mask order — drop them.
            stopped = Some(reason);
            break;
        }
    }
    debug_assert!(
        scenarios
            .windows(2)
            .all(|w| crate::scenario::mask_order(&w[0], &w[1]) == std::cmp::Ordering::Less),
        "chunk-order concatenation must equal global mask order"
    );
    (scenarios, stopped)
}

#[cfg(test)]
mod enumeration_tests {
    use super::*;
    use cwf_engine::{Bindings, Event};
    use cwf_lang::parse_workflow;
    use std::sync::Arc;

    /// Two interchangeable derivations of C1: two distinct minimal
    /// scenarios exist — non-uniqueness in action.
    #[test]
    fn minimal_scenarios_are_not_unique() {
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { V1(K); V2(K); C1(K); OK(K); }
                peers {
                    q sees V1(*), V2(*), C1(*), OK(*);
                    p sees OK(*);
                }
                rules {
                    a1 @ q: +V1(0) :- ;
                    a2 @ q: +V2(0) :- ;
                    b1 @ q: +C1(0) :- V1(0);
                    b2 @ q: +C1(0) :- V2(0);
                    ok @ q: +OK(0) :- C1(0);
                }
                "#,
            )
            .unwrap(),
        );
        let mut run = cwf_engine::Run::new(Arc::clone(&spec));
        for n in ["a1", "a2", "b1", "b2", "ok"] {
            let rid = spec.program().rule_by_name(n).unwrap();
            run.push(Event::new(&spec, rid, Bindings::empty(0)).unwrap())
                .unwrap();
        }
        let p = spec.collab().peer("p").unwrap();
        let minimal = all_minimal_scenarios(&run, p, 10, &Governor::unlimited())
            .into_value()
            .unwrap();
        // {a1, b1, ok} and {a2, b2, ok} are both minimal.
        assert!(minimal.len() >= 2, "got {minimal:?}");
        assert!(minimal.contains(&EventSet::from_iter(5, [0, 2, 4])));
        assert!(minimal.contains(&EventSet::from_iter(5, [1, 3, 4])));
        // All results are scenarios and pairwise incomparable.
        for s in &minimal {
            assert!(crate::scenario::is_scenario(&run, p, s));
            for o in &minimal {
                assert!(s == o || !s.is_strict_subset(o));
            }
        }
        // By contrast, the minimal FAITHFUL scenario is unique (Thm 4.7) and
        // contains both derivations (each C1 writer is boundary-relevant
        // only if used… here the closure keeps what the visible event
        // depends on).
        let faithful = crate::tp::minimal_faithful_scenario(&run, p);
        assert!(crate::scenario::is_scenario(&run, p, &faithful.events));
    }

    #[test]
    fn budget_and_size_guards() {
        let spec = Arc::new(
            parse_workflow(
                "schema { T(K); } peers { p sees T(*); } rules { r @ p: +T(0) :- not key T(0); }",
            )
            .unwrap(),
        );
        let mut run = cwf_engine::Run::new(Arc::clone(&spec));
        let rid = spec.program().rule_by_name("r").unwrap();
        run.push(Event::new(&spec, rid, Bindings::empty(0)).unwrap())
            .unwrap();
        let p = spec.collab().peer("p").unwrap();
        assert_eq!(
            all_minimal_scenarios(&run, p, 5, &Governor::with_nodes(1_000)),
            Verdict::Done(vec![EventSet::full(1)])
        );
        let cut = all_minimal_scenarios(&run, p, 5, &Governor::with_nodes(0));
        assert!(!cut.is_done(), "budget must cut the enumeration: {cut:?}");
        assert_eq!(cut.reason(), Some(&Reason::Nodes));
    }
}
