//! High-level explanation reports.
//!
//! [`explain`] bundles the machinery of Sections 3–4 into the artifact a
//! peer would actually consume: the minimal p-faithful scenario, rendered
//! event by event, with each event annotated by whether the peer saw it
//! directly and which lifecycle/modification obligations pulled it in.

use std::fmt;

use cwf_engine::Run;
use cwf_model::PeerId;

use crate::index::RunIndex;
use crate::set::EventSet;
use crate::tp::{minimal_faithful_scenario_indexed, FaithfulExplanation};

/// One line of an explanation: an event of the minimal faithful scenario.
#[derive(Debug, Clone)]
pub struct ExplainedEvent {
    /// Position in the original run.
    pub index: usize,
    /// Human-readable rendering of the event.
    pub description: String,
    /// Was this event directly visible at the peer?
    pub visible: bool,
}

/// A full explanation of a run for a peer.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The peer the run is explained to.
    pub peer: PeerId,
    /// The peer's name.
    pub peer_name: String,
    /// Length of the explained run.
    pub run_len: usize,
    /// The minimal p-faithful scenario.
    pub events: Vec<ExplainedEvent>,
    /// The underlying event set (positions into the original run).
    pub set: EventSet,
}

impl Explanation {
    /// Fraction of the run retained by the explanation (0 for an empty run).
    pub fn compression(&self) -> f64 {
        if self.run_len == 0 {
            0.0
        } else {
            self.events.len() as f64 / self.run_len as f64
        }
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Explanation for {}: {} of {} events relevant",
            self.peer_name,
            self.events.len(),
            self.run_len
        )?;
        for e in &self.events {
            let marker = if e.visible { "seen  " } else { "hidden" };
            writeln!(f, "  [{marker}] #{:<3} {}", e.index, e.description)?;
        }
        Ok(())
    }
}

/// Explains `run` to `peer` via its unique minimal p-faithful scenario
/// (Theorem 4.7).
///
/// ```
/// use std::sync::Arc;
/// use cwf_lang::parse_workflow;
/// use cwf_engine::{Bindings, Event, Run};
/// use cwf_core::explain;
///
/// let spec = Arc::new(parse_workflow(r#"
///     schema { A(K); Out(K); }
///     peers { q sees A(*), Out(*); p sees Out(*); }
///     rules {
///         junk @ q: +A(1) :- ;
///         out  @ q: +Out(0) :- ;
///     }
/// "#).unwrap());
/// let mut run = Run::new(Arc::clone(&spec));
/// for name in ["junk", "out"] {
///     let rid = spec.program().rule_by_name(name).unwrap();
///     run.push(Event::new(&spec, rid, Bindings::empty(0)).unwrap()).unwrap();
/// }
/// let p = spec.collab().peer("p").unwrap();
/// let ex = explain(&run, p);
/// // Only the Out insertion matters to p; the junk event is dropped.
/// assert_eq!(ex.events.len(), 1);
/// assert_eq!(ex.run_len, 2);
/// ```
pub fn explain(run: &Run, peer: PeerId) -> Explanation {
    let index = RunIndex::build(run);
    let FaithfulExplanation { events, .. } = minimal_faithful_scenario_indexed(run, &index, peer);
    let spec = run.spec();
    let explained = events
        .iter()
        .map(|i| ExplainedEvent {
            index: i,
            description: run.event(i).describe(spec),
            visible: run.visible_at(i, peer),
        })
        .collect();
    Explanation {
        peer,
        peer_name: spec.collab().peer_name(peer).to_string(),
        run_len: run.len(),
        events: explained,
        set: events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwf_engine::{Bindings, Event};
    use cwf_lang::parse_workflow;
    use std::sync::Arc;

    fn run() -> Run {
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { Ok(K); Approval(K); }
                peers {
                    cto sees Ok(*), Approval(*);
                    ceo sees Ok(*), Approval(*);
                    assistant sees Ok(*), Approval(*);
                    applicant sees Approval(*);
                }
                rules {
                    e @ cto: +Ok(0) :- ;
                    f @ cto: -key Ok(0) :- Ok(0);
                    g @ ceo: +Ok(0) :- ;
                    h @ assistant: +Approval(0) :- Ok(0);
                }
                "#,
            )
            .unwrap(),
        );
        let mut run = Run::new(Arc::clone(&spec));
        for n in ["e", "f", "g", "h"] {
            let rid = spec.program().rule_by_name(n).unwrap();
            run.push(Event::new(&spec, rid, Bindings::empty(0)).unwrap())
                .unwrap();
        }
        run
    }

    #[test]
    fn explanation_reports_scenario_events() {
        let run = run();
        let applicant = run.spec().collab().peer("applicant").unwrap();
        let ex = explain(&run, applicant);
        assert_eq!(ex.peer_name, "applicant");
        assert_eq!(ex.run_len, 4);
        assert_eq!(ex.events.len(), 2);
        assert_eq!(ex.events[0].index, 2, "g, the ceo approval");
        assert!(
            !ex.events[0].visible,
            "g itself is hidden from the applicant"
        );
        assert!(ex.events[1].visible, "h changes the applicant's view");
        assert!((ex.compression() - 0.5).abs() < 1e-9);
        assert_eq!(ex.set.to_vec(), vec![2, 3]);
    }

    #[test]
    fn display_renders_markers() {
        let run = run();
        let applicant = run.spec().collab().peer("applicant").unwrap();
        let shown = explain(&run, applicant).to_string();
        assert!(shown.contains("Explanation for applicant"));
        assert!(shown.contains("[hidden] #2"));
        assert!(shown.contains("[seen  ] #3"));
        assert!(shown.contains("g@ceo"));
    }

    #[test]
    fn full_observer_gets_the_whole_run() {
        let run = run();
        let cto = run.spec().collab().peer("cto").unwrap();
        let ex = explain(&run, cto);
        assert_eq!(ex.events.len(), 4);
        assert!((ex.compression() - 1.0).abs() < 1e-9);
    }
}
