//! Per-run index of the structures faithfulness is defined on:
//! key occurrences `K(R, e)`, object lifecycles, and attribute
//! modifications (Section 4).
//!
//! The index is built once per run (and extended incrementally as events are
//! appended) so the `T_p` fixpoint and the faithfulness checks never rescan
//! instances.

use std::collections::{BTreeMap, BTreeSet};

use cwf_engine::{GroundUpdate, Run};
use cwf_model::{AttrId, RelId, Value};

/// An `R`-lifecycle of a key: the interval from the event inserting a *new*
/// tuple with that key to the event deleting it (`end = None` for an open
/// lifecycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lifecycle {
    /// Position of the left boundary event (the creating insertion).
    pub start: usize,
    /// Position of the right boundary event (the deletion), if closed.
    pub end: Option<usize>,
}

impl Lifecycle {
    /// Does the interval contain position `i`?
    pub fn contains(&self, i: usize) -> bool {
        i >= self.start && self.end.is_none_or(|e| i <= e)
    }

    /// Is the lifecycle closed?
    pub fn is_closed(&self) -> bool {
        self.end.is_some()
    }
}

/// A modification record: event `at` turned the listed attributes of the
/// existing tuple `(rel, key)` from `⊥` to a value (Definition 4.4's trigger).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Modification {
    /// The position of the modifying event.
    pub at: usize,
    /// The attributes turned from `⊥` to a non-`⊥` value.
    pub attrs: BTreeSet<AttrId>,
}

/// Index of one run's faithfulness-relevant structure.
#[derive(Debug, Clone, Default)]
pub struct RunIndex {
    /// Number of indexed events.
    len: usize,
    /// Per event: `K(R, e)` as relation → keys.
    key_occs: Vec<BTreeMap<RelId, BTreeSet<Value>>>,
    /// Per `(R, k)`: lifecycles in chronological order.
    lifecycles: BTreeMap<(RelId, Value), Vec<Lifecycle>>,
    /// Per `(R, k)`: modification events in chronological order.
    mods: BTreeMap<(RelId, Value), Vec<Modification>>,
}

impl RunIndex {
    /// Builds the index of a run.
    pub fn build(run: &Run) -> Self {
        let mut idx = RunIndex::default();
        idx.extend(run);
        idx
    }

    /// Extends the index with the events of `run` beyond the already-indexed
    /// prefix (incremental maintenance).
    pub fn extend(&mut self, run: &Run) {
        let spec = run.spec();
        for i in self.len..run.len() {
            let event = run.event(i);
            self.key_occs.push(event.key_occurrences(spec));
            let pre = run.pre_instance(i);
            for upd in event.ground_updates(spec) {
                match upd {
                    GroundUpdate::Insert { rel, view_tuple } => {
                        let key = *view_tuple.key();
                        match pre.rel(rel).get(&key) {
                            None => {
                                // A new tuple: opens a lifecycle.
                                self.lifecycles
                                    .entry((rel, key))
                                    .or_default()
                                    .push(Lifecycle {
                                        start: i,
                                        end: None,
                                    });
                            }
                            Some(old) => {
                                // An existing tuple: record ⊥→v attribute flips.
                                let post = run.instance(i);
                                let Some(new) = post.rel(rel).get(&key) else {
                                    continue; // deleted by a sibling update
                                };
                                let attrs: BTreeSet<AttrId> = old
                                    .entries()
                                    .filter(|(a, v)| v.is_null() && !new.get(*a).is_null())
                                    .map(|(a, _)| a)
                                    .collect();
                                if !attrs.is_empty() {
                                    self.mods
                                        .entry((rel, key))
                                        .or_default()
                                        .push(Modification { at: i, attrs });
                                }
                            }
                        }
                    }
                    GroundUpdate::Delete { rel, key } => {
                        // Close the open lifecycle (the delete semantics
                        // guarantee the tuple exists).
                        if let Some(lcs) = self.lifecycles.get_mut(&(rel, key)) {
                            if let Some(last) = lcs.last_mut() {
                                if last.end.is_none() {
                                    last.end = Some(i);
                                }
                            }
                        }
                    }
                }
            }
            self.len += 1;
        }
    }

    /// Number of indexed events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `K(R, e_i)` for every `R`.
    pub fn key_occurrences(&self, i: usize) -> &BTreeMap<RelId, BTreeSet<Value>> {
        &self.key_occs[i]
    }

    /// All lifecycles of `(rel, key)`.
    pub fn lifecycles_of(&self, rel: RelId, key: &Value) -> &[Lifecycle] {
        self.lifecycles
            .get(&(rel, *key))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The lifecycle of `(rel, key)` containing position `i`, if any.
    pub fn lifecycle_containing(&self, rel: RelId, key: &Value, i: usize) -> Option<Lifecycle> {
        self.lifecycles_of(rel, key)
            .iter()
            .find(|lc| lc.contains(i))
            .copied()
    }

    /// The modification events of `(rel, key)` (chronological).
    pub fn modifications_of(&self, rel: RelId, key: &Value) -> &[Modification] {
        self.mods
            .get(&(rel, *key))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All `(rel, key)` pairs with at least one lifecycle.
    pub fn tracked_objects(&self) -> impl Iterator<Item = (&(RelId, Value), &Vec<Lifecycle>)> {
        self.lifecycles.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwf_engine::{Bindings, Event};
    use cwf_lang::parse_workflow;
    use std::sync::Arc;

    /// p and q split R(K, A, B): p sees (K, A), q sees (K, B). Keys and
    /// values come from pool relations seeded in the initial instance so the
    /// same key can live several lifecycles (head-only variables would be
    /// forced globally fresh).
    fn spec_and_run() -> Run {
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { R(K, A, B); Pool(K); }
                peers {
                    p sees R(K, A), Pool(*);
                    q sees R(K, B), Pool(*);
                }
                rules {
                    p_ins @ p: +R(x, a) :- Pool(x), Pool(a);
                    q_ins @ q: +R(x, b) :- Pool(x), Pool(b);
                    p_del @ p: -key R(x) :- R(x, a);
                }
                "#,
            )
            .unwrap(),
        );
        let pool = spec.collab().schema().rel("Pool").unwrap();
        let mut init = cwf_model::Instance::empty(spec.collab().schema());
        for v in ["k", "a", "a2", "b"] {
            init.rel_mut(pool)
                .insert(cwf_model::Tuple::new([Value::str(v)]))
                .unwrap();
        }
        Run::with_initial(spec, init)
    }

    fn ev(run: &Run, name: &str, vals: &[Value]) -> Event {
        let spec = run.spec();
        let rid = spec.program().rule_by_name(name).unwrap();
        let mut b = Bindings::empty(vals.len());
        for (i, v) in vals.iter().enumerate() {
            b.set(cwf_lang::VarId(i as u32), *v);
        }
        Event::new(spec, rid, b).unwrap()
    }

    #[test]
    fn lifecycle_open_close_and_reopen() {
        let mut run = spec_and_run();
        let k = Value::str("k");
        let e0 = ev(&run, "p_ins", &[k, Value::str("a")]);
        run.push(e0).unwrap(); // opens
        let e1 = ev(&run, "p_del", &[k, Value::str("a")]);
        run.push(e1).unwrap(); // closes
        let e2 = ev(&run, "p_ins", &[k, Value::str("a2")]);
        run.push(e2).unwrap(); // reopens
        let idx = RunIndex::build(&run);
        let r = cwf_model::RelId(0);
        let lcs = idx.lifecycles_of(r, &k);
        assert_eq!(
            lcs,
            &[
                Lifecycle {
                    start: 0,
                    end: Some(1)
                },
                Lifecycle {
                    start: 2,
                    end: None
                }
            ]
        );
        assert_eq!(
            idx.lifecycle_containing(r, &k, 1),
            Some(Lifecycle {
                start: 0,
                end: Some(1)
            })
        );
        assert_eq!(
            idx.lifecycle_containing(r, &k, 5),
            Some(Lifecycle {
                start: 2,
                end: None
            })
        );
        assert!(lcs[0].is_closed());
        assert!(!lcs[1].is_closed());
        assert!(lcs[0].contains(0) && lcs[0].contains(1) && !lcs[0].contains(2));
    }

    #[test]
    fn modifications_record_null_to_value_flips() {
        let mut run = spec_and_run();
        let k = Value::str("k");
        run.push(ev(&run, "p_ins", &[k, Value::str("a")])).unwrap();
        // q fills B of the existing tuple: a modification of attribute B.
        run.push(ev(&run, "q_ins", &[k, Value::str("b")])).unwrap();
        let idx = RunIndex::build(&run);
        let r = cwf_model::RelId(0);
        let mods = idx.modifications_of(r, &k);
        assert_eq!(mods.len(), 1);
        assert_eq!(mods[0].at, 1);
        assert_eq!(mods[0].attrs, BTreeSet::from([AttrId(2)]), "attribute B");
        // The creating insert is not a modification.
        assert!(idx.modifications_of(r, &Value::str("zzz")).is_empty());
    }

    #[test]
    fn key_occurrences_exposed_per_event() {
        let mut run = spec_and_run();
        let k = Value::str("k");
        run.push(ev(&run, "p_ins", &[k, Value::str("a")])).unwrap();
        let idx = RunIndex::build(&run);
        let r = cwf_model::RelId(0);
        assert_eq!(idx.key_occurrences(0)[&r], BTreeSet::from([k]));
    }

    #[test]
    fn extend_is_incremental() {
        let mut run = spec_and_run();
        let k = Value::str("k");
        run.push(ev(&run, "p_ins", &[k, Value::str("a")])).unwrap();
        let mut idx = RunIndex::build(&run);
        assert_eq!(idx.len(), 1);
        run.push(ev(&run, "p_del", &[k, Value::str("a")])).unwrap();
        idx.extend(&run);
        assert_eq!(idx.len(), 2);
        let full = RunIndex::build(&run);
        let r = cwf_model::RelId(0);
        assert_eq!(idx.lifecycles_of(r, &k), full.lifecycles_of(r, &k));
        assert!(!idx.is_empty());
        assert_eq!(idx.tracked_objects().count(), 1);
    }
}
