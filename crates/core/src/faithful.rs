//! Faithfulness of subsequences (Section 4, Definitions 4.3–4.5).
//!
//! * **Boundary faithfulness** (Def. 4.3): whenever a subsequence event uses
//!   a key inside an `R`-lifecycle, the lifecycle's left boundary (and, for
//!   closed lifecycles, its right boundary) must also be in the subsequence.
//! * **Modification faithfulness for `p`** (Def. 4.4): whenever a
//!   subsequence event of peer `q` uses key `k` inside a lifecycle, every
//!   earlier event of the lifecycle that turned an attribute of
//!   `att(R, q) ∪ att(R, p)` of the tuple from `⊥` to a value must also be
//!   in the subsequence.
//! * A subsequence is **p-faithful** (Def. 4.5) when it contains all events
//!   visible at `p`, is boundary faithful, and is modification faithful for
//!   `p`.

use std::collections::BTreeSet;

use cwf_engine::Run;
use cwf_model::{AttrId, PeerId, RelId};

use crate::index::RunIndex;
use crate::scenario::visible_set;
use crate::set::EventSet;

/// `att(R, q) = att(R@q) ∪ att(σ(R@q))` — empty when `q` does not see `R`.
pub fn relevant_attrs(run: &Run, peer: PeerId, rel: RelId) -> BTreeSet<AttrId> {
    run.spec()
        .collab()
        .relevant_attrs(peer, rel)
        .unwrap_or_default()
}

/// Boundary faithfulness of `alpha` (Definition 4.3). (The run itself is
/// not needed — the index carries all lifecycle structure — but the
/// signature mirrors the other checks.)
pub fn is_boundary_faithful(_run: &Run, index: &RunIndex, alpha: &EventSet) -> bool {
    for j in alpha.iter() {
        for (rel, keys) in index.key_occurrences(j) {
            for k in keys {
                // A key may occur without being in a lifecycle containing j
                // (e.g. a ¬Key literal): then no requirement.
                if let Some(lc) = index.lifecycle_containing(*rel, k, j) {
                    if !alpha.contains(lc.start) {
                        return false;
                    }
                    if let Some(end) = lc.end {
                        if !alpha.contains(end) {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

/// Modification faithfulness of `alpha` for `peer` (Definition 4.4).
pub fn is_modification_faithful(
    run: &Run,
    index: &RunIndex,
    peer: PeerId,
    alpha: &EventSet,
) -> bool {
    for j in alpha.iter() {
        let q = run.event(j).peer;
        for (rel, keys) in index.key_occurrences(j) {
            let mut relevant = relevant_attrs(run, q, *rel);
            relevant.extend(relevant_attrs(run, peer, *rel));
            for k in keys {
                let Some(lc) = index.lifecycle_containing(*rel, k, j) else {
                    continue;
                };
                for m in index.modifications_of(*rel, k) {
                    if m.at < j
                        && lc.contains(m.at)
                        && m.attrs.iter().any(|a| relevant.contains(a))
                        && !alpha.contains(m.at)
                    {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Is `alpha` a p-faithful subsequence of `e(ρ)` (Definition 4.5)?
pub fn is_faithful(run: &Run, index: &RunIndex, peer: PeerId, alpha: &EventSet) -> bool {
    visible_set(run, peer).is_subset(alpha)
        && is_boundary_faithful(run, index, alpha)
        && is_modification_faithful(run, index, peer, alpha)
}

/// Boundary + modification faithfulness without the visible-events
/// requirement — i.e. `alpha` is a fixed-point of `T_p(ρ, ·)`. This is the
/// carrier of the semiring in Theorem 4.8 (per-event explanations
/// `T_p^ω(ρ, f)` are of this kind even when `f` is invisible at `p`).
pub fn is_tp_fixpoint(run: &Run, index: &RunIndex, peer: PeerId, alpha: &EventSet) -> bool {
    is_boundary_faithful(run, index, alpha) && is_modification_faithful(run, index, peer, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::is_scenario;
    use cwf_engine::{Bindings, Event};
    use cwf_lang::parse_workflow;
    use std::sync::Arc;

    /// Example 4.2: peers cto, ceo, assistant see ok and approval;
    /// applicant sees only approval.
    fn example_4_2() -> Run {
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { Ok(K); Approval(K); }
                peers {
                    cto sees Ok(*), Approval(*);
                    ceo sees Ok(*), Approval(*);
                    assistant sees Ok(*), Approval(*);
                    applicant sees Approval(*);
                }
                rules {
                    e @ cto: +Ok(0) :- ;
                    f @ cto: -key Ok(0) :- Ok(0);
                    g @ ceo: +Ok(0) :- ;
                    h @ assistant: +Approval(0) :- Ok(0);
                }
                "#,
            )
            .unwrap(),
        );
        let mut run = Run::new(Arc::clone(&spec));
        for n in ["e", "f", "g", "h"] {
            let rid = spec.program().rule_by_name(n).unwrap();
            run.push(Event::new(&spec, rid, Bindings::empty(0)).unwrap())
                .unwrap();
        }
        run
    }

    #[test]
    fn example_4_2_eh_is_a_misleading_scenario_but_not_faithful() {
        let run = example_4_2();
        let applicant = run.spec().collab().peer("applicant").unwrap();
        let index = RunIndex::build(&run);
        // e h is a scenario at the applicant…
        let eh = EventSet::from_iter(4, [0, 3]);
        assert!(is_scenario(&run, applicant, &eh));
        // …but not boundary faithful: e opens a *closed* lifecycle of Ok
        // whose right boundary f is missing, and h sits in g's lifecycle
        // whose left boundary g is missing.
        assert!(!is_boundary_faithful(&run, &index, &eh));
        assert!(!is_faithful(&run, &index, applicant, &eh));
    }

    #[test]
    fn example_4_2_gh_is_faithful() {
        let run = example_4_2();
        let applicant = run.spec().collab().peer("applicant").unwrap();
        let index = RunIndex::build(&run);
        let gh = EventSet::from_iter(4, [2, 3]);
        assert!(is_boundary_faithful(&run, &index, &gh));
        assert!(is_modification_faithful(&run, &index, applicant, &gh));
        assert!(is_faithful(&run, &index, applicant, &gh));
        assert!(is_scenario(&run, applicant, &gh), "Lemma 4.6 in action");
    }

    #[test]
    fn including_e_forces_f_by_boundary_faithfulness() {
        let run = example_4_2();
        let index = RunIndex::build(&run);
        // e alone: its closed lifecycle [e, f] demands f.
        let e_only = EventSet::from_iter(4, [0]);
        assert!(!is_boundary_faithful(&run, &index, &e_only));
        let ef = EventSet::from_iter(4, [0, 1]);
        assert!(is_boundary_faithful(&run, &index, &ef));
    }

    #[test]
    fn faithfulness_requires_visible_events() {
        let run = example_4_2();
        let applicant = run.spec().collab().peer("applicant").unwrap();
        let index = RunIndex::build(&run);
        // The empty set is a T_p fixpoint but not faithful (h is visible).
        let empty = EventSet::empty(4);
        assert!(is_tp_fixpoint(&run, &index, applicant, &empty));
        assert!(!is_faithful(&run, &index, applicant, &empty));
    }

    /// Example 4.1 shape: modifications of a tuple's relevant attributes
    /// must be retained.
    #[test]
    fn modification_faithfulness_pulls_in_attribute_writers() {
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { R(K, A, B); Out(K); Pool(K); }
                peers {
                    p1 sees R(K, A), Pool(*);
                    p2 sees R(K, B), Out(K), Pool(*);
                    p sees Out(*);
                }
                rules {
                    open @ p1: +R(x, a) :- Pool(x), Pool(a);
                    fill @ p2: +R(x, b) :- Pool(x), Pool(b);
                    use  @ p2: +Out(0) :- R(x, b);
                }
                "#,
            )
            .unwrap(),
        );
        use cwf_model::Value;
        let pool = spec.collab().schema().rel("Pool").unwrap();
        let mut init = cwf_model::Instance::empty(spec.collab().schema());
        for v in ["k", "a", "b"] {
            init.rel_mut(pool)
                .insert(cwf_model::Tuple::new([Value::str(v)]))
                .unwrap();
        }
        let mut run = Run::with_initial(Arc::clone(&spec), init);
        let k = Value::str("k");
        let push = |run: &mut Run, name: &str, vals: &[Value]| {
            let rid = run.spec().program().rule_by_name(name).unwrap();
            let mut b = Bindings::empty(vals.len());
            for (i, v) in vals.iter().enumerate() {
                b.set(cwf_lang::VarId(i as u32), *v);
            }
            let e = Event::new(run.spec(), rid, b).unwrap();
            run.push(e).unwrap();
        };
        push(&mut run, "open", &[k, Value::str("a")]); // 0: creates tuple
        push(&mut run, "fill", &[k, Value::str("b")]); // 1: fills B (relevant to p2)
        push(&mut run, "use", &[k, Value::str("b")]); // 2: uses R(k, b), visible at p
        let index = RunIndex::build(&run);
        let p = run.spec().collab().peer("p").unwrap();
        // {0, 2} is boundary faithful (0 is the lifecycle start) but drops
        // the modification (event 1) of attribute B, relevant to event 2's
        // peer p2.
        let without_fill = EventSet::from_iter(3, [0, 2]);
        assert!(is_boundary_faithful(&run, &index, &without_fill));
        assert!(!is_modification_faithful(&run, &index, p, &without_fill));
        let full = EventSet::full(3);
        assert!(is_faithful(&run, &index, p, &full));
    }

    #[test]
    fn relevant_attrs_empty_for_blind_peer() {
        let run = example_4_2();
        let applicant = run.spec().collab().peer("applicant").unwrap();
        let ok = run.spec().collab().schema().rel("Ok").unwrap();
        assert!(relevant_attrs(&run, applicant, ok).is_empty());
        let cto = run.spec().collab().peer("cto").unwrap();
        assert!(!relevant_attrs(&run, cto, ok).is_empty());
    }
}
