//! Incremental maintenance of minimal p-faithful scenarios (end of
//! Section 4).
//!
//! The explainer maintains, for a growing run `ρ`:
//!
//! * `per_event[f] = T_p^ω(ρ, {f})` — the minimal boundary/modification
//!   p-faithful "explanation" of each individual event `f`, and
//! * `main = T_p^ω(ρ, α)` where `α` is the set of events visible at `p` —
//!   the minimal p-faithful scenario.
//!
//! When an event `e` arrives, only *single* incremental updates are needed
//! (no fixpoint from scratch), exploiting the additivity of `T_p`
//! (Lemma A.1):
//!
//! 1. `per_event[e] = {e} ∪ ⋃ { per_event[g] | g ∈ direct-requirements(e) }`;
//! 2. for an old `f`, if `e` is the right boundary of an open lifecycle of a
//!    key occurring in `per_event[f]` — i.e. `e ∈ T_p(ρ.e, per_event[f])` —
//!    then `per_event[f] ∪= per_event[e]`, otherwise it is unchanged;
//! 3. `main ∪= per_event[e]` iff `e` is visible at `p` or `e` closes a
//!    lifecycle used by `main`; otherwise unchanged.
//!
//! Tests cross-check every maintained set against from-scratch fixpoints.

use cwf_engine::{EngineError, Event, GroundUpdate, Run};
use cwf_model::PeerId;

use crate::faithful::relevant_attrs;
use crate::index::RunIndex;
use crate::set::EventSet;
use crate::tp::tp_closure;

/// Incrementally maintained explanations of a growing run.
#[derive(Debug, Clone)]
pub struct IncrementalExplainer {
    run: Run,
    peer: PeerId,
    index: RunIndex,
    main: EventSet,
    per_event: Vec<EventSet>,
}

impl IncrementalExplainer {
    /// Wraps an existing run, computing the initial state (from scratch, in
    /// polynomial time).
    pub fn new(run: Run, peer: PeerId) -> Self {
        let index = RunIndex::build(&run);
        let n = run.len();
        let per_event = (0..n)
            .map(|i| tp_closure(&run, &index, peer, &EventSet::from_iter(n, [i])))
            .collect();
        let main = tp_closure(
            &run,
            &index,
            peer,
            &EventSet::from_iter(n, run.visible_events(peer)),
        );
        IncrementalExplainer {
            run,
            peer,
            index,
            main,
            per_event,
        }
    }

    /// The underlying run.
    pub fn run(&self) -> &Run {
        &self.run
    }

    /// The observing peer.
    pub fn peer(&self) -> PeerId {
        self.peer
    }

    /// The event set of the minimal p-faithful scenario (`T_p^ω(ρ, α)`).
    pub fn minimal_events(&self) -> &EventSet {
        &self.main
    }

    /// The minimal explanation of individual event `f` (`T_p^ω(ρ, {f})`).
    pub fn explanation_of(&self, f: usize) -> &EventSet {
        &self.per_event[f]
    }

    /// Replays the minimal p-faithful scenario as a subrun.
    pub fn minimal_scenario(&self) -> Run {
        self.run
            .try_subrun(&self.main.to_vec())
            .expect("Lemma 4.6: the maintained set is faithful, hence a subrun")
    }

    /// Appends an event and updates all maintained explanations.
    pub fn push(&mut self, event: Event) -> Result<(), EngineError> {
        self.run.push(event)?;
        self.index.extend(&self.run);
        let n = self.run.len();
        let j = n - 1;
        self.main.grow(n);
        for s in &mut self.per_event {
            s.grow(n);
        }
        // (1) The new event's own explanation: {j} plus the (old, hence
        // still-valid) explanations of its direct requirements.
        let mut expl_j = EventSet::from_iter(n, [j]);
        for g in self.direct_requirements(j) {
            if g != j {
                expl_j = expl_j.union(&self.per_event[g]);
            }
        }
        // j's requirements of *itself* via closed lifecycles are covered by
        // membership; second-order requirements of pulled-in events are
        // already inside their memoized closures.
        self.per_event.push(expl_j);
        // (2) Old explanations that now require j (j closes a lifecycle one
        // of their members uses).
        let closed = self.lifecycles_closed_by(j);
        let expl_j = self.per_event[j].clone();
        for f in 0..j {
            if self.set_uses_closed_lifecycle(&self.per_event[f], &closed) {
                self.per_event[f] = self.per_event[f].union(&expl_j);
            }
        }
        // (3) The main scenario.
        let needs_j = self.run.visible_at(j, self.peer)
            || self.set_uses_closed_lifecycle(&self.main, &closed);
        if needs_j {
            self.main = self.main.union(&expl_j);
        }
        Ok(())
    }

    /// The direct (one-step) requirements of event `j`: lifecycle boundaries
    /// and relevant modifications for every key occurrence of `j`.
    fn direct_requirements(&self, j: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let q = self.run.event(j).peer;
        for (rel, keys) in self.index.key_occurrences(j) {
            let mut relevant = relevant_attrs(&self.run, q, *rel);
            relevant.extend(relevant_attrs(&self.run, self.peer, *rel));
            for k in keys {
                let Some(lc) = self.index.lifecycle_containing(*rel, k, j) else {
                    continue;
                };
                out.push(lc.start);
                if let Some(end) = lc.end {
                    out.push(end);
                }
                for m in self.index.modifications_of(*rel, k) {
                    if m.at < j && lc.contains(m.at) && m.attrs.iter().any(|a| relevant.contains(a))
                    {
                        out.push(m.at);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The `(rel, key, lifecycle)` triples whose lifecycle `j` closes.
    fn lifecycles_closed_by(
        &self,
        j: usize,
    ) -> Vec<(cwf_model::RelId, cwf_model::Value, crate::index::Lifecycle)> {
        let spec = self.run.spec();
        let mut out = Vec::new();
        for upd in self.run.event(j).ground_updates(spec) {
            if let GroundUpdate::Delete { rel, key } = upd {
                if let Some(lc) = self
                    .index
                    .lifecycles_of(rel, &key)
                    .iter()
                    .find(|lc| lc.end == Some(j))
                {
                    out.push((rel, key, *lc));
                }
            }
        }
        out
    }

    /// Does `set` contain a member using one of the given closed lifecycles
    /// (so that the closing event becomes required)?
    fn set_uses_closed_lifecycle(
        &self,
        set: &EventSet,
        closed: &[(cwf_model::RelId, cwf_model::Value, crate::index::Lifecycle)],
    ) -> bool {
        if closed.is_empty() {
            return false;
        }
        for m in set.iter() {
            for (rel, key, lc) in closed {
                if lc.contains(m)
                    && self
                        .index
                        .key_occurrences(m)
                        .get(rel)
                        .is_some_and(|ks| ks.contains(key))
                {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwf_engine::Bindings;
    use cwf_lang::parse_workflow;
    use std::sync::Arc;

    fn spec() -> Arc<cwf_lang::WorkflowSpec> {
        Arc::new(
            parse_workflow(
                r#"
                schema { Ok(K); Approval(K); }
                peers {
                    cto sees Ok(*), Approval(*);
                    ceo sees Ok(*), Approval(*);
                    assistant sees Ok(*), Approval(*);
                    applicant sees Approval(*);
                }
                rules {
                    e @ cto: +Ok(0) :- ;
                    f @ cto: -key Ok(0) :- Ok(0);
                    g @ ceo: +Ok(0) :- ;
                    h @ assistant: +Approval(0) :- Ok(0);
                }
                "#,
            )
            .unwrap(),
        )
    }

    fn ground(spec: &cwf_lang::WorkflowSpec, name: &str) -> Event {
        let rid = spec.program().rule_by_name(name).unwrap();
        Event::new(spec, rid, Bindings::empty(0)).unwrap()
    }

    /// The invariant: every maintained set equals its from-scratch fixpoint.
    fn check_consistent(x: &IncrementalExplainer) {
        let run = x.run();
        let index = RunIndex::build(run);
        let n = run.len();
        for f in 0..n {
            let scratch = tp_closure(run, &index, x.peer(), &EventSet::from_iter(n, [f]));
            assert_eq!(
                x.explanation_of(f),
                &scratch,
                "per-event explanation of {f} diverged"
            );
        }
        let scratch_main = tp_closure(
            run,
            &index,
            x.peer(),
            &EventSet::from_iter(n, run.visible_events(x.peer())),
        );
        assert_eq!(x.minimal_events(), &scratch_main, "main scenario diverged");
    }

    #[test]
    fn example_4_2_incrementally() {
        let spec = spec();
        let applicant = spec.collab().peer("applicant").unwrap();
        let mut x = IncrementalExplainer::new(Run::new(Arc::clone(&spec)), applicant);
        for name in ["e", "f", "g", "h"] {
            x.push(ground(&spec, name)).unwrap();
            check_consistent(&x);
        }
        assert_eq!(x.minimal_events().to_vec(), vec![2, 3], "g then h");
        assert_eq!(x.minimal_scenario().len(), 2);
        // The explanation of e (invisible at the applicant) includes its
        // lifecycle closer f.
        assert_eq!(x.explanation_of(0).to_vec(), vec![0, 1]);
    }

    #[test]
    fn closing_event_updates_older_explanations() {
        let spec = spec();
        let applicant = spec.collab().peer("applicant").unwrap();
        let mut x = IncrementalExplainer::new(Run::new(Arc::clone(&spec)), applicant);
        x.push(ground(&spec, "e")).unwrap();
        // Before f arrives, e's explanation is {e} (open lifecycle).
        assert_eq!(x.explanation_of(0).to_vec(), vec![0]);
        x.push(ground(&spec, "f")).unwrap();
        // f closes e's lifecycle: e's explanation gains f.
        assert_eq!(x.explanation_of(0).to_vec(), vec![0, 1]);
        check_consistent(&x);
    }

    #[test]
    fn main_gains_closing_events() {
        // applicant-visible event first (h needs Ok, so use a run where the
        // visible event's lifecycle is later closed).
        let spec = spec();
        let applicant = spec.collab().peer("applicant").unwrap();
        let mut x = IncrementalExplainer::new(Run::new(Arc::clone(&spec)), applicant);
        x.push(ground(&spec, "e")).unwrap(); // 0: +Ok by cto
        x.push(ground(&spec, "h")).unwrap(); // 1: +Approval, visible
        check_consistent(&x);
        assert_eq!(x.minimal_events().to_vec(), vec![0, 1]);
        // Now the cto retracts: f closes Ok's lifecycle, which the main
        // scenario uses ⇒ f joins the scenario.
        x.push(ground(&spec, "f")).unwrap(); // 2: -Ok
        check_consistent(&x);
        assert_eq!(x.minimal_events().to_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn new_on_nonempty_run_matches_incremental() {
        let spec = spec();
        let applicant = spec.collab().peer("applicant").unwrap();
        // Build a run first, then wrap.
        let mut run = Run::new(Arc::clone(&spec));
        for n in ["e", "f", "g", "h"] {
            run.push(ground(&spec, n)).unwrap();
        }
        let from_scratch = IncrementalExplainer::new(run, applicant);
        check_consistent(&from_scratch);
        let mut incremental = IncrementalExplainer::new(Run::new(Arc::clone(&spec)), applicant);
        for n in ["e", "f", "g", "h"] {
            incremental.push(ground(&spec, n)).unwrap();
        }
        assert_eq!(from_scratch.minimal_events(), incremental.minimal_events());
    }

    #[test]
    fn push_propagates_engine_errors() {
        let spec = spec();
        let applicant = spec.collab().peer("applicant").unwrap();
        let mut x = IncrementalExplainer::new(Run::new(Arc::clone(&spec)), applicant);
        // h requires Ok: not applicable on the empty instance.
        assert!(x.push(ground(&spec, "h")).is_err());
        assert_eq!(x.run().len(), 0, "failed push leaves the run unchanged");
    }
}
