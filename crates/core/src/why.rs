//! Requirement tracing: *why* is an event part of the explanation?
//!
//! The minimal p-faithful scenario is a fixpoint of `T_p`, so every event it
//! contains got there through a chain of faithfulness obligations rooted in
//! an event visible at `p`. [`traced_closure`] records, for each pulled-in
//! event, the first obligation that demanded it; [`why`] walks those records
//! back to a visible root, producing a human-readable justification chain —
//! the natural drill-down companion to [`crate::explain()`].

use std::collections::BTreeMap;
use std::fmt;

use cwf_engine::Run;
use cwf_model::{AttrId, PeerId, RelId, Value};

use crate::faithful::relevant_attrs;
use crate::index::RunIndex;
use crate::scenario::visible_set;
use crate::set::EventSet;

/// The faithfulness obligation that pulled an event into the closure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Obligation {
    /// The event is visible at the peer — a root of the explanation.
    Visible,
    /// Boundary faithfulness: the event opened the lifecycle of `(rel, key)`
    /// that `by` uses.
    OpenedLifecycle {
        /// The event whose key use demanded this one.
        by: usize,
        /// The relation of the lifecycle.
        rel: RelId,
        /// The key of the lifecycle.
        key: Value,
    },
    /// Boundary faithfulness: the event closed the lifecycle of `(rel, key)`
    /// that `by` uses.
    ClosedLifecycle {
        /// The event whose key use demanded this one.
        by: usize,
        /// The relation of the lifecycle.
        rel: RelId,
        /// The key of the lifecycle.
        key: Value,
    },
    /// Modification faithfulness: the event wrote attributes of
    /// `(rel, key)` relevant to `by`'s peer (or to the observer).
    WroteAttributes {
        /// The event whose fact use demanded this one.
        by: usize,
        /// The relation of the modified tuple.
        rel: RelId,
        /// The key of the modified tuple.
        key: Value,
        /// The relevant attributes written.
        attrs: Vec<AttrId>,
    },
}

impl Obligation {
    /// The demanding event, if any (`None` for roots).
    pub fn demanded_by(&self) -> Option<usize> {
        match self {
            Obligation::Visible => None,
            Obligation::OpenedLifecycle { by, .. }
            | Obligation::ClosedLifecycle { by, .. }
            | Obligation::WroteAttributes { by, .. } => Some(*by),
        }
    }
}

/// The closure together with one obligation per member.
#[derive(Debug, Clone)]
pub struct TracedClosure {
    /// The closed event set (equal to `tp_closure` of the same seed).
    pub events: EventSet,
    /// Per member: the first obligation that demanded it.
    pub reasons: BTreeMap<usize, Obligation>,
}

/// Computes `T_p^ω` of the visible events while recording, for each member,
/// the first obligation that pulled it in.
pub fn traced_closure(run: &Run, index: &RunIndex, peer: PeerId) -> TracedClosure {
    let mut events = visible_set(run, peer);
    let mut reasons: BTreeMap<usize, Obligation> =
        events.iter().map(|i| (i, Obligation::Visible)).collect();
    let mut worklist: Vec<usize> = events.iter().collect();
    while let Some(j) = worklist.pop() {
        let q = run.event(j).peer;
        for (rel, keys) in index.key_occurrences(j) {
            let mut relevant = relevant_attrs(run, q, *rel);
            relevant.extend(relevant_attrs(run, peer, *rel));
            for k in keys {
                let Some(lc) = index.lifecycle_containing(*rel, k, j) else {
                    continue;
                };
                if events.insert(lc.start) {
                    reasons.insert(
                        lc.start,
                        Obligation::OpenedLifecycle {
                            by: j,
                            rel: *rel,
                            key: *k,
                        },
                    );
                    worklist.push(lc.start);
                }
                if let Some(end) = lc.end {
                    if events.insert(end) {
                        reasons.insert(
                            end,
                            Obligation::ClosedLifecycle {
                                by: j,
                                rel: *rel,
                                key: *k,
                            },
                        );
                        worklist.push(end);
                    }
                }
                for m in index.modifications_of(*rel, k) {
                    if m.at < j && lc.contains(m.at) {
                        let touched: Vec<AttrId> = m
                            .attrs
                            .iter()
                            .copied()
                            .filter(|a| relevant.contains(a))
                            .collect();
                        if !touched.is_empty() && events.insert(m.at) {
                            reasons.insert(
                                m.at,
                                Obligation::WroteAttributes {
                                    by: j,
                                    rel: *rel,
                                    key: *k,
                                    attrs: touched,
                                },
                            );
                            worklist.push(m.at);
                        }
                    }
                }
            }
        }
    }
    TracedClosure { events, reasons }
}

/// One link of a justification chain.
#[derive(Debug, Clone)]
pub struct WhyStep {
    /// The event being justified.
    pub event: usize,
    /// Its obligation.
    pub obligation: Obligation,
}

/// A justification chain from an event back to a visible root.
#[derive(Debug, Clone)]
pub struct Justification {
    /// The chain, starting at the queried event and ending at a
    /// [`Obligation::Visible`] root.
    pub steps: Vec<WhyStep>,
}

impl Justification {
    /// Renders the chain against a run (rule names and fact descriptions).
    pub fn render(&self, run: &Run) -> String {
        let spec = run.spec();
        let schema = spec.collab().schema();
        let mut out = String::new();
        for (i, step) in self.steps.iter().enumerate() {
            let indent = "  ".repeat(i);
            let ev = run.event(step.event).describe(spec);
            let line = match &step.obligation {
                Obligation::Visible => {
                    format!("{indent}#{} {} — observed directly", step.event, ev)
                }
                Obligation::OpenedLifecycle { by, rel, key } => format!(
                    "{indent}#{} {} — created {}[{}] used by #{}",
                    step.event,
                    ev,
                    schema.relation(*rel).name(),
                    key,
                    by
                ),
                Obligation::ClosedLifecycle { by, rel, key } => format!(
                    "{indent}#{} {} — deleted {}[{}] used by #{}",
                    step.event,
                    ev,
                    schema.relation(*rel).name(),
                    key,
                    by
                ),
                Obligation::WroteAttributes {
                    by,
                    rel,
                    key,
                    attrs,
                } => {
                    let names: Vec<&str> = attrs
                        .iter()
                        .map(|a| schema.relation(*rel).attr_name(*a))
                        .collect();
                    format!(
                        "{indent}#{} {} — wrote {}[{}].{{{}}} used by #{}",
                        step.event,
                        ev,
                        schema.relation(*rel).name(),
                        key,
                        names.join(", "),
                        by
                    )
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Justification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "justification chain of {} step(s)", self.steps.len())
    }
}

/// Why is `event` part of the minimal faithful scenario for `peer`?
/// `None` when it is not part of it at all.
pub fn why(run: &Run, index: &RunIndex, peer: PeerId, event: usize) -> Option<Justification> {
    let traced = traced_closure(run, index, peer);
    if !traced.events.contains(event) {
        return None;
    }
    let mut steps = Vec::new();
    let mut cur = event;
    loop {
        let obligation = traced.reasons[&cur].clone();
        let next = obligation.demanded_by();
        steps.push(WhyStep {
            event: cur,
            obligation,
        });
        match next {
            Some(n) => cur = n,
            None => break,
        }
        // The `by` chains are strictly "demanded later or visible", and each
        // event has exactly one recorded reason, so this terminates.
        debug_assert!(steps.len() <= run.len());
    }
    Some(Justification { steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tp::minimal_faithful_scenario;
    use cwf_engine::{Bindings, Event};
    use cwf_lang::parse_workflow;
    use std::sync::Arc;

    fn run() -> Run {
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { A(K); B(K); Out(K); Junk(K); }
                peers { q sees A(*), B(*), Out(*), Junk(*); p sees Out(*); }
                rules {
                    a @ q: +A(0) :- ;
                    junk @ q: +Junk(0) :- ;
                    b @ q: +B(0) :- A(0);
                    out @ q: +Out(0) :- B(0);
                }
                "#,
            )
            .unwrap(),
        );
        let mut run = Run::new(Arc::clone(&spec));
        for n in ["a", "junk", "b", "out"] {
            let rid = spec.program().rule_by_name(n).unwrap();
            run.push(Event::new(&spec, rid, Bindings::empty(0)).unwrap())
                .unwrap();
        }
        run
    }

    #[test]
    fn traced_closure_agrees_with_tp_closure() {
        let run = run();
        let p = run.spec().collab().peer("p").unwrap();
        let index = RunIndex::build(&run);
        let traced = traced_closure(&run, &index, p);
        let plain = minimal_faithful_scenario(&run, p).events;
        assert_eq!(traced.events, plain);
        // Every member has a reason; non-members have none.
        for i in 0..run.len() {
            assert_eq!(traced.events.contains(i), traced.reasons.contains_key(&i));
        }
    }

    #[test]
    fn why_chains_end_at_visible_roots() {
        let run = run();
        let p = run.spec().collab().peer("p").unwrap();
        let index = RunIndex::build(&run);
        // Event 0 (a): pulled in because b uses A(0), which out uses, which
        // is visible.
        let j = why(&run, &index, p, 0).expect("a is in the explanation");
        assert_eq!(j.steps.len(), 3, "a ← b ← out");
        assert_eq!(j.steps[0].event, 0);
        assert!(matches!(
            j.steps[0].obligation,
            Obligation::OpenedLifecycle { by: 2, .. }
        ));
        assert_eq!(j.steps[2].event, 3);
        assert!(matches!(j.steps[2].obligation, Obligation::Visible));
        // Junk (1) is not in the explanation.
        assert!(why(&run, &index, p, 1).is_none());
    }

    #[test]
    fn render_is_readable() {
        let run = run();
        let p = run.spec().collab().peer("p").unwrap();
        let index = RunIndex::build(&run);
        let j = why(&run, &index, p, 0).unwrap();
        let text = j.render(&run);
        assert!(text.contains("created A[0] used by #2"));
        assert!(text.contains("observed directly"));
        assert_eq!(format!("{j}"), "justification chain of 3 step(s)");
    }

    #[test]
    fn deletion_obligations_are_traced() {
        // Example 4.2 shape: including e forces f (closed lifecycle).
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { Ok(K); Approval(K); }
                peers { q sees Ok(*), Approval(*); p sees Approval(*); }
                rules {
                    e @ q: +Ok(0) :- ;
                    h @ q: +Approval(0) :- Ok(0);
                    f @ q: -key Ok(0) :- Ok(0);
                }
                "#,
            )
            .unwrap(),
        );
        let mut run = Run::new(Arc::clone(&spec));
        for n in ["e", "h", "f"] {
            let rid = spec.program().rule_by_name(n).unwrap();
            run.push(Event::new(&spec, rid, Bindings::empty(0)).unwrap())
                .unwrap();
        }
        let p = spec.collab().peer("p").unwrap();
        let index = RunIndex::build(&run);
        // f (the deletion) is pulled in as the right boundary of Ok's
        // lifecycle, used by h.
        let j = why(&run, &index, p, 2).expect("f is required");
        assert!(matches!(
            j.steps[0].obligation,
            Obligation::ClosedLifecycle { .. }
        ));
    }

    #[test]
    fn modification_obligations_are_traced() {
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { R(K, A, B); Out(K); Pool(K); }
                peers {
                    p1 sees R(K, A), Pool(*);
                    p2 sees R(K, B), Out(K), Pool(*);
                    p sees Out(*);
                }
                rules {
                    open @ p1: +R(x, a) :- Pool(x), Pool(a);
                    fill @ p2: +R(x, b) :- Pool(x), Pool(b);
                    use  @ p2: +Out(0) :- R(x, b);
                }
                "#,
            )
            .unwrap(),
        );
        let pool = spec.collab().schema().rel("Pool").unwrap();
        let mut init = cwf_model::Instance::empty(spec.collab().schema());
        for v in ["k", "a", "b"] {
            init.rel_mut(pool)
                .insert(cwf_model::Tuple::new([Value::str(v)]))
                .unwrap();
        }
        let mut run = Run::with_initial(Arc::clone(&spec), init);
        let fire = |run: &mut Run, name: &str, vals: &[Value]| {
            let rid = run.spec().program().rule_by_name(name).unwrap();
            let mut b = Bindings::empty(vals.len());
            for (i, v) in vals.iter().enumerate() {
                b.set(cwf_lang::VarId(i as u32), *v);
            }
            let e = Event::new(run.spec(), rid, b).unwrap();
            run.push(e).unwrap();
        };
        fire(&mut run, "open", &[Value::str("k"), Value::str("a")]);
        fire(&mut run, "fill", &[Value::str("k"), Value::str("b")]);
        fire(&mut run, "use", &[Value::str("k"), Value::str("b")]);
        let p = spec.collab().peer("p").unwrap();
        let index = RunIndex::build(&run);
        let j = why(&run, &index, p, 1).expect("fill is required");
        assert!(matches!(
            &j.steps[0].obligation,
            Obligation::WroteAttributes { by: 2, .. }
        ));
        let text = j.render(&run);
        assert!(text.contains("wrote R["), "got: {text}");
    }
}
