//! # cwf-core — explanations of collaborative workflow runs
//!
//! The paper's primary contribution (Sections 3–4 of *Explanations and
//! Transparency in Collaborative Workflows*, Abiteboul–Bourhis–Vianu,
//! PODS 2018):
//!
//! * **Scenarios** (Def. 3.2): subruns observationally equivalent for a
//!   peer; exact minimum-scenario search (NP-complete, Thm 3.3), greedy
//!   1-minimal extraction, exact minimality testing (coNP-complete,
//!   Thm 3.4).
//! * **Faithfulness** (Defs. 4.3–4.5): lifecycle/boundary/modification
//!   machinery, the `T_p` operator, and the **unique minimal p-faithful
//!   scenario computable in polynomial time** (Thm 4.7).
//! * **Semiring structure** (Thm 4.8): closure of faithful subsequences
//!   under union and intersection.
//! * **Incremental maintenance** of minimal faithful scenarios and
//!   per-event explanations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cone;
pub mod explain;
pub mod faithful;
pub mod incremental;
pub mod index;
pub mod minimal;
pub mod minimum;
pub mod scenario;
pub mod semiring;
pub mod set;
pub mod tp;
pub mod why;

pub use cone::{closed_deps, peer_cone};
pub use explain::{explain, ExplainedEvent, Explanation};
pub use faithful::{
    is_boundary_faithful, is_faithful, is_modification_faithful, is_tp_fixpoint, relevant_attrs,
};
pub use incremental::IncrementalExplainer;
pub use index::{Lifecycle, Modification, RunIndex};
pub use minimal::{
    all_minimal_scenarios, all_minimal_scenarios_pooled, all_minimal_scenarios_unpruned,
    is_minimal_exact, is_one_minimal, one_minimal_scenario, shrink_to_one_minimal,
};
pub use minimum::{
    exists_scenario_at_most, exists_scenario_at_most_pooled, search_min_scenario,
    search_min_scenario_pooled, SearchOptions,
};
pub use scenario::{is_scenario, is_scenario_against, is_subrun, mask_order, subrun, visible_set};
pub use semiring::Faithful;
pub use set::EventSet;
pub use tp::{
    is_minimum_faithful_run, minimal_faithful_scenario, minimal_faithful_scenario_indexed,
    tp_closure, tp_step, FaithfulExplanation,
};
pub use why::{traced_closure, why, Justification, Obligation, TracedClosure, WhyStep};
