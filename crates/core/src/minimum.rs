//! Exact scenario search (Theorem 3.3).
//!
//! Finding a *minimum* scenario — or deciding whether a scenario of length
//! `≤ N` exists — is NP-complete, so this module implements an exponential
//! branch-and-bound search over subsequences. The search walks the run left
//! to right deciding include/exclude per event, maintaining the replayed
//! subrun state, and prunes branches that (a) fail to replay, (b) produce a
//! visible step at `p` that does not match the next expected observation, or
//! (c) cannot beat the current bound.
//!
//! Every entry point is **governed**: it threads a [`Governor`] (node budget,
//! wall-clock deadline, cancellation) and reports a [`Verdict`]. When the
//! governor cuts the search off, the verdict carries the best *anytime*
//! answer available — the best scenario the search had found, or a greedy
//! 1-minimal scenario computed as polynomial-time grace work — together with
//! proven lower/upper bounds on the minimum length.
//!
//! The same search, restricted to a subset of positions and capped length,
//! decides strict-subsequence scenario existence — the coNP-hard minimality
//! test of Theorem 3.4 (see [`crate::minimal`]).

use cwf_engine::{EventView, Run, RunView, ScratchRun};
use cwf_model::{Bound, FirstHit, Governor, PeerId, Pool, Reason, SharedMin, Verdict};

use crate::set::EventSet;

/// Runs shorter than this stay on the sequential path even under a
/// multi-worker pool: the subproblem fan-out would cost more than the
/// search itself (and the small unit-test runs keep exercising the
/// sequential oracle verbatim).
const PAR_MIN_EVENTS: usize = 8;

/// Options for the scenario search. Resource limits live on the
/// [`Governor`] passed alongside, not here.
#[derive(Debug, Clone, Default)]
pub struct SearchOptions {
    /// Restrict the search to subsequences of this set (default: all
    /// positions).
    pub allowed: Option<EventSet>,
    /// Only consider scenarios of at most this many events.
    pub max_len: Option<usize>,
    /// Stop at the first scenario satisfying the constraints instead of
    /// optimizing (decision mode).
    pub first_found: bool,
    /// Disable provenance-cone pruning. By default the optimizing search
    /// computes the peer's dependency cone ([`crate::cone::peer_cone`]) and
    /// never branches on events outside it — every minimum scenario lies
    /// inside the cone, so completed answers are byte-identical while the
    /// search visits far fewer nodes. Decision mode (`first_found`) never
    /// prunes: its contract is the DFS-first witness over exactly the
    /// caller's position set.
    pub no_cone: bool,
}

/// The position set the branch-and-bound actually searches: the caller's
/// `allowed` set intersected with the peer's provenance cone (optimize mode,
/// pruning on), or the caller's set verbatim (decision mode, or `no_cone`).
/// The original `opts` still drive greedy seeding and cutoff verdicts.
fn cone_restriction(run: &Run, peer: PeerId, opts: &SearchOptions) -> Option<EventSet> {
    if opts.no_cone || opts.first_found {
        return opts.allowed.clone();
    }
    let cone = crate::cone::peer_cone(run, peer);
    Some(match &opts.allowed {
        Some(allowed) => cone.intersection(allowed),
        None => cone,
    })
}

/// Searches for a minimum scenario of `run` at `peer` subject to `opts`,
/// governed by `gov`.
///
/// * `Done(Some(s))` — `s` is a minimum scenario (or the first found, in
///   decision mode); the search completed.
/// * `Done(None)` — no scenario satisfies the constraints (exhaustive).
/// * `Anytime(Some(s), bound)` — the governor cut the search off; `s` is the
///   best scenario known (DFS incumbent, or a greedy 1-minimal scenario when
///   the search is unrestricted) and `bound` brackets the true minimum.
/// * `Exhausted(reason)` — cut off with no usable answer.
pub fn search_min_scenario(
    run: &Run,
    peer: PeerId,
    opts: &SearchOptions,
    gov: &Governor,
) -> Verdict<Option<EventSet>> {
    search_min_scenario_pooled(run, peer, opts, gov, Pool::global())
}

/// [`search_min_scenario`] on an explicit [`Pool`].
///
/// With more than one worker (and a run above a small size threshold) the
/// search becomes parallel branch-and-bound: the decision tree is expanded
/// sequentially to a shallow spawn depth, the resulting subproblems are
/// solved by the pool's workers against a **shared atomic incumbent bound**
/// (the length of the best scenario any worker has found), and the worker
/// results are merged in subproblem DFS order. Two details make the merged
/// answer byte-identical to the sequential one on every completed search:
///
/// * the shared incumbent carries `(length, subproblem index)`: a worker
///   prunes equal lengths away (`length − 1`) only when the published
///   witness sits at or before its own subproblem — where it would win the
///   merge tie anyway — and keeps equal lengths alive against later-index
///   witnesses, so the DFS-first witness of the winning length survives;
/// * ties between equal-length witnesses break by subproblem DFS order —
///   exactly the order the sequential search discovers scenarios in.
///
/// Under a mid-search cutoff the *kind* of verdict (`Anytime`/`Exhausted`
/// and its [`Reason`]) matches the sequential one, but the partial witness
/// may differ — where the budget dies is inherently schedule-dependent. In
/// decision mode a witness found by any worker is reported even if an
/// earlier subproblem was cut off: a scenario in hand is strictly more
/// informative than the sequential `Anytime(false)`.
pub fn search_min_scenario_pooled(
    run: &Run,
    peer: PeerId,
    opts: &SearchOptions,
    gov: &Governor,
    pool: &Pool,
) -> Verdict<Option<EventSet>> {
    gov.guard(|| {
        if let Err(reason) = gov.check() {
            return cutoff_verdict(run, peer, opts, None, reason);
        }
        let target = run.view(peer);
        let restrict = cone_restriction(run, peer, opts);
        if pool.is_sequential() || run.len() < PAR_MIN_EVENTS {
            return search_sequential(run, peer, opts, &restrict, gov, &target);
        }
        search_parallel(run, peer, opts, &restrict, gov, &target, pool)
    })
}

/// The sequential oracle path (also the body of every pool-of-one search).
fn search_sequential(
    run: &Run,
    peer: PeerId,
    opts: &SearchOptions,
    restrict: &Option<EventSet>,
    gov: &Governor,
    target: &RunView,
) -> Verdict<Option<EventSet>> {
    let mut ctx = Ctx::sequential(run, peer, target, opts, restrict, gov);
    ctx.arena.push(ScratchRun::restart_of(run));
    let mut chosen = Vec::new();
    ctx.dfs(0, 0, 0, &mut chosen);
    match ctx.stopped {
        None => Verdict::Done(ctx.best),
        Some(reason) => cutoff_verdict(run, peer, opts, ctx.best, reason),
    }
}

/// A branch of the decision tree frozen at the spawn depth, ready to hand
/// to a worker: the replayed subrun state, the observations matched so far,
/// and the chosen positions.
struct Prefix {
    sub: ScratchRun,
    matched: usize,
    chosen: Vec<usize>,
}

/// Cross-worker coordination state of one parallel search.
struct ParShared {
    /// Best `(length, subproblem index)` pair found by any worker, packed
    /// so the numeric CAS-min is the lexicographic minimum (optimize mode).
    best: SharedMin,
    /// Smallest subproblem index holding a witness (decision mode).
    first_hit: FirstHit,
}

/// Packs a witness length and the subproblem index that found it into one
/// CAS-min word: length in the high 32 bits, index in the low 32, so the
/// numeric minimum is the lexicographic `(length, index)` minimum — the
/// exact preference order of the index-ordered merge.
fn pack(len: usize, index: usize) -> u64 {
    debug_assert!(len < u32::MAX as usize && index <= u32::MAX as usize);
    ((len as u64) << 32) | index as u64
}

/// Sentinel subproblem index for the greedy seed: lexicographically after
/// every real subproblem, so equal-length witnesses stay alive everywhere.
const SEED_INDEX: usize = u32::MAX as usize;

#[allow(clippy::too_many_arguments)]
fn search_parallel(
    run: &Run,
    peer: PeerId,
    opts: &SearchOptions,
    restrict: &Option<EventSet>,
    gov: &Governor,
    target: &RunView,
    pool: &Pool,
) -> Verdict<Option<EventSet>> {
    // Phase 1: expand the same exclude-first decision tree sequentially
    // down to the spawn depth, collecting the live branches in DFS order.
    let depth = spawn_depth(pool.threads(), run.len());
    let mut expander = Ctx::sequential(run, peer, target, opts, restrict, gov);
    expander.spawn_depth = depth;
    expander.arena.push(ScratchRun::restart_of(run));
    let mut chosen = Vec::new();
    expander.dfs(0, 0, 0, &mut chosen);
    if let Some(reason) = expander.stopped {
        return cutoff_verdict(run, peer, opts, None, reason);
    }
    debug_assert!(expander.best.is_none(), "no scenario completes above depth");
    let prefixes = std::mem::take(&mut expander.prefixes);
    if prefixes.is_empty() {
        // Every branch died before the spawn depth: exhaustively no
        // scenario, same as the sequential search concluding Done(None).
        return Verdict::Done(None);
    }

    // Phase 2: workers solve the subproblems under the shared incumbent.
    // On the unrestricted optimization problem the incumbent is seeded with
    // the greedy 1-minimal length (polynomial): free pruning for every
    // worker before the first real witness lands, and candidates longer
    // than a valid scenario can never win the merge, so the answer is
    // unchanged. Under an `allowed` restriction the greedy witness is not
    // a candidate (the restricted minimum may be longer), and in decision
    // mode the contract is "DFS-first scenario under max_len", which a
    // length seed would re-filter — no seed in either case.
    let seed = if opts.allowed.is_none() && !opts.first_found {
        pack(
            crate::minimal::one_minimal_scenario(run, peer).len(),
            SEED_INDEX,
        )
    } else {
        u64::MAX
    };
    let shared = ParShared {
        best: SharedMin::new(seed),
        first_hit: FirstHit::new(),
    };
    let outs = pool.run(prefixes, |idx, p: Prefix| {
        let mut ctx = Ctx::sequential(run, peer, target, opts, restrict, gov);
        ctx.shared = Some(&shared);
        ctx.my_index = idx;
        ctx.arena.push(p.sub);
        let mut chosen = p.chosen;
        ctx.dfs(depth, 0, p.matched, &mut chosen);
        (ctx.best, ctx.stopped)
    });

    // Phase 3: index-ordered merge.
    if opts.first_found {
        // The earliest subproblem holding a witness is the sequential
        // answer; a witness is definitive even past a cutoff.
        if let Some(w) = outs.iter().find_map(|(best, _)| best.clone()) {
            return Verdict::Done(Some(w));
        }
        return match outs.into_iter().find_map(|(_, stopped)| stopped) {
            None => Verdict::Done(None),
            Some(reason) => cutoff_verdict(run, peer, opts, None, reason),
        };
    }
    let mut best: Option<EventSet> = None;
    for (b, _) in &outs {
        let Some(b) = b else { continue };
        // Strictly-shorter replacement: at equal lengths the earlier
        // subproblem (the one sequential DFS reaches first) keeps the tie.
        if best.as_ref().is_none_or(|cur| b.len() < cur.len()) {
            best = Some(b.clone());
        }
    }
    match outs.into_iter().find_map(|(_, stopped)| stopped) {
        None => Verdict::Done(best),
        Some(reason) => cutoff_verdict(run, peer, opts, best, reason),
    }
}

/// Spawn depth: enough levels for a few subproblems per worker (≤ 2^d
/// branches), capped below the run length so workers always have a tree
/// left to search.
fn spawn_depth(threads: usize, run_len: usize) -> usize {
    let want = (threads * 4).max(2) as u64;
    let bits = (u64::BITS - (want - 1).leading_zeros()) as usize;
    bits.min(run_len - 1)
}

/// Builds the anytime verdict for a cut-off search: prefers the DFS
/// incumbent, falls back to greedy grace work (polynomial, ungoverned) when
/// the search was unrestricted, and brackets the minimum between the number
/// of observations (each needs at least one event) and the witness length.
fn cutoff_verdict(
    run: &Run,
    peer: PeerId,
    opts: &SearchOptions,
    best: Option<EventSet>,
    reason: Reason,
) -> Verdict<Option<EventSet>> {
    let witness = best.or_else(|| {
        // Greedy 1-minimal extraction only answers the unrestricted
        // optimization problem: under an `allowed` restriction the full run
        // is not a candidate, and in decision mode the caller has already
        // taken its own greedy shortcut.
        if opts.allowed.is_none() && !opts.first_found {
            let greedy = crate::minimal::one_minimal_scenario(run, peer);
            (greedy.len() <= opts.max_len.unwrap_or(run.len())).then_some(greedy)
        } else {
            None
        }
    });
    match witness {
        Some(w) => {
            let bound = Bound {
                reason,
                lower: Some(run.view(peer).steps.len() as u64),
                upper: Some(w.len() as u64),
            };
            Verdict::Anytime(Some(w), bound)
        }
        None => Verdict::Exhausted(reason),
    }
}

/// Decision variant: does a scenario with at most `n` events exist?
///
/// Starts with a polynomial greedy quick-accept (a 1-minimal scenario of
/// length `≤ n` settles the question positively without any search). On a
/// governor cutoff the verdict is `Anytime(false, bound)`: no qualifying
/// scenario was found, and `bound` records how far the search got — the
/// observation-count lower bound and the greedy upper bound on the true
/// minimum length.
pub fn exists_scenario_at_most(run: &Run, peer: PeerId, n: usize, gov: &Governor) -> Verdict<bool> {
    exists_scenario_at_most_pooled(run, peer, n, gov, Pool::global())
}

/// [`exists_scenario_at_most`] on an explicit [`Pool`] (see
/// [`search_min_scenario_pooled`] for the parallel contract).
pub fn exists_scenario_at_most_pooled(
    run: &Run,
    peer: PeerId,
    n: usize,
    gov: &Governor,
    pool: &Pool,
) -> Verdict<bool> {
    gov.guard(|| {
        let greedy = crate::minimal::one_minimal_scenario(run, peer);
        if greedy.len() <= n {
            return Verdict::Done(true);
        }
        let cut = |reason| {
            Verdict::Anytime(
                false,
                Bound {
                    reason,
                    lower: Some(run.view(peer).steps.len() as u64),
                    upper: Some(greedy.len() as u64),
                },
            )
        };
        if let Err(reason) = gov.check() {
            return cut(reason);
        }
        let opts = SearchOptions {
            max_len: Some(n),
            first_found: true,
            ..Default::default()
        };
        match search_min_scenario_pooled(run, peer, &opts, gov, pool) {
            Verdict::Done(Some(_)) | Verdict::Anytime(Some(_), _) => Verdict::Done(true),
            Verdict::Done(None) => Verdict::Done(false),
            Verdict::Anytime(None, b) => cut(b.reason),
            Verdict::Exhausted(reason) => cut(reason),
        }
    })
}

struct Ctx<'a> {
    run: &'a Run,
    peer: PeerId,
    target: &'a RunView,
    allowed: Option<EventSet>,
    max_len: usize,
    first_found: bool,
    gov: &'a Governor,
    best: Option<EventSet>,
    stopped: Option<Reason>,
    /// Depth at which the expansion phase freezes branches into [`Prefix`]es
    /// instead of recursing (`usize::MAX`: never — plain search).
    spawn_depth: usize,
    /// Branches collected by the expansion phase, in DFS order.
    prefixes: Vec<Prefix>,
    /// Cross-worker incumbent state (parallel workers only).
    shared: Option<&'a ParShared>,
    /// This worker's subproblem index (DFS order of its prefix).
    my_index: usize,
    /// Per-depth arena of replay states: slot `d` holds the state of the
    /// current branch after `d` inclusions. Include branches overwrite slot
    /// `d + 1` via `clone_from` instead of allocating a fresh state, so
    /// sibling branches at the same depth reuse the same buffers.
    arena: Vec<ScratchRun>,
}

impl<'a> Ctx<'a> {
    fn sequential(
        run: &'a Run,
        peer: PeerId,
        target: &'a RunView,
        opts: &SearchOptions,
        restrict: &Option<EventSet>,
        gov: &'a Governor,
    ) -> Self {
        Ctx {
            run,
            peer,
            target,
            allowed: restrict.clone(),
            max_len: opts.max_len.unwrap_or(run.len()),
            first_found: opts.first_found,
            gov,
            best: None,
            stopped: None,
            spawn_depth: usize::MAX,
            prefixes: Vec::new(),
            shared: None,
            my_index: 0,
            arena: Vec::new(),
        }
    }

    /// Current upper bound on useful lengths. The local incumbent prunes to
    /// strictly-shorter (`len − 1`). The cross-worker incumbent carries the
    /// *subproblem index* of its witness alongside the length: a witness in
    /// a subproblem at or before this worker's wins the index-ordered merge
    /// over any equal-length witness found here, so this worker can prune
    /// to `len − 1` too; a witness in a *later* subproblem keeps the tie
    /// open and equal lengths must survive (prune only to `len`) — which is
    /// exactly the sequential tie-break.
    fn bound(&self) -> usize {
        let mut b = match &self.best {
            Some(s) => s.len().saturating_sub(1).min(self.max_len),
            None => self.max_len,
        };
        if let Some(shared) = self.shared {
            let g = shared.best.get();
            if g != u64::MAX {
                let (len, idx) = ((g >> 32) as usize, (g & u32::MAX as u64) as usize);
                b = b.min(if idx <= self.my_index {
                    len.saturating_sub(1)
                } else {
                    len
                });
            }
        }
        b
    }

    fn done(&self) -> bool {
        if !self.first_found {
            return false;
        }
        if self.best.is_some() {
            return true;
        }
        // An earlier subproblem already holds a witness: the index-ordered
        // merge will never read this worker's answer, so stop early.
        self.shared
            .is_some_and(|s| s.first_hit.beats(self.my_index))
    }

    /// Records a completed scenario, publishing it to the cross-worker
    /// incumbent when running as a parallel worker.
    fn record(&mut self, set: EventSet) {
        if let Some(shared) = self.shared {
            shared.best.relax(pack(set.len(), self.my_index));
            if self.first_found {
                shared.first_hit.offer(self.my_index);
            }
        }
        self.best = Some(set);
    }

    /// DFS over positions. `slot` indexes the arena state of the replayed
    /// subrun so far, `matched` the number of target steps already produced.
    fn dfs(&mut self, i: usize, slot: usize, matched: usize, chosen: &mut Vec<usize>) {
        if self.done() || self.stopped.is_some() {
            return;
        }
        // Expansion phase: freeze this branch for a worker. Before the tick,
        // so every spawned node is charged exactly once — by its worker.
        if i == self.spawn_depth {
            self.prefixes.push(Prefix {
                sub: self.arena[slot].clone(),
                matched,
                chosen: chosen.clone(),
            });
            return;
        }
        if let Err(reason) = self.gov.tick() {
            self.stopped = Some(reason);
            return;
        }
        let remaining_steps = self.target.steps.len() - matched;
        // Lower bound: each missing observation needs at least one event.
        if chosen.len() + remaining_steps > self.bound() {
            return;
        }
        if i == self.run.len() {
            if remaining_steps == 0 {
                let set = EventSet::from_iter(self.run.len(), chosen.iter().copied());
                let better = match &self.best {
                    Some(b) => set.len() < b.len(),
                    None => true,
                };
                if better {
                    self.record(set);
                }
            }
            return;
        }
        // Not enough events left to produce the missing observations?
        if self.run.len() - i < remaining_steps {
            return;
        }
        // Branch 1: exclude event i (bias toward short scenarios).
        self.dfs(i + 1, slot, matched, chosen);
        if self.done() || self.stopped.is_some() {
            return;
        }
        // Branch 2: include event i (if allowed and within bound).
        if let Some(allowed) = &self.allowed {
            if !allowed.contains(i) {
                return;
            }
        }
        if chosen.len() + 1 > self.bound() {
            return;
        }
        // Overwrite the next arena slot with the current state (buffer
        // reuse) and push the event onto it.
        if self.arena.len() == slot + 1 {
            let fresh = self.arena[slot].clone();
            self.arena.push(fresh);
        } else {
            let (head, tail) = self.arena.split_at_mut(slot + 1);
            tail[0].clone_from(&head[slot]);
        }
        let event = self.run.event(i);
        if self.arena[slot + 1].try_push(event).is_err() {
            return;
        }
        let own = event.peer == self.peer;
        let next = &self.arena[slot + 1];
        let new_matched = if own || next.changed(self.peer) {
            // A visible step: must match the next expected observation.
            let Some(expected) = self.target.steps.get(matched) else {
                return;
            };
            let event_matches = match (&expected.event, own) {
                (EventView::Own(e), true) => e == event,
                (EventView::World, false) => true,
                _ => false,
            };
            if !event_matches || expected.view != *next.view(self.peer) {
                return;
            }
            matched + 1
        } else {
            matched
        };
        chosen.push(i);
        self.dfs(i + 1, slot + 1, new_matched, chosen);
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::is_scenario;
    use cwf_engine::{Bindings, Event};
    use cwf_lang::parse_workflow;
    use std::sync::Arc;

    /// Theorem 3.3's reduction instance for V = {v1, v2, v3},
    /// c1 = {v1, v2}, c2 = {v2, v3}: the minimum hitting set is {v2}, so the
    /// minimum scenario has 1 + 2 + 1 = 4 events.
    fn hitting_run() -> Run {
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { V1(K); V2(K); V3(K); C1(K); C2(K); OK(K); }
                peers {
                    q sees V1(*), V2(*), V3(*), C1(*), C2(*), OK(*);
                    p sees OK(*);
                }
                rules {
                    a1 @ q: +V1(0) :- ;
                    a2 @ q: +V2(0) :- ;
                    a3 @ q: +V3(0) :- ;
                    b11 @ q: +C1(0) :- V1(0);
                    b12 @ q: +C1(0) :- V2(0);
                    b22 @ q: +C2(0) :- V2(0);
                    b23 @ q: +C2(0) :- V3(0);
                    ok @ q: +OK(0) :- C1(0), C2(0);
                }
                "#,
            )
            .unwrap(),
        );
        let mut run = Run::new(Arc::clone(&spec));
        // The trivial run: all (a) rules, one (b) rule per c_j, then ok.
        for n in ["a1", "a2", "a3", "b11", "b22", "ok"] {
            let rid = spec.program().rule_by_name(n).unwrap();
            run.push(Event::new(&spec, rid, Bindings::empty(0)).unwrap())
                .unwrap();
        }
        run
    }

    #[test]
    fn finds_the_minimum_scenario() {
        let run = hitting_run();
        let p = run.spec().collab().peer("p").unwrap();
        let gov = Governor::unlimited();
        let res = search_min_scenario(&run, p, &SearchOptions::default(), &gov);
        assert!(res.is_done(), "unlimited governor completes: {res:?}");
        let found = res.found().cloned().expect("a scenario exists");
        // Minimum hitting set {v2} ⇒ a2 + one b-per-clause + ok = 4 events.
        // But the run's own (b) events b11/b22 depend on v1/v2: with only a2,
        // b11 (body V1) cannot fire — so the minimum within THIS run's
        // events is {a1, a2, b11, b22, ok}? No: b22 only needs V2, b11 needs
        // V1. The run only contains b11 for c1, so a1 must stay. Minimum is
        // {a1, b11, b22, ok} + a2 for b22? b22 needs V2 ⇒ a2 too. Hence 5?
        // Let's just assert the invariant: it is a scenario and no shorter
        // scenario exists.
        assert!(is_scenario(&run, p, &found));
        for shorter in 0..found.len() {
            assert_eq!(
                exists_scenario_at_most(&run, p, shorter, &Governor::unlimited()),
                Verdict::Done(false),
                "no scenario of length {shorter}"
            );
        }
        assert_eq!(found.len(), 5, "a1, a2, b11, b22, ok");
    }

    #[test]
    fn decision_variant_matches_hitting_set_structure() {
        let run = hitting_run();
        let p = run.spec().collab().peer("p").unwrap();
        let gov = Governor::unlimited();
        assert_eq!(
            exists_scenario_at_most(&run, p, 5, &gov),
            Verdict::Done(true)
        );
        assert_eq!(
            exists_scenario_at_most(&run, p, 4, &gov),
            Verdict::Done(false)
        );
        assert_eq!(
            exists_scenario_at_most(&run, p, 6, &gov),
            Verdict::Done(true)
        );
    }

    #[test]
    fn allowed_set_restricts_the_search() {
        let run = hitting_run();
        let p = run.spec().collab().peer("p").unwrap();
        // Restricting to events {a1, b11, ok} loses C2 ⇒ no scenario.
        let opts = SearchOptions {
            allowed: Some(EventSet::from_iter(run.len(), [0, 3, 5])),
            ..Default::default()
        };
        assert_eq!(
            search_min_scenario(&run, p, &opts, &Governor::unlimited()),
            Verdict::Done(None)
        );
    }

    #[test]
    fn budget_exhaustion_yields_greedy_anytime_answer() {
        let run = hitting_run();
        let p = run.spec().collab().peer("p").unwrap();
        let gov = Governor::with_nodes(3);
        let res = search_min_scenario(&run, p, &SearchOptions::default(), &gov);
        // Three nodes cannot finish, but the greedy grace answer is a real
        // scenario bracketing the minimum from above.
        let Verdict::Anytime(Some(witness), bound) = res else {
            panic!("expected an anytime answer, got {res:?}");
        };
        assert_eq!(bound.reason, Reason::Nodes);
        assert!(is_scenario(&run, p, &witness));
        assert_eq!(bound.upper, Some(witness.len() as u64));
        assert!(bound.lower.unwrap() <= bound.upper.unwrap());
    }

    #[test]
    fn cross_thread_cancellation_stops_the_search() {
        let run = hitting_run();
        let p = run.spec().collab().peer("p").unwrap();
        let gov = Governor::unlimited();
        let token = gov.cancel_token();
        // Cancel from another thread before the search starts: the entry
        // check sees the sticky flag and no search node is ever expanded.
        std::thread::spawn(move || token.cancel()).join().unwrap();
        let res = search_min_scenario(&run, p, &SearchOptions::default(), &gov);
        let Verdict::Anytime(Some(witness), bound) = res else {
            panic!("expected a greedy anytime answer, got {res:?}");
        };
        assert_eq!(bound.reason, Reason::Cancelled);
        assert!(is_scenario(&run, p, &witness));
        assert_eq!(gov.nodes_used(), 0, "cancellation preempted the search");
    }

    #[test]
    fn zero_deadline_cuts_off_without_panicking() {
        let run = hitting_run();
        let p = run.spec().collab().peer("p").unwrap();
        let gov = Governor::with_deadline(std::time::Duration::ZERO);
        let res = exists_scenario_at_most(&run, p, 0, &gov);
        let Verdict::Anytime(false, bound) = res else {
            panic!("expected a bounded refusal, got {res:?}");
        };
        assert_eq!(bound.reason, Reason::Deadline);
        assert!(
            bound.upper.is_some(),
            "greedy upper bound survives the cutoff"
        );
    }

    #[test]
    fn restricted_budget_exhaustion_has_no_witness() {
        let run = hitting_run();
        let p = run.spec().collab().peer("p").unwrap();
        // Under an `allowed` restriction there is no greedy fallback: a
        // cut-off search is plain exhaustion.
        let opts = SearchOptions {
            allowed: Some(EventSet::full(run.len())),
            ..Default::default()
        };
        assert_eq!(
            search_min_scenario(&run, p, &opts, &Governor::with_nodes(3)),
            Verdict::Exhausted(Reason::Nodes)
        );
    }

    #[test]
    fn empty_view_needs_empty_scenario() {
        let run = hitting_run();
        // q as observer of an all-q run: the whole run is the only scenario
        // (every event is visible at q).
        let q = run.spec().collab().peer("q").unwrap();
        let res = search_min_scenario(&run, q, &SearchOptions::default(), &Governor::unlimited());
        assert_eq!(res.found().unwrap().len(), run.len());
    }

    #[test]
    fn own_events_must_match_exactly() {
        // A run where p itself acts: the scenario must reproduce p's own
        // events verbatim.
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { A(K); B(K); }
                peers { p sees A(*); q sees A(*), B(*); }
                rules {
                    mine @ p: +A(0) :- ;
                    other @ q: +B(0) :- ;
                }
                "#,
            )
            .unwrap(),
        );
        let mut run = Run::new(Arc::clone(&spec));
        for n in ["other", "mine"] {
            let rid = spec.program().rule_by_name(n).unwrap();
            run.push(Event::new(&spec, rid, Bindings::empty(0)).unwrap())
                .unwrap();
        }
        let p = spec.collab().peer("p").unwrap();
        let res = search_min_scenario(&run, p, &SearchOptions::default(), &Governor::unlimited());
        // B is invisible to p, so the minimum scenario is just p's event.
        assert_eq!(res.found().unwrap().to_vec(), vec![1]);
    }
}
