//! Exact scenario search (Theorem 3.3).
//!
//! Finding a *minimum* scenario — or deciding whether a scenario of length
//! `≤ N` exists — is NP-complete, so this module implements an exponential
//! branch-and-bound search over subsequences. The search walks the run left
//! to right deciding include/exclude per event, maintaining the replayed
//! subrun state, and prunes branches that (a) fail to replay, (b) produce a
//! visible step at `p` that does not match the next expected observation, or
//! (c) cannot beat the current bound.
//!
//! Every entry point is **governed**: it threads a [`Governor`] (node budget,
//! wall-clock deadline, cancellation) and reports a [`Verdict`]. When the
//! governor cuts the search off, the verdict carries the best *anytime*
//! answer available — the best scenario the search had found, or a greedy
//! 1-minimal scenario computed as polynomial-time grace work — together with
//! proven lower/upper bounds on the minimum length.
//!
//! The same search, restricted to a subset of positions and capped length,
//! decides strict-subsequence scenario existence — the coNP-hard minimality
//! test of Theorem 3.4 (see [`crate::minimal`]).

use cwf_engine::{EventView, Run, RunView};
use cwf_model::{Bound, Governor, PeerId, Reason, Verdict};

use crate::set::EventSet;

/// Options for the scenario search. Resource limits live on the
/// [`Governor`] passed alongside, not here.
#[derive(Debug, Clone, Default)]
pub struct SearchOptions {
    /// Restrict the search to subsequences of this set (default: all
    /// positions).
    pub allowed: Option<EventSet>,
    /// Only consider scenarios of at most this many events.
    pub max_len: Option<usize>,
    /// Stop at the first scenario satisfying the constraints instead of
    /// optimizing (decision mode).
    pub first_found: bool,
}

/// Searches for a minimum scenario of `run` at `peer` subject to `opts`,
/// governed by `gov`.
///
/// * `Done(Some(s))` — `s` is a minimum scenario (or the first found, in
///   decision mode); the search completed.
/// * `Done(None)` — no scenario satisfies the constraints (exhaustive).
/// * `Anytime(Some(s), bound)` — the governor cut the search off; `s` is the
///   best scenario known (DFS incumbent, or a greedy 1-minimal scenario when
///   the search is unrestricted) and `bound` brackets the true minimum.
/// * `Exhausted(reason)` — cut off with no usable answer.
pub fn search_min_scenario(
    run: &Run,
    peer: PeerId,
    opts: &SearchOptions,
    gov: &Governor,
) -> Verdict<Option<EventSet>> {
    gov.guard(|| {
        if let Err(reason) = gov.check() {
            return cutoff_verdict(run, peer, opts, None, reason);
        }
        let target = run.view(peer);
        let mut ctx = Ctx {
            run,
            peer,
            target: &target,
            allowed: opts.allowed.clone(),
            max_len: opts.max_len.unwrap_or(run.len()),
            first_found: opts.first_found,
            gov,
            best: None,
            stopped: None,
        };
        let empty = Run::with_initial(run.spec_arc(), run.initial().clone());
        let mut chosen = Vec::new();
        ctx.dfs(0, &empty, 0, &mut chosen);
        match ctx.stopped {
            None => Verdict::Done(ctx.best),
            Some(reason) => cutoff_verdict(run, peer, opts, ctx.best, reason),
        }
    })
}

/// Builds the anytime verdict for a cut-off search: prefers the DFS
/// incumbent, falls back to greedy grace work (polynomial, ungoverned) when
/// the search was unrestricted, and brackets the minimum between the number
/// of observations (each needs at least one event) and the witness length.
fn cutoff_verdict(
    run: &Run,
    peer: PeerId,
    opts: &SearchOptions,
    best: Option<EventSet>,
    reason: Reason,
) -> Verdict<Option<EventSet>> {
    let witness = best.or_else(|| {
        // Greedy 1-minimal extraction only answers the unrestricted
        // optimization problem: under an `allowed` restriction the full run
        // is not a candidate, and in decision mode the caller has already
        // taken its own greedy shortcut.
        if opts.allowed.is_none() && !opts.first_found {
            let greedy = crate::minimal::one_minimal_scenario(run, peer);
            (greedy.len() <= opts.max_len.unwrap_or(run.len())).then_some(greedy)
        } else {
            None
        }
    });
    match witness {
        Some(w) => {
            let bound = Bound {
                reason,
                lower: Some(run.view(peer).steps.len() as u64),
                upper: Some(w.len() as u64),
            };
            Verdict::Anytime(Some(w), bound)
        }
        None => Verdict::Exhausted(reason),
    }
}

/// Decision variant: does a scenario with at most `n` events exist?
///
/// Starts with a polynomial greedy quick-accept (a 1-minimal scenario of
/// length `≤ n` settles the question positively without any search). On a
/// governor cutoff the verdict is `Anytime(false, bound)`: no qualifying
/// scenario was found, and `bound` records how far the search got — the
/// observation-count lower bound and the greedy upper bound on the true
/// minimum length.
pub fn exists_scenario_at_most(run: &Run, peer: PeerId, n: usize, gov: &Governor) -> Verdict<bool> {
    gov.guard(|| {
        let greedy = crate::minimal::one_minimal_scenario(run, peer);
        if greedy.len() <= n {
            return Verdict::Done(true);
        }
        let cut = |reason| {
            Verdict::Anytime(
                false,
                Bound {
                    reason,
                    lower: Some(run.view(peer).steps.len() as u64),
                    upper: Some(greedy.len() as u64),
                },
            )
        };
        if let Err(reason) = gov.check() {
            return cut(reason);
        }
        let opts = SearchOptions {
            max_len: Some(n),
            first_found: true,
            ..Default::default()
        };
        match search_min_scenario(run, peer, &opts, gov) {
            Verdict::Done(Some(_)) | Verdict::Anytime(Some(_), _) => Verdict::Done(true),
            Verdict::Done(None) => Verdict::Done(false),
            Verdict::Anytime(None, b) => cut(b.reason),
            Verdict::Exhausted(reason) => cut(reason),
        }
    })
}

struct Ctx<'a> {
    run: &'a Run,
    peer: PeerId,
    target: &'a RunView,
    allowed: Option<EventSet>,
    max_len: usize,
    first_found: bool,
    gov: &'a Governor,
    best: Option<EventSet>,
    stopped: Option<Reason>,
}

impl Ctx<'_> {
    /// Current upper bound on useful lengths.
    fn bound(&self) -> usize {
        match &self.best {
            Some(b) => b.len().saturating_sub(1).min(self.max_len),
            None => self.max_len,
        }
    }

    fn done(&self) -> bool {
        self.first_found && self.best.is_some()
    }

    /// DFS over positions. `sub` is the replayed subrun so far, `matched`
    /// the number of target steps already produced.
    fn dfs(&mut self, i: usize, sub: &Run, matched: usize, chosen: &mut Vec<usize>) {
        if self.done() || self.stopped.is_some() {
            return;
        }
        if let Err(reason) = self.gov.tick() {
            self.stopped = Some(reason);
            return;
        }
        let remaining_steps = self.target.steps.len() - matched;
        // Lower bound: each missing observation needs at least one event.
        if chosen.len() + remaining_steps > self.bound() {
            return;
        }
        if i == self.run.len() {
            if remaining_steps == 0 {
                let set = EventSet::from_iter(self.run.len(), chosen.iter().copied());
                let better = match &self.best {
                    Some(b) => set.len() < b.len(),
                    None => true,
                };
                if better {
                    self.best = Some(set);
                }
            }
            return;
        }
        // Not enough events left to produce the missing observations?
        if self.run.len() - i < remaining_steps {
            return;
        }
        // Branch 1: exclude event i (bias toward short scenarios).
        self.dfs(i + 1, sub, matched, chosen);
        if self.done() || self.stopped.is_some() {
            return;
        }
        // Branch 2: include event i (if allowed and within bound).
        if let Some(allowed) = &self.allowed {
            if !allowed.contains(i) {
                return;
            }
        }
        if chosen.len() + 1 > self.bound() {
            return;
        }
        let event = self.run.event(i).clone();
        let mut next = sub.clone();
        if next.push(event).is_err() {
            return;
        }
        let j = next.len() - 1;
        let collab = self.run.spec().collab();
        let pre_view = collab.view_of(next.pre_instance(j), self.peer);
        let post_view = collab.view_of(next.instance(j), self.peer);
        let own = next.event(j).peer == self.peer;
        let new_matched = if own || pre_view != post_view {
            // A visible step: must match the next expected observation.
            let Some(expected) = self.target.steps.get(matched) else {
                return;
            };
            let event_matches = match (&expected.event, own) {
                (EventView::Own(e), true) => e == next.event(j),
                (EventView::World, false) => true,
                _ => false,
            };
            if !event_matches || expected.view != post_view {
                return;
            }
            matched + 1
        } else {
            matched
        };
        chosen.push(i);
        self.dfs(i + 1, &next, new_matched, chosen);
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::is_scenario;
    use cwf_engine::{Bindings, Event};
    use cwf_lang::parse_workflow;
    use std::sync::Arc;

    /// Theorem 3.3's reduction instance for V = {v1, v2, v3},
    /// c1 = {v1, v2}, c2 = {v2, v3}: the minimum hitting set is {v2}, so the
    /// minimum scenario has 1 + 2 + 1 = 4 events.
    fn hitting_run() -> Run {
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { V1(K); V2(K); V3(K); C1(K); C2(K); OK(K); }
                peers {
                    q sees V1(*), V2(*), V3(*), C1(*), C2(*), OK(*);
                    p sees OK(*);
                }
                rules {
                    a1 @ q: +V1(0) :- ;
                    a2 @ q: +V2(0) :- ;
                    a3 @ q: +V3(0) :- ;
                    b11 @ q: +C1(0) :- V1(0);
                    b12 @ q: +C1(0) :- V2(0);
                    b22 @ q: +C2(0) :- V2(0);
                    b23 @ q: +C2(0) :- V3(0);
                    ok @ q: +OK(0) :- C1(0), C2(0);
                }
                "#,
            )
            .unwrap(),
        );
        let mut run = Run::new(Arc::clone(&spec));
        // The trivial run: all (a) rules, one (b) rule per c_j, then ok.
        for n in ["a1", "a2", "a3", "b11", "b22", "ok"] {
            let rid = spec.program().rule_by_name(n).unwrap();
            run.push(Event::new(&spec, rid, Bindings::empty(0)).unwrap())
                .unwrap();
        }
        run
    }

    #[test]
    fn finds_the_minimum_scenario() {
        let run = hitting_run();
        let p = run.spec().collab().peer("p").unwrap();
        let gov = Governor::unlimited();
        let res = search_min_scenario(&run, p, &SearchOptions::default(), &gov);
        assert!(res.is_done(), "unlimited governor completes: {res:?}");
        let found = res.found().cloned().expect("a scenario exists");
        // Minimum hitting set {v2} ⇒ a2 + one b-per-clause + ok = 4 events.
        // But the run's own (b) events b11/b22 depend on v1/v2: with only a2,
        // b11 (body V1) cannot fire — so the minimum within THIS run's
        // events is {a1, a2, b11, b22, ok}? No: b22 only needs V2, b11 needs
        // V1. The run only contains b11 for c1, so a1 must stay. Minimum is
        // {a1, b11, b22, ok} + a2 for b22? b22 needs V2 ⇒ a2 too. Hence 5?
        // Let's just assert the invariant: it is a scenario and no shorter
        // scenario exists.
        assert!(is_scenario(&run, p, &found));
        for shorter in 0..found.len() {
            assert_eq!(
                exists_scenario_at_most(&run, p, shorter, &Governor::unlimited()),
                Verdict::Done(false),
                "no scenario of length {shorter}"
            );
        }
        assert_eq!(found.len(), 5, "a1, a2, b11, b22, ok");
    }

    #[test]
    fn decision_variant_matches_hitting_set_structure() {
        let run = hitting_run();
        let p = run.spec().collab().peer("p").unwrap();
        let gov = Governor::unlimited();
        assert_eq!(
            exists_scenario_at_most(&run, p, 5, &gov),
            Verdict::Done(true)
        );
        assert_eq!(
            exists_scenario_at_most(&run, p, 4, &gov),
            Verdict::Done(false)
        );
        assert_eq!(
            exists_scenario_at_most(&run, p, 6, &gov),
            Verdict::Done(true)
        );
    }

    #[test]
    fn allowed_set_restricts_the_search() {
        let run = hitting_run();
        let p = run.spec().collab().peer("p").unwrap();
        // Restricting to events {a1, b11, ok} loses C2 ⇒ no scenario.
        let opts = SearchOptions {
            allowed: Some(EventSet::from_iter(run.len(), [0, 3, 5])),
            ..Default::default()
        };
        assert_eq!(
            search_min_scenario(&run, p, &opts, &Governor::unlimited()),
            Verdict::Done(None)
        );
    }

    #[test]
    fn budget_exhaustion_yields_greedy_anytime_answer() {
        let run = hitting_run();
        let p = run.spec().collab().peer("p").unwrap();
        let gov = Governor::with_nodes(3);
        let res = search_min_scenario(&run, p, &SearchOptions::default(), &gov);
        // Three nodes cannot finish, but the greedy grace answer is a real
        // scenario bracketing the minimum from above.
        let Verdict::Anytime(Some(witness), bound) = res else {
            panic!("expected an anytime answer, got {res:?}");
        };
        assert_eq!(bound.reason, Reason::Nodes);
        assert!(is_scenario(&run, p, &witness));
        assert_eq!(bound.upper, Some(witness.len() as u64));
        assert!(bound.lower.unwrap() <= bound.upper.unwrap());
    }

    #[test]
    fn cross_thread_cancellation_stops_the_search() {
        let run = hitting_run();
        let p = run.spec().collab().peer("p").unwrap();
        let gov = Governor::unlimited();
        let token = gov.cancel_token();
        // Cancel from another thread before the search starts: the entry
        // check sees the sticky flag and no search node is ever expanded.
        std::thread::spawn(move || token.cancel()).join().unwrap();
        let res = search_min_scenario(&run, p, &SearchOptions::default(), &gov);
        let Verdict::Anytime(Some(witness), bound) = res else {
            panic!("expected a greedy anytime answer, got {res:?}");
        };
        assert_eq!(bound.reason, Reason::Cancelled);
        assert!(is_scenario(&run, p, &witness));
        assert_eq!(gov.nodes_used(), 0, "cancellation preempted the search");
    }

    #[test]
    fn zero_deadline_cuts_off_without_panicking() {
        let run = hitting_run();
        let p = run.spec().collab().peer("p").unwrap();
        let gov = Governor::with_deadline(std::time::Duration::ZERO);
        let res = exists_scenario_at_most(&run, p, 0, &gov);
        let Verdict::Anytime(false, bound) = res else {
            panic!("expected a bounded refusal, got {res:?}");
        };
        assert_eq!(bound.reason, Reason::Deadline);
        assert!(
            bound.upper.is_some(),
            "greedy upper bound survives the cutoff"
        );
    }

    #[test]
    fn restricted_budget_exhaustion_has_no_witness() {
        let run = hitting_run();
        let p = run.spec().collab().peer("p").unwrap();
        // Under an `allowed` restriction there is no greedy fallback: a
        // cut-off search is plain exhaustion.
        let opts = SearchOptions {
            allowed: Some(EventSet::full(run.len())),
            ..Default::default()
        };
        assert_eq!(
            search_min_scenario(&run, p, &opts, &Governor::with_nodes(3)),
            Verdict::Exhausted(Reason::Nodes)
        );
    }

    #[test]
    fn empty_view_needs_empty_scenario() {
        let run = hitting_run();
        // q as observer of an all-q run: the whole run is the only scenario
        // (every event is visible at q).
        let q = run.spec().collab().peer("q").unwrap();
        let res = search_min_scenario(&run, q, &SearchOptions::default(), &Governor::unlimited());
        assert_eq!(res.found().unwrap().len(), run.len());
    }

    #[test]
    fn own_events_must_match_exactly() {
        // A run where p itself acts: the scenario must reproduce p's own
        // events verbatim.
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { A(K); B(K); }
                peers { p sees A(*); q sees A(*), B(*); }
                rules {
                    mine @ p: +A(0) :- ;
                    other @ q: +B(0) :- ;
                }
                "#,
            )
            .unwrap(),
        );
        let mut run = Run::new(Arc::clone(&spec));
        for n in ["other", "mine"] {
            let rid = spec.program().rule_by_name(n).unwrap();
            run.push(Event::new(&spec, rid, Bindings::empty(0)).unwrap())
                .unwrap();
        }
        let p = spec.collab().peer("p").unwrap();
        let res = search_min_scenario(&run, p, &SearchOptions::default(), &Governor::unlimited());
        // B is invisible to p, so the minimum scenario is just p's event.
        assert_eq!(res.found().unwrap().to_vec(), vec![1]);
    }
}
