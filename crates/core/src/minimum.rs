//! Exact scenario search (Theorem 3.3).
//!
//! Finding a *minimum* scenario — or deciding whether a scenario of length
//! `≤ N` exists — is NP-complete, so this module implements an exponential
//! branch-and-bound search over subsequences. The search walks the run left
//! to right deciding include/exclude per event, maintaining the replayed
//! subrun state, and prunes branches that (a) fail to replay, (b) produce a
//! visible step at `p` that does not match the next expected observation, or
//! (c) cannot beat the current bound.
//!
//! The same search, restricted to a subset of positions and capped length,
//! decides strict-subsequence scenario existence — the coNP-hard minimality
//! test of Theorem 3.4 (see [`crate::minimal`]).

use cwf_engine::{EventView, Run, RunView};
use cwf_model::PeerId;

use crate::set::EventSet;

/// Options for the scenario search.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Restrict the search to subsequences of this set (default: all
    /// positions).
    pub allowed: Option<EventSet>,
    /// Only consider scenarios of at most this many events.
    pub max_len: Option<usize>,
    /// Stop at the first scenario satisfying the constraints instead of
    /// optimizing (decision mode).
    pub first_found: bool,
    /// Node budget; the search gives up (`SearchResult::Budget`) beyond it.
    pub max_nodes: u64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            allowed: None,
            max_len: None,
            first_found: false,
            max_nodes: 10_000_000,
        }
    }
}

/// Outcome of a scenario search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchResult {
    /// A scenario satisfying the constraints (the minimum one found, or the
    /// first one in decision mode).
    Found(EventSet),
    /// No scenario satisfies the constraints (exhaustive).
    None,
    /// The node budget was exhausted before the search completed.
    Budget,
}

impl SearchResult {
    /// The found set, if any.
    pub fn found(self) -> Option<EventSet> {
        match self {
            SearchResult::Found(s) => Some(s),
            _ => None,
        }
    }
}

/// Searches for a minimum scenario of `run` at `peer` subject to `opts`.
pub fn search_min_scenario(run: &Run, peer: PeerId, opts: &SearchOptions) -> SearchResult {
    let target = run.view(peer);
    let mut ctx = Ctx {
        run,
        peer,
        target: &target,
        allowed: opts.allowed.clone(),
        max_len: opts.max_len.unwrap_or(run.len()),
        first_found: opts.first_found,
        nodes_left: opts.max_nodes,
        best: None,
        exhausted: true,
    };
    let empty = Run::with_initial(run.spec_arc(), run.initial().clone());
    let mut chosen = Vec::new();
    ctx.dfs(0, &empty, 0, &mut chosen);
    match ctx.best {
        Some(set) => SearchResult::Found(set),
        None if ctx.exhausted => SearchResult::None,
        None => SearchResult::Budget,
    }
}

/// Decision variant: does a scenario with at most `n` events exist?
/// `None` when the budget ran out.
pub fn exists_scenario_at_most(run: &Run, peer: PeerId, n: usize, max_nodes: u64) -> Option<bool> {
    let opts = SearchOptions {
        max_len: Some(n),
        first_found: true,
        max_nodes,
        ..Default::default()
    };
    match search_min_scenario(run, peer, &opts) {
        SearchResult::Found(_) => Some(true),
        SearchResult::None => Some(false),
        SearchResult::Budget => None,
    }
}

struct Ctx<'a> {
    run: &'a Run,
    peer: PeerId,
    target: &'a RunView,
    allowed: Option<EventSet>,
    max_len: usize,
    first_found: bool,
    nodes_left: u64,
    best: Option<EventSet>,
    exhausted: bool,
}

impl Ctx<'_> {
    /// Current upper bound on useful lengths.
    fn bound(&self) -> usize {
        match &self.best {
            Some(b) => b.len().saturating_sub(1).min(self.max_len),
            None => self.max_len,
        }
    }

    fn done(&self) -> bool {
        self.first_found && self.best.is_some()
    }

    /// DFS over positions. `sub` is the replayed subrun so far, `matched`
    /// the number of target steps already produced.
    fn dfs(&mut self, i: usize, sub: &Run, matched: usize, chosen: &mut Vec<usize>) {
        if self.done() {
            return;
        }
        if self.nodes_left == 0 {
            self.exhausted = false;
            return;
        }
        self.nodes_left -= 1;
        let remaining_steps = self.target.steps.len() - matched;
        // Lower bound: each missing observation needs at least one event.
        if chosen.len() + remaining_steps > self.bound() {
            return;
        }
        if i == self.run.len() {
            if remaining_steps == 0 {
                let set = EventSet::from_iter(self.run.len(), chosen.iter().copied());
                let better = match &self.best {
                    Some(b) => set.len() < b.len(),
                    None => true,
                };
                if better {
                    self.best = Some(set);
                }
            }
            return;
        }
        // Not enough events left to produce the missing observations?
        if self.run.len() - i < remaining_steps {
            return;
        }
        // Branch 1: exclude event i (bias toward short scenarios).
        self.dfs(i + 1, sub, matched, chosen);
        if self.done() {
            return;
        }
        // Branch 2: include event i (if allowed and within bound).
        if let Some(allowed) = &self.allowed {
            if !allowed.contains(i) {
                return;
            }
        }
        if chosen.len() + 1 > self.bound() {
            return;
        }
        let event = self.run.event(i).clone();
        let mut next = sub.clone();
        if next.push(event).is_err() {
            return;
        }
        let j = next.len() - 1;
        let collab = self.run.spec().collab();
        let pre_view = collab.view_of(next.pre_instance(j), self.peer);
        let post_view = collab.view_of(next.instance(j), self.peer);
        let own = next.event(j).peer == self.peer;
        let new_matched = if own || pre_view != post_view {
            // A visible step: must match the next expected observation.
            let Some(expected) = self.target.steps.get(matched) else {
                return;
            };
            let event_matches = match (&expected.event, own) {
                (EventView::Own(e), true) => e == next.event(j),
                (EventView::World, false) => true,
                _ => false,
            };
            if !event_matches || expected.view != post_view {
                return;
            }
            matched + 1
        } else {
            matched
        };
        chosen.push(i);
        self.dfs(i + 1, &next, new_matched, chosen);
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::is_scenario;
    use cwf_engine::{Bindings, Event};
    use cwf_lang::parse_workflow;
    use std::sync::Arc;

    /// Theorem 3.3's reduction instance for V = {v1, v2, v3},
    /// c1 = {v1, v2}, c2 = {v2, v3}: the minimum hitting set is {v2}, so the
    /// minimum scenario has 1 + 2 + 1 = 4 events.
    fn hitting_run() -> Run {
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { V1(K); V2(K); V3(K); C1(K); C2(K); OK(K); }
                peers {
                    q sees V1(*), V2(*), V3(*), C1(*), C2(*), OK(*);
                    p sees OK(*);
                }
                rules {
                    a1 @ q: +V1(0) :- ;
                    a2 @ q: +V2(0) :- ;
                    a3 @ q: +V3(0) :- ;
                    b11 @ q: +C1(0) :- V1(0);
                    b12 @ q: +C1(0) :- V2(0);
                    b22 @ q: +C2(0) :- V2(0);
                    b23 @ q: +C2(0) :- V3(0);
                    ok @ q: +OK(0) :- C1(0), C2(0);
                }
                "#,
            )
            .unwrap(),
        );
        let mut run = Run::new(Arc::clone(&spec));
        // The trivial run: all (a) rules, one (b) rule per c_j, then ok.
        for n in ["a1", "a2", "a3", "b11", "b22", "ok"] {
            let rid = spec.program().rule_by_name(n).unwrap();
            run.push(Event::new(&spec, rid, Bindings::empty(0)).unwrap())
                .unwrap();
        }
        run
    }

    #[test]
    fn finds_the_minimum_scenario() {
        let run = hitting_run();
        let p = run.spec().collab().peer("p").unwrap();
        let res = search_min_scenario(&run, p, &SearchOptions::default());
        let found = res.found().expect("a scenario exists");
        // Minimum hitting set {v2} ⇒ a2 + one b-per-clause + ok = 4 events.
        // But the run's own (b) events b11/b22 depend on v1/v2: with only a2,
        // b11 (body V1) cannot fire — so the minimum within THIS run's
        // events is {a1, a2, b11, b22, ok}? No: b22 only needs V2, b11 needs
        // V1. The run only contains b11 for c1, so a1 must stay. Minimum is
        // {a1, b11, b22, ok} + a2 for b22? b22 needs V2 ⇒ a2 too. Hence 5?
        // Let's just assert the invariant: it is a scenario and no shorter
        // scenario exists.
        assert!(is_scenario(&run, p, &found));
        for shorter in 0..found.len() {
            assert_eq!(
                exists_scenario_at_most(&run, p, shorter, 1_000_000),
                Some(false),
                "no scenario of length {shorter}"
            );
        }
        assert_eq!(found.len(), 5, "a1, a2, b11, b22, ok");
    }

    #[test]
    fn decision_variant_matches_hitting_set_structure() {
        let run = hitting_run();
        let p = run.spec().collab().peer("p").unwrap();
        assert_eq!(exists_scenario_at_most(&run, p, 5, 1_000_000), Some(true));
        assert_eq!(exists_scenario_at_most(&run, p, 4, 1_000_000), Some(false));
        assert_eq!(exists_scenario_at_most(&run, p, 6, 1_000_000), Some(true));
    }

    #[test]
    fn allowed_set_restricts_the_search() {
        let run = hitting_run();
        let p = run.spec().collab().peer("p").unwrap();
        // Restricting to events {a1, b11, ok} loses C2 ⇒ no scenario.
        let opts = SearchOptions {
            allowed: Some(EventSet::from_iter(run.len(), [0, 3, 5])),
            ..Default::default()
        };
        assert_eq!(search_min_scenario(&run, p, &opts), SearchResult::None);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let run = hitting_run();
        let p = run.spec().collab().peer("p").unwrap();
        let opts = SearchOptions {
            max_nodes: 3,
            ..Default::default()
        };
        assert_eq!(search_min_scenario(&run, p, &opts), SearchResult::Budget);
    }

    #[test]
    fn empty_view_needs_empty_scenario() {
        let run = hitting_run();
        // q as observer of an all-q run: the whole run is the only scenario
        // (every event is visible at q).
        let q = run.spec().collab().peer("q").unwrap();
        let res = search_min_scenario(&run, q, &SearchOptions::default());
        assert_eq!(res.found().unwrap().len(), run.len());
    }

    #[test]
    fn own_events_must_match_exactly() {
        // A run where p itself acts: the scenario must reproduce p's own
        // events verbatim.
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { A(K); B(K); }
                peers { p sees A(*); q sees A(*), B(*); }
                rules {
                    mine @ p: +A(0) :- ;
                    other @ q: +B(0) :- ;
                }
                "#,
            )
            .unwrap(),
        );
        let mut run = Run::new(Arc::clone(&spec));
        for n in ["other", "mine"] {
            let rid = spec.program().rule_by_name(n).unwrap();
            run.push(Event::new(&spec, rid, Bindings::empty(0)).unwrap())
                .unwrap();
        }
        let p = spec.collab().peer("p").unwrap();
        let res = search_min_scenario(&run, p, &SearchOptions::default());
        // B is invisible to p, so the minimum scenario is just p's event.
        assert_eq!(res.found().unwrap().to_vec(), vec![1]);
    }
}
