//! The operator `T_p(ρ, ·)` and the unique minimal p-faithful scenario
//! (Theorem 4.7).
//!
//! `T_p(ρ, α)` adds to `α` every event whose presence is required by
//! boundary or modification p-faithfulness *because of* events already in
//! `α`. It is monotone and inflationary, so its least fixpoint above `α`
//! exists and equals `T_p^ω(ρ, α)`; [`tp_closure`] computes it with a
//! worklist (each event is processed once, so the closure is linear in the
//! number of generated requirements — comfortably polynomial, as the theorem
//! demands).
//!
//! The **minimal p-faithful scenario** of a run is `run(T_p^ω(ρ, v̄))` where
//! `v̄` is the set of events visible at `p`; it is unique and contained in
//! every p-faithful scenario.

use cwf_engine::Run;
use cwf_model::PeerId;

use crate::faithful::relevant_attrs;
use crate::index::RunIndex;
use crate::scenario::visible_set;
use crate::set::EventSet;

/// One application of `T_p(ρ, ·)`: `alpha` plus the directly-required
/// events. (Mostly useful for tests; [`tp_closure`] computes the fixpoint
/// without re-scanning.)
pub fn tp_step(run: &Run, index: &RunIndex, peer: PeerId, alpha: &EventSet) -> EventSet {
    let mut out = alpha.clone();
    for j in alpha.iter() {
        add_requirements(run, index, peer, j, &mut out, &mut Vec::new());
    }
    out
}

/// The fixpoint `T_p^ω(ρ, seed)`.
pub fn tp_closure(run: &Run, index: &RunIndex, peer: PeerId, seed: &EventSet) -> EventSet {
    let mut out = seed.clone();
    let mut worklist: Vec<usize> = seed.iter().collect();
    while let Some(j) = worklist.pop() {
        add_requirements(run, index, peer, j, &mut out, &mut worklist);
    }
    out
}

/// Adds the events required by p-faithfulness due to the presence of event
/// `j`, pushing newly added positions onto `worklist`.
fn add_requirements(
    run: &Run,
    index: &RunIndex,
    peer: PeerId,
    j: usize,
    out: &mut EventSet,
    worklist: &mut Vec<usize>,
) {
    let q = run.event(j).peer;
    for (rel, keys) in index.key_occurrences(j) {
        let mut relevant = relevant_attrs(run, q, *rel);
        relevant.extend(relevant_attrs(run, peer, *rel));
        for k in keys {
            let Some(lc) = index.lifecycle_containing(*rel, k, j) else {
                continue;
            };
            // Boundary requirements.
            if out.insert(lc.start) {
                worklist.push(lc.start);
            }
            if let Some(end) = lc.end {
                if out.insert(end) {
                    worklist.push(end);
                }
            }
            // Modification requirements: earlier writers, in this lifecycle,
            // of attributes relevant to q or to p.
            for m in index.modifications_of(*rel, k) {
                if m.at < j
                    && lc.contains(m.at)
                    && m.attrs.iter().any(|a| relevant.contains(a))
                    && out.insert(m.at)
                {
                    worklist.push(m.at);
                }
            }
        }
    }
}

/// Is the run its *own* minimum p-faithful scenario
/// (`α = T_p^ω(α, v̄)`, Section 5's "minimum p-faithful run" predicate)?
pub fn is_minimum_faithful_run(run: &Run, peer: PeerId) -> bool {
    let index = RunIndex::build(run);
    let seed = visible_set(run, peer);
    tp_closure(run, &index, peer, &seed).len() == run.len()
}

/// The unique minimal p-faithful scenario of a run (Theorem 4.7).
#[derive(Debug, Clone)]
pub struct FaithfulExplanation {
    /// The scenario's event positions within the original run.
    pub events: EventSet,
    /// The replayed scenario (a subrun of the original — Lemma 4.6
    /// guarantees the replay succeeds).
    pub subrun: Run,
}

/// Computes the unique minimal p-faithful scenario `run(T_p^ω(ρ, v̄))`.
///
/// # Panics
///
/// Panics if the p-faithful closure fails to replay — that would contradict
/// Lemma 4.6, i.e. signal a bug in the engine or the index.
pub fn minimal_faithful_scenario(run: &Run, peer: PeerId) -> FaithfulExplanation {
    minimal_faithful_scenario_indexed(run, &RunIndex::build(run), peer)
}

/// Same as [`minimal_faithful_scenario`] with a caller-provided index.
pub fn minimal_faithful_scenario_indexed(
    run: &Run,
    index: &RunIndex,
    peer: PeerId,
) -> FaithfulExplanation {
    let seed = visible_set(run, peer);
    let events = tp_closure(run, index, peer, &seed);
    let subrun = run
        .try_subrun(&events.to_vec())
        .expect("Lemma 4.6: p-faithful subsequences yield subruns");
    FaithfulExplanation { events, subrun }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faithful::{is_faithful, is_tp_fixpoint};
    use crate::scenario::is_scenario;
    use cwf_engine::{Bindings, Event};
    use cwf_lang::parse_workflow;
    use std::sync::Arc;

    fn example_4_2() -> Run {
        let spec = Arc::new(
            parse_workflow(
                r#"
                schema { Ok(K); Approval(K); }
                peers {
                    cto sees Ok(*), Approval(*);
                    ceo sees Ok(*), Approval(*);
                    assistant sees Ok(*), Approval(*);
                    applicant sees Approval(*);
                }
                rules {
                    e @ cto: +Ok(0) :- ;
                    f @ cto: -key Ok(0) :- Ok(0);
                    g @ ceo: +Ok(0) :- ;
                    h @ assistant: +Approval(0) :- Ok(0);
                }
                "#,
            )
            .unwrap(),
        );
        let mut run = Run::new(Arc::clone(&spec));
        for n in ["e", "f", "g", "h"] {
            let rid = spec.program().rule_by_name(n).unwrap();
            run.push(Event::new(&spec, rid, Bindings::empty(0)).unwrap())
                .unwrap();
        }
        run
    }

    #[test]
    fn example_4_2_minimal_faithful_scenario_is_gh() {
        let run = example_4_2();
        let applicant = run.spec().collab().peer("applicant").unwrap();
        let expl = minimal_faithful_scenario(&run, applicant);
        assert_eq!(
            expl.events.to_vec(),
            vec![2, 3],
            "g then h — not the misleading e h"
        );
        assert_eq!(expl.subrun.len(), 2);
    }

    #[test]
    fn closure_is_a_fixpoint_and_faithful() {
        let run = example_4_2();
        let index = RunIndex::build(&run);
        let applicant = run.spec().collab().peer("applicant").unwrap();
        let expl = minimal_faithful_scenario(&run, applicant);
        assert!(is_tp_fixpoint(&run, &index, applicant, &expl.events));
        assert!(is_faithful(&run, &index, applicant, &expl.events));
        assert_eq!(
            tp_step(&run, &index, applicant, &expl.events),
            expl.events,
            "fixpoint of a single T_p application"
        );
        assert!(is_scenario(&run, applicant, &expl.events));
    }

    #[test]
    fn closure_is_minimal_among_faithful_scenarios() {
        let run = example_4_2();
        let index = RunIndex::build(&run);
        let applicant = run.spec().collab().peer("applicant").unwrap();
        let minimal = minimal_faithful_scenario(&run, applicant).events;
        // Enumerate all faithful scenarios (run length 4 ⇒ 16 subsequences)
        // and check containment — the uniqueness/minimality of Theorem 4.7.
        for mask in 0u32..16 {
            let set = EventSet::from_iter(4, (0..4).filter(|i| mask & (1 << i) != 0));
            if is_faithful(&run, &index, applicant, &set) {
                assert!(
                    minimal.is_subset(&set),
                    "minimal ⊴ every faithful scenario; failed for {set:?}"
                );
            }
        }
    }

    #[test]
    fn tp_step_adds_direct_requirements_only() {
        let run = example_4_2();
        let index = RunIndex::build(&run);
        let applicant = run.spec().collab().peer("applicant").unwrap();
        // Seed {h}: one step adds g (left boundary of h's Ok-lifecycle).
        let seed = EventSet::from_iter(4, [3]);
        let one = tp_step(&run, &index, applicant, &seed);
        assert_eq!(one.to_vec(), vec![2, 3]);
    }

    #[test]
    fn seeding_with_e_pulls_in_f() {
        let run = example_4_2();
        let index = RunIndex::build(&run);
        let applicant = run.spec().collab().peer("applicant").unwrap();
        // The per-event explanation of e must contain its lifecycle closer f.
        let closure = tp_closure(&run, &index, applicant, &EventSet::from_iter(4, [0]));
        assert_eq!(closure.to_vec(), vec![0, 1]);
    }

    #[test]
    fn monotone_in_the_seed() {
        let run = example_4_2();
        let index = RunIndex::build(&run);
        let applicant = run.spec().collab().peer("applicant").unwrap();
        let small = tp_closure(&run, &index, applicant, &EventSet::from_iter(4, [3]));
        let large = tp_closure(&run, &index, applicant, &EventSet::from_iter(4, [0, 3]));
        assert!(small.is_subset(&large));
    }

    #[test]
    fn empty_run_yields_empty_explanation() {
        let spec = Arc::new(
            parse_workflow("schema { T(K); } peers { p sees T(*); } rules { r @ p: +T(0) :- ; }")
                .unwrap(),
        );
        let run = Run::new(spec);
        let p = run.spec().collab().peer("p").unwrap();
        let expl = minimal_faithful_scenario(&run, p);
        assert!(expl.events.is_empty());
        assert!(expl.subrun.is_empty());
    }
}
