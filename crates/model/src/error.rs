//! Error type for schema and instance construction.

use std::fmt;

use crate::schema::{AttrId, RelId};

/// Errors raised while building schemas, views, or instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A name (relation, attribute, peer) was empty.
    EmptyName,
    /// A relation schema had no attributes (it needs at least the key).
    NoAttributes {
        /// The offending relation name.
        relation: String,
    },
    /// Two attributes of a relation share a name.
    DuplicateAttribute {
        /// The relation containing the duplicate.
        relation: String,
        /// The repeated attribute name.
        attribute: String,
    },
    /// Two relations share a name.
    DuplicateRelation {
        /// The repeated relation name.
        relation: String,
    },
    /// Two peers share a name.
    DuplicatePeer {
        /// The repeated peer name.
        peer: String,
    },
    /// A relation id does not belong to the schema.
    UnknownRelation {
        /// The out-of-range relation id.
        id: RelId,
    },
    /// An attribute id exceeds the relation's arity.
    UnknownAttribute {
        /// The relation the attribute was resolved against.
        rel: RelId,
        /// The out-of-range attribute id.
        attr: AttrId,
    },
    /// A tuple with `⊥` key was inserted into a valid relation.
    NullKey,
    /// The collaborative schema violates losslessness for the given
    /// relation/attribute (Definition 2.1).
    NotLossless {
        /// The uncovered relation.
        rel: RelId,
        /// The uncovered attribute.
        attr: AttrId,
        /// The uncovered relation's name.
        relation: String,
        /// The uncovered attribute's name.
        attribute: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyName => write!(f, "empty name"),
            ModelError::NoAttributes { relation } => {
                write!(f, "relation {relation} has no attributes")
            }
            ModelError::DuplicateAttribute {
                relation,
                attribute,
            } => {
                write!(f, "duplicate attribute {attribute} in relation {relation}")
            }
            ModelError::DuplicateRelation { relation } => {
                write!(f, "duplicate relation {relation}")
            }
            ModelError::DuplicatePeer { peer } => write!(f, "duplicate peer {peer}"),
            ModelError::UnknownRelation { id } => write!(f, "unknown relation {id:?}"),
            ModelError::UnknownAttribute { rel, attr } => {
                write!(f, "unknown attribute {attr:?} of relation {rel:?}")
            }
            ModelError::NullKey => write!(f, "tuple with ⊥ key in a valid relation"),
            ModelError::NotLossless {
                relation,
                attribute,
                ..
            } => write!(
                f,
                "collaborative schema is not lossless: attribute {attribute} of \
                 relation {relation} is not covered by the peer views"
            ),
        }
    }
}

impl std::error::Error for ModelError {}
