//! Columnar per-relation view storage.
//!
//! [`RelStore`] holds one relation of a view instance as two parallel
//! columns: a sorted key column (`keys`) and the corresponding view-width
//! rows (`rows`). Point lookups are binary searches over the dense key
//! column (cache-friendly, no pointer chasing), scans walk a contiguous
//! `Vec` in key order — exactly the iteration order of the `BTreeMap`
//! representation it replaces, so every consumer observes identical
//! enumeration order.
//!
//! On top of the columns, each store lazily maintains *secondary equality
//! indexes*: per attribute position, a map from value to the ascending row
//! ids holding that value. The join planner probes them via
//! [`RelStore::rows_eq`] to turn `R(x̄)` scans with a bound non-key
//! attribute into index lookups. Indexes are rebuilt on first probe after a
//! mutation (mutations just invalidate), and only for relations with at
//! least [`INDEX_MIN_ROWS`] rows — below that a linear scan over the
//! columnar rows is faster than any index maintenance.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, RwLock};

use serde::{Deserialize, Serialize};

use crate::tuple::Tuple;
use crate::value::Value;

/// Smallest relation worth indexing; below this, scans win.
pub const INDEX_MIN_ROWS: usize = 16;

/// Per attribute position: value → ascending row ids with that value.
type ColIndex = Vec<BTreeMap<Value, Vec<u32>>>;

/// One relation of a view instance, stored columnar: a sorted key column
/// with parallel rows, plus lazy secondary equality indexes.
#[derive(Serialize, Deserialize, Default)]
pub struct RelStore {
    /// Sorted, distinct keys; `keys[i] == rows[i].key()`.
    keys: Vec<Value>,
    /// View-width tuples, in key order.
    rows: Vec<Tuple>,
    /// Lazily built secondary indexes; `None` after any mutation.
    index: RwLock<Option<Arc<ColIndex>>>,
}

impl RelStore {
    /// The empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn position(&self, k: &Value) -> Result<usize, usize> {
        self.keys.binary_search(k)
    }

    /// The row with key `k`, if any (binary search on the key column).
    pub fn get(&self, k: &Value) -> Option<&Tuple> {
        self.position(k).ok().map(|i| &self.rows[i])
    }

    /// Does a row with key `k` exist?
    pub fn contains_key(&self, k: &Value) -> bool {
        self.position(k).is_ok()
    }

    /// Rows in key order.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.rows.iter()
    }

    /// Keys in order (the sorted key column).
    pub fn keys(&self) -> std::slice::Iter<'_, Value> {
        self.keys.iter()
    }

    /// The row at dense position `id` (as returned by [`RelStore::rows_eq`]).
    pub fn row(&self, id: u32) -> &Tuple {
        &self.rows[id as usize]
    }

    /// Inserts or replaces the row for `t`'s key. Appends without a search
    /// when the key extends the column (the common bulk-load order).
    pub fn upsert(&mut self, t: Tuple) {
        let k = *t.key();
        self.invalidate();
        if self.keys.last().is_some_and(|last| *last < k) || self.keys.is_empty() {
            self.keys.push(k);
            self.rows.push(t);
            return;
        }
        match self.position(&k) {
            Ok(i) => self.rows[i] = t,
            Err(i) => {
                self.keys.insert(i, k);
                self.rows.insert(i, t);
            }
        }
    }

    /// Removes the row with key `k`, if present (idempotent).
    pub fn remove(&mut self, k: &Value) {
        if let Ok(i) = self.position(k) {
            self.invalidate();
            self.keys.remove(i);
            self.rows.remove(i);
        }
    }

    fn invalidate(&mut self) {
        // `&mut self` means no other reader: plain overwrite, no locking.
        *self.index.get_mut().unwrap() = None;
    }

    /// The ascending row ids whose attribute `pos` equals `v`, via the
    /// secondary index — or `None` when the store is too small to index
    /// (callers fall back to a linear scan, which is faster there). Row ids
    /// ascend, and rows are key-sorted, so iterating the result visits rows
    /// in exactly key order: index-accelerated scans enumerate matches in
    /// the same order as full scans.
    pub fn rows_eq(&self, pos: usize, v: &Value) -> Option<Vec<u32>> {
        if self.rows.len() < INDEX_MIN_ROWS {
            return None;
        }
        let index = self.index();
        Some(match index.get(pos).and_then(|m| m.get(v)) {
            Some(ids) => ids.clone(),
            None => Vec::new(),
        })
    }

    /// The current secondary indexes, building them if stale.
    fn index(&self) -> Arc<ColIndex> {
        if let Some(idx) = self.index.read().unwrap().as_ref() {
            return Arc::clone(idx);
        }
        let arity = self.rows.first().map_or(0, Tuple::arity);
        let mut cols: ColIndex = vec![BTreeMap::new(); arity];
        for (id, row) in self.rows.iter().enumerate() {
            for (pos, v) in row.values().iter().enumerate() {
                cols[pos].entry(*v).or_default().push(id as u32);
            }
        }
        let built = Arc::new(cols);
        let mut slot = self.index.write().unwrap();
        // A racing builder may have won; either result is identical.
        if slot.is_none() {
            *slot = Some(Arc::clone(&built));
        }
        built
    }
}

impl Clone for RelStore {
    fn clone(&self) -> Self {
        RelStore {
            keys: self.keys.clone(),
            rows: self.rows.clone(),
            // The cached index (if any) describes the same rows: share it.
            index: RwLock::new(self.index.read().unwrap().clone()),
        }
    }

    /// Reuses the destination's column buffers (arena slot overwrite path).
    fn clone_from(&mut self, src: &Self) {
        self.keys.clone_from(&src.keys);
        self.rows.clone_from(&src.rows);
        *self.index.get_mut().unwrap() = src.index.read().unwrap().clone();
    }
}

/// Equality is over the row content only (the index cache is derived state).
/// Sorted-by-key rows make this exactly the `BTreeMap<Value, Tuple>`
/// equality of the previous representation.
impl PartialEq for RelStore {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
    }
}

impl Eq for RelStore {}

impl fmt::Debug for RelStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.rows.iter()).finish()
    }
}

impl<'a> IntoIterator for &'a RelStore {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

impl FromIterator<Tuple> for RelStore {
    fn from_iter<T: IntoIterator<Item = Tuple>>(iter: T) -> Self {
        let mut s = RelStore::new();
        for t in iter {
            s.upsert(t);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(k: i64, a: i64) -> Tuple {
        Tuple::new([Value::int(k), Value::int(a)])
    }

    #[test]
    fn upsert_keeps_keys_sorted_and_replaces() {
        let mut s = RelStore::new();
        for k in [5, 1, 3, 1] {
            s.upsert(t(k, k * 10));
        }
        assert_eq!(s.len(), 3);
        let keys: Vec<_> = s.keys().cloned().collect();
        assert_eq!(keys, vec![Value::int(1), Value::int(3), Value::int(5)]);
        assert_eq!(s.get(&Value::int(1)), Some(&t(1, 10)));
        assert!(s.contains_key(&Value::int(3)));
        s.remove(&Value::int(3));
        s.remove(&Value::int(3)); // idempotent
        assert_eq!(s.len(), 2);
        assert!(!s.contains_key(&Value::int(3)));
    }

    #[test]
    fn equality_ignores_index_cache() {
        let mut a = RelStore::new();
        let mut b = RelStore::new();
        for k in 0..20 {
            a.upsert(t(k, 7));
            b.upsert(t(k, 7));
        }
        // Build a's index, leave b's cold.
        assert!(a.rows_eq(1, &Value::int(7)).is_some());
        assert_eq!(a, b);
        assert_eq!(a.clone(), b);
    }

    #[test]
    fn rows_eq_matches_scan_order() {
        let mut s = RelStore::new();
        for k in 0..40 {
            s.upsert(t(k, k % 3));
        }
        let ids = s.rows_eq(1, &Value::int(1)).expect("large enough to index");
        let scanned: Vec<u32> = s
            .iter()
            .enumerate()
            .filter(|(_, row)| row.values()[1] == Value::int(1))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(ids, scanned, "index enumeration order = scan order");
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ascending row ids");
        // Missing value: empty, not None.
        assert_eq!(s.rows_eq(1, &Value::int(9)), Some(Vec::new()));
        // Tiny store: no index.
        let mut small = RelStore::new();
        small.upsert(t(1, 1));
        assert_eq!(small.rows_eq(1, &Value::int(1)), None);
    }

    #[test]
    fn mutation_invalidates_index() {
        let mut s = RelStore::new();
        for k in 0..20 {
            s.upsert(t(k, 0));
        }
        assert_eq!(s.rows_eq(1, &Value::int(0)).unwrap().len(), 20);
        s.upsert(t(5, 9));
        assert_eq!(s.rows_eq(1, &Value::int(0)).unwrap().len(), 19);
        assert_eq!(s.rows_eq(1, &Value::int(9)).unwrap(), vec![5]);
        s.remove(&Value::int(5));
        assert_eq!(s.rows_eq(1, &Value::int(9)).unwrap(), Vec::<u32>::new());
    }
}
