//! Selection conditions (Section 2).
//!
//! For attributes `A, B` and a constant `a ∈ dom` (possibly `⊥`), the
//! *elementary conditions* are `A = a` and `A = B`; a *condition* is a
//! Boolean combination of elementary conditions. Conditions define the
//! selection component `σ(R@p)` of peer views.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::schema::{AttrId, RelSchema};
use crate::tuple::Tuple;
use crate::value::Value;

/// A Boolean combination of elementary conditions over the attributes of one
/// relation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Condition {
    /// Always true (`σ(R@q) = true` in the paper).
    True,
    /// Always false.
    False,
    /// Elementary condition `A = a` (the constant may be `⊥`, as in
    /// Example 2.2's `σ(R@p) ≡ A = ⊥`).
    EqConst(AttrId, Value),
    /// Elementary condition `A = B`.
    EqAttr(AttrId, AttrId),
    /// Negation.
    Not(Box<Condition>),
    /// Conjunction (empty conjunction is `True`).
    And(Vec<Condition>),
    /// Disjunction (empty disjunction is `False`).
    Or(Vec<Condition>),
}

impl Condition {
    /// `A = a`.
    pub fn eq_const(a: AttrId, v: impl Into<Value>) -> Self {
        Condition::EqConst(a, v.into())
    }

    /// `A ≠ a`.
    pub fn neq_const(a: AttrId, v: impl Into<Value>) -> Self {
        Condition::Not(Box::new(Condition::EqConst(a, v.into())))
    }

    /// Conjunction of the given conditions.
    pub fn and(conds: impl IntoIterator<Item = Condition>) -> Self {
        Condition::And(conds.into_iter().collect())
    }

    /// Disjunction of the given conditions.
    pub fn or(conds: impl IntoIterator<Item = Condition>) -> Self {
        Condition::Or(conds.into_iter().collect())
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Condition::Not(Box::new(self))
    }

    /// Evaluates the condition on a tuple over the full relation schema.
    pub fn eval(&self, t: &Tuple) -> bool {
        match self {
            Condition::True => true,
            Condition::False => false,
            Condition::EqConst(a, v) => t.get(*a) == v,
            Condition::EqAttr(a, b) => t.get(*a) == t.get(*b),
            Condition::Not(c) => !c.eval(t),
            Condition::And(cs) => cs.iter().all(|c| c.eval(t)),
            Condition::Or(cs) => cs.iter().any(|c| c.eval(t)),
        }
    }

    /// The attributes used by the condition — `att(σ(R@q))`, needed for the
    /// relevant-attribute set `att(R, q) = att(R@q) ∪ att(σ(R@q))` of the
    /// faithfulness definitions (Section 4).
    pub fn attrs(&self) -> BTreeSet<AttrId> {
        let mut out = BTreeSet::new();
        self.collect_attrs(&mut out);
        out
    }

    fn collect_attrs(&self, out: &mut BTreeSet<AttrId>) {
        match self {
            Condition::True | Condition::False => {}
            Condition::EqConst(a, _) => {
                out.insert(*a);
            }
            Condition::EqAttr(a, b) => {
                out.insert(*a);
                out.insert(*b);
            }
            Condition::Not(c) => c.collect_attrs(out),
            Condition::And(cs) | Condition::Or(cs) => {
                for c in cs {
                    c.collect_attrs(out);
                }
            }
        }
    }

    /// Does the condition mention attribute `a`? Allocation-free variant of
    /// `attrs().contains(&a)`, used by the incremental view plane to decide
    /// whether a modified attribute can affect a peer's selection.
    pub fn mentions(&self, a: AttrId) -> bool {
        match self {
            Condition::True | Condition::False => false,
            Condition::EqConst(b, _) => *b == a,
            Condition::EqAttr(b, c) => *b == a || *c == a,
            Condition::Not(c) => c.mentions(a),
            Condition::And(cs) | Condition::Or(cs) => cs.iter().any(|c| c.mentions(a)),
        }
    }

    /// The constants mentioned by the condition (contributes to `const(P)`).
    pub fn constants(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        self.collect_constants(&mut out);
        out
    }

    fn collect_constants(&self, out: &mut BTreeSet<Value>) {
        match self {
            Condition::True | Condition::False | Condition::EqAttr(..) => {}
            Condition::EqConst(_, v) => {
                out.insert(*v);
            }
            Condition::Not(c) => c.collect_constants(out),
            Condition::And(cs) | Condition::Or(cs) => {
                for c in cs {
                    c.collect_constants(out);
                }
            }
        }
    }

    /// The elementary conditions (atoms) occurring in this condition, deduplicated.
    pub fn atoms(&self) -> Vec<Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_atoms(&self, out: &mut Vec<Atom>) {
        match self {
            Condition::True | Condition::False => {}
            Condition::EqConst(a, v) => out.push(Atom::EqConst(*a, *v)),
            Condition::EqAttr(a, b) => {
                let (a, b) = if a <= b { (*a, *b) } else { (*b, *a) };
                out.push(Atom::EqAttr(a, b));
            }
            Condition::Not(c) => c.collect_atoms(out),
            Condition::And(cs) | Condition::Or(cs) => {
                for c in cs {
                    c.collect_atoms(out);
                }
            }
        }
    }

    /// Evaluates the condition under a truth assignment to its atoms
    /// (used by the satisfiability solver).
    pub(crate) fn eval_atoms(&self, truth: &dyn Fn(&Atom) -> bool) -> bool {
        match self {
            Condition::True => true,
            Condition::False => false,
            Condition::EqConst(a, v) => truth(&Atom::EqConst(*a, *v)),
            Condition::EqAttr(a, b) => {
                let (a, b) = if a <= b { (*a, *b) } else { (*b, *a) };
                truth(&Atom::EqAttr(a, b))
            }
            Condition::Not(c) => !c.eval_atoms(truth),
            Condition::And(cs) => cs.iter().all(|c| c.eval_atoms(truth)),
            Condition::Or(cs) => cs.iter().any(|c| c.eval_atoms(truth)),
        }
    }

    /// Renders against a relation schema (attribute names instead of ids).
    pub fn display<'a>(&'a self, schema: &'a RelSchema) -> CondDisplay<'a> {
        CondDisplay { cond: self, schema }
    }
}

/// An elementary condition in canonical form (for `EqAttr`, the smaller
/// attribute id first).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// `A = a`.
    EqConst(AttrId, Value),
    /// `A = B` with `A ≤ B`.
    EqAttr(AttrId, AttrId),
}

/// Display adaptor for conditions.
pub struct CondDisplay<'a> {
    cond: &'a Condition,
    schema: &'a RelSchema,
}

impl fmt::Display for CondDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(c: &Condition, s: &RelSchema, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match c {
                Condition::True => write!(f, "true"),
                Condition::False => write!(f, "false"),
                Condition::EqConst(a, v) => write!(f, "{} = {}", s.attr_name(*a), v),
                Condition::EqAttr(a, b) => {
                    write!(f, "{} = {}", s.attr_name(*a), s.attr_name(*b))
                }
                Condition::Not(c) => {
                    write!(f, "¬(")?;
                    go(c, s, f)?;
                    write!(f, ")")
                }
                Condition::And(cs) => {
                    write!(f, "(")?;
                    for (i, c) in cs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ∧ ")?;
                        }
                        go(c, s, f)?;
                    }
                    write!(f, ")")
                }
                Condition::Or(cs) => {
                    write!(f, "(")?;
                    for (i, c) in cs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ∨ ")?;
                        }
                        go(c, s, f)?;
                    }
                    write!(f, ")")
                }
            }
        }
        go(self.cond, self.schema, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;

    const A: AttrId = AttrId(1);
    const B: AttrId = AttrId(2);

    fn t(k: &str, a: Value, b: Value) -> Tuple {
        Tuple::new([Value::str(k), a, b])
    }

    #[test]
    fn elementary_eval() {
        let row = t("k", Value::str("x"), Value::str("x"));
        assert!(Condition::eq_const(A, "x").eval(&row));
        assert!(!Condition::eq_const(A, "y").eval(&row));
        assert!(Condition::EqAttr(A, B).eval(&row));
        assert!(Condition::eq_const(A, Value::Null).eval(&t("k", Value::Null, Value::Null)));
    }

    #[test]
    fn boolean_combinations() {
        let row = t("k", Value::str("x"), Value::str("y"));
        let c = Condition::and([Condition::eq_const(A, "x"), Condition::neq_const(B, "z")]);
        assert!(c.eval(&row));
        let d = Condition::or([Condition::eq_const(A, "nope"), Condition::EqAttr(A, B)]);
        assert!(!d.eval(&row));
        assert!(d.clone().not().eval(&row));
        assert!(Condition::and([]).eval(&row), "empty ∧ is true");
        assert!(!Condition::or([]).eval(&row), "empty ∨ is false");
    }

    #[test]
    fn attrs_and_constants_collection() {
        let c = Condition::or([Condition::eq_const(A, "x"), Condition::EqAttr(A, B).not()]);
        assert_eq!(c.attrs().into_iter().collect::<Vec<_>>(), vec![A, B]);
        assert_eq!(
            c.constants().into_iter().collect::<Vec<_>>(),
            vec![Value::str("x")]
        );
    }

    #[test]
    fn atoms_are_canonical_and_deduped() {
        let c = Condition::and([
            Condition::EqAttr(B, A), // stored as (A, B)
            Condition::EqAttr(A, B),
            Condition::eq_const(A, "x"),
        ]);
        let atoms = c.atoms();
        assert_eq!(
            atoms,
            vec![Atom::EqConst(A, Value::str("x")), Atom::EqAttr(A, B)]
        );
    }

    #[test]
    fn display_uses_attribute_names() {
        let r = RelSchema::new("R", ["K", "A", "B"]).unwrap();
        let c = Condition::and([Condition::eq_const(A, Value::Null), Condition::EqAttr(A, B)]);
        assert_eq!(c.display(&r).to_string(), "(A = ⊥ ∧ A = B)");
    }
}
