//! The key chase `chase_K` (Section 2).
//!
//! The paper defines the chase as a fixpoint of the step
//!
//! > for some `R`, some `A`, and distinct `u, v ∈ I(R)` with
//! > `u(K) = v(K)`, `u(A) ≠ ⊥`, and `v(A) = ⊥`, replace `v` by `v′`
//! > identical to `v` except that `v′(A) = u(A)`,
//!
//! and notes that the chase turns an instance into a valid one **iff** the
//! instance contains no two tuples with the same key and distinct non-null
//! values for the same attribute, in which case the result is unique.
//!
//! [`chase`] implements that characterization directly (group by key, merge
//! attribute-wise, fail on conflicts); [`naive_chase`] implements the literal
//! step-by-step fixpoint and is used to cross-check the closed form in tests.

use std::fmt;

use crate::instance::{Instance, RawInstance, Relation};
use crate::schema::{RelId, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// Why the chase failed to produce a valid instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaseFailure {
    /// A tuple has `⊥` as key, so no valid instance can contain it.
    NullKey {
        /// The relation containing the ⊥-keyed tuple.
        rel: RelId,
    },
    /// Two tuples with the same key carry distinct non-null values for the
    /// same attribute; the chase terminates with an invalid instance.
    Conflict {
        /// The relation in which the conflict arose.
        rel: RelId,
        /// The key shared by the conflicting tuples.
        key: Value,
    },
}

impl fmt::Display for ChaseFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseFailure::NullKey { rel } => {
                write!(f, "chase failed: tuple with ⊥ key in relation {rel:?}")
            }
            ChaseFailure::Conflict { rel, key } => write!(
                f,
                "chase failed: conflicting non-null values for key {key} in relation {rel:?}"
            ),
        }
    }
}

impl std::error::Error for ChaseFailure {}

/// Computes `chase_K(raw)` in closed form.
///
/// For each relation and each key, the merged tuple takes, per attribute, the
/// unique non-null value among the colliding tuples (or `⊥` if all are `⊥`).
/// Returns [`ChaseFailure::Conflict`] when two distinct non-null values
/// compete, and [`ChaseFailure::NullKey`] when a tuple has an undefined key.
pub fn chase(schema: &Schema, raw: &RawInstance) -> Result<Instance, ChaseFailure> {
    debug_assert_eq!(raw.width(), schema.len());
    let mut out = Instance::empty(schema);
    for r in schema.rel_ids() {
        let merged = chase_relation(r, raw.rel(r))?;
        *out.rel_mut(r) = merged;
    }
    Ok(out)
}

fn chase_relation(rel: RelId, tuples: &[Tuple]) -> Result<Relation, ChaseFailure> {
    let mut out = Relation::new();
    // Tuples are few and BTreeMap keeps determinism; group by key.
    let mut groups: std::collections::BTreeMap<&Value, Vec<&Tuple>> = Default::default();
    for t in tuples {
        if t.key().is_null() {
            return Err(ChaseFailure::NullKey { rel });
        }
        groups.entry(t.key()).or_default().push(t);
    }
    for (key, group) in groups {
        let arity = group[0].arity();
        let mut merged = Tuple::nulls(arity);
        for t in &group {
            for (a, v) in t.entries() {
                if v.is_null() {
                    continue;
                }
                let cur = merged.get(a);
                if cur.is_null() {
                    merged.set(a, *v);
                } else if cur != v {
                    return Err(ChaseFailure::Conflict { rel, key: *key });
                }
            }
        }
        out.insert(merged).expect("key checked non-null above");
    }
    Ok(out)
}

/// Convenience: `chase_K(I ∪ {R(t)})` for a valid `I` and one extra tuple —
/// exactly the shape used by the insertion semantics.
pub fn chase_with(
    schema: &Schema,
    base: &Instance,
    rel: RelId,
    extra: Tuple,
) -> Result<Instance, ChaseFailure> {
    let mut raw = RawInstance::from_instance(base);
    raw.push(rel, extra);
    chase(schema, &raw)
}

/// The literal step-by-step chase fixpoint from the paper, applied until no
/// step fires, followed by duplicate elimination and a validity check.
///
/// Exponentially slower in the worst case than [`chase`]; retained to
/// cross-check the closed form (see the property tests).
pub fn naive_chase(schema: &Schema, raw: &RawInstance) -> Result<Instance, ChaseFailure> {
    let mut rels: Vec<Vec<Tuple>> = (0..raw.width())
        .map(|i| raw.rel(RelId(i as u32)).to_vec())
        .collect();
    for (ri, tuples) in rels.iter_mut().enumerate() {
        let rel = RelId(ri as u32);
        // Apply chase steps to a fixpoint.
        loop {
            let mut changed = false;
            for i in 0..tuples.len() {
                for j in 0..tuples.len() {
                    if i == j || tuples[i].key() != tuples[j].key() || tuples[i].key().is_null() {
                        continue;
                    }
                    for a in 0..tuples[i].arity() {
                        let a = crate::schema::AttrId(a as u32);
                        if !tuples[i].get(a).is_null() && tuples[j].get(a).is_null() {
                            let v = *tuples[i].get(a);
                            tuples[j].set(a, v);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Deduplicate, then check validity.
        tuples.sort();
        tuples.dedup();
        for t in tuples.iter() {
            if t.key().is_null() {
                return Err(ChaseFailure::NullKey { rel });
            }
        }
        for i in 0..tuples.len() {
            for j in (i + 1)..tuples.len() {
                if tuples[i].key() == tuples[j].key() {
                    return Err(ChaseFailure::Conflict {
                        rel,
                        key: *tuples[i].key(),
                    });
                }
            }
        }
    }
    let mut out = Instance::empty(schema);
    for (ri, tuples) in rels.into_iter().enumerate() {
        for t in tuples {
            out.rel_mut(RelId(ri as u32))
                .insert(t)
                .expect("validity checked above");
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrId, RelSchema};

    fn schema() -> Schema {
        Schema::from_relations([RelSchema::new("R", ["K", "A", "B"]).unwrap()]).unwrap()
    }

    const R: RelId = RelId(0);

    fn t(k: &str, a: Option<&str>, b: Option<&str>) -> Tuple {
        Tuple::new([
            Value::str(k),
            a.map(Value::str).unwrap_or(Value::Null),
            b.map(Value::str).unwrap_or(Value::Null),
        ])
    }

    #[test]
    fn merges_complementary_tuples() {
        // Example 2.2's successful half: R(k, ⊥, c) merged with R(k, a, ⊥)
        // yields R(k, a, c).
        let s = schema();
        let mut raw = RawInstance::empty(&s);
        raw.push(R, t("k", None, Some("c")));
        raw.push(R, t("k", Some("a"), None));
        let i = chase(&s, &raw).unwrap();
        assert_eq!(i.rel(R).len(), 1);
        assert_eq!(
            i.rel(R).get(&Value::str("k")),
            Some(&t("k", Some("a"), Some("c")))
        );
    }

    #[test]
    fn conflicting_values_fail() {
        let s = schema();
        let mut raw = RawInstance::empty(&s);
        raw.push(R, t("k", Some("a"), None));
        raw.push(R, t("k", Some("x"), None));
        assert_eq!(
            chase(&s, &raw),
            Err(ChaseFailure::Conflict {
                rel: R,
                key: Value::str("k")
            })
        );
    }

    #[test]
    fn null_key_fails() {
        let s = schema();
        let mut raw = RawInstance::empty(&s);
        raw.push(R, Tuple::new([Value::Null, Value::str("a"), Value::Null]));
        assert_eq!(chase(&s, &raw), Err(ChaseFailure::NullKey { rel: R }));
    }

    #[test]
    fn distinct_keys_pass_through() {
        let s = schema();
        let mut raw = RawInstance::empty(&s);
        raw.push(R, t("k1", Some("a"), None));
        raw.push(R, t("k2", None, Some("b")));
        let i = chase(&s, &raw).unwrap();
        assert_eq!(i.rel(R).len(), 2);
    }

    #[test]
    fn identical_duplicates_collapse() {
        let s = schema();
        let mut raw = RawInstance::empty(&s);
        raw.push(R, t("k", Some("a"), Some("b")));
        raw.push(R, t("k", Some("a"), Some("b")));
        let i = chase(&s, &raw).unwrap();
        assert_eq!(i.rel(R).len(), 1);
    }

    #[test]
    fn chase_with_adds_one_tuple() {
        let s = schema();
        let mut base = Instance::empty(&s);
        base.rel_mut(R).insert(t("k", Some("a"), None)).unwrap();
        let j = chase_with(&s, &base, R, t("k", None, Some("c"))).unwrap();
        assert_eq!(
            j.rel(R).get(&Value::str("k")),
            Some(&t("k", Some("a"), Some("c")))
        );
    }

    #[test]
    fn three_way_merge() {
        // Merging is associative across several partial tuples.
        let s = schema();
        let mut raw = RawInstance::empty(&s);
        raw.push(R, t("k", Some("a"), None));
        raw.push(R, t("k", None, Some("b")));
        raw.push(R, t("k", None, None));
        let i = chase(&s, &raw).unwrap();
        assert_eq!(
            i.rel(R).get(&Value::str("k")),
            Some(&t("k", Some("a"), Some("b")))
        );
    }

    #[test]
    fn naive_chase_agrees_on_examples() {
        let s = schema();
        for raw in [
            {
                let mut r = RawInstance::empty(&s);
                r.push(R, t("k", None, Some("c")));
                r.push(R, t("k", Some("a"), None));
                r
            },
            {
                let mut r = RawInstance::empty(&s);
                r.push(R, t("k", Some("a"), None));
                r.push(R, t("k", Some("x"), None));
                r
            },
            {
                let mut r = RawInstance::empty(&s);
                r.push(R, t("k1", Some("a"), None));
                r.push(R, t("k2", None, Some("b")));
                r
            },
        ] {
            assert_eq!(chase(&s, &raw), naive_chase(&s, &raw));
        }
    }

    #[test]
    fn idempotent_on_valid_instances() {
        let s = schema();
        let mut i = Instance::empty(&s);
        i.rel_mut(R).insert(t("k", Some("a"), None)).unwrap();
        let again = chase(&s, &RawInstance::from_instance(&i)).unwrap();
        assert_eq!(i, again);
    }

    #[test]
    fn merge_respects_attrid_positions() {
        let s = schema();
        let mut raw = RawInstance::empty(&s);
        let partial = Tuple::padded(
            3,
            [(AttrId(0), Value::str("k")), (AttrId(2), Value::str("b"))],
        );
        raw.push(R, partial);
        let i = chase(&s, &raw).unwrap();
        let got = i.rel(R).get(&Value::str("k")).unwrap();
        assert!(got.get(AttrId(1)).is_null());
        assert_eq!(got.get(AttrId(2)), &Value::str("b"));
    }
}
