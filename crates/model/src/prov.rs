//! Why-provenance polynomials over event indices.
//!
//! The paper's Theorem 4.8 shows faithful scenarios compose like a
//! commutative semiring; this module materializes that algebra. A fact in a
//! run carries a [`Provenance`]: a polynomial `m₁ ⊕ m₂ ⊕ …` whose monomials
//! are *closed* sets of event indices — each monomial is a witness set that
//! replays on its own (in original order) and re-derives the fact. `⊕`
//! records alternative derivations, `⊗` joins the requirements of a rule
//! body.
//!
//! Monomials are interned exactly like [`crate::Istr`]: a process-global,
//! append-only table hands back a [`Mono`] — a `Copy` handle to a leaked
//! `&'static [u32]` of sorted event indices. Pointer equality coincides with
//! content equality, so the heavily-shared monomials of a long run cost one
//! allocation each and compare in O(1). Like the string table, the set of
//! distinct monomials is bounded by the workload and never freed.
//!
//! Polynomials are kept in a canonical form — monomials sorted by
//! `(len, lex)`, supersets absorbed, and the tail truncated to the
//! [`MAX_MONOMIALS`] smallest — so equal derivation histories print
//! identically and golden files pin the canonicalization.

use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{OnceLock, RwLock};

use crate::value::Value;

/// Cap on the number of monomials kept per polynomial.
///
/// `⊕` over a long run can accumulate exponentially many alternative
/// derivations; keeping only the smallest few preserves the useful answers
/// (minimal witness sets) at bounded cost. Truncation only ever *drops*
/// alternatives — every retained monomial is still a sound witness — and is
/// deterministic, so incremental and from-scratch maintenance agree.
pub const MAX_MONOMIALS: usize = 12;

/// The global monomial table. Append-only; entries are leaked slices.
fn table() -> &'static RwLock<HashSet<&'static [u32]>> {
    static TABLE: OnceLock<RwLock<HashSet<&'static [u32]>>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(HashSet::new()))
}

/// An interned monomial: a sorted, deduplicated set of event indices,
/// handed out as a `Copy` handle into the global monomial table.
///
/// Equality is pointer equality (the table interns each distinct set once);
/// ordering is by `(len, lex)` content, which is exactly the canonical
/// monomial order of [`Provenance`] — smallest witness sets sort first.
#[derive(Clone, Copy)]
pub struct Mono(&'static [u32]);

impl Mono {
    /// Interns the set of event indices in `events` (sorted, deduplicated).
    pub fn new(mut events: Vec<u32>) -> Mono {
        events.sort_unstable();
        events.dedup();
        Mono::intern(&events)
    }

    /// Interns an already sorted, deduplicated slice.
    fn intern(events: &[u32]) -> Mono {
        debug_assert!(events.windows(2).all(|w| w[0] < w[1]));
        if let Some(&hit) = table().read().unwrap().get(events) {
            return Mono(hit);
        }
        let mut w = table().write().unwrap();
        if let Some(&hit) = w.get(events) {
            return Mono(hit);
        }
        let leaked: &'static [u32] = Box::leak(events.to_vec().into_boxed_slice());
        w.insert(leaked);
        Mono(leaked)
    }

    /// The empty monomial — the semiring `1`, witnessing facts that need no
    /// events (initial-instance facts).
    pub fn one() -> Mono {
        Mono::intern(&[])
    }

    /// The singleton monomial `{e}`.
    pub fn var(e: u32) -> Mono {
        Mono::intern(&[e])
    }

    /// The sorted event indices of this monomial.
    pub fn events(self) -> &'static [u32] {
        self.0
    }

    /// Number of events in the monomial.
    pub fn len(self) -> usize {
        self.0.len()
    }

    /// Is this the empty monomial (`1`)?
    pub fn is_empty(self) -> bool {
        self.0.is_empty()
    }

    /// Does the monomial contain event index `e`?
    pub fn contains(self, e: u32) -> bool {
        self.0.binary_search(&e).is_ok()
    }

    /// Set union — the `⊗` of two monomials (requirements accumulate).
    pub fn union(self, other: Mono) -> Mono {
        if std::ptr::eq(self.0, other.0) || other.0.is_empty() {
            return self;
        }
        if self.0.is_empty() {
            return other;
        }
        let mut merged = Vec::with_capacity(self.0.len() + other.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.0[i..]);
        merged.extend_from_slice(&other.0[j..]);
        Mono::intern(&merged)
    }

    /// Is every event of `self` also in `other`?
    pub fn is_subset(self, other: Mono) -> bool {
        if std::ptr::eq(self.0, other.0) {
            return true;
        }
        if self.0.len() > other.0.len() {
            return false;
        }
        let mut j = 0;
        for &e in self.0 {
            while j < other.0.len() && other.0[j] < e {
                j += 1;
            }
            if j >= other.0.len() || other.0[j] != e {
                return false;
            }
            j += 1;
        }
        true
    }

    /// Does the monomial share no event with the sorted slice `other`?
    pub fn is_disjoint(self, other: &[u32]) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.len() {
            match self.0[i].cmp(&other[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }
}

impl PartialEq for Mono {
    fn eq(&self, other: &Self) -> bool {
        // Fat-pointer comparison; the interner guarantees one allocation
        // per distinct set, so this is content equality.
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for Mono {}

impl PartialOrd for Mono {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Mono {
    /// Canonical `(len, lex)` order: smaller witness sets first, ties by
    /// the event indices themselves.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if std::ptr::eq(self.0, other.0) {
            return std::cmp::Ordering::Equal;
        }
        self.0
            .len()
            .cmp(&other.0.len())
            .then_with(|| self.0.cmp(other.0))
    }
}

impl Hash for Mono {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl fmt::Display for Mono {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("1");
        }
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str("·")?;
            }
            write!(f, "e{e}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Mono {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mono({self})")
    }
}

/// A why-provenance polynomial: alternatives (`⊕`) over closed witness
/// monomials, kept in canonical form.
///
/// Invariants (established by [`Provenance::canonicalize`], preserved by all
/// ops): monomials strictly sorted by `(len, lex)`; no monomial is a
/// superset of another (absorption `m ⊕ m·n = m`); at most
/// [`MAX_MONOMIALS`] monomials, keeping the smallest.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Provenance {
    monos: Vec<Mono>,
}

impl Provenance {
    /// The additive identity `0` — no derivation at all.
    pub fn zero() -> Provenance {
        Provenance { monos: Vec::new() }
    }

    /// The multiplicative identity `1` — derivable with no events.
    pub fn one() -> Provenance {
        Provenance {
            monos: vec![Mono::one()],
        }
    }

    /// A single-monomial polynomial.
    pub fn from_mono(m: Mono) -> Provenance {
        Provenance { monos: vec![m] }
    }

    /// Is this the zero polynomial?
    pub fn is_zero(&self) -> bool {
        self.monos.is_empty()
    }

    /// Is this exactly the `1` polynomial?
    pub fn is_one(&self) -> bool {
        self.monos.len() == 1 && self.monos[0].is_empty()
    }

    /// The monomials in canonical order (smallest witness set first).
    pub fn monomials(&self) -> &[Mono] {
        &self.monos
    }

    /// The smallest witness monomial, if any.
    pub fn min_mono(&self) -> Option<Mono> {
        self.monos.first().copied()
    }

    /// The union of all monomials: every event that appears in *some*
    /// retained derivation of the fact, sorted ascending.
    pub fn support(&self) -> Vec<u32> {
        let mut all: Vec<u32> = self
            .monos
            .iter()
            .flat_map(|m| m.events())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// `⊕`: adds `other`'s alternatives into `self` and re-canonicalizes.
    pub fn or_assign(&mut self, other: &Provenance) {
        if other.monos.is_empty() {
            return;
        }
        self.monos.extend_from_slice(&other.monos);
        self.canonicalize();
    }

    /// `⊕` with a single monomial.
    pub fn or_mono(&mut self, m: Mono) {
        self.monos.push(m);
        self.canonicalize();
    }

    /// `⊗`: every pair of alternatives joins (monomial union), then the
    /// result is canonicalized. `0` annihilates; `1` is the identity.
    pub fn and(&self, other: &Provenance) -> Provenance {
        if self.is_zero() || other.is_zero() {
            return Provenance::zero();
        }
        if self.is_one() {
            return other.clone();
        }
        if other.is_one() {
            return self.clone();
        }
        let mut monos = Vec::with_capacity(self.monos.len() * other.monos.len());
        for &a in &self.monos {
            for &b in &other.monos {
                monos.push(a.union(b));
            }
        }
        let mut p = Provenance { monos };
        p.canonicalize();
        p
    }

    /// `⊗` with a single monomial joined into every alternative.
    pub fn and_mono(&self, m: Mono) -> Provenance {
        let mut p = Provenance {
            monos: self.monos.iter().map(|&a| a.union(m)).collect(),
        };
        p.canonicalize();
        p
    }

    /// Restores the canonical form: `(len, lex)` sort, dedup, absorption of
    /// supersets, truncation to the [`MAX_MONOMIALS`] smallest.
    fn canonicalize(&mut self) {
        self.monos.sort_unstable();
        self.monos.dedup();
        // Absorption: drop any monomial that contains an earlier (hence
        // no-larger) one. Quadratic in the monomial count, which the cap
        // keeps small.
        let mut kept: Vec<Mono> = Vec::with_capacity(self.monos.len().min(MAX_MONOMIALS));
        for &m in &self.monos {
            if kept.iter().any(|&k| k.is_subset(m)) {
                continue;
            }
            kept.push(m);
            if kept.len() == MAX_MONOMIALS {
                break;
            }
        }
        self.monos = kept;
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.monos.is_empty() {
            return f.write_str("0");
        }
        for (i, m) in self.monos.iter().enumerate() {
            if i > 0 {
                f.write_str(" ⊕ ")?;
            }
            write!(f, "{m}")?;
        }
        Ok(())
    }
}

/// Per-relation provenance column: the same parallel-sorted layout as
/// [`crate::RelStore`], mapping each present key to the polynomial of the
/// fact currently stored under it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProvStore {
    keys: Vec<Value>,
    provs: Vec<Provenance>,
}

impl ProvStore {
    /// An empty column.
    pub fn new() -> ProvStore {
        ProvStore::default()
    }

    /// Binary-searches for `key` in the sorted key column.
    fn position(&self, key: &Value) -> Result<usize, usize> {
        self.keys.binary_search(key)
    }

    /// The polynomial for `key`, if present.
    pub fn get(&self, key: &Value) -> Option<&Provenance> {
        self.position(key).ok().map(|i| &self.provs[i])
    }

    /// Inserts or replaces the polynomial for `key`.
    pub fn upsert(&mut self, key: Value, prov: Provenance) {
        match self.position(&key) {
            Ok(i) => self.provs[i] = prov,
            Err(i) => {
                self.keys.insert(i, key);
                self.provs.insert(i, prov);
            }
        }
    }

    /// Removes `key`'s polynomial, if present.
    pub fn remove(&mut self, key: &Value) {
        if let Ok(i) = self.position(key) {
            self.keys.remove(i);
            self.provs.remove(i);
        }
    }

    /// Number of keys with a polynomial.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Is the column empty?
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates `(key, polynomial)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, &Provenance)> {
        self.keys.iter().zip(self.provs.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_pointer_unique() {
        let a = Mono::new(vec![3, 1, 2, 1]);
        let b = Mono::new(vec![1, 2, 3]);
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.events(), b.events()));
        assert_ne!(a, Mono::new(vec![1, 2]));
    }

    #[test]
    fn mono_order_is_len_then_lex() {
        let short = Mono::new(vec![9]);
        let long = Mono::new(vec![0, 1]);
        assert!(short < long);
        assert!(Mono::new(vec![0, 2]) < Mono::new(vec![1, 2]));
        assert!(Mono::one() < short);
    }

    #[test]
    fn union_subset_disjoint() {
        let a = Mono::new(vec![1, 3]);
        let b = Mono::new(vec![2, 3]);
        assert_eq!(a.union(b), Mono::new(vec![1, 2, 3]));
        assert!(a.is_subset(a.union(b)));
        assert!(!a.is_subset(b));
        assert!(a.is_disjoint(&[0, 2]));
        assert!(!a.is_disjoint(&[3]));
        assert_eq!(a.union(Mono::one()), a);
    }

    #[test]
    fn semiring_identities() {
        let m = Provenance::from_mono(Mono::new(vec![1, 2]));
        assert_eq!(m.and(&Provenance::one()), m);
        assert!(m.and(&Provenance::zero()).is_zero());
        let mut z = Provenance::zero();
        z.or_assign(&m);
        assert_eq!(z, m);
    }

    #[test]
    fn absorption_drops_supersets() {
        let mut p = Provenance::from_mono(Mono::new(vec![1, 2, 3]));
        p.or_mono(Mono::new(vec![1, 2]));
        assert_eq!(p.monomials(), &[Mono::new(vec![1, 2])]);
        // 1 absorbs everything.
        p.or_mono(Mono::one());
        assert!(p.is_one());
    }

    #[test]
    fn and_distributes_over_alternatives() {
        let mut ab = Provenance::from_mono(Mono::var(1));
        ab.or_mono(Mono::var(2));
        let c = Provenance::from_mono(Mono::var(3));
        let prod = ab.and(&c);
        assert_eq!(
            prod.monomials(),
            &[Mono::new(vec![1, 3]), Mono::new(vec![2, 3])]
        );
        assert_eq!(prod.support(), vec![1, 2, 3]);
        assert_eq!(prod.min_mono(), Some(Mono::new(vec![1, 3])));
    }

    #[test]
    fn cap_keeps_smallest_and_is_deterministic() {
        let mut p = Provenance::zero();
        for i in (0..(MAX_MONOMIALS as u32 + 5)).rev() {
            p.or_mono(Mono::new(vec![i, i + 100]));
        }
        assert_eq!(p.monomials().len(), MAX_MONOMIALS);
        assert_eq!(p.min_mono(), Some(Mono::new(vec![0, 100])));
    }

    #[test]
    fn display_is_canonical() {
        let mut p = Provenance::from_mono(Mono::new(vec![2, 0]));
        p.or_mono(Mono::var(7));
        assert_eq!(p.to_string(), "e7 ⊕ e0·e2");
        assert_eq!(Provenance::zero().to_string(), "0");
        assert_eq!(Provenance::one().to_string(), "1");
    }

    #[test]
    fn prov_store_upsert_get_remove() {
        let mut s = ProvStore::new();
        s.upsert(Value::int(2), Provenance::one());
        s.upsert(Value::int(1), Provenance::from_mono(Mono::var(5)));
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.get(&Value::int(1)),
            Some(&Provenance::from_mono(Mono::var(5)))
        );
        s.upsert(Value::int(1), Provenance::one());
        assert!(s.get(&Value::int(1)).unwrap().is_one());
        s.remove(&Value::int(1));
        assert_eq!(s.len(), 1);
        assert!(s.get(&Value::int(1)).is_none());
        let keys: Vec<_> = s.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![Value::int(2)]);
    }
}
