//! Collaborative schemas and peer views (Definition 2.1).
//!
//! A collaborative schema equips a global schema `D` with a finite set of
//! peers and, per peer `p`, a view schema `D@p`: a subset of the relations,
//! each with a subset of attributes containing the key (`projection`) and a
//! selection condition `σ(R@p)` over the *full* attribute set of `R`.
//!
//! The view instance at `p` is
//! `I@p(R@p) = π_{att(R@p)}(σ_{σ(R@p)}(I(R)))`.
//!
//! A schema is *lossless* when every valid global instance can be
//! reconstructed by chasing the union of its padded peer views. We check the
//! equivalent per-attribute condition: for each relation `R` and attribute
//! `A ∈ att(R)`, the disjunction of `σ(R@p)` over peers whose view of `R`
//! contains `A` is a tautology. (⇒: every tuple satisfies some such
//! selection, so each attribute value survives in some view and the chase
//! re-merges the padded fragments by key. ⇐: a tuple falsifying the
//! disjunction for `A` loses its `A`-value in every view — Example 2.2.)

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::chase::{chase, ChaseFailure};
use crate::condition::Condition;
use crate::error::ModelError;
use crate::instance::{Instance, RawInstance};
use crate::schema::{AttrId, PeerId, RelId, Schema, KEY};
use crate::solver;
use crate::store::RelStore;
use crate::tuple::Tuple;
use crate::value::Value;

/// One peer's view of one relation: the projected attributes (sorted, always
/// containing the key — so the key is position 0 of view tuples too) and the
/// selection condition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViewRel {
    rel: RelId,
    attrs: Vec<AttrId>,
    selection: Condition,
}

impl ViewRel {
    /// Creates a view of `rel` exposing `attrs` (the key is added if absent)
    /// under `selection`.
    pub fn new(rel: RelId, attrs: impl IntoIterator<Item = AttrId>, selection: Condition) -> Self {
        let mut attrs: Vec<AttrId> = attrs.into_iter().collect();
        attrs.push(KEY);
        attrs.sort();
        attrs.dedup();
        ViewRel {
            rel,
            attrs,
            selection,
        }
    }

    /// A full view: all attributes, selection `true` — the shape required of
    /// co-observers by guideline (C1) in Section 6.
    pub fn full(schema: &Schema, rel: RelId) -> Self {
        ViewRel::new(rel, schema.relation(rel).attr_ids(), Condition::True)
    }

    /// The viewed relation.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// `att(R@p)`, sorted, key first.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// `σ(R@p)`.
    pub fn selection(&self) -> &Condition {
        &self.selection
    }

    /// Is this view full (all attributes of `rel` in `schema`, selection
    /// equivalent to `true`)? — the (C1) test.
    pub fn is_full(&self, schema: &Schema) -> bool {
        self.attrs.len() == schema.relation(self.rel).arity() && solver::tautology(&self.selection)
    }

    /// Position of attribute `a` inside view tuples, if exposed.
    pub fn position(&self, a: AttrId) -> Option<usize> {
        self.attrs.binary_search(&a).ok()
    }

    /// Does the selection admit this (full-width) tuple?
    pub fn selects(&self, t: &Tuple) -> bool {
        self.selection.eval(t)
    }

    /// Projects a full-width tuple into view width.
    pub fn project(&self, t: &Tuple) -> Tuple {
        t.project(&self.attrs)
    }

    /// Pads a view-width tuple back to full width (`u^⊥`).
    pub fn pad(&self, view_tuple: &Tuple, full_arity: usize) -> Tuple {
        Tuple::padded(
            full_arity,
            self.attrs
                .iter()
                .copied()
                .zip(view_tuple.values().iter().cloned()),
        )
    }

    /// `att(R, p) = att(R@p) ∪ att(σ(R@p))` — the attributes *relevant* to
    /// the peer (Section 4): they determine whether a tuple is visible and
    /// what is seen of it.
    pub fn relevant_attrs(&self) -> BTreeSet<AttrId> {
        let mut out: BTreeSet<AttrId> = self.attrs.iter().copied().collect();
        out.extend(self.selection.attrs());
        out
    }
}

/// A collaborative schema: global schema, peers, and per-peer view schemas.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollabSchema {
    schema: Schema,
    peers: Vec<String>,
    /// `views[p]` maps each relation visible at peer `p` to its view.
    views: Vec<BTreeMap<RelId, ViewRel>>,
}

impl CollabSchema {
    /// A collaborative schema over `schema` with no peers yet.
    pub fn new(schema: Schema) -> Self {
        CollabSchema {
            schema,
            peers: Vec::new(),
            views: Vec::new(),
        }
    }

    /// The global schema `D`.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Adds a peer, returning its id.
    pub fn add_peer(&mut self, name: impl Into<String>) -> Result<PeerId, ModelError> {
        let name = name.into();
        if name.is_empty() {
            return Err(ModelError::EmptyName);
        }
        if self.peer(&name).is_some() {
            return Err(ModelError::DuplicatePeer { peer: name });
        }
        let id = PeerId(self.peers.len() as u32);
        self.peers.push(name);
        self.views.push(BTreeMap::new());
        Ok(id)
    }

    /// Number of peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// All peer ids.
    pub fn peer_ids(&self) -> impl ExactSizeIterator<Item = PeerId> {
        (0..self.peers.len() as u32).map(PeerId)
    }

    /// Resolves a peer name.
    pub fn peer(&self, name: &str) -> Option<PeerId> {
        self.peers
            .iter()
            .position(|p| p == name)
            .map(|i| PeerId(i as u32))
    }

    /// The name of peer `p`.
    pub fn peer_name(&self, p: PeerId) -> &str {
        &self.peers[p.index()]
    }

    /// Grants peer `p` the view `view` of `view.rel()` (replacing any
    /// previous view of that relation).
    pub fn set_view(&mut self, p: PeerId, view: ViewRel) -> Result<(), ModelError> {
        let rel = view.rel();
        if rel.index() >= self.schema.len() {
            return Err(ModelError::UnknownRelation { id: rel });
        }
        let arity = self.schema.relation(rel).arity();
        if let Some(bad) = view.attrs().iter().find(|a| a.index() >= arity) {
            return Err(ModelError::UnknownAttribute { rel, attr: *bad });
        }
        if let Some(bad) = view
            .selection()
            .attrs()
            .into_iter()
            .find(|a| a.index() >= arity)
        {
            return Err(ModelError::UnknownAttribute { rel, attr: bad });
        }
        self.views[p.index()].insert(rel, view);
        Ok(())
    }

    /// Grants `p` a full view (all attributes, selection `true`) of `rel`.
    pub fn set_full_view(&mut self, p: PeerId, rel: RelId) -> Result<(), ModelError> {
        self.set_view(p, ViewRel::full(&self.schema, rel))
    }

    /// The view of `rel` at `p`, if `R@p ∈ D@p`.
    pub fn view(&self, p: PeerId, rel: RelId) -> Option<&ViewRel> {
        self.views[p.index()].get(&rel)
    }

    /// Does peer `p` see relation `rel` at all?
    pub fn sees(&self, p: PeerId, rel: RelId) -> bool {
        self.views[p.index()].contains_key(&rel)
    }

    /// The relations visible at `p`, in id order.
    pub fn visible_rels(&self, p: PeerId) -> impl Iterator<Item = RelId> + '_ {
        self.views[p.index()].keys().copied()
    }

    /// Computes the view instance `I@p`.
    pub fn view_of(&self, instance: &Instance, p: PeerId) -> ViewInstance {
        let mut rels = BTreeMap::new();
        for (rel, view) in &self.views[p.index()] {
            // Source tuples arrive in key order and projection preserves the
            // key, so these upserts hit the store's append fast path.
            let mut out = RelStore::new();
            for t in instance.rel(*rel).iter() {
                if view.selects(t) {
                    out.upsert(view.project(t));
                }
            }
            rels.insert(*rel, out);
        }
        ViewInstance { rels }
    }

    /// The empty view instance at `p`: one (empty) relation entry per
    /// visible relation — structurally identical to
    /// `view_of(&Instance::empty(..), p)`, without touching an instance.
    /// This is the bootstrap point of the incremental view plane.
    pub fn empty_view(&self, p: PeerId) -> ViewInstance {
        ViewInstance {
            rels: self.views[p.index()]
                .keys()
                .map(|rel| (*rel, RelStore::new()))
                .collect(),
        }
    }

    /// `att(R, q)` for a peer that sees `R`; `None` otherwise.
    pub fn relevant_attrs(&self, p: PeerId, rel: RelId) -> Option<BTreeSet<AttrId>> {
        self.view(p, rel).map(ViewRel::relevant_attrs)
    }

    /// Checks the losslessness condition (see module docs). Returns the
    /// first violation found.
    pub fn check_losslessness(&self) -> Result<(), ModelError> {
        for rel in self.schema.rel_ids() {
            for a in self.schema.relation(rel).attr_ids() {
                let covering: Vec<Condition> = self
                    .peer_ids()
                    .filter_map(|p| self.view(p, rel))
                    .filter(|v| v.position(a).is_some())
                    .map(|v| v.selection().clone())
                    .collect();
                if !solver::tautology(&Condition::or(covering)) {
                    return Err(ModelError::NotLossless {
                        rel,
                        attr: a,
                        relation: self.schema.relation(rel).name().to_string(),
                        attribute: self.schema.relation(rel).attr_name(a).to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Reconstructs the global instance from the collective peer views by
    /// padding and chasing — the right-hand side of the losslessness
    /// equation. Used by tests to validate `check_losslessness`.
    pub fn reconstruct(&self, instance: &Instance) -> Result<Instance, ChaseFailure> {
        let mut raw = RawInstance::empty(&self.schema);
        for p in self.peer_ids() {
            let view = self.view_of(instance, p);
            for (rel, tuples) in &view.rels {
                let vr = self.view(p, *rel).expect("view exists for viewed rel");
                let arity = self.schema.relation(*rel).arity();
                for t in tuples {
                    raw.push(*rel, vr.pad(t, arity));
                }
            }
        }
        chase(&self.schema, &raw)
    }
}

/// The view instance `I@p`: per visible relation, a columnar [`RelStore`]
/// of the projected tuples in key order (the key is always part of a view).
///
/// Equality of view instances is what defines event visibility
/// (`I_{i−1}@p ≠ I_i@p`, Section 3), so `PartialEq` here is semantic:
/// same relations, same rows — the sorted stores make this a pair of dense
/// slice comparisons per relation.
#[derive(Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ViewInstance {
    rels: BTreeMap<RelId, RelStore>,
}

impl Clone for ViewInstance {
    fn clone(&self) -> Self {
        ViewInstance {
            rels: self.rels.clone(),
        }
    }

    /// When both instances cover the same relations (always true between
    /// states of one peer's view — the relation set is the view schema),
    /// overwrite store-by-store so the columnar buffers are reused.
    fn clone_from(&mut self, src: &Self) {
        if self.rels.len() == src.rels.len() && self.rels.keys().eq(src.rels.keys()) {
            for (dst, s) in self.rels.values_mut().zip(src.rels.values()) {
                dst.clone_from(s);
            }
        } else {
            self.rels = src.rels.clone();
        }
    }
}

impl ViewInstance {
    /// The tuples of `rel` visible in this view (empty if the relation is not
    /// part of the view schema).
    pub fn rel(&self, rel: RelId) -> impl Iterator<Item = &Tuple> {
        self.rels.get(&rel).into_iter().flatten()
    }

    /// The columnar store of `rel`, if the relation is part of the view
    /// schema — the join planner's entry point for index probes.
    pub fn store(&self, rel: RelId) -> Option<&RelStore> {
        self.rels.get(&rel)
    }

    /// The visible tuple with key `k` in `rel`, if any.
    pub fn get(&self, rel: RelId, k: &Value) -> Option<&Tuple> {
        self.rels.get(&rel).and_then(|m| m.get(k))
    }

    /// Does the view contain a tuple with key `k` in `rel`? (`Key_{R@p}`.)
    pub fn contains_key(&self, rel: RelId, k: &Value) -> bool {
        self.rels.get(&rel).is_some_and(|m| m.contains_key(k))
    }

    /// The visible keys of `rel`, in order.
    pub fn keys(&self, rel: RelId) -> impl Iterator<Item = &Value> {
        self.rels.get(&rel).into_iter().flat_map(RelStore::keys)
    }

    /// Total number of visible tuples.
    pub fn total_tuples(&self) -> usize {
        self.rels.values().map(RelStore::len).sum()
    }

    /// Is the whole view empty?
    pub fn is_empty(&self) -> bool {
        self.rels.values().all(RelStore::is_empty)
    }

    /// Number of visible tuples in `rel` (0 if the relation is not part of
    /// the view schema). Drives the smallest-relation heuristic of the join
    /// planner.
    pub fn rel_len(&self, rel: RelId) -> usize {
        self.rels.get(&rel).map_or(0, RelStore::len)
    }

    /// Inserts or replaces the view tuple for `t`'s key in `rel` (delta
    /// application; the tuple is already projected to view width).
    pub fn upsert(&mut self, rel: RelId, t: Tuple) {
        self.rels.entry(rel).or_default().upsert(t);
    }

    /// Removes the view tuple with key `k` from `rel`, if present (delta
    /// application; absent keys are ignored so removal is idempotent).
    pub fn remove(&mut self, rel: RelId, k: &Value) {
        if let Some(m) = self.rels.get_mut(&rel) {
            m.remove(k);
        }
    }

    /// Iterates `(rel, tuple)` over the view.
    pub fn facts(&self) -> impl Iterator<Item = (RelId, &Tuple)> {
        self.rels
            .iter()
            .flat_map(|(r, m)| m.iter().map(move |t| (*r, t)))
    }
}

impl fmt::Display for ViewInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (r, t) in self.facts() {
            if !first {
                writeln!(f)?;
            }
            first = false;
            write!(f, "{:?}{:?}", r, t)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelSchema;

    /// The schema of Example 2.2: R(K, A, B); p sees KAB where A = ⊥;
    /// q sees KA with selection true.
    fn example_2_2() -> (CollabSchema, PeerId, PeerId, RelId) {
        let schema =
            Schema::from_relations([RelSchema::new("R", ["K", "A", "B"]).unwrap()]).unwrap();
        let r = schema.rel("R").unwrap();
        let mut cs = CollabSchema::new(schema);
        let p = cs.add_peer("p").unwrap();
        let q = cs.add_peer("q").unwrap();
        cs.set_view(
            p,
            ViewRel::new(
                r,
                [AttrId(0), AttrId(1), AttrId(2)],
                Condition::eq_const(AttrId(1), Value::Null),
            ),
        )
        .unwrap();
        cs.set_view(q, ViewRel::new(r, [AttrId(0), AttrId(1)], Condition::True))
            .unwrap();
        (cs, p, q, r)
    }

    #[test]
    fn example_2_2_is_not_lossless() {
        let (cs, _, _, r) = example_2_2();
        let err = cs.check_losslessness().unwrap_err();
        // Attribute B is only visible at p, whose selection A = ⊥ is not a
        // tautology: the value "c" of Example 2.2 can be lost.
        match err {
            ModelError::NotLossless { rel, attribute, .. } => {
                assert_eq!(rel, r);
                assert_eq!(attribute, "B");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn example_2_2_view_computation_and_loss() {
        let (cs, p, q, r) = example_2_2();
        // Global instance {R(k, a, c)} as produced by the example's inserts.
        let mut i = Instance::empty(cs.schema());
        i.rel_mut(r)
            .insert(Tuple::new([
                Value::str("k"),
                Value::str("a"),
                Value::str("c"),
            ]))
            .unwrap();
        // p's selection A = ⊥ now rejects the tuple: it disappeared from p's view.
        let at_p = cs.view_of(&i, p);
        assert!(at_p.is_empty());
        // q still sees the projection on K, A.
        let at_q = cs.view_of(&i, q);
        assert_eq!(
            at_q.get(r, &Value::str("k")),
            Some(&Tuple::new([Value::str("k"), Value::str("a")]))
        );
        // Reconstruction loses the value "c".
        let back = cs.reconstruct(&i).unwrap();
        let got = back.rel(r).get(&Value::str("k")).unwrap();
        assert!(got.get(AttrId(2)).is_null(), "the value c is lost");
        assert_ne!(back, i);
    }

    #[test]
    fn full_views_are_lossless_and_reconstruct() {
        let schema =
            Schema::from_relations([RelSchema::new("R", ["K", "A", "B"]).unwrap()]).unwrap();
        let r = schema.rel("R").unwrap();
        let mut cs = CollabSchema::new(schema);
        let p = cs.add_peer("p").unwrap();
        cs.set_full_view(p, r).unwrap();
        cs.check_losslessness().unwrap();
        let mut i = Instance::empty(cs.schema());
        i.rel_mut(r)
            .insert(Tuple::new([Value::int(1), Value::str("a"), Value::Null]))
            .unwrap();
        assert_eq!(cs.reconstruct(&i).unwrap(), i);
    }

    #[test]
    fn complementary_selections_are_lossless() {
        // p sees tuples with A = ⊥, q sees tuples with A ≠ ⊥; both see all
        // attributes. Together they cover everything.
        let schema = Schema::from_relations([RelSchema::new("R", ["K", "A"]).unwrap()]).unwrap();
        let r = schema.rel("R").unwrap();
        let mut cs = CollabSchema::new(schema);
        let p = cs.add_peer("p").unwrap();
        let q = cs.add_peer("q").unwrap();
        cs.set_view(
            p,
            ViewRel::new(
                r,
                [AttrId(0), AttrId(1)],
                Condition::eq_const(AttrId(1), Value::Null),
            ),
        )
        .unwrap();
        cs.set_view(
            q,
            ViewRel::new(
                r,
                [AttrId(0), AttrId(1)],
                Condition::neq_const(AttrId(1), Value::Null),
            ),
        )
        .unwrap();
        cs.check_losslessness().unwrap();
        // Round-trip.
        let mut i = Instance::empty(cs.schema());
        i.rel_mut(r)
            .insert(Tuple::new([Value::int(1), Value::str("x")]))
            .unwrap();
        i.rel_mut(r)
            .insert(Tuple::new([Value::int(2), Value::Null]))
            .unwrap();
        assert_eq!(cs.reconstruct(&i).unwrap(), i);
    }

    #[test]
    fn view_rel_invariants() {
        let v = ViewRel::new(RelId(0), [AttrId(2), AttrId(1)], Condition::True);
        // Key added and attrs sorted.
        assert_eq!(v.attrs(), &[AttrId(0), AttrId(1), AttrId(2)]);
        assert_eq!(v.position(AttrId(2)), Some(2));
        assert_eq!(v.position(AttrId(3)), None);
    }

    #[test]
    fn relevant_attrs_includes_selection_attrs() {
        // View exposes K only, but selects on A: att(R, p) = {K, A}.
        let v = ViewRel::new(RelId(0), [], Condition::eq_const(AttrId(1), "x"));
        let rel: Vec<_> = v.relevant_attrs().into_iter().collect();
        assert_eq!(rel, vec![AttrId(0), AttrId(1)]);
    }

    #[test]
    fn duplicate_peer_rejected() {
        let mut cs = CollabSchema::new(Schema::new());
        cs.add_peer("p").unwrap();
        assert!(matches!(
            cs.add_peer("p"),
            Err(ModelError::DuplicatePeer { .. })
        ));
    }

    #[test]
    fn set_view_validates_ids() {
        let schema = Schema::from_relations([RelSchema::proposition("T")]).unwrap();
        let t = schema.rel("T").unwrap();
        let mut cs = CollabSchema::new(schema);
        let p = cs.add_peer("p").unwrap();
        assert!(matches!(
            cs.set_view(p, ViewRel::new(RelId(7), [], Condition::True)),
            Err(ModelError::UnknownRelation { .. })
        ));
        assert!(matches!(
            cs.set_view(p, ViewRel::new(t, [AttrId(5)], Condition::True)),
            Err(ModelError::UnknownAttribute { .. })
        ));
        assert!(matches!(
            cs.set_view(p, ViewRel::new(t, [], Condition::eq_const(AttrId(3), "x"))),
            Err(ModelError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn empty_view_matches_view_of_empty_instance() {
        let (cs, p, q, _) = example_2_2();
        let empty = Instance::empty(cs.schema());
        assert_eq!(cs.empty_view(p), cs.view_of(&empty, p));
        assert_eq!(cs.empty_view(q), cs.view_of(&empty, q));
    }

    #[test]
    fn upsert_remove_and_rel_len() {
        let (cs, _, q, r) = example_2_2();
        let mut v = cs.empty_view(q);
        assert_eq!(v.rel_len(r), 0);
        v.upsert(r, Tuple::new([Value::str("k"), Value::str("a")]));
        v.upsert(r, Tuple::new([Value::str("k"), Value::str("b")]));
        assert_eq!(v.rel_len(r), 1);
        assert_eq!(
            v.get(r, &Value::str("k")),
            Some(&Tuple::new([Value::str("k"), Value::str("b")]))
        );
        v.remove(r, &Value::str("missing")); // idempotent no-op
        v.remove(r, &Value::str("k"));
        assert_eq!(v.rel_len(r), 0);
        // Removal keeps the (empty) relation entry: structural equality with
        // view_of is preserved.
        let empty = Instance::empty(cs.schema());
        assert_eq!(v, cs.view_of(&empty, q));
    }

    #[test]
    fn view_instance_accessors() {
        let (cs, _, q, r) = example_2_2();
        let mut i = Instance::empty(cs.schema());
        i.rel_mut(r)
            .insert(Tuple::new([Value::str("k"), Value::str("a"), Value::Null]))
            .unwrap();
        let v = cs.view_of(&i, q);
        assert_eq!(v.total_tuples(), 1);
        assert!(v.contains_key(r, &Value::str("k")));
        assert_eq!(v.keys(r).count(), 1);
        assert_eq!(v.facts().count(), 1);
        assert!(!v.is_empty());
    }
}
