//! # cwf-model — the data model of collaborative workflows
//!
//! Substrate crate implementing Section 2 of *Explanations and Transparency
//! in Collaborative Workflows* (Abiteboul, Bourhis, Vianu; PODS 2018): keyed
//! relational schemas over an infinite domain with `⊥`, valid instances, the
//! key chase `chase_K`, selection conditions with a complete satisfiability
//! solver, and collaborative schemas with selection-projection peer views and
//! the losslessness check.
//!
//! Everything downstream (rules, runs, scenarios, transparency analysis)
//! builds on these types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chase;
pub mod condition;
pub mod diff;
pub mod error;
pub mod govern;
pub mod instance;
pub mod intern;
pub mod prov;
pub mod schema;
pub mod simplify;
pub mod solver;
pub mod store;
pub mod tuple;
pub mod value;
pub mod views;

pub use chase::{chase, chase_with, naive_chase, ChaseFailure};
pub use condition::{Atom, Condition};
pub use diff::{AttrChange, InstanceDiff};
pub use error::ModelError;
pub use govern::{
    Bound, CancelToken, FirstHit, Governor, Pool, Reason, SharedMin, Verdict, DEFAULT_CHUNK,
};
pub use instance::{Instance, RawInstance, Relation};
pub use intern::Istr;
pub use prov::{Mono, ProvStore, Provenance, MAX_MONOMIALS};
pub use schema::{AttrId, PeerId, RelId, RelSchema, Schema, KEY};
pub use simplify::{simplify, size as condition_size};
pub use store::RelStore;
pub use tuple::Tuple;
pub use value::{FreshGen, Value};
pub use views::{CollabSchema, ViewInstance, ViewRel};
