//! Instance deltas.
//!
//! The observable effect of an event — and the head of a synthesized ω-rule
//! (Theorem 5.13) — is the *difference* between two instances: created
//! tuples, deleted keys, and attribute modifications on surviving keys.
//! [`InstanceDiff`] computes and renders that difference; the engine's
//! update semantics guarantee that successive run instances differ exactly
//! by such a delta.

use std::fmt;

use crate::instance::Instance;
use crate::schema::{AttrId, RelId, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// One changed attribute of a surviving tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrChange {
    /// The attribute.
    pub attr: AttrId,
    /// The value before.
    pub before: Value,
    /// The value after.
    pub after: Value,
}

/// The difference between two instances over the same schema.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstanceDiff {
    /// Tuples present in `after` whose key is absent from `before`.
    pub created: Vec<(RelId, Tuple)>,
    /// Tuples present in `before` whose key is absent from `after`.
    pub deleted: Vec<(RelId, Tuple)>,
    /// Per surviving key with differing tuples: the changed attributes.
    pub modified: Vec<(RelId, Value, Vec<AttrChange>)>,
}

impl InstanceDiff {
    /// Computes `after − before`.
    pub fn between(before: &Instance, after: &Instance) -> InstanceDiff {
        debug_assert_eq!(before.width(), after.width());
        let mut out = InstanceDiff::default();
        for r in 0..before.width() {
            let rel = RelId(r as u32);
            for t in after.rel(rel).iter() {
                match before.rel(rel).get(t.key()) {
                    None => out.created.push((rel, t.clone())),
                    Some(old) if old != t => {
                        let changes: Vec<AttrChange> = old
                            .entries()
                            .filter(|(a, v)| t.get(*a) != *v)
                            .map(|(a, v)| AttrChange {
                                attr: a,
                                before: *v,
                                after: *t.get(a),
                            })
                            .collect();
                        out.modified.push((rel, *t.key(), changes));
                    }
                    Some(_) => {}
                }
            }
            for t in before.rel(rel).iter() {
                if !after.rel(rel).contains_key(t.key()) {
                    out.deleted.push((rel, t.clone()));
                }
            }
        }
        out
    }

    /// Is there no difference?
    pub fn is_empty(&self) -> bool {
        self.created.is_empty() && self.deleted.is_empty() && self.modified.is_empty()
    }

    /// Total number of changes.
    pub fn len(&self) -> usize {
        self.created.len() + self.deleted.len() + self.modified.len()
    }

    /// Renders against a schema: `+R(...)`, `-R(...)`, `~R[key].A: a→b`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> DiffDisplay<'a> {
        DiffDisplay { diff: self, schema }
    }
}

/// Display adaptor for diffs.
pub struct DiffDisplay<'a> {
    diff: &'a InstanceDiff,
    schema: &'a Schema,
}

impl fmt::Display for DiffDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                writeln!(f)?;
            }
            first = false;
            Ok(())
        };
        for (r, t) in &self.diff.created {
            sep(f)?;
            write!(f, "+{}", t.display(self.schema.relation(*r)))?;
        }
        for (r, t) in &self.diff.deleted {
            sep(f)?;
            write!(f, "-{}", t.display(self.schema.relation(*r)))?;
        }
        for (r, k, changes) in &self.diff.modified {
            sep(f)?;
            let rs = self.schema.relation(*r);
            write!(f, "~{}[{}]", rs.name(), k)?;
            for c in changes {
                write!(f, " {}: {}→{}", rs.attr_name(c.attr), c.before, c.after)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelSchema;

    fn schema() -> Schema {
        Schema::from_relations([RelSchema::new("R", ["K", "A"]).unwrap()]).unwrap()
    }

    const R: RelId = RelId(0);

    fn t(k: i64, a: Option<&str>) -> Tuple {
        Tuple::new([Value::int(k), a.map(Value::str).unwrap_or(Value::Null)])
    }

    #[test]
    fn empty_diff() {
        let s = schema();
        let i = Instance::empty(&s);
        let d = InstanceDiff::between(&i, &i);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.display(&s).to_string(), "");
    }

    #[test]
    fn created_deleted_modified() {
        let s = schema();
        let mut before = Instance::empty(&s);
        before.rel_mut(R).insert(t(1, None)).unwrap(); // will be modified
        before.rel_mut(R).insert(t(2, Some("x"))).unwrap(); // will be deleted
        let mut after = Instance::empty(&s);
        after.rel_mut(R).insert(t(1, Some("a"))).unwrap();
        after.rel_mut(R).insert(t(3, Some("n"))).unwrap(); // created
        let d = InstanceDiff::between(&before, &after);
        assert_eq!(d.created, vec![(R, t(3, Some("n")))]);
        assert_eq!(d.deleted, vec![(R, t(2, Some("x")))]);
        assert_eq!(d.modified.len(), 1);
        let (_, k, changes) = &d.modified[0];
        assert_eq!(k, &Value::int(1));
        assert_eq!(
            changes,
            &vec![AttrChange {
                attr: AttrId(1),
                before: Value::Null,
                after: Value::str("a")
            }]
        );
        assert_eq!(d.len(), 3);
        let shown = d.display(&s).to_string();
        assert!(shown.contains("+R(3, \"n\")"));
        assert!(shown.contains("-R(2, \"x\")"));
        assert!(shown.contains("~R[1] A: ⊥→\"a\""));
    }

    #[test]
    fn diff_is_antisymmetric_in_created_deleted() {
        let s = schema();
        let mut a = Instance::empty(&s);
        a.rel_mut(R).insert(t(1, Some("x"))).unwrap();
        let b = Instance::empty(&s);
        let fwd = InstanceDiff::between(&b, &a);
        let bwd = InstanceDiff::between(&a, &b);
        assert_eq!(fwd.created, bwd.deleted);
        assert_eq!(fwd.deleted, bwd.created);
    }
}
