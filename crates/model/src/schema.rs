//! Global database schemas.
//!
//! A *relation schema* is a relation symbol with a sequence of distinct
//! attributes; every relation carries a unique single-attribute key `K`
//! (Section 2 of the paper assumes, for simplicity, that the key attribute is
//! the same for all relations — we realize this by fixing it at **position
//! 0** of every relation).
//!
//! Identifiers ([`RelId`], [`AttrId`], [`PeerId`]) are small `Copy` indices
//! into the schema's name tables; all hot paths work on indices only.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// Index of a relation inside a [`Schema`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelId(pub u32);

/// Index of an attribute inside a relation schema (position in the attribute
/// sequence; `AttrId(0)` is always the key `K`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrId(pub u32);

/// Index of a peer inside a collaborative schema.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeerId(pub u32);

/// The key attribute `K` (position 0 by convention).
pub const KEY: AttrId = AttrId(0);

impl RelId {
    /// Zero-based index usable with slices.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl AttrId {
    /// Zero-based index usable with slices.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Is this the key attribute?
    pub fn is_key(self) -> bool {
        self == KEY
    }
}

impl PeerId {
    /// Zero-based index usable with slices.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Debug for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

impl fmt::Debug for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A single relation schema: a name and a sequence of distinct attribute
/// names, the first of which is the key `K`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelSchema {
    name: String,
    attrs: Vec<String>,
}

impl RelSchema {
    /// Creates a relation schema. `attrs` must be non-empty (it contains at
    /// least the key) and pairwise distinct.
    pub fn new(
        name: impl Into<String>,
        attrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<Self, ModelError> {
        let name = name.into();
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        if name.is_empty() {
            return Err(ModelError::EmptyName);
        }
        if attrs.is_empty() {
            return Err(ModelError::NoAttributes { relation: name });
        }
        for (i, a) in attrs.iter().enumerate() {
            if a.is_empty() {
                return Err(ModelError::EmptyName);
            }
            if attrs[..i].contains(a) {
                return Err(ModelError::DuplicateAttribute {
                    relation: name,
                    attribute: a.clone(),
                });
            }
        }
        Ok(Self { name, attrs })
    }

    /// Convenience constructor for a propositional relation `R(K)`:
    /// the paper simulates a proposition `x` by a unary relation `Rx` with
    /// key `K` (proof of Theorem 3.3).
    pub fn proposition(name: impl Into<String>) -> Self {
        Self::new(name, ["K"]).expect("propositional schema is always well formed")
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute names, key first.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Number of attributes (arity), including the key.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// All attribute ids of this relation, key first.
    pub fn attr_ids(&self) -> impl ExactSizeIterator<Item = AttrId> {
        (0..self.attrs.len() as u32).map(AttrId)
    }

    /// Resolves an attribute name to its id.
    pub fn attr(&self, name: &str) -> Option<AttrId> {
        self.attrs
            .iter()
            .position(|a| a == name)
            .map(|i| AttrId(i as u32))
    }

    /// The name of attribute `a`.
    pub fn attr_name(&self, a: AttrId) -> &str {
        &self.attrs[a.index()]
    }
}

/// A global database schema: a finite set of relation schemas with distinct
/// names.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    relations: Vec<RelSchema>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a schema from relation schemas, checking name uniqueness.
    pub fn from_relations(rels: impl IntoIterator<Item = RelSchema>) -> Result<Self, ModelError> {
        let mut s = Self::new();
        for r in rels {
            s.add_relation(r)?;
        }
        Ok(s)
    }

    /// Adds a relation schema, returning its id.
    pub fn add_relation(&mut self, rel: RelSchema) -> Result<RelId, ModelError> {
        if self.rel(rel.name()).is_some() {
            return Err(ModelError::DuplicateRelation {
                relation: rel.name().to_string(),
            });
        }
        let id = RelId(self.relations.len() as u32);
        self.relations.push(rel);
        Ok(id)
    }

    /// Number of relations (`|D|`, the `d` of Theorem 6.3).
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// All relation ids.
    pub fn rel_ids(&self) -> impl ExactSizeIterator<Item = RelId> {
        (0..self.relations.len() as u32).map(RelId)
    }

    /// Resolves a relation name.
    pub fn rel(&self, name: &str) -> Option<RelId> {
        self.relations
            .iter()
            .position(|r| r.name() == name)
            .map(|i| RelId(i as u32))
    }

    /// The schema of relation `r`.
    pub fn relation(&self, r: RelId) -> &RelSchema {
        &self.relations[r.index()]
    }

    /// Maximum arity over all relations (the `a − 1` of Theorem 6.3).
    pub fn max_arity(&self) -> usize {
        self.relations
            .iter()
            .map(RelSchema::arity)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_schema_rejects_duplicates_and_empties() {
        assert!(matches!(
            RelSchema::new("R", ["K", "A", "A"]),
            Err(ModelError::DuplicateAttribute { .. })
        ));
        assert!(matches!(
            RelSchema::new("", ["K"]),
            Err(ModelError::EmptyName)
        ));
        assert!(matches!(
            RelSchema::new("R", Vec::<String>::new()),
            Err(ModelError::NoAttributes { .. })
        ));
    }

    #[test]
    fn attribute_resolution() {
        let r = RelSchema::new("Assign", ["K", "Emp", "Proj"]).unwrap();
        assert_eq!(r.arity(), 3);
        assert_eq!(r.attr("K"), Some(KEY));
        assert_eq!(r.attr("Proj"), Some(AttrId(2)));
        assert_eq!(r.attr("Nope"), None);
        assert_eq!(r.attr_name(AttrId(1)), "Emp");
        assert!(KEY.is_key());
        assert!(!AttrId(1).is_key());
    }

    #[test]
    fn proposition_is_unary() {
        let p = RelSchema::proposition("OK");
        assert_eq!(p.arity(), 1);
        assert_eq!(p.attr("K"), Some(KEY));
    }

    #[test]
    fn schema_rejects_duplicate_relation_names() {
        let mut s = Schema::new();
        s.add_relation(RelSchema::proposition("OK")).unwrap();
        assert!(matches!(
            s.add_relation(RelSchema::proposition("OK")),
            Err(ModelError::DuplicateRelation { .. })
        ));
    }

    #[test]
    fn schema_lookup_and_stats() {
        let s = Schema::from_relations([
            RelSchema::new("R", ["K", "A", "B"]).unwrap(),
            RelSchema::proposition("T"),
        ])
        .unwrap();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.rel("R"), Some(RelId(0)));
        assert_eq!(s.rel("T"), Some(RelId(1)));
        assert_eq!(s.max_arity(), 3);
        assert_eq!(s.relation(RelId(1)).name(), "T");
        let ids: Vec<_> = s.rel_ids().collect();
        assert_eq!(ids, vec![RelId(0), RelId(1)]);
    }
}
