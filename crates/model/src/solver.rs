//! A complete decision procedure for the selection-condition fragment.
//!
//! Conditions are Boolean combinations of `A = a` and `A = B` over an
//! **infinite** domain. Satisfiability of such a condition reduces to:
//! enumerate truth assignments to its (finitely many) elementary conditions,
//! keep those under which the Boolean structure evaluates to true, and check
//! each surviving assignment for *theory consistency* — i.e. whether a tuple
//! realizing exactly those (dis)equalities exists.
//!
//! Consistency of a set of literals over equality with constants is decided
//! by union-find: merge attribute classes along positive `A = B` literals,
//! label classes with constants along positive `A = a` literals (two distinct
//! labels in one class ⇒ inconsistent), merge classes sharing a label, then
//! check every negative literal against the resulting classes. Because the
//! domain is infinite, any remaining disequalities can always be satisfied
//! by picking fresh values — so this check is sound **and complete**.
//!
//! The procedure is exponential in the number of *distinct atoms* of the
//! condition, which is small for real selection conditions. It powers the
//! losslessness check (`⋁_p σ(R@p)` must be a tautology per visible
//! attribute) and the (C4') check of Section 6.

use std::collections::BTreeMap;

use crate::condition::{Atom, Condition};
use crate::govern::pool::{FirstHit, Pool};
use crate::govern::{Governor, Reason, Verdict};
use crate::schema::AttrId;
use crate::value::Value;

/// Assignment enumeration goes parallel only above this many distinct
/// atoms (2^11 = 2048 assignments): below that, splitting costs more than
/// it saves, and the small conditions of the existing unit tests keep
/// exercising the sequential oracle path verbatim.
const PAR_MIN_ATOMS: usize = 11;

/// Is `cond` satisfiable by some tuple (over any attribute values)?
pub fn satisfiable(cond: &Condition) -> bool {
    match enumerate_sat(cond, &Governor::unlimited()) {
        Ok(sat) => sat,
        Err(_) => unreachable!("an unlimited governor never exhausts"),
    }
}

/// Governed [`satisfiable`]: one governor tick per truth assignment, panic
/// isolation via [`Governor::guard`]. `Exhausted` names the resource that
/// ran out; a condition's satisfiability has no useful partial answer, so
/// this never returns `Anytime`.
pub fn satisfiable_within(cond: &Condition, gov: &Governor) -> Verdict<bool> {
    satisfiable_within_pooled(cond, gov, Pool::global())
}

/// [`satisfiable_within`] on an explicit [`Pool`]: above a size threshold
/// the assignment space is split on the first few atoms (the DPLL-style
/// top-variable split) into contiguous mask ranges scanned by the pool's
/// workers. The answer is deterministic and identical to the sequential
/// scan: any consistent assignment settles satisfiability positively no
/// matter which worker finds it, and the all-ranges-exhausted case is the
/// same `false`. A shared first-hit flag lets the remaining workers stop
/// early once any range has found a witness.
pub fn satisfiable_within_pooled(cond: &Condition, gov: &Governor, pool: &Pool) -> Verdict<bool> {
    gov.guard(|| {
        if let Err(r) = gov.check() {
            return Verdict::Exhausted(r);
        }
        let atoms = cond.atoms();
        let n = atoms.len();
        debug_assert!(
            n < 26,
            "condition with ≥26 distinct atoms; solver would blow up"
        );
        if pool.is_sequential() || n < PAR_MIN_ATOMS {
            return match enumerate_sat_range(cond, &atoms, 0, 1u64 << n, gov, None) {
                Ok(sat) => Verdict::Done(sat),
                Err(r) => Verdict::Exhausted(r),
            };
        }
        // Split on the top k atoms: 2^k contiguous ranges of the mask space,
        // a handful per worker so range imbalance steals well.
        let k = split_bits(pool.threads()).min(n - 1);
        let per_range = 1u64 << (n - k);
        let hit = FirstHit::new();
        let outs = pool.run((0..(1u64 << k)).collect(), |idx, hi| {
            enumerate_sat_range(
                cond,
                &atoms,
                hi * per_range,
                (hi + 1) * per_range,
                gov,
                Some((&hit, idx)),
            )
        });
        // Merge in range order. A witness from ANY range is definitive
        // (satisfiability has one fixed positive answer), so `true` wins
        // even when an earlier range was cut off; otherwise the first
        // cutoff in range order is the verdict.
        if outs.iter().any(|o| matches!(o, Ok(true))) {
            return Verdict::Done(true);
        }
        match outs.into_iter().find_map(Result::err) {
            Some(r) => Verdict::Exhausted(r),
            None => Verdict::Done(false),
        }
    })
}

/// `ceil(log2(4 × threads))`: enough split bits for a few ranges per worker.
fn split_bits(threads: usize) -> usize {
    let want = (threads * 4).max(2) as u64;
    (u64::BITS - (want - 1).leading_zeros()) as usize
}

/// Governed [`tautology`].
pub fn tautology_within(cond: &Condition, gov: &Governor) -> Verdict<bool> {
    satisfiable_within(&cond.clone().not(), gov).map(|sat| !sat)
}

/// Governed [`implies`].
pub fn implies_within(
    antecedent: &Condition,
    consequent: &Condition,
    gov: &Governor,
) -> Verdict<bool> {
    satisfiable_within(
        &Condition::and([antecedent.clone(), consequent.clone().not()]),
        gov,
    )
    .map(|sat| !sat)
}

/// The exhaustive assignment enumeration shared by the plain and governed
/// entry points; `Err` reports the exhausted resource.
fn enumerate_sat(cond: &Condition, gov: &Governor) -> Result<bool, Reason> {
    let atoms = cond.atoms();
    let n = atoms.len();
    debug_assert!(
        n < 26,
        "condition with ≥26 distinct atoms; solver would blow up"
    );
    enumerate_sat_range(cond, &atoms, 0, 1u64 << n, gov, None)
}

/// Scans the truth assignments in `[lo, hi)` for a theory-consistent one.
/// `stop` is the parallel early-exit hook: once some range has reported a
/// witness at a smaller index, this range's result can never affect the
/// merged answer, so the scan bails out.
fn enumerate_sat_range(
    cond: &Condition,
    atoms: &[Atom],
    lo: u64,
    hi: u64,
    gov: &Governor,
    stop: Option<(&FirstHit, usize)>,
) -> Result<bool, Reason> {
    for mask in lo..hi {
        if let Some((hit, idx)) = stop {
            if hit.get().is_some() && hit.get() != Some(idx) {
                // Another range already holds a witness; this range's
                // outcome is moot either way.
                return Ok(false);
            }
        }
        gov.tick()?;
        let truth = |atom: &Atom| -> bool {
            let idx = atoms
                .iter()
                .position(|a| a == atom)
                .expect("atom collected");
            mask & (1 << idx) != 0
        };
        if !cond.eval_atoms(&truth) {
            continue;
        }
        let literals: Vec<(Atom, bool)> = atoms
            .iter()
            .enumerate()
            .map(|(i, a)| (a.clone(), mask & (1 << i) != 0))
            .collect();
        if consistent(&literals) {
            if let Some((hit, idx)) = stop {
                hit.offer(idx);
            }
            return Ok(true);
        }
    }
    Ok(false)
}

/// Is `cond` true of **every** tuple?
///
/// ```
/// use cwf_model::{solver, AttrId, Condition, Value};
/// let a = AttrId(1);
/// // A = ⊥ ∨ A ≠ ⊥ covers every tuple…
/// let covering = Condition::or([
///     Condition::eq_const(a, Value::Null),
///     Condition::neq_const(a, Value::Null),
/// ]);
/// assert!(solver::tautology(&covering));
/// // …but A = ⊥ alone does not (Example 2.2's losslessness failure).
/// assert!(!solver::tautology(&Condition::eq_const(a, Value::Null)));
/// ```
pub fn tautology(cond: &Condition) -> bool {
    !satisfiable(&cond.clone().not())
}

/// Does `antecedent` imply `consequent` on every tuple?
pub fn implies(antecedent: &Condition, consequent: &Condition) -> bool {
    !satisfiable(&Condition::and([
        antecedent.clone(),
        consequent.clone().not(),
    ]))
}

/// Are the two conditions true of exactly the same tuples?
pub fn equivalent(a: &Condition, b: &Condition) -> bool {
    implies(a, b) && implies(b, a)
}

/// Decides whether a conjunction of (possibly negated) elementary conditions
/// is realizable by some tuple.
fn consistent(literals: &[(Atom, bool)]) -> bool {
    // Union-find over the attributes that occur.
    let mut uf = UnionFind::default();
    for (atom, _) in literals {
        match atom {
            Atom::EqConst(a, _) => uf.ensure(*a),
            Atom::EqAttr(a, b) => {
                uf.ensure(*a);
                uf.ensure(*b);
            }
        }
    }
    // 1. Merge along positive A = B.
    for (atom, pos) in literals {
        if let (Atom::EqAttr(a, b), true) = (atom, pos) {
            uf.union(*a, *b);
        }
    }
    // 2. Label classes along positive A = a; conflicting labels are
    //    inconsistent.
    let mut labels: BTreeMap<AttrId, Value> = BTreeMap::new();
    for (atom, pos) in literals {
        if let (Atom::EqConst(a, v), true) = (atom, pos) {
            let root = uf.find(*a);
            match labels.get(&root) {
                Some(existing) if existing != v => return false,
                Some(_) => {}
                None => {
                    labels.insert(root, *v);
                }
            }
        }
    }
    // 3. Classes sharing a label are semantically equal: merge them and
    //    re-canonicalize the label map (fixpoint in one pass since labels are
    //    unique per value afterwards).
    let mut by_value: BTreeMap<Value, AttrId> = BTreeMap::new();
    for (root, v) in labels.clone() {
        if let Some(prev) = by_value.get(&v) {
            uf.union(*prev, root);
        } else {
            by_value.insert(v, root);
        }
    }
    let canon_label = |uf: &mut UnionFind, a: AttrId| -> Option<Value> {
        let root = uf.find(a);
        labels
            .iter()
            .find(|(r, _)| uf.find(**r) == root)
            .map(|(_, v)| *v)
    };
    // 4. Check negative literals.
    for (atom, pos) in literals {
        if *pos {
            continue;
        }
        match atom {
            Atom::EqConst(a, v) => {
                // A ≠ a fails iff A's class is labeled exactly a.
                if canon_label(&mut uf, *a).as_ref() == Some(v) {
                    return false;
                }
            }
            Atom::EqAttr(a, b) => {
                // A ≠ B fails iff the classes coincide (directly or via a
                // shared constant label, already merged above).
                if uf.find(*a) == uf.find(*b) {
                    return false;
                }
            }
        }
    }
    true
}

#[derive(Default)]
struct UnionFind {
    parent: BTreeMap<AttrId, AttrId>,
}

impl UnionFind {
    fn ensure(&mut self, a: AttrId) {
        self.parent.entry(a).or_insert(a);
    }

    fn find(&mut self, a: AttrId) -> AttrId {
        let p = *self.parent.get(&a).unwrap_or(&a);
        if p == a {
            return a;
        }
        let root = self.find(p);
        self.parent.insert(a, root);
        root
    }

    fn union(&mut self, a: AttrId, b: AttrId) {
        self.ensure(a);
        self.ensure(b);
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;

    const A: AttrId = AttrId(1);
    const B: AttrId = AttrId(2);
    const C: AttrId = AttrId(3);

    fn eq(a: AttrId, v: &str) -> Condition {
        Condition::eq_const(a, v)
    }

    #[test]
    fn trivia() {
        assert!(satisfiable(&Condition::True));
        assert!(!satisfiable(&Condition::False));
        assert!(tautology(&Condition::True));
        assert!(!tautology(&Condition::False));
    }

    #[test]
    fn single_equalities_are_satisfiable_not_tautological() {
        assert!(satisfiable(&eq(A, "x")));
        assert!(!tautology(&eq(A, "x")));
        assert!(satisfiable(&Condition::EqAttr(A, B)));
        assert!(!tautology(&Condition::EqAttr(A, B)));
    }

    #[test]
    fn conflicting_constants_unsat() {
        let c = Condition::and([eq(A, "x"), eq(A, "y")]);
        assert!(!satisfiable(&c));
    }

    #[test]
    fn transitive_equality_through_attrs() {
        // A = B ∧ B = C ∧ A = x ∧ C = y is unsat.
        let c = Condition::and([
            Condition::EqAttr(A, B),
            Condition::EqAttr(B, C),
            eq(A, "x"),
            eq(C, "y"),
        ]);
        assert!(!satisfiable(&c));
        // ... but with the same constant it is fine.
        let ok = Condition::and([
            Condition::EqAttr(A, B),
            Condition::EqAttr(B, C),
            eq(A, "x"),
            eq(C, "x"),
        ]);
        assert!(satisfiable(&ok));
    }

    #[test]
    fn shared_constant_forces_attr_equality() {
        // A = x ∧ B = x ∧ A ≠ B is unsat.
        let c = Condition::and([eq(A, "x"), eq(B, "x"), Condition::EqAttr(A, B).not()]);
        assert!(!satisfiable(&c));
    }

    #[test]
    fn disequalities_satisfiable_over_infinite_domain() {
        // A ≠ x ∧ A ≠ y ∧ A ≠ B is satisfiable: infinitely many values remain.
        let c = Condition::and([
            Condition::neq_const(A, "x"),
            Condition::neq_const(A, "y"),
            Condition::EqAttr(A, B).not(),
        ]);
        assert!(satisfiable(&c));
    }

    #[test]
    fn excluded_middle_is_tautology() {
        let c = Condition::or([eq(A, "x"), eq(A, "x").not()]);
        assert!(tautology(&c));
    }

    #[test]
    fn case_split_tautology() {
        // (A = ⊥) ∨ (A ≠ ⊥) covers everything — the Example 2.2 shape.
        let c = Condition::or([
            Condition::eq_const(A, Value::Null),
            Condition::neq_const(A, Value::Null),
        ]);
        assert!(tautology(&c));
        // (A = ⊥) ∨ true is a tautology too.
        let d = Condition::or([Condition::eq_const(A, Value::Null), Condition::True]);
        assert!(tautology(&d));
        // (A = ⊥) alone is not.
        assert!(!tautology(&Condition::eq_const(A, Value::Null)));
    }

    #[test]
    fn implication_and_equivalence() {
        let strong = Condition::and([eq(A, "x"), eq(B, "y")]);
        let weak = eq(A, "x");
        assert!(implies(&strong, &weak));
        assert!(!implies(&weak, &strong));
        assert!(equivalent(
            &weak,
            &Condition::or([weak.clone(), Condition::False])
        ));
    }

    #[test]
    fn negated_attr_equality_with_chain() {
        // A = B ∧ B = C ∧ A ≠ C is unsat (transitivity through union-find).
        let c = Condition::and([
            Condition::EqAttr(A, B),
            Condition::EqAttr(B, C),
            Condition::EqAttr(A, C).not(),
        ]);
        assert!(!satisfiable(&c));
    }

    #[test]
    fn de_morgan_equivalence() {
        let lhs = Condition::and([eq(A, "x"), eq(B, "y")]).not();
        let rhs = Condition::or([eq(A, "x").not(), eq(B, "y").not()]);
        assert!(equivalent(&lhs, &rhs));
    }

    #[test]
    fn governed_solver_agrees_with_plain() {
        use crate::govern::Governor;
        let c = Condition::and([eq(A, "x"), eq(B, "y"), Condition::EqAttr(A, B).not()]);
        let gov = Governor::with_nodes(1_000);
        assert_eq!(satisfiable_within(&c, &gov), Verdict::Done(satisfiable(&c)));
        assert_eq!(tautology_within(&c, &gov), Verdict::Done(tautology(&c)));
    }

    #[test]
    #[cfg(debug_assertions)]
    fn panicking_evaluator_becomes_exhausted_panicked() {
        use crate::govern::{Governor, Reason};
        // 26 distinct atoms trip the solver's blow-up assertion. The guard
        // converts the panic into a verdict instead of unwinding into a
        // coordinator serving other peers.
        let huge = Condition::and((0u32..26).map(|i| eq(AttrId(i), "v")).collect::<Vec<_>>());
        match satisfiable_within(&huge, &Governor::unlimited()) {
            Verdict::Exhausted(Reason::Panicked(msg)) => {
                assert!(msg.contains("solver would blow up"), "got: {msg}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn governed_solver_reports_exhaustion() {
        use crate::govern::{Governor, Reason};
        // Ten distinct atoms -> 1024 assignments; a 4-node budget cuts off.
        let big = Condition::and((0u32..10).map(|i| eq(AttrId(i), "v")).collect::<Vec<_>>());
        let gov = Governor::with_nodes(4);
        assert_eq!(
            satisfiable_within(&big, &gov),
            Verdict::Exhausted(Reason::Nodes)
        );
    }
}
