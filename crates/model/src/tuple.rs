//! Tuples over relation schemas.
//!
//! A tuple over `R` is a mapping from `att(R)` to `dom`; we store it as a
//! sequence of values aligned with the attribute sequence of the relation
//! schema (position 0 = key `K`).
//!
//! Since [`Value`] is `Copy`, small tuples (arity ≤ [`INLINE`]) are stored
//! inline with no heap allocation at all — cloning a small tuple is a
//! `memcpy`. Wider tuples spill to a `Vec`. The representation is invisible
//! through the public API: equality, ordering and hashing are defined over
//! the value sequence, so an inline tuple and a heap tuple with the same
//! values are indistinguishable.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Index;

use serde::{Deserialize, Serialize};

use crate::schema::{AttrId, RelSchema, KEY};
use crate::value::Value;

/// Maximum arity stored inline (key plus two non-key attributes).
const INLINE: usize = 3;

/// The backing storage: inline for small arities, heap beyond.
#[derive(Clone, Serialize, Deserialize)]
enum Repr {
    Inline { len: u8, vals: [Value; INLINE] },
    Heap(Vec<Value>),
}

/// A tuple aligned with a relation schema's attribute sequence.
#[derive(Clone, Serialize, Deserialize)]
pub struct Tuple(Repr);

impl Tuple {
    /// Builds a tuple from values in schema order.
    pub fn new(values: impl IntoIterator<Item = Value>) -> Self {
        let mut iter = values.into_iter();
        let mut vals = [Value::Null; INLINE];
        let mut len = 0usize;
        for slot in &mut vals {
            match iter.next() {
                Some(v) => {
                    *slot = v;
                    len += 1;
                }
                None => {
                    return Tuple(Repr::Inline {
                        len: len as u8,
                        vals,
                    })
                }
            }
        }
        match iter.next() {
            None => Tuple(Repr::Inline {
                len: len as u8,
                vals,
            }),
            Some(overflow) => {
                let mut v = Vec::with_capacity(INLINE + 1 + iter.size_hint().0);
                v.extend_from_slice(&vals);
                v.push(overflow);
                v.extend(iter);
                Tuple(Repr::Heap(v))
            }
        }
    }

    /// An all-`⊥` tuple of the given arity.
    pub fn nulls(arity: usize) -> Self {
        if arity <= INLINE {
            Tuple(Repr::Inline {
                len: arity as u8,
                vals: [Value::Null; INLINE],
            })
        } else {
            Tuple(Repr::Heap(vec![Value::Null; arity]))
        }
    }

    /// Builds the padded tuple `u^⊥` of the paper: given values `J` over a
    /// subset `att(J) ⊆ att(R)` (as attribute ids paired with values), pad all
    /// remaining attributes of `R` with `⊥`.
    pub fn padded(arity: usize, assignments: impl IntoIterator<Item = (AttrId, Value)>) -> Self {
        let mut t = Self::nulls(arity);
        let slots = t.as_mut_slice();
        for (a, v) in assignments {
            slots[a.index()] = v;
        }
        t
    }

    fn as_slice(&self) -> &[Value] {
        match &self.0 {
            Repr::Inline { len, vals } => &vals[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [Value] {
        match &mut self.0 {
            Repr::Inline { len, vals } => &mut vals[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// The key value `t(K)`.
    pub fn key(&self) -> &Value {
        &self.as_slice()[KEY.index()]
    }

    /// The value of attribute `a`.
    pub fn get(&self, a: AttrId) -> &Value {
        &self.as_slice()[a.index()]
    }

    /// Sets the value of attribute `a`.
    pub fn set(&mut self, a: AttrId, v: Value) {
        self.as_mut_slice()[a.index()] = v;
    }

    /// The arity of the tuple.
    pub fn arity(&self) -> usize {
        self.as_slice().len()
    }

    /// Iterates over `(attribute, value)` pairs in schema order.
    pub fn entries(&self) -> impl Iterator<Item = (AttrId, &Value)> {
        self.as_slice()
            .iter()
            .enumerate()
            .map(|(i, v)| (AttrId(i as u32), v))
    }

    /// All values in schema order.
    pub fn values(&self) -> &[Value] {
        self.as_slice()
    }

    /// Projection onto a subset of attributes (in the given order).
    pub fn project(&self, attrs: &[AttrId]) -> Tuple {
        let slots = self.as_slice();
        Tuple::new(attrs.iter().map(|a| slots[a.index()]))
    }

    /// *Subsumption*: `u` is subsumed by `v` (written `u ⊑ v`) when they have
    /// the same arity and `u(A) ∈ {v(A), ⊥}` for every attribute `A`. This is
    /// condition (ii) of the insertion semantics in Section 2.
    pub fn subsumed_by(&self, v: &Tuple) -> bool {
        let (a, b) = (self.as_slice(), v.as_slice());
        a.len() == b.len() && a.iter().zip(b).all(|(u, w)| u.is_null() || u == w)
    }

    /// Renders the tuple against its schema, e.g. `R(1, "a", ⊥)`.
    pub fn display<'a>(&'a self, schema: &'a RelSchema) -> TupleDisplay<'a> {
        TupleDisplay {
            tuple: self,
            schema,
        }
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Tuple {}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Tuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash like the old `Vec<Value>` derive: length prefix then elements.
        self.as_slice().hash(state);
    }
}

impl Index<AttrId> for Tuple {
    type Output = Value;
    fn index(&self, a: AttrId) -> &Value {
        self.get(a)
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter)
    }
}

/// Display adaptor pairing a tuple with its relation schema.
pub struct TupleDisplay<'a> {
    tuple: &'a Tuple,
    schema: &'a RelSchema,
}

impl fmt::Display for TupleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:?}", self.schema.name(), self.tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;

    fn v(s: &str) -> Value {
        Value::str(s)
    }

    #[test]
    fn padding_fills_missing_attributes_with_null() {
        // u over {K, B} of R(K, A, B): u^⊥ = (k, ⊥, b)
        let t = Tuple::padded(3, [(AttrId(0), v("k")), (AttrId(2), v("b"))]);
        assert_eq!(t.values(), &[v("k"), Value::Null, v("b")]);
        assert_eq!(t.key(), &v("k"));
    }

    #[test]
    fn subsumption_matches_paper_definition() {
        let full = Tuple::new([v("k"), v("a"), v("b")]);
        let partial = Tuple::new([v("k"), Value::Null, v("b")]);
        let other = Tuple::new([v("k"), v("x"), v("b")]);
        assert!(partial.subsumed_by(&full));
        assert!(full.subsumed_by(&full), "subsumption is reflexive");
        assert!(!full.subsumed_by(&partial), "⊥ does not subsume a value");
        assert!(!other.subsumed_by(&full));
        // Different arities never subsume.
        assert!(!Tuple::nulls(2).subsumed_by(&full));
    }

    #[test]
    fn projection_keeps_requested_order() {
        let t = Tuple::new([v("k"), v("a"), v("b")]);
        let p = t.project(&[AttrId(2), AttrId(0)]);
        assert_eq!(p.values(), &[v("b"), v("k")]);
    }

    #[test]
    fn display_against_schema() {
        let r = RelSchema::new("R", ["K", "A"]).unwrap();
        let t = Tuple::new([Value::int(1), Value::Null]);
        assert_eq!(t.display(&r).to_string(), "R(1, ⊥)");
    }

    #[test]
    fn set_and_index() {
        let mut t = Tuple::nulls(2);
        t.set(AttrId(1), v("x"));
        assert_eq!(t[AttrId(1)], v("x"));
        assert_eq!(t.entries().count(), 2);
    }

    #[test]
    fn inline_and_heap_tuples_compare_by_content() {
        // Arity 3 stays inline; arity 4 spills to the heap. Equality,
        // ordering and hashing must be representation-blind.
        let small = Tuple::new([v("k"), v("a"), v("b")]);
        assert_eq!(small.arity(), 3);
        let wide = Tuple::new([v("k"), v("a"), v("b"), v("c")]);
        assert_eq!(wide.arity(), 4);
        assert!(small < wide, "prefix sorts first, like Vec<Value>");
        let wide2 = Tuple::new(wide.values().to_vec());
        assert_eq!(wide, wide2);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |t: &Tuple| {
            let mut s = DefaultHasher::new();
            t.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&wide), h(&wide2));
    }

    #[test]
    fn zero_and_boundary_arities() {
        assert_eq!(Tuple::new([]).arity(), 0);
        assert_eq!(Tuple::nulls(3).arity(), 3);
        assert_eq!(Tuple::nulls(4).arity(), 4);
        assert_eq!(Tuple::nulls(3), Tuple::new([Value::Null; 3]));
        assert_eq!(Tuple::nulls(4), Tuple::new([Value::Null; 4]));
    }
}
