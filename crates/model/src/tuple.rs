//! Tuples over relation schemas.
//!
//! A tuple over `R` is a mapping from `att(R)` to `dom`; we store it as a
//! `Vec<Value>` aligned with the attribute sequence of the relation schema
//! (position 0 = key `K`).

use std::fmt;
use std::ops::Index;

use serde::{Deserialize, Serialize};

use crate::schema::{AttrId, RelSchema, KEY};
use crate::value::Value;

/// A tuple aligned with a relation schema's attribute sequence.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tuple(Vec<Value>);

impl Tuple {
    /// Builds a tuple from values in schema order.
    pub fn new(values: impl IntoIterator<Item = Value>) -> Self {
        Tuple(values.into_iter().collect())
    }

    /// An all-`⊥` tuple of the given arity.
    pub fn nulls(arity: usize) -> Self {
        Tuple(vec![Value::Null; arity])
    }

    /// Builds the padded tuple `u^⊥` of the paper: given values `J` over a
    /// subset `att(J) ⊆ att(R)` (as attribute ids paired with values), pad all
    /// remaining attributes of `R` with `⊥`.
    pub fn padded(arity: usize, assignments: impl IntoIterator<Item = (AttrId, Value)>) -> Self {
        let mut t = Self::nulls(arity);
        for (a, v) in assignments {
            t.0[a.index()] = v;
        }
        t
    }

    /// The key value `t(K)`.
    pub fn key(&self) -> &Value {
        &self.0[KEY.index()]
    }

    /// The value of attribute `a`.
    pub fn get(&self, a: AttrId) -> &Value {
        &self.0[a.index()]
    }

    /// Sets the value of attribute `a`.
    pub fn set(&mut self, a: AttrId, v: Value) {
        self.0[a.index()] = v;
    }

    /// The arity of the tuple.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Iterates over `(attribute, value)` pairs in schema order.
    pub fn entries(&self) -> impl Iterator<Item = (AttrId, &Value)> {
        self.0
            .iter()
            .enumerate()
            .map(|(i, v)| (AttrId(i as u32), v))
    }

    /// All values in schema order.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Projection onto a subset of attributes (in the given order).
    pub fn project(&self, attrs: &[AttrId]) -> Tuple {
        Tuple(attrs.iter().map(|a| self.0[a.index()].clone()).collect())
    }

    /// *Subsumption*: `u` is subsumed by `v` (written `u ⊑ v`) when they have
    /// the same arity and `u(A) ∈ {v(A), ⊥}` for every attribute `A`. This is
    /// condition (ii) of the insertion semantics in Section 2.
    pub fn subsumed_by(&self, v: &Tuple) -> bool {
        self.0.len() == v.0.len() && self.0.iter().zip(&v.0).all(|(u, w)| u.is_null() || u == w)
    }

    /// Renders the tuple against its schema, e.g. `R(1, "a", ⊥)`.
    pub fn display<'a>(&'a self, schema: &'a RelSchema) -> TupleDisplay<'a> {
        TupleDisplay {
            tuple: self,
            schema,
        }
    }
}

impl Index<AttrId> for Tuple {
    type Output = Value;
    fn index(&self, a: AttrId) -> &Value {
        self.get(a)
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter)
    }
}

/// Display adaptor pairing a tuple with its relation schema.
pub struct TupleDisplay<'a> {
    tuple: &'a Tuple,
    schema: &'a RelSchema,
}

impl fmt::Display for TupleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:?}", self.schema.name(), self.tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;

    fn v(s: &str) -> Value {
        Value::str(s)
    }

    #[test]
    fn padding_fills_missing_attributes_with_null() {
        // u over {K, B} of R(K, A, B): u^⊥ = (k, ⊥, b)
        let t = Tuple::padded(3, [(AttrId(0), v("k")), (AttrId(2), v("b"))]);
        assert_eq!(t.values(), &[v("k"), Value::Null, v("b")]);
        assert_eq!(t.key(), &v("k"));
    }

    #[test]
    fn subsumption_matches_paper_definition() {
        let full = Tuple::new([v("k"), v("a"), v("b")]);
        let partial = Tuple::new([v("k"), Value::Null, v("b")]);
        let other = Tuple::new([v("k"), v("x"), v("b")]);
        assert!(partial.subsumed_by(&full));
        assert!(full.subsumed_by(&full), "subsumption is reflexive");
        assert!(!full.subsumed_by(&partial), "⊥ does not subsume a value");
        assert!(!other.subsumed_by(&full));
        // Different arities never subsume.
        assert!(!Tuple::nulls(2).subsumed_by(&full));
    }

    #[test]
    fn projection_keeps_requested_order() {
        let t = Tuple::new([v("k"), v("a"), v("b")]);
        let p = t.project(&[AttrId(2), AttrId(0)]);
        assert_eq!(p.values(), &[v("b"), v("k")]);
    }

    #[test]
    fn display_against_schema() {
        let r = RelSchema::new("R", ["K", "A"]).unwrap();
        let t = Tuple::new([Value::int(1), Value::Null]);
        assert_eq!(t.display(&r).to_string(), "R(1, ⊥)");
    }

    #[test]
    fn set_and_index() {
        let mut t = Tuple::nulls(2);
        t.set(AttrId(1), v("x"));
        assert_eq!(t[AttrId(1)], v("x"));
        assert_eq!(t.entries().count(), 2);
    }
}
