//! Resource governance for the workspace's hard analyses.
//!
//! The paper's central algorithmic objects are worst-case intractable —
//! minimum scenarios are NP-complete (Theorem 3.3), minimality is
//! coNP-complete (Theorem 3.4), h-boundedness and transparency are
//! PSPACE-complete (Theorems 5.10/5.11). Production deployments therefore
//! never run these unbounded: every governed entry point threads a
//! [`Governor`] — a combined **node budget**, **wall-clock deadline**,
//! cooperative **cancellation token**, and approximate **memory account** —
//! and reports a [`Verdict`] that says not just *whether* the computation
//! finished, but *which* resource ran out and what the best *anytime* answer
//! found so far is.
//!
//! ```
//! use cwf_model::govern::{Governor, Reason, Verdict};
//!
//! let gov = Governor::with_nodes(2);
//! assert!(gov.tick().is_ok());
//! assert!(gov.tick().is_ok());
//! assert_eq!(gov.tick(), Err(Reason::Nodes));
//!
//! // Panic isolation: a poisoned analysis becomes a verdict, not a crash.
//! let v: Verdict<()> = Governor::unlimited().guard(|| panic!("boom"));
//! assert!(matches!(v, Verdict::Exhausted(Reason::Panicked(_))));
//! ```

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub mod pool;

pub use pool::{FirstHit, Pool, SharedMin, DEFAULT_CHUNK};

/// How often (in ticks) the governor consults the wall clock. Cancellation
/// and the node budget are checked on **every** tick; only the comparatively
/// expensive `Instant::now()` is strided.
const DEADLINE_STRIDE: u64 = 64;

/// Why a governed computation stopped before finishing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reason {
    /// The node budget ran out.
    Nodes,
    /// The wall-clock deadline passed.
    Deadline,
    /// The [`CancelToken`] was triggered (typically from another thread).
    Cancelled,
    /// The approximate memory account exceeded its limit.
    Memory,
    /// The computation panicked; the payload is the panic message.
    Panicked(String),
}

impl fmt::Display for Reason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reason::Nodes => write!(f, "node budget exhausted"),
            Reason::Deadline => write!(f, "deadline exceeded"),
            Reason::Cancelled => write!(f, "cancelled"),
            Reason::Memory => write!(f, "memory limit exceeded"),
            Reason::Panicked(msg) => write!(f, "panicked: {msg}"),
        }
    }
}

/// Qualifies an anytime answer: why the search stopped and the best bounds
/// it had proven by then (interpreted by each analysis — e.g. scenario-length
/// bounds for `search_min_scenario`, instance counts for the reachable-set
/// enumeration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bound {
    /// Which resource ran out.
    pub reason: Reason,
    /// Best proven lower bound, if any.
    pub lower: Option<u64>,
    /// Best proven upper bound (e.g. from a greedy witness), if any.
    pub upper: Option<u64>,
}

impl Bound {
    /// A bound with no numeric information (the reason alone).
    pub fn bare(reason: Reason) -> Self {
        Bound {
            reason,
            lower: None,
            upper: None,
        }
    }
}

/// The uniform result of every governed computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict<T> {
    /// The computation finished; the answer is exact.
    Done(T),
    /// A resource ran out, but a best-effort answer was found; the [`Bound`]
    /// says why the search stopped and how good the answer is known to be.
    Anytime(T, Bound),
    /// A resource ran out before any usable answer existed.
    Exhausted(Reason),
}

impl<T> Verdict<T> {
    /// Did the computation finish exactly?
    pub fn is_done(&self) -> bool {
        matches!(self, Verdict::Done(_))
    }

    /// Was the computation cut off with no usable answer?
    pub fn is_exhausted(&self) -> bool {
        matches!(self, Verdict::Exhausted(_))
    }

    /// The answer, exact or anytime.
    pub fn value(&self) -> Option<&T> {
        match self {
            Verdict::Done(v) | Verdict::Anytime(v, _) => Some(v),
            Verdict::Exhausted(_) => None,
        }
    }

    /// Consumes the verdict into its answer, exact or anytime.
    pub fn into_value(self) -> Option<T> {
        match self {
            Verdict::Done(v) | Verdict::Anytime(v, _) => Some(v),
            Verdict::Exhausted(_) => None,
        }
    }

    /// The exhaustion reason, if the computation was cut off.
    pub fn reason(&self) -> Option<&Reason> {
        match self {
            Verdict::Done(_) => None,
            Verdict::Anytime(_, b) => Some(&b.reason),
            Verdict::Exhausted(r) => Some(r),
        }
    }

    /// The anytime bound, if present.
    pub fn bound(&self) -> Option<&Bound> {
        match self {
            Verdict::Anytime(_, b) => Some(b),
            _ => None,
        }
    }

    /// Maps the answer through `f`, preserving the verdict shape.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Verdict<U> {
        match self {
            Verdict::Done(v) => Verdict::Done(f(v)),
            Verdict::Anytime(v, b) => Verdict::Anytime(f(v), b),
            Verdict::Exhausted(r) => Verdict::Exhausted(r),
        }
    }
}

impl<T> Verdict<Option<T>> {
    /// For searches whose answer is itself optional (`Some(witness)` /
    /// `None` = proven absent): the witness found, exact or anytime.
    pub fn found(&self) -> Option<&T> {
        self.value().and_then(|v| v.as_ref())
    }
}

/// A clonable, thread-safe cancellation flag. Cancelling is sticky.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untriggered token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Triggers cancellation; every governed computation holding this token
    /// stops at its next tick.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has the token been triggered?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// The shared resource-governor handle threaded through every hard analysis.
///
/// A `Governor` combines four independent guards, any subset of which may be
/// active:
///
/// * a **node budget** — a count of search nodes (`tick()` per node);
/// * a **wall-clock deadline** — checked every [`DEADLINE_STRIDE`] ticks;
/// * a **cancel token** — checked on *every* tick, so cancellation from
///   another thread stops a search within one tick;
/// * an approximate **memory account** — callers `charge`/`release` bytes
///   for their dominant allocations (enumerated instances, memo tables).
///
/// Counters use interior mutability, so governed code takes `&Governor`.
#[derive(Debug)]
pub struct Governor {
    max_nodes: u64,
    deadline: Option<Instant>,
    mem_limit: Option<u64>,
    cancel: CancelToken,
    nodes_used: AtomicU64,
    mem_used: AtomicU64,
}

impl Default for Governor {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl Governor {
    /// No limits at all (every check passes).
    pub fn unlimited() -> Self {
        Governor {
            max_nodes: u64::MAX,
            deadline: None,
            mem_limit: None,
            cancel: CancelToken::new(),
            nodes_used: AtomicU64::new(0),
            mem_used: AtomicU64::new(0),
        }
    }

    /// A node budget of `n` search nodes.
    pub fn with_nodes(n: u64) -> Self {
        Governor {
            max_nodes: n,
            ..Self::unlimited()
        }
    }

    /// A wall-clock deadline `d` from now (a deadline of zero exhausts on
    /// the first check).
    pub fn with_deadline(d: Duration) -> Self {
        Self::unlimited().deadline(d)
    }

    /// Builder: caps the node budget.
    pub fn nodes(mut self, n: u64) -> Self {
        self.max_nodes = n;
        self
    }

    /// Builder: sets the wall-clock deadline to `d` from now.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(Instant::now() + d);
        self
    }

    /// Builder: caps the approximate memory account at `bytes`.
    pub fn memory_limit(mut self, bytes: u64) -> Self {
        self.mem_limit = Some(bytes);
        self
    }

    /// Builder: attaches an externally held cancellation token.
    pub fn cancelled_by(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// A token that cancels this governor (clonable across threads).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Counts one search node and checks every guard. `Err` names the first
    /// resource found exhausted; searches should unwind to their entry point
    /// and produce an [`Anytime`](Verdict::Anytime) or
    /// [`Exhausted`](Verdict::Exhausted) verdict.
    ///
    /// One `Governor` is shared by every worker of a parallel search, so
    /// admission is a compare-and-swap loop that never counts past the
    /// budget: exactly `max_nodes` ticks succeed across all threads, no
    /// matter how contended, and `nodes_used` stays a true admission count.
    pub fn tick(&self) -> Result<(), Reason> {
        let mut cur = self.nodes_used.load(Ordering::Relaxed);
        let used = loop {
            if cur >= self.max_nodes {
                return Err(Reason::Nodes);
            }
            match self.nodes_used.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break cur + 1,
                Err(seen) => cur = seen,
            }
        };
        if self.cancel.is_cancelled() {
            return Err(Reason::Cancelled);
        }
        // The clock is strided, but the first tick always checks it so a
        // zero deadline exhausts immediately.
        if used % DEADLINE_STRIDE == 1 {
            self.check_deadline()?;
        }
        Ok(())
    }

    /// Checks the tick-independent guards (deadline, cancellation, memory)
    /// without consuming a node. Entry points call this once up front.
    pub fn check(&self) -> Result<(), Reason> {
        if self.cancel.is_cancelled() {
            return Err(Reason::Cancelled);
        }
        self.check_deadline()?;
        if let Some(limit) = self.mem_limit {
            if self.mem_used.load(Ordering::Relaxed) > limit {
                return Err(Reason::Memory);
            }
        }
        Ok(())
    }

    fn check_deadline(&self) -> Result<(), Reason> {
        match self.deadline {
            Some(d) if Instant::now() >= d => Err(Reason::Deadline),
            _ => Ok(()),
        }
    }

    /// Charges `bytes` to the approximate memory account.
    pub fn charge(&self, bytes: u64) -> Result<(), Reason> {
        let used = self.mem_used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        match self.mem_limit {
            Some(limit) if used > limit => Err(Reason::Memory),
            _ => Ok(()),
        }
    }

    /// Releases `bytes` from the memory account (saturating).
    pub fn release(&self, bytes: u64) {
        let _ = self
            .mem_used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(bytes))
            });
    }

    /// Search nodes consumed so far.
    pub fn nodes_used(&self) -> u64 {
        self.nodes_used.load(Ordering::Relaxed)
    }

    /// Bytes currently charged to the memory account.
    pub fn mem_used(&self) -> u64 {
        self.mem_used.load(Ordering::Relaxed)
    }

    /// Runs `f` with panic isolation: a panicking analysis yields
    /// `Exhausted(Panicked(message))` instead of unwinding into the caller —
    /// one poisoned query must not take down a coordinator serving other
    /// peers. Every governed entry point wraps its body in this.
    pub fn guard<T>(&self, f: impl FnOnce() -> Verdict<T>) -> Verdict<T> {
        match panic::catch_unwind(AssertUnwindSafe(f)) {
            Ok(v) => v,
            Err(payload) => Verdict::Exhausted(Reason::Panicked(panic_message(&*payload))),
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn node_budget_exhausts_exactly() {
        let gov = Governor::with_nodes(3);
        assert!(gov.tick().is_ok());
        assert!(gov.tick().is_ok());
        assert!(gov.tick().is_ok());
        assert_eq!(gov.tick(), Err(Reason::Nodes));
        // Denied ticks are not admitted: the counter is exact.
        assert_eq!(gov.nodes_used(), 3);
        assert_eq!(gov.tick(), Err(Reason::Nodes));
        assert_eq!(gov.nodes_used(), 3);
    }

    #[test]
    fn node_budget_never_over_admits_under_contention() {
        // Many threads hammer one shared governor: the CAS admission loop
        // must hand out exactly `budget` successful ticks in total, however
        // the interleavings fall.
        const BUDGET: u64 = 10_000;
        let gov = Governor::with_nodes(BUDGET);
        let admitted = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mut local = 0u64;
                    // Over-subscribe: every worker tries the full budget.
                    for _ in 0..BUDGET {
                        if gov.tick().is_ok() {
                            local += 1;
                        }
                    }
                    admitted.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(admitted.load(Ordering::Relaxed), BUDGET);
        assert_eq!(gov.nodes_used(), BUDGET);
        assert_eq!(gov.tick(), Err(Reason::Nodes));
    }

    #[test]
    fn zero_deadline_exhausts_on_first_check() {
        let gov = Governor::with_deadline(Duration::ZERO);
        assert_eq!(gov.check(), Err(Reason::Deadline));
        assert_eq!(gov.tick(), Err(Reason::Deadline));
    }

    #[test]
    fn cancellation_is_seen_within_one_tick() {
        let gov = Governor::unlimited();
        let token = gov.cancel_token();
        assert!(gov.tick().is_ok());
        let handle = thread::spawn(move || token.cancel());
        handle.join().unwrap();
        assert_eq!(gov.tick(), Err(Reason::Cancelled));
    }

    #[test]
    fn memory_account_charges_and_releases() {
        let gov = Governor::unlimited().memory_limit(100);
        assert!(gov.charge(60).is_ok());
        assert_eq!(gov.charge(60), Err(Reason::Memory));
        gov.release(60);
        assert!(gov.charge(40).is_ok());
        assert_eq!(gov.mem_used(), 100);
    }

    #[test]
    fn guard_converts_panics() {
        let v: Verdict<u32> = Governor::unlimited().guard(|| panic!("poisoned evaluator"));
        match v {
            Verdict::Exhausted(Reason::Panicked(msg)) => {
                assert!(msg.contains("poisoned evaluator"));
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn verdict_accessors() {
        let done: Verdict<Option<u32>> = Verdict::Done(Some(7));
        assert_eq!(done.found(), Some(&7));
        assert!(done.is_done());
        let any = Verdict::Anytime(Some(9u32), Bound::bare(Reason::Deadline));
        assert_eq!(any.found(), Some(&9));
        assert_eq!(any.reason(), Some(&Reason::Deadline));
        let ex: Verdict<Option<u32>> = Verdict::Exhausted(Reason::Nodes);
        assert_eq!(ex.found(), None);
        assert_eq!(
            ex.map(|v| v.map(|x| x + 1)),
            Verdict::Exhausted(Reason::Nodes)
        );
    }
}
