//! Semantics-preserving simplification of selection conditions.
//!
//! The solver in [`crate::solver`] is exponential in the number of distinct
//! atoms, so shrinking conditions before analysis pays off — and synthesized
//! or mechanically transformed specs accumulate trivial structure
//! (`¬¬c`, `c ∧ true`, empty junctions, duplicate conjuncts…).
//! [`simplify`] applies a fixpoint of local rewrites and a final
//! solver-backed collapse of conditions equivalent to `true`/`false`.
//! Equivalence with the input is property-tested.

use crate::condition::Condition;
use crate::solver;

/// Simplifies a condition to an equivalent, usually smaller, one.
pub fn simplify(c: &Condition) -> Condition {
    let mut cur = local(c);
    // Local rules are confluent enough that a couple of passes settle.
    for _ in 0..4 {
        let next = local(&cur);
        if next == cur {
            break;
        }
        cur = next;
    }
    // Solver-backed collapse (cheap on already-shrunk conditions).
    if matches!(cur, Condition::True | Condition::False) {
        return cur;
    }
    if !solver::satisfiable(&cur) {
        return Condition::False;
    }
    if solver::tautology(&cur) {
        return Condition::True;
    }
    cur
}

/// One pass of local rewrites.
fn local(c: &Condition) -> Condition {
    match c {
        Condition::True => Condition::True,
        Condition::False => Condition::False,
        Condition::EqConst(a, v) => Condition::EqConst(*a, *v),
        Condition::EqAttr(a, b) if a == b => Condition::True,
        Condition::EqAttr(a, b) => {
            // Canonical orientation.
            let (x, y) = if a <= b { (*a, *b) } else { (*b, *a) };
            Condition::EqAttr(x, y)
        }
        Condition::Not(inner) => match local(inner) {
            Condition::True => Condition::False,
            Condition::False => Condition::True,
            Condition::Not(inner2) => *inner2, // ¬¬c = c
            other => Condition::Not(Box::new(other)),
        },
        Condition::And(cs) => {
            let mut parts: Vec<Condition> = Vec::new();
            for part in cs {
                match local(part) {
                    Condition::True => {}
                    Condition::False => return Condition::False,
                    // Flatten nested conjunctions.
                    Condition::And(inner) => parts.extend(inner),
                    other => {
                        if !parts.contains(&other) {
                            parts.push(other);
                        }
                    }
                }
            }
            match parts.len() {
                0 => Condition::True,
                1 => parts.pop().expect("non-empty"),
                _ => Condition::And(parts),
            }
        }
        Condition::Or(cs) => {
            let mut parts: Vec<Condition> = Vec::new();
            for part in cs {
                match local(part) {
                    Condition::False => {}
                    Condition::True => return Condition::True,
                    Condition::Or(inner) => parts.extend(inner),
                    other => {
                        if !parts.contains(&other) {
                            parts.push(other);
                        }
                    }
                }
            }
            match parts.len() {
                0 => Condition::False,
                1 => parts.pop().expect("non-empty"),
                _ => Condition::Or(parts),
            }
        }
    }
}

/// Number of AST nodes (for measuring shrinkage).
pub fn size(c: &Condition) -> usize {
    match c {
        Condition::True | Condition::False | Condition::EqConst(..) | Condition::EqAttr(..) => 1,
        Condition::Not(inner) => 1 + size(inner),
        Condition::And(cs) | Condition::Or(cs) => 1 + cs.iter().map(size).sum::<usize>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;
    use crate::value::Value;
    use proptest::prelude::*;

    const A: AttrId = AttrId(1);
    const B: AttrId = AttrId(2);

    fn eq(a: AttrId, v: &str) -> Condition {
        Condition::eq_const(a, v)
    }

    #[test]
    fn trivial_rewrites() {
        assert_eq!(simplify(&Condition::EqAttr(A, A)), Condition::True);
        assert_eq!(simplify(&Condition::EqAttr(B, A)), Condition::EqAttr(A, B));
        assert_eq!(simplify(&Condition::True.not().not()), Condition::True);
        assert_eq!(simplify(&Condition::and([])), Condition::True);
        assert_eq!(simplify(&Condition::or([])), Condition::False);
        assert_eq!(
            simplify(&Condition::and([
                Condition::True,
                eq(A, "x"),
                Condition::True
            ])),
            eq(A, "x")
        );
        assert_eq!(
            simplify(&Condition::or([Condition::False, eq(A, "x")])),
            eq(A, "x")
        );
        assert_eq!(
            simplify(&Condition::and([eq(A, "x"), Condition::False])),
            Condition::False
        );
        assert_eq!(
            simplify(&Condition::or([eq(A, "x"), Condition::True])),
            Condition::True
        );
    }

    #[test]
    fn flattening_and_dedup() {
        let nested = Condition::and([eq(A, "x"), Condition::and([eq(A, "x"), eq(B, "y")])]);
        let s = simplify(&nested);
        assert_eq!(s, Condition::and([eq(A, "x"), eq(B, "y")]));
        assert!(size(&s) < size(&nested));
    }

    #[test]
    fn solver_backed_collapse() {
        // A = x ∧ A = y is unsatisfiable.
        let c = Condition::and([eq(A, "x"), eq(A, "y")]);
        assert_eq!(simplify(&c), Condition::False);
        // A = x ∨ A ≠ x is a tautology.
        let t = Condition::or([eq(A, "x"), eq(A, "x").not()]);
        assert_eq!(simplify(&t), Condition::True);
    }

    fn arb_cond() -> impl Strategy<Value = Condition> {
        let leaf = prop_oneof![
            Just(Condition::True),
            Just(Condition::False),
            Just(Condition::EqConst(A, Value::str("x"))),
            Just(Condition::EqConst(A, Value::str("y"))),
            Just(Condition::EqConst(B, Value::Null)),
            Just(Condition::EqAttr(A, B)),
        ];
        leaf.prop_recursive(3, 24, 3, |inner| {
            prop_oneof![
                inner.clone().prop_map(|c| c.not()),
                prop::collection::vec(inner.clone(), 0..3).prop_map(Condition::And),
                prop::collection::vec(inner, 0..3).prop_map(Condition::Or),
            ]
        })
    }

    proptest! {
        /// Simplification preserves semantics (checked by the complete
        /// solver) and never grows the condition.
        #[test]
        fn equivalence_preserved(c in arb_cond()) {
            let s = simplify(&c);
            prop_assert!(crate::solver::equivalent(&c, &s), "{c:?} vs {s:?}");
            prop_assert!(size(&s) <= size(&c));
        }

        /// Simplification is idempotent.
        #[test]
        fn idempotent(c in arb_cond()) {
            let s = simplify(&c);
            prop_assert_eq!(simplify(&s), s);
        }
    }
}
