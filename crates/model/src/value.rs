//! Domain values.
//!
//! The paper assumes an infinite data domain `dom` with a distinguished
//! element `⊥` (an *undefined* value) and, disjoint from it, an infinite set
//! of *fresh* values used to instantiate head-only variables of rules
//! ("globally fresh" values, Section 2).
//!
//! We realize `dom` as the disjoint union of booleans, 64-bit integers,
//! interned strings, and a dedicated countable pool of [`Value::Fresh`]
//! symbols. Fresh symbols can never be written in a program or schema, so a
//! monotone counter suffices to guarantee global freshness within a run.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::intern::Istr;

/// A single domain value.
///
/// `Value::Null` is the paper's `⊥`. The ordering is total (needed for
/// deterministic, reproducible iteration over instances) but otherwise
/// semantically meaningless: the model only ever compares values for
/// (dis)equality.
///
/// `Value` is `Copy`: strings are interned [`Istr`] handles with pointer
/// equality, so comparing, hashing and copying values is O(1) regardless of
/// string length. The ordering over `Str` is still by content (via `Istr`'s
/// `Ord`), so instance iteration orders are identical to the old
/// `Arc<str>` representation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub enum Value {
    /// The undefined value `⊥`.
    #[default]
    Null,
    /// A boolean constant.
    Bool(bool),
    /// An integer constant.
    Int(i64),
    /// An interned string constant (`Copy`, O(1) equality).
    Str(Istr),
    /// A globally fresh symbol drawn by a [`FreshGen`]; never denotable by a
    /// program constant.
    Fresh(u64),
}

impl Value {
    /// Builds a string value (interning the content).
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Istr::new(s.as_ref()))
    }

    /// Builds an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Is this the undefined value `⊥`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Is this a fresh symbol (i.e. created at run time rather than written
    /// in a program)?
    pub fn is_fresh(&self) -> bool {
        matches!(self, Value::Fresh(_))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "⊥"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Fresh(n) => write!(f, "ν{n}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(s)
    }
}

/// A generator of globally fresh values.
///
/// The run semantics (Section 2) requires that a variable occurring in the
/// head but not the body of a rule be instantiated to a value that occurs
/// neither in `const(P)` nor in any earlier instance of the run. Because
/// [`Value::Fresh`] symbols are not denotable by programs, a strictly
/// increasing counter satisfies this for any single run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FreshGen {
    next: u64,
}

impl FreshGen {
    /// A generator starting at `ν0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// A generator whose first output is `νstart` (useful when resuming a
    /// run from a serialized prefix).
    pub fn starting_at(start: u64) -> Self {
        Self { next: start }
    }

    /// Draws the next fresh value.
    pub fn draw(&mut self) -> Value {
        let v = Value::Fresh(self.next);
        self.next += 1;
        v
    }

    /// The counter the next draw will use.
    pub fn peek(&self) -> u64 {
        self.next
    }

    /// Advances the generator past `v` if `v` is a fresh symbol, so that
    /// replaying a prefix of events keeps later draws globally fresh.
    pub fn observe(&mut self, v: &Value) {
        if let Value::Fresh(n) = v {
            if *n >= self.next {
                self.next = n + 1;
            }
        }
    }

    /// Raises the counter to at least `next` (never lowers it) — for
    /// restoring a persisted watermark, where values drawn *and deleted*
    /// before a snapshot are no longer observable from any instance.
    pub fn raise_to(&mut self, next: u64) {
        self.next = self.next.max(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_default_and_detected() {
        assert!(Value::default().is_null());
        assert!(Value::Null.is_null());
        assert!(!Value::int(0).is_null());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "⊥");
        assert_eq!(Value::int(42).to_string(), "42");
        assert_eq!(Value::str("sue").to_string(), "\"sue\"");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Fresh(7).to_string(), "ν7");
    }

    #[test]
    fn fresh_gen_is_strictly_increasing() {
        let mut g = FreshGen::new();
        let a = g.draw();
        let b = g.draw();
        assert_ne!(a, b);
        assert!(a < b);
        assert!(a.is_fresh() && b.is_fresh());
    }

    #[test]
    fn fresh_gen_observe_skips_past_seen_values() {
        let mut g = FreshGen::new();
        g.observe(&Value::Fresh(10));
        assert_eq!(g.draw(), Value::Fresh(11));
        // Observing constants does nothing.
        g.observe(&Value::int(99));
        assert_eq!(g.draw(), Value::Fresh(12));
        // Observing an already-passed fresh value does nothing.
        g.observe(&Value::Fresh(3));
        assert_eq!(g.draw(), Value::Fresh(13));
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut vs = vec![
            Value::str("b"),
            Value::Null,
            Value::int(1),
            Value::Fresh(0),
            Value::Bool(false),
            Value::str("a"),
        ];
        vs.sort();
        let again = {
            let mut v = vs.clone();
            v.sort();
            v
        };
        assert_eq!(vs, again);
        assert_eq!(vs[0], Value::Null, "⊥ sorts first");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(String::from("y")), Value::str("y"));
    }
}
