//! A small internal thread pool for the governed hard analyses.
//!
//! The paper's analyses — minimum-scenario search, minimal-scenario
//! enumeration, h-boundedness, condition satisfiability — are the CPU-bound
//! core of this reproduction, and all of them decompose into independent
//! subproblems (branch-and-bound subtrees, mask ranges, frontier items).
//! [`Pool::run`] executes one task per item on scoped OS threads
//! ([`std::thread::scope`], no external dependency): a shared atomic index
//! is the work queue idle workers steal the next task from, and results land
//! in **index-ordered slots**, so the caller merges them in the exact order
//! a sequential loop would have produced — the foundation of the
//! "parallel is byte-identical to sequential" contract the differential
//! battery in `tests/par_analysis.rs` enforces.
//!
//! Sizing: [`Pool::global`] reads the `CWF_THREADS` environment variable
//! once (falling back to [`std::thread::available_parallelism`]); tests and
//! benches construct explicit [`Pool::with_threads`] handles instead. A pool
//! of one thread runs every task inline on the caller's stack, which is how
//! the sequential reference paths stay the oracle for the parallel ones.
//!
//! Granularity: workers claim work in **chunks** of consecutive item
//! indices (one atomic claim per chunk, not per item), so fine-grained
//! subproblems — shallow branch-and-bound subtrees, single mask ranges —
//! amortize the queue traffic. The chunk size comes from the `CWF_CHUNK`
//! environment variable ([`Pool::from_env`], default
//! [`DEFAULT_CHUNK`]); tests and benches pin it with
//! [`Pool::with_chunk`]. Chunking only changes *which worker* computes an
//! item, never the item→slot mapping, so merged results are byte-identical
//! at every chunk size — the chunk-sweep battery in
//! `tests/par_analysis.rs` enforces exactly that.
//!
//! Panic discipline: a panicking task does not abort its siblings. Every
//! task runs under `catch_unwind`; after all tasks finish, the payload of
//! the **smallest-index** panicked task is re-raised on the caller — exactly
//! the panic a sequential loop would have surfaced first — so the governor's
//! [`guard`](super::Governor::guard) still converts it into
//! `Exhausted(Panicked)` deterministically.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread;

/// Default work-claim granularity: how many consecutive items one atomic
/// claim hands a worker. Large enough to amortize queue traffic on
/// fine-grained subproblems, small enough to keep a handful of workers
/// load-balanced over typical fan-outs.
pub const DEFAULT_CHUNK: usize = 16;

/// The work-distribution handle. Cheap to construct; holds no threads while
/// idle (workers are scoped to each [`run`](Pool::run) call).
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
    chunk: usize,
}

impl Pool {
    /// A pool of exactly `n` workers (clamped to at least 1) with the
    /// default claim granularity.
    pub fn with_threads(n: usize) -> Self {
        Pool::with_chunk(n, DEFAULT_CHUNK)
    }

    /// A pool of `n` workers claiming `chunk` consecutive items at a time
    /// (both clamped to at least 1) — the explicit constructor the
    /// determinism batteries sweep.
    pub fn with_chunk(n: usize, chunk: usize) -> Self {
        Pool {
            threads: n.max(1),
            chunk: chunk.max(1),
        }
    }

    /// The single-threaded pool: every task runs inline, in order, on the
    /// caller's stack — the sequential oracle path.
    pub fn sequential() -> Self {
        Pool::with_threads(1)
    }

    /// Sizes a pool from the `CWF_THREADS` environment variable, falling
    /// back to [`std::thread::available_parallelism`] (and to 1 if even that
    /// is unavailable). The claim granularity comes from `CWF_CHUNK`
    /// (default [`DEFAULT_CHUNK`]).
    pub fn from_env() -> Self {
        let n = std::env::var("CWF_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()));
        let chunk = std::env::var("CWF_CHUNK")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&c| c >= 1)
            .unwrap_or(DEFAULT_CHUNK);
        Pool::with_chunk(n, chunk)
    }

    /// The process-wide default pool, initialized from [`from_env`](Pool::from_env)
    /// on first use. Analyses without an explicit pool route through this.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(Pool::from_env)
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Claim granularity: consecutive items handed out per atomic claim.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Does this pool run everything inline (one worker)?
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Runs `f(index, item)` for every item and returns the results **in
    /// item order**, regardless of which worker computed what. With one
    /// worker (or at most one item) everything runs inline, sequentially.
    ///
    /// If any task panics, the panic of the smallest-index panicked task is
    /// re-raised after all tasks have settled (siblings run to completion;
    /// only the poisoned branch is lost).
    pub fn run<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, it)| f(i, it))
                .collect();
        }
        let slots: Vec<Mutex<Option<thread::Result<T>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let queue: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(n);
        // Effective granularity: never hand one worker more than an even
        // share of the items in a single claim, or a small fan-out (e.g. the
        // 2^spawn-depth subproblems of the min-scenario search) would be
        // swallowed whole by the first claim and run serially.
        let chunk = self.chunk.min(n.div_ceil(workers)).max(1);
        thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    // One atomic claim per chunk of consecutive items; the
                    // item→slot mapping is untouched, so merge order — and
                    // therefore every analysis result — is independent of
                    // the chunk size.
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + chunk).min(n) {
                        let item = queue[i]
                            .lock()
                            .unwrap()
                            .take()
                            .expect("each task runs once");
                        let result = panic::catch_unwind(AssertUnwindSafe(|| f(i, item)));
                        *slots[i].lock().unwrap() = Some(result);
                    }
                });
            }
        });
        let mut out = Vec::with_capacity(n);
        for slot in slots {
            match slot.into_inner().unwrap().expect("every slot is filled") {
                Ok(v) => out.push(v),
                // First panic in index order — the one a sequential loop
                // would have raised.
                Err(payload) => panic::resume_unwind(payload),
            }
        }
        out
    }
}

/// A shared atomic minimum — the cross-worker incumbent bound of the
/// branch-and-bound searches. `u64::MAX` means "nothing yet".
#[derive(Debug)]
pub struct SharedMin(AtomicU64);

impl SharedMin {
    /// A tracker holding `initial` (use `u64::MAX` for "empty").
    pub fn new(initial: u64) -> Self {
        SharedMin(AtomicU64::new(initial))
    }

    /// The current minimum.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Lowers the minimum to `v` if `v` is smaller (atomic-min CAS loop);
    /// returns whether `v` became the new minimum.
    pub fn relax(&self, v: u64) -> bool {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            if v >= cur {
                return false;
            }
            match self
                .0
                .compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// A shared atomic minimum over task **indices** — the early-exit signal of
/// the first-witness searches. A worker whose index is beaten by an already
/// reported smaller index can stop: the index-ordered merge will never read
/// its result.
#[derive(Debug, Default)]
pub struct FirstHit(AtomicUsize);

impl FirstHit {
    /// No hit yet.
    pub fn new() -> Self {
        FirstHit(AtomicUsize::new(usize::MAX))
    }

    /// Reports a hit at task `index` (keeps the smallest).
    pub fn offer(&self, index: usize) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            if index >= cur {
                return;
            }
            match self
                .0
                .compare_exchange_weak(cur, index, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The smallest reported index, if any.
    pub fn get(&self) -> Option<usize> {
        match self.0.load(Ordering::Relaxed) {
            usize::MAX => None,
            i => Some(i),
        }
    }

    /// Is there a hit at an index strictly smaller than `index`? (If so,
    /// task `index` may abandon its work — the merge will not use it.)
    pub fn beats(&self, index: usize) -> bool {
        self.0.load(Ordering::Relaxed) < index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::govern::{Governor, Reason, Verdict};
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_come_back_in_item_order() {
        for threads in [1, 2, 4, 8] {
            let pool = Pool::with_threads(threads);
            let items: Vec<usize> = (0..64).collect();
            let out = pool.run(items, |i, item| {
                assert_eq!(i, item);
                item * item
            });
            assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunk_size_never_changes_results() {
        // Sweep chunk sizes (including ones larger than the item count):
        // identical output vector every time.
        let items: Vec<usize> = (0..100).collect();
        let expect: Vec<usize> = items.iter().map(|i| i * 3).collect();
        for threads in [1, 2, 4] {
            for chunk in [1, 3, 16, 64, 1000] {
                let pool = Pool::with_chunk(threads, chunk);
                assert_eq!(pool.chunk(), chunk);
                let out = pool.run(items.clone(), |i, item| {
                    assert_eq!(i, item);
                    item * 3
                });
                assert_eq!(out, expect, "threads={threads} chunk={chunk}");
            }
        }
    }

    #[test]
    fn single_item_runs_inline() {
        let pool = Pool::with_threads(8);
        assert_eq!(pool.run(vec![41], |_, x| x + 1), vec![42]);
        assert_eq!(pool.run(Vec::<u32>::new(), |_, x| x), Vec::<u32>::new());
    }

    #[test]
    fn panic_in_one_task_poisons_only_that_branch() {
        // Siblings of the poisoned task still run to completion, and the
        // re-raised panic is deterministic (smallest index), so the
        // governor's guard reports the same verdict as a sequential loop.
        let completed = AtomicU32::new(0);
        let v: Verdict<Vec<u32>> = Governor::unlimited().guard(|| {
            let out = Pool::with_threads(4).run((0..16).collect(), |_, i: u32| {
                if i == 3 || i == 11 {
                    panic!("task {i} poisoned");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                i
            });
            Verdict::Done(out)
        });
        match v {
            Verdict::Exhausted(Reason::Panicked(msg)) => {
                assert!(
                    msg.contains("task 3 poisoned"),
                    "smallest index wins: {msg}"
                );
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(completed.load(Ordering::Relaxed), 14, "siblings all ran");
    }

    #[test]
    fn shared_min_relaxes_under_contention() {
        let min = SharedMin::new(u64::MAX);
        Pool::with_threads(4).run((0..100u64).collect(), |_, v| {
            min.relax(1000 - v);
        });
        assert_eq!(min.get(), 901);
    }

    #[test]
    fn first_hit_keeps_the_smallest_index() {
        let hit = FirstHit::new();
        assert_eq!(hit.get(), None);
        assert!(!hit.beats(0));
        Pool::with_threads(4).run(vec![9usize, 4, 7, 12], |_, idx| hit.offer(idx));
        assert_eq!(hit.get(), Some(4));
        assert!(hit.beats(5));
        assert!(!hit.beats(4));
    }

    #[test]
    fn env_sizing_parses_and_clamps() {
        // `from_env` must never yield a zero-sized pool even on odd input;
        // the parse itself is exercised indirectly (the variable may or may
        // not be set in the harness environment).
        assert!(Pool::from_env().threads() >= 1);
        assert!(Pool::sequential().is_sequential());
        assert_eq!(Pool::with_threads(0).threads(), 1);
    }
}
