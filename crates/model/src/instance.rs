//! Database instances.
//!
//! A (valid) instance maps every relation of the schema to a finite keyed
//! relation: no tuple has `⊥` as key, and keys are unique within a relation
//! (`Inst_K(D)`, Section 2). Ordered maps give deterministic iteration, which
//! makes runs, scenarios and synthesized programs reproducible.
//!
//! [`RawInstance`] is the *pre-chase* form in which key collisions may occur
//! transiently (e.g. `I ∪ {R(u^⊥)}` during an insertion); the chase in
//! [`crate::chase::chase`] turns a raw instance back into a valid one or reports a
//! conflict.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::schema::{RelId, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// A valid keyed relation: key value → tuple (whose key equals the map key).
#[derive(Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Relation {
    tuples: BTreeMap<Value, Tuple>,
}

impl Relation {
    /// The empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuple with key `k`, if any.
    pub fn get(&self, k: &Value) -> Option<&Tuple> {
        self.tuples.get(k)
    }

    /// Does a tuple with key `k` exist? (This is the `Key_R` view of the
    /// paper: `I(Key_R) = π_K(I(R))`.)
    pub fn contains_key(&self, k: &Value) -> bool {
        self.tuples.contains_key(k)
    }

    /// Inserts a tuple, replacing any previous tuple with the same key.
    /// Returns an error if the tuple's key is `⊥` (validity).
    pub fn insert(&mut self, t: Tuple) -> Result<Option<Tuple>, ModelError> {
        if t.key().is_null() {
            return Err(ModelError::NullKey);
        }
        Ok(self.tuples.insert(*t.key(), t))
    }

    /// Removes (and returns) the tuple with key `k`.
    pub fn remove(&mut self, k: &Value) -> Option<Tuple> {
        self.tuples.remove(k)
    }

    /// Iterates over tuples in key order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.values()
    }

    /// Iterates over keys in order (`Key_R`).
    pub fn keys(&self) -> impl Iterator<Item = &Value> {
        self.tuples.keys()
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.tuples.values()).finish()
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::collections::btree_map::Values<'a, Value, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.values()
    }
}

/// A valid global instance over a [`Schema`]: one [`Relation`] per relation
/// id, in schema order.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    relations: Vec<Relation>,
}

impl Instance {
    /// The empty instance over `schema`.
    pub fn empty(schema: &Schema) -> Self {
        Instance {
            relations: (0..schema.len()).map(|_| Relation::new()).collect(),
        }
    }

    /// The relation instance of `r`.
    pub fn rel(&self, r: RelId) -> &Relation {
        &self.relations[r.index()]
    }

    /// Mutable access to the relation instance of `r`.
    pub fn rel_mut(&mut self, r: RelId) -> &mut Relation {
        &mut self.relations[r.index()]
    }

    /// Number of relations (schema size).
    pub fn width(&self) -> usize {
        self.relations.len()
    }

    /// Total number of tuples over all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Is the instance entirely empty (the paper's initial instance `∅`)?
    pub fn is_empty(&self) -> bool {
        self.relations.iter().all(Relation::is_empty)
    }

    /// Iterates `(relation id, tuple)` over the whole instance.
    pub fn facts(&self) -> impl Iterator<Item = (RelId, &Tuple)> {
        self.relations
            .iter()
            .enumerate()
            .flat_map(|(i, rel)| rel.iter().map(move |t| (RelId(i as u32), t)))
    }

    /// The active domain: every non-`⊥` value occurring in the instance.
    /// Used by the global-freshness requirement on runs and by the
    /// transparency definitions (`adom(J) ∩ new(α) = ∅`, Section 5).
    pub fn adom(&self) -> BTreeSet<Value> {
        let mut dom = BTreeSet::new();
        for (_, t) in self.facts() {
            for v in t.values() {
                if !v.is_null() {
                    dom.insert(*v);
                }
            }
        }
        dom
    }

    /// Restriction `I|K(·)`: keeps, for each relation `r`, only the tuples
    /// whose key belongs to `keys(r)` (Lemma A.3 of the paper).
    pub fn restrict_keys(&self, keys: impl Fn(RelId, &Value) -> bool) -> Instance {
        let mut out = Instance {
            relations: vec![Relation::new(); self.relations.len()],
        };
        for (r, t) in self.facts() {
            if keys(r, t.key()) {
                out.relations[r.index()]
                    .insert(t.clone())
                    .expect("source instance was valid");
            }
        }
        out
    }

    /// Renders the instance against its schema (one fact per line, sorted).
    pub fn display<'a>(&'a self, schema: &'a Schema) -> InstanceDisplay<'a> {
        InstanceDisplay {
            instance: self,
            schema,
        }
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.relations.iter()).finish()
    }
}

/// Display adaptor pairing an instance with its schema.
pub struct InstanceDisplay<'a> {
    instance: &'a Instance,
    schema: &'a Schema,
}

impl fmt::Display for InstanceDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (r, t) in self.instance.facts() {
            if !first {
                writeln!(f)?;
            }
            first = false;
            write!(f, "{}", t.display(self.schema.relation(r)))?;
        }
        Ok(())
    }
}

/// A *pre-chase* instance: a bag of tuples per relation, where key collisions
/// and `⊥` keys are allowed. This is the input of [`crate::chase::chase`].
#[derive(Clone, PartialEq, Eq, Default)]
pub struct RawInstance {
    relations: Vec<Vec<Tuple>>,
}

impl RawInstance {
    /// An empty raw instance shaped like `schema`.
    pub fn empty(schema: &Schema) -> Self {
        RawInstance {
            relations: vec![Vec::new(); schema.len()],
        }
    }

    /// Starts from a valid instance (its tuples, unchanged).
    pub fn from_instance(i: &Instance) -> Self {
        RawInstance {
            relations: (0..i.width())
                .map(|r| i.rel(RelId(r as u32)).iter().cloned().collect())
                .collect(),
        }
    }

    /// Adds a tuple to relation `r`.
    pub fn push(&mut self, r: RelId, t: Tuple) {
        self.relations[r.index()].push(t);
    }

    /// The tuples of relation `r` (in insertion order).
    pub fn rel(&self, r: RelId) -> &[Tuple] {
        &self.relations[r.index()]
    }

    /// Number of relations.
    pub fn width(&self) -> usize {
        self.relations.len()
    }
}

impl fmt::Debug for RawInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.relations.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelSchema;

    fn schema() -> Schema {
        Schema::from_relations([
            RelSchema::new("R", ["K", "A"]).unwrap(),
            RelSchema::proposition("T"),
        ])
        .unwrap()
    }

    fn t2(k: &str, a: &str) -> Tuple {
        Tuple::new([Value::str(k), Value::str(a)])
    }

    #[test]
    fn relation_insert_lookup_remove() {
        let mut rel = Relation::new();
        assert!(rel.insert(t2("k1", "a")).unwrap().is_none());
        assert!(rel.contains_key(&Value::str("k1")));
        assert_eq!(rel.get(&Value::str("k1")), Some(&t2("k1", "a")));
        // Same key replaces.
        let old = rel.insert(t2("k1", "b")).unwrap();
        assert_eq!(old, Some(t2("k1", "a")));
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.remove(&Value::str("k1")), Some(t2("k1", "b")));
        assert!(rel.is_empty());
    }

    #[test]
    fn relation_rejects_null_key() {
        let mut rel = Relation::new();
        let t = Tuple::new([Value::Null, Value::str("a")]);
        assert!(matches!(rel.insert(t), Err(ModelError::NullKey)));
    }

    #[test]
    fn instance_facts_and_adom() {
        let s = schema();
        let mut i = Instance::empty(&s);
        assert!(i.is_empty());
        i.rel_mut(RelId(0)).insert(t2("k", "a")).unwrap();
        i.rel_mut(RelId(1))
            .insert(Tuple::new([Value::int(0)]))
            .unwrap();
        assert_eq!(i.total_tuples(), 2);
        let facts: Vec<_> = i.facts().map(|(r, _)| r).collect();
        assert_eq!(facts, vec![RelId(0), RelId(1)]);
        let dom = i.adom();
        assert!(dom.contains(&Value::str("k")));
        assert!(dom.contains(&Value::str("a")));
        assert!(dom.contains(&Value::int(0)));
        assert_eq!(dom.len(), 3);
    }

    #[test]
    fn adom_skips_nulls() {
        let s = schema();
        let mut i = Instance::empty(&s);
        i.rel_mut(RelId(0))
            .insert(Tuple::new([Value::str("k"), Value::Null]))
            .unwrap();
        assert_eq!(i.adom().len(), 1);
    }

    #[test]
    fn restrict_keys_filters_per_relation() {
        let s = schema();
        let mut i = Instance::empty(&s);
        i.rel_mut(RelId(0)).insert(t2("k1", "a")).unwrap();
        i.rel_mut(RelId(0)).insert(t2("k2", "b")).unwrap();
        let j = i.restrict_keys(|_, k| k == &Value::str("k1"));
        assert_eq!(j.rel(RelId(0)).len(), 1);
        assert!(j.rel(RelId(0)).contains_key(&Value::str("k1")));
    }

    #[test]
    fn raw_instance_allows_key_collisions() {
        let s = schema();
        let mut raw = RawInstance::from_instance(&Instance::empty(&s));
        raw.push(RelId(0), t2("k", "a"));
        raw.push(RelId(0), Tuple::new([Value::str("k"), Value::Null]));
        assert_eq!(raw.rel(RelId(0)).len(), 2);
        assert_eq!(raw.width(), 2);
    }

    #[test]
    fn display_lists_facts() {
        let s = schema();
        let mut i = Instance::empty(&s);
        i.rel_mut(RelId(0)).insert(t2("k", "a")).unwrap();
        let shown = i.display(&s).to_string();
        assert_eq!(shown, "R(\"k\", \"a\")");
    }
}
