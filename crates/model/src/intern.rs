//! String interning for program constants.
//!
//! Every string constant that enters the system — program text, decoded WAL
//! records, chaos workload generators — is folded into a process-global,
//! append-only symbol table and handed back as an [`Istr`]: a `Copy` handle
//! to a `&'static str`. Because the table guarantees at most one leaked
//! allocation per distinct string, *pointer* equality coincides with
//! *content* equality, which makes [`Istr`] (and therefore
//! [`crate::Value`]) O(1) to compare and trivially `Copy`.
//!
//! The table is process-global rather than per-run on purpose: symbols are
//! program constants shared freely across runs, shards, coordinator
//! replicas and analysis workers, and a run-scoped table would force a
//! translation layer at every one of those boundaries. Interned strings are
//! leaked (never freed); the set of distinct constants in any workload is
//! small and bounded by program text plus decoded WAL content, so the table
//! behaves like a string section of the binary that grows on demand.
//!
//! Serialization never sees intern ids: the codec layer writes the string
//! *content* (see `cwf-engine`'s text codec), so WAL and outbox bytes are
//! identical to the pre-interning format.

use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{OnceLock, RwLock};

/// The global symbol table. Append-only; entries are leaked `&'static str`.
fn table() -> &'static RwLock<HashSet<&'static str>> {
    static TABLE: OnceLock<RwLock<HashSet<&'static str>>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(HashSet::new()))
}

/// An interned string: a `Copy` handle into the global symbol table.
///
/// Equality is pointer equality (valid because the table interns each
/// distinct string exactly once); ordering and hashing are by content, so
/// `Istr` sorts and hashes exactly like the `str` it denotes — BTreeMap
/// iteration orders are unchanged from the pre-interning representation.
#[derive(Clone, Copy)]
pub struct Istr(&'static str);

impl Istr {
    /// Interns `s`, returning the canonical handle for its content.
    pub fn new(s: &str) -> Istr {
        if let Some(&hit) = table().read().unwrap().get(s) {
            return Istr(hit);
        }
        let mut w = table().write().unwrap();
        if let Some(&hit) = w.get(s) {
            return Istr(hit);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        w.insert(leaked);
        Istr(leaked)
    }

    /// The interned content.
    pub fn as_str(self) -> &'static str {
        self.0
    }
}

impl PartialEq for Istr {
    fn eq(&self, other: &Self) -> bool {
        // Fat-pointer comparison: same address and length. The interner
        // guarantees one allocation per distinct string, so this is exactly
        // content equality.
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for Istr {}

impl PartialOrd for Istr {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Istr {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if std::ptr::eq(self.0, other.0) {
            std::cmp::Ordering::Equal
        } else {
            self.0.cmp(other.0)
        }
    }
}

impl Hash for Istr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl Deref for Istr {
    type Target = str;
    fn deref(&self) -> &str {
        self.0
    }
}

impl AsRef<str> for Istr {
    fn as_ref(&self) -> &str {
        self.0
    }
}

impl Borrow<str> for Istr {
    fn borrow(&self) -> &str {
        self.0
    }
}

impl From<&str> for Istr {
    fn from(s: &str) -> Self {
        Istr::new(s)
    }
}

impl fmt::Display for Istr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl fmt::Debug for Istr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_pointer_unique() {
        let a = Istr::new("hello");
        let b = Istr::new(&String::from("hello"));
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        let c = Istr::new("world");
        assert_ne!(a, c);
    }

    #[test]
    fn ordering_and_hash_follow_content() {
        let a = Istr::new("aa");
        let b = Istr::new("ab");
        assert!(a < b);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
        use std::collections::BTreeSet;
        let set: BTreeSet<Istr> = ["z", "a", "m"].into_iter().map(Istr::new).collect();
        let sorted: Vec<&str> = set.iter().map(|s| s.as_str()).collect();
        assert_eq!(sorted, ["a", "m", "z"]);
    }

    #[test]
    fn deref_and_display() {
        let s = Istr::new("abc");
        assert!(s.starts_with("ab"));
        assert_eq!(s.to_string(), "abc");
        assert_eq!(format!("{s:?}"), "\"abc\"");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn concurrent_interning_yields_one_pointer() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Istr::new("racy-constant")))
            .collect();
        let strs: Vec<Istr> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in strs.windows(2) {
            assert!(std::ptr::eq(w[0].as_str(), w[1].as_str()));
        }
    }
}
