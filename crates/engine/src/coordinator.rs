//! A master-server coordinator (the paper's Conclusion sketches exactly
//! this deployment: *"a master server that has access to all the
//! information, receives the updates, propagates them to appropriate peers,
//! and controls transparency"*).
//!
//! The [`Coordinator`] owns the global run and, per accepted event, computes
//! the **view delta** of every peer — the minimal description of what that
//! peer's replica must change. Peers that hold only their view can replay
//! deltas locally; the coordinator guarantees each peer's materialized view
//! stays equal to `I@p` (tested). Enforcement (Section 6) composes on top:
//! wrap pushes with `cwf-design`'s `TransparentEngine` and forward only
//! accepted events.

use std::fmt;

use cwf_model::{PeerId, RelId, Tuple, Value, ViewInstance};

use crate::error::EngineError;
use crate::event::Event;
use crate::run::Run;

/// One peer's view change caused by one event.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ViewDelta {
    /// View tuples that appeared (new key, or changed content under the
    /// same key — the replica upserts them).
    pub upserts: Vec<(RelId, Tuple)>,
    /// Keys that disappeared from the view.
    pub removals: Vec<(RelId, Value)>,
}

impl ViewDelta {
    /// Computes `after − before` on view instances.
    pub fn between(before: &ViewInstance, after: &ViewInstance) -> ViewDelta {
        let mut delta = ViewDelta::default();
        for (rel, t) in after.facts() {
            if before.get(rel, t.key()) != Some(t) {
                delta.upserts.push((rel, t.clone()));
            }
        }
        for (rel, t) in before.facts() {
            if !after.contains_key(rel, t.key()) {
                delta.removals.push((rel, t.key().clone()));
            }
        }
        delta
    }

    /// Is this a no-op?
    pub fn is_empty(&self) -> bool {
        self.upserts.is_empty() && self.removals.is_empty()
    }

    /// Number of changes.
    pub fn len(&self) -> usize {
        self.upserts.len() + self.removals.len()
    }

    /// Applies the delta to a materialized view replica.
    pub fn apply_to(&self, replica: &mut MaterializedView) {
        for (rel, key) in &self.removals {
            replica.remove(*rel, key);
        }
        for (rel, t) in &self.upserts {
            replica.upsert(*rel, t.clone());
        }
    }
}

/// A peer-side replica of its view: per relation, view tuples keyed by key.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MaterializedView {
    rels: std::collections::BTreeMap<RelId, std::collections::BTreeMap<Value, Tuple>>,
}

impl MaterializedView {
    /// An empty replica.
    pub fn new() -> Self {
        Self::default()
    }

    fn upsert(&mut self, rel: RelId, t: Tuple) {
        self.rels.entry(rel).or_default().insert(t.key().clone(), t);
    }

    fn remove(&mut self, rel: RelId, key: &Value) {
        if let Some(m) = self.rels.get_mut(&rel) {
            m.remove(key);
        }
    }

    /// Total number of tuples.
    pub fn total_tuples(&self) -> usize {
        self.rels.values().map(|m| m.len()).sum()
    }

    /// Does the replica equal the given view instance?
    pub fn matches(&self, view: &ViewInstance) -> bool {
        // Compare both directions.
        let mine = self
            .rels
            .iter()
            .flat_map(|(r, m)| m.values().map(move |t| (*r, t.clone())));
        for (r, t) in mine {
            if view.get(r, t.key()) != Some(&t) {
                return false;
            }
        }
        for (r, t) in view.facts() {
            match self.rels.get(&r).and_then(|m| m.get(t.key())) {
                Some(mine) if mine == t => {}
                _ => return false,
            }
        }
        true
    }
}

/// One broadcast record: the event's position and the per-peer deltas
/// (empty deltas are omitted — those peers saw nothing).
#[derive(Debug, Clone)]
pub struct Broadcast {
    /// Position of the event in the global run.
    pub at: usize,
    /// The acting peer.
    pub actor: PeerId,
    /// Per peer: the view delta (only peers with a non-empty delta, plus
    /// always the actor — the paper's "visible at p" includes own events).
    pub deltas: Vec<(PeerId, ViewDelta)>,
}

/// The master server: owns the global run, maintains every peer's replica,
/// and logs the broadcast deltas.
pub struct Coordinator {
    run: Run,
    replicas: Vec<MaterializedView>,
    log: Vec<Broadcast>,
}

impl Coordinator {
    /// Starts a coordinator over an empty run.
    pub fn new(spec: std::sync::Arc<cwf_lang::WorkflowSpec>) -> Self {
        let n = spec.collab().peer_count();
        Coordinator {
            run: Run::new(spec),
            replicas: vec![MaterializedView::new(); n],
            log: Vec::new(),
        }
    }

    /// The global run.
    pub fn run(&self) -> &Run {
        &self.run
    }

    /// The broadcast log.
    pub fn log(&self) -> &[Broadcast] {
        &self.log
    }

    /// Peer `p`'s replica.
    pub fn replica(&self, p: PeerId) -> &MaterializedView {
        &self.replicas[p.index()]
    }

    /// Draws a globally fresh value (for clients constructing events).
    pub fn draw_fresh(&mut self) -> Value {
        self.run.draw_fresh()
    }

    /// Accepts an event, updates all replicas, and returns the broadcast.
    pub fn submit(&mut self, event: Event) -> Result<&Broadcast, EngineError> {
        let spec = self.run.spec_arc();
        let collab = spec.collab();
        let pre: Vec<ViewInstance> = collab
            .peer_ids()
            .map(|p| collab.view_of(self.run.current(), p))
            .collect();
        let actor = event.peer;
        self.run.push(event)?;
        let mut deltas = Vec::new();
        for p in collab.peer_ids() {
            let post = collab.view_of(self.run.current(), p);
            let delta = ViewDelta::between(&pre[p.index()], &post);
            if !delta.is_empty() {
                delta.apply_to(&mut self.replicas[p.index()]);
                deltas.push((p, delta));
            }
        }
        self.log.push(Broadcast {
            at: self.run.len() - 1,
            actor,
            deltas,
        });
        Ok(self.log.last().expect("just pushed"))
    }

    /// Verifies every replica against the authoritative view (used in tests
    /// and as a deployment self-check).
    pub fn audit(&self) -> Result<(), PeerId> {
        let collab = self.run.spec().collab();
        for p in collab.peer_ids() {
            let view = collab.view_of(self.run.current(), p);
            if !self.replicas[p.index()].matches(&view) {
                return Err(p);
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Coordinator[{} events, {} broadcasts]",
            self.run.len(),
            self.log.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Bindings;
    use crate::simulate::{candidates, complete};
    use cwf_lang::{parse_workflow, VarId};
    use std::sync::Arc;

    fn spec() -> Arc<cwf_lang::WorkflowSpec> {
        Arc::new(
            parse_workflow(
                r#"
                schema { Doc(K, State); Seen(K); }
                peers {
                    author sees Doc(*), Seen(*);
                    editor sees Doc(*), Seen(*);
                    public sees Doc(K, State) where State = "published", Seen(*);
                }
                rules {
                    draft @ author: +Doc(d, "draft") :- ;
                    publish @ editor:
                        -key Doc(d), +Doc(d2, "published")
                        :- Doc(d, "draft");
                    note @ public: +Seen(s) :- Doc(d, "published");
                }
                "#,
            )
            .unwrap(),
        )
    }

    fn ev(spec: &cwf_lang::WorkflowSpec, name: &str, vals: &[Value]) -> Event {
        let rid = spec.program().rule_by_name(name).unwrap();
        let mut b = Bindings::empty(vals.len());
        for (i, v) in vals.iter().enumerate() {
            b.set(VarId(i as u32), v.clone());
        }
        Event::new(spec, rid, b).unwrap()
    }

    #[test]
    fn deltas_reach_only_affected_peers() {
        let spec = spec();
        let mut c = Coordinator::new(Arc::clone(&spec));
        let d = c.draw_fresh();
        let b = c.submit(ev(&spec, "draft", std::slice::from_ref(&d))).unwrap();
        // The public peer sees drafts not at all: only author and editor get
        // a delta.
        let touched: Vec<PeerId> = b.deltas.iter().map(|(p, _)| *p).collect();
        let public = spec.collab().peer("public").unwrap();
        assert!(!touched.contains(&public));
        assert_eq!(touched.len(), 2);
        c.audit().unwrap();
    }

    #[test]
    fn publishing_fans_out_with_removal_and_upsert() {
        let spec = spec();
        let mut c = Coordinator::new(Arc::clone(&spec));
        let d = c.draw_fresh();
        c.submit(ev(&spec, "draft", std::slice::from_ref(&d))).unwrap();
        let d2 = c.draw_fresh();
        let b = c
            .submit(ev(&spec, "publish", &[d.clone(), d2.clone()]))
            .unwrap();
        let public = spec.collab().peer("public").unwrap();
        let author = spec.collab().peer("author").unwrap();
        // The public peer gains the published doc (pure upsert)…
        let pub_delta = b
            .deltas
            .iter()
            .find(|(p, _)| *p == public)
            .map(|(_, d)| d.clone())
            .expect("public notified");
        assert_eq!(pub_delta.upserts.len(), 1);
        assert!(pub_delta.removals.is_empty());
        // …the author sees the old draft removed and the new doc appear.
        let auth_delta = b
            .deltas
            .iter()
            .find(|(p, _)| *p == author)
            .map(|(_, d)| d.clone())
            .expect("author notified");
        assert_eq!(auth_delta.removals, vec![(RelId(0), d)]);
        assert_eq!(auth_delta.upserts.len(), 1);
        c.audit().unwrap();
        assert_eq!(c.replica(public).total_tuples(), 1);
    }

    #[test]
    fn replicas_track_views_under_random_traffic() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let spec = spec();
        let mut c = Coordinator::new(Arc::clone(&spec));
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..30 {
            let cands = candidates(c.run());
            if cands.is_empty() {
                break;
            }
            let pick = cands[rng.gen_range(0..cands.len())].clone();
            // Complete head-only vars with coordinator-fresh values.
            let mut run_clone = c.run().clone();
            let event = complete(&mut run_clone, &pick);
            // Some candidates fail (chase conflicts); skip those.
            let _ = c.submit(event);
            c.audit().unwrap();
        }
        assert!(!c.log().is_empty());
        // The broadcast log fully reconstructs each replica.
        let author = spec.collab().peer("author").unwrap();
        let mut rebuilt = MaterializedView::new();
        for b in c.log() {
            if let Some((_, d)) = b.deltas.iter().find(|(p, _)| *p == author) {
                d.apply_to(&mut rebuilt);
            }
        }
        assert_eq!(&rebuilt, c.replica(author));
    }

    #[test]
    fn rejected_events_broadcast_nothing() {
        let spec = spec();
        let mut c = Coordinator::new(Arc::clone(&spec));
        let bogus = ev(&spec, "publish", &[Value::Fresh(1), Value::Fresh(2)]);
        assert!(c.submit(bogus).is_err());
        assert!(c.log().is_empty());
        c.audit().unwrap();
    }
}
