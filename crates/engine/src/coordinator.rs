//! A fault-tolerant master-server coordinator (the paper's Conclusion
//! sketches exactly this deployment: *"a master server that has access to
//! all the information, receives the updates, propagates them to
//! appropriate peers, and controls transparency"*).
//!
//! The [`Coordinator`] owns the global run and, per accepted event, computes
//! the **view delta** of every peer — the minimal description of what that
//! peer's replica must change. Deltas travel to replicas through a
//! [`Transport`] as sequence-numbered messages held in a per-peer **outbox**
//! until acknowledged: replicas apply deltas idempotently (duplicates and
//! stale reorders are suppressed by sequence number), unacknowledged deltas
//! are retried with capped exponential backoff, and a replica that falls
//! too far behind — or diverges — is **resynced** with a full view snapshot.
//! With the default [`PerfectTransport`] this degenerates to the original
//! synchronous behavior: every `submit` leaves all replicas equal to `I@p`.
//!
//! Durability composes via an optional write-ahead log ([`Wal`]): accepted
//! events are appended (with seqnos and CRCs) before they are broadcast,
//! and [`Coordinator::recover`] rebuilds a coordinator from the log —
//! snapshot plus tail replay, truncating any torn record. Enforcement
//! (Section 6) composes on top: wrap pushes with `cwf-design`'s
//! `TransparentEngine` and forward only accepted events.

use std::fmt;

use cwf_model::{PeerId, RelId, Tuple, Value, ViewInstance};

use crate::delivery::Delivery;
use crate::error::{CoordinatorError, WalError};
use crate::event::Event;
use crate::run::Run;
use crate::stats::{FtStats, RunStats};
use crate::transport::{PerfectTransport, Transport};
use crate::wal::{RecoveryReport, Wal, WalBackend, WalOptions};

pub use crate::view_plane::ViewDelta;

/// A peer-side replica of its view: per relation, view tuples keyed by key.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MaterializedView {
    rels: std::collections::BTreeMap<RelId, std::collections::BTreeMap<Value, Tuple>>,
}

impl MaterializedView {
    /// An empty replica.
    pub fn new() -> Self {
        Self::default()
    }

    /// Materializes a view instance (used for resync snapshots).
    pub fn from_view(view: &ViewInstance) -> Self {
        let mut out = Self::new();
        for (rel, t) in view.facts() {
            out.upsert(rel, t.clone());
        }
        out
    }

    pub(crate) fn upsert(&mut self, rel: RelId, t: Tuple) {
        self.rels.entry(rel).or_default().insert(*t.key(), t);
    }

    pub(crate) fn remove(&mut self, rel: RelId, key: &Value) {
        if let Some(m) = self.rels.get_mut(&rel) {
            m.remove(key);
        }
    }

    /// Total number of tuples.
    pub fn total_tuples(&self) -> usize {
        self.rels.values().map(|m| m.len()).sum()
    }

    /// Every tuple with its relation, in (relation, key) order.
    pub fn facts(&self) -> impl Iterator<Item = (RelId, &Tuple)> {
        self.rels
            .iter()
            .flat_map(|(r, m)| m.values().map(move |t| (*r, t)))
    }

    /// Content equality ignoring empty relation slots (removals may leave
    /// an empty per-relation map behind; two views that hold the same
    /// tuples are the same view).
    pub fn same_facts(&self, other: &MaterializedView) -> bool {
        self.facts().eq(other.facts())
    }

    /// Does the replica equal the given view instance?
    pub fn matches(&self, view: &ViewInstance) -> bool {
        // Compare both directions, by reference — no tuple is cloned.
        for (r, m) in &self.rels {
            for t in m.values() {
                if view.get(*r, t.key()) != Some(t) {
                    return false;
                }
            }
        }
        for (r, t) in view.facts() {
            match self.rels.get(&r).and_then(|m| m.get(t.key())) {
                Some(mine) if mine == t => {}
                _ => return false,
            }
        }
        true
    }
}

/// One broadcast record: the event's position and the per-peer deltas
/// (empty deltas are omitted — those peers saw nothing).
#[derive(Debug, Clone)]
pub struct Broadcast {
    /// Position of the event in the global run.
    pub at: usize,
    /// The acting peer.
    pub actor: PeerId,
    /// Per peer: the view delta (only peers with a non-empty delta, plus
    /// always the actor — the paper's "visible at p" includes own events).
    pub deltas: Vec<(PeerId, ViewDelta)>,
}

/// The outcome of [`Coordinator::converge`]: either the system settled —
/// every replica equals its authoritative view and no message awaits
/// acknowledgement — within the tick budget, or a diagnostic of what was
/// still outstanding when the budget ran out (so an oracle can report *why*
/// a run failed to settle, not just that it did).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Convergence {
    /// The system is quiescent; `ticks` pump rounds were needed.
    Converged {
        /// Pump rounds executed before quiescence.
        ticks: u64,
    },
    /// The tick budget ran out with work still outstanding.
    Stalled {
        /// Per peer with outstanding messages: how many await
        /// acknowledgement in its outbox, in peer-id order (peers with an
        /// empty outbox are omitted).
        undelivered: Vec<(PeerId, usize)>,
        /// Peers whose replica differs from its authoritative view.
        divergent: Vec<PeerId>,
    },
}

impl Convergence {
    /// Did the system settle?
    pub fn is_converged(&self) -> bool {
        matches!(self, Convergence::Converged { .. })
    }

    /// Total messages still awaiting acknowledgement (0 when converged).
    pub fn undelivered_total(&self) -> usize {
        match self {
            Convergence::Converged { .. } => 0,
            Convergence::Stalled { undelivered, .. } => undelivered.iter().map(|(_, n)| n).sum(),
        }
    }
}

/// Formats a per-peer breakdown like `p0:3, p2:1` (chaos failure artifacts
/// say *where* convergence stalled, not just that it did).
fn fmt_per_peer(f: &mut fmt::Formatter<'_>, items: &[(PeerId, usize)]) -> fmt::Result {
    for (i, (p, n)) in items.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "p{}:{n}", p.index())?;
    }
    Ok(())
}

impl fmt::Display for Convergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Convergence::Converged { ticks } => write!(f, "converged after {ticks} ticks"),
            Convergence::Stalled {
                undelivered,
                divergent,
            } => {
                write!(
                    f,
                    "stalled: {} undelivered messages across {} peers (",
                    self.undelivered_total(),
                    undelivered.len()
                )?;
                fmt_per_peer(f, undelivered)?;
                write!(f, "), {} divergent replicas (", divergent.len())?;
                for (i, p) in divergent.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "p{}", p.index())?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Tuning knobs of the delivery protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordinatorConfig {
    /// Base retry backoff, in pump ticks.
    pub retry_backoff_base: u64,
    /// Cap on the exponential backoff, in pump ticks.
    pub retry_backoff_cap: u64,
    /// Unacknowledged deltas tolerated before a full-snapshot resync.
    pub resync_lag: usize,
    /// Retries of one delta tolerated before a full-snapshot resync.
    pub resync_after_retries: u32,
    /// In-place retries of a transiently failing WAL append (EINTR-style)
    /// before the submit degrades the coordinator.
    pub wal_transient_retries: u32,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            retry_backoff_base: 1,
            retry_backoff_cap: 16,
            resync_lag: 32,
            resync_after_retries: 8,
            wal_transient_retries: 2,
        }
    }
}

/// The master server: owns the global run, drives every peer's replica
/// through a [`Delivery`] plane, and logs the broadcast deltas. The
/// delivery machinery (outboxes, replicas, retry, resync) lives in
/// [`crate::delivery`] and is shared verbatim with the sharded state plane.
pub struct Coordinator {
    run: Run,
    delivery: Delivery,
    log: Vec<Broadcast>,
    wal: Option<Wal>,
    config: CoordinatorConfig,
    ft: FtStats,
    degraded: bool,
}

impl Coordinator {
    /// Starts a coordinator over an empty run with synchronous, reliable
    /// delivery and no durability (the original in-memory deployment).
    pub fn new(spec: std::sync::Arc<cwf_lang::WorkflowSpec>) -> Self {
        Self::with_parts(
            spec,
            Box::new(PerfectTransport::new()),
            None,
            CoordinatorConfig::default(),
        )
    }

    /// Starts a coordinator shipping deltas through `transport`.
    pub fn with_transport(
        spec: std::sync::Arc<cwf_lang::WorkflowSpec>,
        transport: Box<dyn Transport>,
        config: CoordinatorConfig,
    ) -> Self {
        Self::with_parts(spec, transport, None, config)
    }

    /// Starts a durable coordinator: every accepted event is appended to
    /// `wal` before it is broadcast.
    pub fn with_wal(spec: std::sync::Arc<cwf_lang::WorkflowSpec>, wal: Wal) -> Self {
        Self::with_parts(
            spec,
            Box::new(PerfectTransport::new()),
            Some(wal),
            CoordinatorConfig::default(),
        )
    }

    /// Full-control constructor.
    pub fn with_parts(
        spec: std::sync::Arc<cwf_lang::WorkflowSpec>,
        transport: Box<dyn Transport>,
        wal: Option<Wal>,
        config: CoordinatorConfig,
    ) -> Self {
        let n = spec.collab().peer_count();
        Self::from_run(Run::new(spec), n, transport, wal, config)
    }

    fn from_run(
        run: Run,
        n_peers: usize,
        transport: Box<dyn Transport>,
        wal: Option<Wal>,
        config: CoordinatorConfig,
    ) -> Self {
        Coordinator {
            run,
            delivery: Delivery::new(n_peers, transport, config.into()),
            log: Vec::new(),
            wal,
            config,
            ft: FtStats::default(),
            degraded: false,
        }
    }

    /// Rebuilds a durable coordinator from its write-ahead log: recovers
    /// the run (snapshot + tail replay, truncating any torn record), then
    /// resyncs every replica with a full view snapshot. With a reliable
    /// transport the recovered coordinator passes [`Coordinator::audit`]
    /// immediately.
    pub fn recover(
        spec: std::sync::Arc<cwf_lang::WorkflowSpec>,
        backend: Box<dyn WalBackend>,
        opts: WalOptions,
        transport: Box<dyn Transport>,
        config: CoordinatorConfig,
    ) -> Result<(Self, RecoveryReport), WalError> {
        let recovered = Wal::recover(backend, std::sync::Arc::clone(&spec), opts)?;
        let n = spec.collab().peer_count();
        let mut c = Self::from_run(recovered.run, n, transport, Some(recovered.wal), config);
        c.ft.recovered_events = recovered.report.events_replayed as u64;
        c.ft.truncated_bytes = recovered.report.truncated_bytes as u64;
        // Replicas restart cold: push everyone a full snapshot.
        for p in c.run.spec_arc().collab().peer_ids() {
            c.resync(p);
        }
        c.pump();
        Ok((c, recovered.report))
    }

    /// The global run.
    pub fn run(&self) -> &Run {
        &self.run
    }

    /// The broadcast log (empty after a recovery: the WAL is the durable
    /// log; broadcasts are an in-memory trace).
    pub fn log(&self) -> &[Broadcast] {
        &self.log
    }

    /// Peer `p`'s replica.
    pub fn replica(&self, p: PeerId) -> &MaterializedView {
        self.delivery.replica(p)
    }

    /// Is the coordinator in degraded (read-only) mode after a durability
    /// failure? Reads — [`Coordinator::replica`], [`Coordinator::run`],
    /// [`Coordinator::audit`] — keep working; mutations are rejected with
    /// [`CoordinatorError::Degraded`] until [`Coordinator::rearm`] succeeds.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Attempts to leave degraded mode: re-arms the WAL (truncating any
    /// torn tail back to the last complete record and syncing). On success
    /// the coordinator accepts mutations again; while the storage fault
    /// persists this fails and the coordinator stays degraded.
    pub fn rearm(&mut self) -> Result<(), CoordinatorError> {
        if !self.degraded {
            return Ok(());
        }
        if let Some(wal) = self.wal.as_mut() {
            wal.rearm().map_err(CoordinatorError::Wal)?;
        }
        self.degraded = false;
        self.ft.degraded_recoveries += 1;
        Ok(())
    }

    /// Fault-tolerance counters (retries, resyncs, recoveries, …).
    pub fn ft_stats(&self) -> &FtStats {
        &self.ft
    }

    /// Run statistics with the fault-tolerance counters attached.
    pub fn stats(&self) -> RunStats {
        let mut s = RunStats::of(&self.run);
        s.fault_tolerance = Some(self.ft.clone());
        s
    }

    /// Draws a globally fresh value (for clients constructing events).
    pub fn draw_fresh(&mut self) -> Value {
        self.run.draw_fresh()
    }

    /// Accepts an event, makes it durable (when a WAL is attached), queues
    /// every affected peer's delta, and returns the broadcast. Runs one
    /// delivery round; with a reliable transport all replicas are already
    /// up to date when this returns.
    pub fn submit(&mut self, event: Event) -> Result<&Broadcast, CoordinatorError> {
        if self.degraded {
            self.ft.degraded_rejected += 1;
            return Err(CoordinatorError::Degraded);
        }
        let spec = self.run.spec_arc();
        let actor = event.peer;
        self.run.push(event.clone())?;
        // Write-ahead: the event must be durable before any peer hears of
        // it. Transient append failures are retried in place; a hard
        // failure rolls the event back out of memory and degrades the
        // coordinator to read-only — the event counts as in-flight and may
        // be resubmitted after a successful rearm (or full recovery).
        if let Some(wal) = self.wal.as_mut() {
            durable_append(
                wal,
                &spec,
                &event,
                &mut self.run,
                &mut self.ft,
                self.config.wal_transient_retries,
                &mut self.degraded,
            )?;
        }
        // The push already computed every affected peer's delta while
        // advancing the view plane; broadcast those instead of re-deriving
        // them from view rescans.
        let deltas: Vec<(PeerId, ViewDelta)> = self.run.last_deltas().to_vec();
        for (p, delta) in &deltas {
            self.delivery.enqueue(*p, delta.clone(), &mut self.ft);
        }
        self.log.push(Broadcast {
            at: self.run.len() - 1,
            actor,
            deltas,
        });
        self.pump();
        Ok(self.log.last().expect("just pushed"))
    }

    /// One delivery round: advance the transport clock, deliver arrived
    /// messages to replicas (collecting their acks), process acks, retry
    /// overdue messages, and resync any replica that lags too far behind.
    pub fn pump(&mut self) {
        let run = &self.run;
        self.delivery.pump(&mut self.ft, |p| {
            MaterializedView::from_view(run.peer_view(p))
        });
    }

    /// Replaces peer `p`'s entire outbox with one full-view snapshot
    /// message (the resync path; see [`Delivery::resync_with`] for why the
    /// snapshot takes a fresh sequence number).
    pub fn resync(&mut self, p: PeerId) {
        let view = MaterializedView::from_view(self.run.peer_view(p));
        self.delivery.resync_with(p, view, &mut self.ft);
    }

    /// Queues a snapshot resync for every replica that currently diverges
    /// from its authoritative view (the audit-triggered resync path).
    pub fn resync_divergent(&mut self) -> usize {
        let divergent = self.divergent_peers();
        for p in &divergent {
            self.resync(*p);
        }
        divergent.len()
    }

    /// The peers whose replica currently differs from its authoritative
    /// view, in peer-id order (deterministic for a given state).
    pub fn divergent_peers(&self) -> Vec<PeerId> {
        let collab = self.run.spec().collab();
        collab
            .peer_ids()
            .filter(|p| !self.delivery.replica(*p).matches(self.run.peer_view(*p)))
            .collect()
    }

    /// Messages currently awaiting acknowledgement across all outboxes.
    pub fn undelivered(&self) -> usize {
        self.delivery.undelivered()
    }

    /// Peers with messages awaiting acknowledgement, with their counts, in
    /// peer-id order.
    pub fn undelivered_by_peer(&self) -> Vec<(PeerId, usize)> {
        self.delivery.undelivered_by_peer()
    }

    /// Stops all future fault injection on the transport (the network
    /// stabilizes). Messages already in flight still arrive late; retries
    /// absorb them.
    pub fn heal(&mut self) {
        self.delivery.heal();
    }

    /// Cuts (`up = false`) or restores (`up = true`) the network link to
    /// one peer's replica. While a link is down nothing crosses it in
    /// either direction; retry and resync absorb the gap once it heals.
    pub fn set_link(&mut self, p: PeerId, up: bool) {
        self.delivery.set_link(p, up);
    }

    /// Is the link to peer `p` currently up?
    pub fn link_up(&self, p: PeerId) -> bool {
        self.delivery.link_up(p)
    }

    /// Pumps until every replica equals its authoritative view and no
    /// message is awaiting acknowledgement, or `max_ticks` rounds elapse.
    /// Returns a [`Convergence`] diagnostic: on success, how many ticks it
    /// took; on a stall, how many messages were still undelivered and which
    /// replicas still diverged. (After [`Coordinator::heal`], convergence is
    /// guaranteed given enough ticks.)
    pub fn converge(&mut self, max_ticks: u64) -> Convergence {
        for t in 0..=max_ticks {
            if self.quiescent() {
                return Convergence::Converged { ticks: t };
            }
            if t < max_ticks {
                self.pump();
            }
        }
        Convergence::Stalled {
            undelivered: self.delivery.undelivered_by_peer(),
            divergent: self.divergent_peers(),
        }
    }

    fn quiescent(&self) -> bool {
        self.delivery.undelivered() == 0 && self.audit().is_ok()
    }

    /// Verifies every replica against the authoritative view (used in tests
    /// and as a deployment self-check). Under an unreliable transport this
    /// legitimately fails while deltas are in flight; see
    /// [`Coordinator::converge`] and [`Coordinator::resync_divergent`].
    pub fn audit(&self) -> Result<(), PeerId> {
        let collab = self.run.spec().collab();
        for p in collab.peer_ids() {
            if !self.delivery.replica(p).matches(self.run.peer_view(p)) {
                return Err(p);
            }
        }
        Ok(())
    }
}

/// The write-ahead discipline shared by the [`Coordinator`] and the
/// [`ShardPlane`](crate::shard::ShardPlane)'s routing layer: append the
/// event (retrying transient failures in place), take the cadenced
/// snapshot, and on a hard failure pop the event back out of `run` and
/// degrade the authority to read-only.
pub(crate) fn durable_append(
    wal: &mut Wal,
    spec: &std::sync::Arc<cwf_lang::WorkflowSpec>,
    event: &Event,
    run: &mut Run,
    ft: &mut FtStats,
    wal_transient_retries: u32,
    degraded: &mut bool,
) -> Result<(), CoordinatorError> {
    let mut result = wal.append_event(spec, event);
    let mut retries = wal_transient_retries;
    while matches!(result, Err(WalError::Transient(_))) && retries > 0 {
        retries -= 1;
        ft.wal_transient_retries += 1;
        result = wal.append_event(spec, event);
    }
    match result {
        Ok(_) => {
            ft.wal_appends += 1;
            match wal.maybe_snapshot(spec.collab().schema(), run.current(), run.fresh_watermark()) {
                Ok(true) => ft.wal_snapshots += 1,
                Ok(false) => {}
                Err(_) => {
                    // The event itself is durable; only the snapshot record
                    // failed (possibly torn). Serve this broadcast, but
                    // degrade: the tail must be re-armed away before any
                    // further append.
                    ft.wal_failures += 1;
                    *degraded = true;
                }
            }
            Ok(())
        }
        Err(e) => {
            run.pop();
            ft.wal_failures += 1;
            *degraded = true;
            Err(e.into())
        }
    }
}

impl fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Coordinator[{} events, {} broadcasts, {} unacked{}{}]",
            self.run.len(),
            self.log.len(),
            self.undelivered(),
            if self.wal.is_some() { ", durable" } else { "" },
            if self.degraded { ", DEGRADED" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Bindings;
    use crate::fault::FaultPlan;
    use crate::simulate::{candidates, complete};
    use crate::transport::FaultyTransport;
    use crate::wal::{MemBackend, SyncPolicy};
    use cwf_lang::{parse_workflow, VarId};
    use std::sync::Arc;

    fn spec() -> Arc<cwf_lang::WorkflowSpec> {
        Arc::new(
            parse_workflow(
                r#"
                schema { Doc(K, State); Seen(K); }
                peers {
                    author sees Doc(*), Seen(*);
                    editor sees Doc(*), Seen(*);
                    public sees Doc(K, State) where State = "published", Seen(*);
                }
                rules {
                    draft @ author: +Doc(d, "draft") :- ;
                    publish @ editor:
                        -key Doc(d), +Doc(d2, "published")
                        :- Doc(d, "draft");
                    note @ public: +Seen(s) :- Doc(d, "published");
                }
                "#,
            )
            .unwrap(),
        )
    }

    fn ev(spec: &cwf_lang::WorkflowSpec, name: &str, vals: &[Value]) -> Event {
        let rid = spec.program().rule_by_name(name).unwrap();
        let mut b = Bindings::empty(vals.len());
        for (i, v) in vals.iter().enumerate() {
            b.set(VarId(i as u32), *v);
        }
        Event::new(spec, rid, b).unwrap()
    }

    #[test]
    fn deltas_reach_only_affected_peers() {
        let spec = spec();
        let mut c = Coordinator::new(Arc::clone(&spec));
        let d = c.draw_fresh();
        let b = c
            .submit(ev(&spec, "draft", std::slice::from_ref(&d)))
            .unwrap();
        // The public peer sees drafts not at all: only author and editor get
        // a delta.
        let touched: Vec<PeerId> = b.deltas.iter().map(|(p, _)| *p).collect();
        let public = spec.collab().peer("public").unwrap();
        assert!(!touched.contains(&public));
        assert_eq!(touched.len(), 2);
        c.audit().unwrap();
    }

    #[test]
    fn publishing_fans_out_with_removal_and_upsert() {
        let spec = spec();
        let mut c = Coordinator::new(Arc::clone(&spec));
        let d = c.draw_fresh();
        c.submit(ev(&spec, "draft", std::slice::from_ref(&d)))
            .unwrap();
        let d2 = c.draw_fresh();
        let b = c.submit(ev(&spec, "publish", &[d, d2])).unwrap();
        let public = spec.collab().peer("public").unwrap();
        let author = spec.collab().peer("author").unwrap();
        // The public peer gains the published doc (pure upsert)…
        let pub_delta = b
            .deltas
            .iter()
            .find(|(p, _)| *p == public)
            .map(|(_, d)| d.clone())
            .expect("public notified");
        assert_eq!(pub_delta.upserts.len(), 1);
        assert!(pub_delta.removals.is_empty());
        // …the author sees the old draft removed and the new doc appear.
        let auth_delta = b
            .deltas
            .iter()
            .find(|(p, _)| *p == author)
            .map(|(_, d)| d.clone())
            .expect("author notified");
        assert_eq!(auth_delta.removals, vec![(RelId(0), d)]);
        assert_eq!(auth_delta.upserts.len(), 1);
        c.audit().unwrap();
        assert_eq!(c.replica(public).total_tuples(), 1);
    }

    #[test]
    fn replicas_track_views_under_random_traffic() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let spec = spec();
        let mut c = Coordinator::new(Arc::clone(&spec));
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..30 {
            let cands = candidates(c.run());
            if cands.is_empty() {
                break;
            }
            let pick = cands[rng.gen_range(0..cands.len())].clone();
            // Complete head-only vars with coordinator-fresh values.
            let mut run_clone = c.run().clone();
            let event = complete(&mut run_clone, &pick);
            // Some candidates fail (chase conflicts); skip those.
            let _ = c.submit(event);
            c.audit().unwrap();
        }
        assert!(!c.log().is_empty());
        // The broadcast log fully reconstructs each replica.
        let author = spec.collab().peer("author").unwrap();
        let mut rebuilt = MaterializedView::new();
        for b in c.log() {
            if let Some((_, d)) = b.deltas.iter().find(|(p, _)| *p == author) {
                d.apply_to(&mut rebuilt);
            }
        }
        assert_eq!(&rebuilt, c.replica(author));
    }

    #[test]
    fn rejected_events_broadcast_nothing() {
        let spec = spec();
        let mut c = Coordinator::new(Arc::clone(&spec));
        let bogus = ev(&spec, "publish", &[Value::Fresh(1), Value::Fresh(2)]);
        assert!(c.submit(bogus).is_err());
        assert!(c.log().is_empty());
        c.audit().unwrap();
    }

    #[test]
    fn applying_a_delta_twice_equals_applying_it_once() {
        let spec = spec();
        let mut c = Coordinator::new(Arc::clone(&spec));
        let d = c.draw_fresh();
        c.submit(ev(&spec, "draft", std::slice::from_ref(&d)))
            .unwrap();
        let d2 = c.draw_fresh();
        let b = c.submit(ev(&spec, "publish", &[d, d2])).unwrap();
        // The author's publish delta mixes a removal and an upsert.
        let author = spec.collab().peer("author").unwrap();
        let delta = b
            .deltas
            .iter()
            .find(|(p, _)| *p == author)
            .map(|(_, d)| d.clone())
            .expect("author notified");
        assert!(!delta.removals.is_empty());
        let mut once = MaterializedView::new();
        delta.apply_to(&mut once);
        let mut twice = once.clone();
        delta.apply_to(&mut twice);
        assert_eq!(once, twice, "apply_to is idempotent");
    }

    #[test]
    fn faulty_transport_converges_after_healing() {
        let spec = spec();
        let plan = FaultPlan::seeded(11).with_rates(0.4, 0.3, 0.4, 3, 0.3);
        let mut c = Coordinator::with_transport(
            Arc::clone(&spec),
            Box::new(FaultyTransport::new(plan)),
            CoordinatorConfig {
                resync_lag: 4,
                ..CoordinatorConfig::default()
            },
        );
        for _ in 0..6 {
            let d = c.draw_fresh();
            c.submit(ev(&spec, "draft", std::slice::from_ref(&d)))
                .unwrap();
        }
        c.heal();
        let verdict = c.converge(500);
        assert!(verdict.is_converged(), "heals to convergence: {verdict}");
        c.audit().unwrap();
        let stats = c.stats();
        let ft = stats.fault_tolerance.expect("counters attached");
        assert!(ft.deltas_sent >= 6);
    }

    #[test]
    fn converge_diagnoses_a_stall_and_recovers_after_healing() {
        let spec = spec();
        // Drop everything: replicas can never catch up until healed.
        let plan = FaultPlan::seeded(3).with_rates(1.0, 0.0, 0.0, 0, 0.0);
        let mut c = Coordinator::with_transport(
            Arc::clone(&spec),
            Box::new(FaultyTransport::new(plan)),
            CoordinatorConfig::default(),
        );
        let d = c.draw_fresh();
        c.submit(ev(&spec, "draft", std::slice::from_ref(&d)))
            .unwrap();
        match c.converge(20) {
            v @ Convergence::Stalled { .. } => {
                assert!(v.undelivered_total() > 0, "unacked deltas remain");
                let Convergence::Stalled {
                    undelivered,
                    divergent,
                } = &v
                else {
                    unreachable!()
                };
                assert!(!divergent.is_empty(), "some replica diverges");
                assert!(
                    undelivered.iter().all(|(_, n)| *n > 0),
                    "only peers with outstanding messages are listed"
                );
                assert!(
                    undelivered
                        .windows(2)
                        .all(|w| w[0].0.index() < w[1].0.index()),
                    "undelivered breakdown reported in peer-id order"
                );
                assert!(
                    divergent.windows(2).all(|w| w[0].index() < w[1].index()),
                    "divergent peers reported in peer-id order"
                );
                // The diagnostic names the stalled peers.
                let shown = format!("{v}");
                assert!(shown.contains("p0:"), "per-peer breakdown shown: {shown}");
            }
            c => panic!("a fully dropping network cannot converge: {c}"),
        }
        c.heal();
        match c.converge(500) {
            Convergence::Converged { ticks } => assert!(ticks > 0),
            c => panic!("healed network must converge: {c}"),
        }
        c.audit().unwrap();
        assert_eq!(c.undelivered(), 0);
        assert!(c.divergent_peers().is_empty());
    }

    #[test]
    fn wal_failure_degrades_and_recovery_resumes() {
        let spec = spec();
        let backend = MemBackend::new();
        let opts = WalOptions {
            sync: SyncPolicy::Always,
            snapshot_every: None,
        };
        let wal = Wal::create(Box::new(backend.clone()), opts).unwrap();
        let mut c = Coordinator::with_wal(Arc::clone(&spec), wal);
        let d = c.draw_fresh();
        c.submit(ev(&spec, "draft", std::slice::from_ref(&d)))
            .unwrap();
        // Crash mid-append of the second event: 7 bytes of the record land.
        backend.schedule_crash(1, 7);
        let d2 = c.draw_fresh();
        let lost = ev(&spec, "draft", std::slice::from_ref(&d2));
        let err = c.submit(lost.clone()).unwrap_err();
        assert!(matches!(err, CoordinatorError::Wal(_)));
        assert!(c.degraded());
        // The non-durable event was rolled back out of memory: the in-memory
        // run matches the durable state, and reads stay consistent.
        assert_eq!(c.run().len(), 1);
        c.audit().unwrap();
        assert!(matches!(
            c.submit(lost.clone()),
            Err(CoordinatorError::Degraded)
        ));
        // The dead process cannot re-arm in place (sync still fails).
        assert!(c.rearm().is_err());
        assert!(c.degraded());
        let ft = c.ft_stats();
        assert_eq!(ft.wal_failures, 1);
        assert_eq!(ft.degraded_rejected, 1);
        // Recover from what survived: the synced prefix plus the torn bytes.
        let survivor = backend.survivor(7);
        let (mut rc, report) = Coordinator::recover(
            Arc::clone(&spec),
            Box::new(survivor),
            opts,
            Box::new(PerfectTransport::new()),
            CoordinatorConfig::default(),
        )
        .unwrap();
        assert_eq!(report.last_seq, 1, "only the first event was durable");
        assert!(report.truncated_bytes > 0, "torn tail truncated");
        rc.audit().unwrap();
        // The in-flight event resubmits cleanly.
        rc.submit(lost).unwrap();
        rc.audit().unwrap();
        assert_eq!(rc.run().len(), 2);
    }

    #[test]
    fn fsync_failures_degrade_reads_survive_and_rearm_resumes() {
        use crate::wal::IoFaultBackend;
        let spec = spec();
        let inner = MemBackend::new();
        let io = IoFaultBackend::new(Box::new(inner.clone()), FaultPlan::perfect(5));
        let opts = WalOptions {
            sync: SyncPolicy::Always,
            snapshot_every: None,
        };
        let wal = Wal::create(Box::new(io.clone()), opts).unwrap();
        let mut c = Coordinator::with_wal(Arc::clone(&spec), wal);
        let d = c.draw_fresh();
        c.submit(ev(&spec, "draft", std::slice::from_ref(&d)))
            .unwrap();
        let author = spec.collab().peer("author").unwrap();
        let replica_before = c.replica(author).clone();
        assert_eq!(replica_before.total_tuples(), 1);

        // Every fsync now fails: the next submit degrades the coordinator.
        io.configure(|p| p.fsync_fail_p = 1.0);
        let d2 = c.draw_fresh();
        let e2 = ev(&spec, "draft", std::slice::from_ref(&d2));
        let err = c.submit(e2.clone()).unwrap_err();
        assert!(matches!(err, CoordinatorError::Wal(_)));
        assert!(c.degraded());
        assert!(io.faults().fsync_failures > 0);

        // Degraded mode: view reads keep serving the last durable state,
        // the audit passes, mutations are rejected with Degraded, and
        // re-arming fails while the fault persists.
        assert_eq!(c.replica(author), &replica_before);
        assert_eq!(c.run().len(), 1);
        c.audit().unwrap();
        assert!(matches!(
            c.submit(e2.clone()),
            Err(CoordinatorError::Degraded)
        ));
        assert!(c.rearm().is_err());
        assert!(c.degraded());

        // The device stabilizes: rearm truncates the torn tail, and the
        // in-flight event resubmits with its original fresh values.
        io.heal();
        c.rearm().unwrap();
        assert!(!c.degraded());
        c.submit(e2).unwrap();
        c.audit().unwrap();
        assert_eq!(c.run().len(), 2);
        let ft = c.ft_stats();
        assert_eq!(ft.degraded_recoveries, 1);
        assert!(ft.wal_failures >= 1);
        assert!(ft.degraded_rejected >= 1);

        // What landed on the device recovers to exactly the two events.
        let rec = Wal::recover(Box::new(inner), Arc::clone(&spec), opts).unwrap();
        assert_eq!(rec.run.len(), 2);
        assert_eq!(rec.report.last_seq, 2);
    }

    #[test]
    fn transient_append_failures_are_retried_in_place() {
        use crate::wal::IoFaultBackend;
        let spec = spec();
        let inner = MemBackend::new();
        let io = IoFaultBackend::new(Box::new(inner.clone()), FaultPlan::perfect(5));
        let wal = Wal::create(
            Box::new(io.clone()),
            WalOptions {
                sync: SyncPolicy::Always,
                snapshot_every: None,
            },
        )
        .unwrap();
        let mut c = Coordinator::with_wal(Arc::clone(&spec), wal);
        // Every append fails transiently: retries exhaust and degrade.
        io.configure(|p| p.transient_p = 1.0);
        let d = c.draw_fresh();
        let e = ev(&spec, "draft", std::slice::from_ref(&d));
        let err = c.submit(e.clone()).unwrap_err();
        assert!(matches!(err, CoordinatorError::Wal(WalError::Transient(_))));
        assert!(c.degraded());
        let retries = c.ft_stats().wal_transient_retries;
        assert_eq!(
            retries,
            CoordinatorConfig::default().wal_transient_retries as u64
        );
        // Nothing was ever written: rearm is a clean no-op truncation, and
        // once the transient condition clears the submit goes through.
        io.heal();
        c.rearm().unwrap();
        c.submit(e).unwrap();
        c.audit().unwrap();
        assert_eq!(c.ft_stats().wal_appends, 1);
    }
}
