//! The reliable-delivery machinery shared by the single-process
//! [`Coordinator`](crate::coordinator::Coordinator) and each shard of the
//! [`ShardPlane`](crate::shard::ShardPlane).
//!
//! A [`Delivery`] owns, for one authority (a coordinator or one shard), the
//! per-peer **outboxes** of sequence-numbered messages awaiting cumulative
//! acknowledgement, the peer-side **replica nodes** that apply deltas
//! idempotently, and the transport between them. It implements the full
//! protocol: capped exponential-backoff retry of unacknowledged messages,
//! duplicate suppression and out-of-order deferral by sequence number, and
//! full-snapshot **resync** of replicas that lag or retry too much. The
//! split is exactly the tentpole's "shard-local apply plus a thin routing
//! layer": everything below the routing decision lives here and behaves
//! identically whether one authority serves all keys or N shards serve a
//! partition each.

use std::collections::VecDeque;

use cwf_model::PeerId;

use crate::coordinator::{CoordinatorConfig, MaterializedView};
use crate::stats::FtStats;
use crate::transport::{Ack, PeerMsg, Transport};
use crate::view_plane::ViewDelta;

/// Tuning knobs of the delivery protocol (the transport-facing subset of
/// [`CoordinatorConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryConfig {
    /// Base retry backoff, in pump ticks.
    pub retry_backoff_base: u64,
    /// Cap on the exponential backoff, in pump ticks.
    pub retry_backoff_cap: u64,
    /// Unacknowledged deltas tolerated before a full-snapshot resync.
    pub resync_lag: usize,
    /// Retries of one delta tolerated before a full-snapshot resync.
    pub resync_after_retries: u32,
}

impl Default for DeliveryConfig {
    fn default() -> Self {
        CoordinatorConfig::default().into()
    }
}

impl From<CoordinatorConfig> for DeliveryConfig {
    fn from(c: CoordinatorConfig) -> Self {
        DeliveryConfig {
            retry_backoff_base: c.retry_backoff_base,
            retry_backoff_cap: c.retry_backoff_cap,
            resync_lag: c.resync_lag,
            resync_after_retries: c.resync_after_retries,
        }
    }
}

/// An unacknowledged message awaiting its ack (and possibly retries).
#[derive(Debug, Clone)]
struct Pending {
    msg: PeerMsg,
    attempts: u32,
    due: u64,
}

/// The authority side of one peer's delta stream.
#[derive(Debug, Default)]
struct Outbox {
    /// Sequence number of the next delta to enqueue (per-peer, from 1).
    next_seq: u64,
    /// Sent but unacknowledged messages, oldest first.
    unacked: VecDeque<Pending>,
}

impl Outbox {
    fn assign_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    fn ack(&mut self, applied: u64) -> usize {
        let before = self.unacked.len();
        while self.unacked.front().is_some_and(|p| p.msg.seq() <= applied) {
            self.unacked.pop_front();
        }
        before - self.unacked.len()
    }
}

/// The peer side: the replica and its duplicate-suppression cursor.
#[derive(Debug, Default)]
struct ReplicaNode {
    view: MaterializedView,
    /// Highest contiguously applied sequence number.
    applied: u64,
}

impl ReplicaNode {
    /// Handles one incoming message; returns the cumulative ack to send.
    fn handle(&mut self, msg: PeerMsg, ft: &mut FtStats) -> Ack {
        match msg {
            PeerMsg::Delta { seq, delta } => {
                if seq == self.applied + 1 {
                    delta.apply_to(&mut self.view);
                    self.applied = seq;
                } else if seq <= self.applied {
                    ft.duplicates_suppressed += 1;
                } else {
                    ft.out_of_order_deferred += 1;
                }
            }
            PeerMsg::Snapshot { seq, view } => {
                if seq >= self.applied {
                    self.view = view;
                    self.applied = seq;
                } else {
                    ft.duplicates_suppressed += 1;
                }
            }
        }
        Ack {
            peer: PeerId(0),
            applied: self.applied,
        } // peer filled by caller
    }
}

/// One authority's delivery plane: per-peer outboxes, per-peer replicas,
/// and the transport between them. Fault-tolerance counters are threaded in
/// by the caller so an embedding authority keeps owning its stats.
pub struct Delivery {
    outboxes: Vec<Outbox>,
    replicas: Vec<ReplicaNode>,
    transport: Box<dyn Transport>,
    config: DeliveryConfig,
    now: u64,
}

impl Delivery {
    /// A fresh delivery plane for `n_peers` peers over `transport`.
    pub fn new(n_peers: usize, transport: Box<dyn Transport>, config: DeliveryConfig) -> Self {
        Delivery {
            outboxes: (0..n_peers).map(|_| Outbox::default()).collect(),
            replicas: (0..n_peers).map(|_| ReplicaNode::default()).collect(),
            transport,
            config,
            now: 0,
        }
    }

    /// A delivery plane whose per-peer sequence streams resume *past*
    /// previously assigned numbers (`next_seqs[p]` is the highest sequence
    /// number ever assigned toward peer `p`). A promoted shard replica uses
    /// this so its post-failover snapshots supersede — rather than collide
    /// with — everything the failed primary sent. Replica cursors start
    /// cold; callers are expected to resync every peer right after.
    pub fn resuming(
        n_peers: usize,
        transport: Box<dyn Transport>,
        config: DeliveryConfig,
        next_seqs: &[u64],
    ) -> Self {
        let mut d = Self::new(n_peers, transport, config);
        for (o, &s) in d.outboxes.iter_mut().zip(next_seqs) {
            o.next_seq = s;
        }
        d
    }

    /// Number of peers served.
    pub fn peer_count(&self) -> usize {
        self.outboxes.len()
    }

    /// The current pump tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Peer `p`'s replica.
    pub fn replica(&self, p: PeerId) -> &MaterializedView {
        &self.replicas[p.index()].view
    }

    /// Highest sequence number assigned so far toward each peer (the
    /// watermark a successor must resume past).
    pub fn next_seqs(&self) -> Vec<u64> {
        self.outboxes.iter().map(|o| o.next_seq).collect()
    }

    /// Enqueues one sequence-numbered delta toward peer `p`.
    pub fn enqueue(&mut self, p: PeerId, delta: ViewDelta, ft: &mut FtStats) {
        let seq = self.outboxes[p.index()].assign_seq();
        let msg = PeerMsg::Delta { seq, delta };
        self.outboxes[p.index()].unacked.push_back(Pending {
            msg: msg.clone(),
            attempts: 0,
            due: self.now + self.config.retry_backoff_base,
        });
        self.transport.send(p, msg);
        ft.deltas_sent += 1;
    }

    /// Replaces peer `p`'s entire outbox with one full-view snapshot
    /// message (the resync path). The snapshot *advances* the stream — it
    /// takes a freshly assigned sequence number rather than reusing the
    /// last one. Reusing it is unsound after a crash: a recovered outbox
    /// restarts at seq 0, so a dropped seq-0 snapshot followed by a seq-1
    /// delta lets a cold replica apply that delta to its empty base and
    /// ack a state no prefix of the history explains. With a fresh number
    /// the snapshot still supersedes every older delta, and any delta
    /// numbered past a lost snapshot is deferred instead of misapplied.
    pub fn resync_with(&mut self, p: PeerId, view: MaterializedView, ft: &mut FtStats) {
        let outbox = &mut self.outboxes[p.index()];
        let msg = PeerMsg::Snapshot {
            seq: outbox.assign_seq(),
            view,
        };
        outbox.unacked.clear();
        outbox.unacked.push_back(Pending {
            msg: msg.clone(),
            attempts: 0,
            due: self.now + self.config.retry_backoff_base,
        });
        self.transport.send(p, msg);
        ft.resyncs += 1;
    }

    /// One delivery round: advance the transport clock, deliver arrived
    /// messages to replicas (collecting their acks), process acks, retry
    /// overdue messages, and resync any replica that lags too far behind.
    /// `authoritative` yields the full current view of a peer when a resync
    /// is triggered.
    pub fn pump(
        &mut self,
        ft: &mut FtStats,
        mut authoritative: impl FnMut(PeerId) -> MaterializedView,
    ) {
        self.transport.tick();
        self.now += 1;
        // Deliver to replicas; each message yields a cumulative ack.
        for i in 0..self.replicas.len() {
            let p = PeerId(i as u32);
            for msg in self.transport.recv(p) {
                let mut ack = self.replicas[i].handle(msg, ft);
                ack.peer = p;
                self.transport.send_ack(ack);
            }
        }
        // Process acks.
        for ack in self.transport.recv_acks() {
            ft.acks_received += 1;
            self.outboxes[ack.peer.index()].ack(ack.applied);
        }
        // Retry and resync.
        for i in 0..self.outboxes.len() {
            let p = PeerId(i as u32);
            let too_laggy = self.outboxes[i].unacked.len() > self.config.resync_lag;
            let too_retried = self.outboxes[i]
                .unacked
                .front()
                .is_some_and(|pend| pend.attempts >= self.config.resync_after_retries);
            if too_laggy || too_retried {
                let view = authoritative(p);
                self.resync_with(p, view, ft);
                continue;
            }
            let base = self.config.retry_backoff_base.max(1);
            let cap = self.config.retry_backoff_cap.max(base);
            let now = self.now;
            let mut resend: Vec<PeerMsg> = Vec::new();
            for pend in self.outboxes[i].unacked.iter_mut() {
                if pend.due <= now {
                    pend.attempts += 1;
                    let backoff = base.saturating_mul(1u64 << pend.attempts.min(16)).min(cap);
                    pend.due = now + backoff;
                    resend.push(pend.msg.clone());
                }
            }
            for msg in resend {
                ft.retries += 1;
                self.transport.send(p, msg);
            }
        }
    }

    /// Messages currently awaiting acknowledgement across all outboxes.
    pub fn undelivered(&self) -> usize {
        self.outboxes.iter().map(|o| o.unacked.len()).sum()
    }

    /// Peers with messages awaiting acknowledgement, with their counts, in
    /// peer-id order (only peers with outstanding work appear).
    pub fn undelivered_by_peer(&self) -> Vec<(PeerId, usize)> {
        self.outboxes
            .iter()
            .enumerate()
            .filter(|(_, o)| !o.unacked.is_empty())
            .map(|(i, o)| (PeerId(i as u32), o.unacked.len()))
            .collect()
    }

    /// Stops all future fault injection on the transport.
    pub fn heal(&mut self) {
        self.transport.heal();
    }

    /// Cuts or restores the link to one peer (see [`Transport::set_link`]).
    pub fn set_link(&mut self, p: PeerId, up: bool) {
        self.transport.set_link(p, up);
    }

    /// Is the link to `p` currently up?
    pub fn link_up(&self, p: PeerId) -> bool {
        self.transport.link_up(p)
    }
}

impl std::fmt::Debug for Delivery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Delivery[{} peers, {} unacked, tick {}]",
            self.outboxes.len(),
            self.undelivered(),
            self.now
        )
    }
}
