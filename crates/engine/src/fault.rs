//! Deterministic fault injection for coordinator deployments.
//!
//! A [`FaultPlan`] is a seeded-RNG schedule of delivery faults (drops,
//! duplicates, reorders, delays), **storage faults** (short writes, fsync
//! failures, transient EINTR-style errors, disk-full), coordinator
//! crash-points mid-append, and log-byte corruption. The same seed always
//! yields the same schedule, so property tests can shrink and replay
//! failures exactly. Thread it through a
//! [`FaultyTransport`](crate::transport::FaultyTransport) for delivery
//! faults and an [`IoFaultBackend`](crate::wal::IoFaultBackend) (or a
//! [`MemBackend`](crate::wal::MemBackend) crash schedule) for durability
//! faults; after [`FaultPlan::heal`], everything behaves perfectly again —
//! except a full disk, which stays full until its capacity is raised.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic schedule of faults, drawn from a seeded RNG.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: StdRng,
    /// Probability a message (delta or ack) is dropped.
    pub drop_p: f64,
    /// Probability a message is duplicated.
    pub dup_p: f64,
    /// Probability a message is delayed.
    pub delay_p: f64,
    /// Maximum delay, in transport ticks.
    pub max_delay: u64,
    /// Probability the due messages of one poll are shuffled (reordering
    /// beyond what random delays already cause).
    pub reorder_p: f64,
    /// Probability a storage append lands only a prefix of its bytes and
    /// fails (a torn record on disk).
    pub short_write_p: f64,
    /// Probability a storage sync (fsync) fails after the bytes were
    /// appended — durability of the tail becomes unknown.
    pub fsync_fail_p: f64,
    /// Probability a storage append fails transiently (EINTR-style) with
    /// nothing written; retrying may succeed.
    pub transient_p: f64,
    /// Byte capacity of the simulated device (`None`: unbounded). Appends
    /// past it land partially and fail with
    /// [`WalError::StorageFull`](crate::error::WalError::StorageFull).
    /// Unlike the probabilistic faults, a full disk is *not* cleared by
    /// [`FaultPlan::heal`] — raise the capacity instead.
    pub disk_capacity: Option<u64>,
    healed: bool,
}

impl FaultPlan {
    /// A plan with moderate default fault rates, fully determined by `seed`.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            rng: StdRng::seed_from_u64(seed),
            drop_p: 0.2,
            dup_p: 0.15,
            delay_p: 0.3,
            max_delay: 4,
            reorder_p: 0.25,
            short_write_p: 0.0,
            fsync_fail_p: 0.0,
            transient_p: 0.0,
            disk_capacity: None,
            healed: false,
        }
    }

    /// A plan that never faults (useful as a healed baseline).
    pub fn perfect(seed: u64) -> FaultPlan {
        FaultPlan {
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            max_delay: 0,
            reorder_p: 0.0,
            ..FaultPlan::seeded(seed)
        }
    }

    /// Overrides the fault rates (builder style).
    pub fn with_rates(
        mut self,
        drop_p: f64,
        dup_p: f64,
        delay_p: f64,
        max_delay: u64,
        reorder_p: f64,
    ) -> FaultPlan {
        self.drop_p = drop_p;
        self.dup_p = dup_p;
        self.delay_p = delay_p;
        self.max_delay = max_delay;
        self.reorder_p = reorder_p;
        self
    }

    /// Overrides the storage-fault rates (builder style).
    pub fn with_storage_rates(
        mut self,
        short_write_p: f64,
        fsync_fail_p: f64,
        transient_p: f64,
    ) -> FaultPlan {
        self.short_write_p = short_write_p;
        self.fsync_fail_p = fsync_fail_p;
        self.transient_p = transient_p;
        self
    }

    /// Caps the simulated device at `bytes` (builder style).
    pub fn with_disk_capacity(mut self, bytes: u64) -> FaultPlan {
        self.disk_capacity = Some(bytes);
        self
    }

    /// Stops all future faults ("the network stabilizes"). Messages already
    /// delayed in flight still arrive late; retry handles them.
    pub fn heal(&mut self) {
        self.healed = true;
    }

    /// Is the plan healed?
    pub fn healed(&self) -> bool {
        self.healed
    }

    /// Should this message be dropped?
    pub fn decide_drop(&mut self) -> bool {
        !self.healed && self.rng.gen_bool(self.drop_p)
    }

    /// Should this message be duplicated?
    pub fn decide_duplicate(&mut self) -> bool {
        !self.healed && self.rng.gen_bool(self.dup_p)
    }

    /// Extra delivery delay for this message, in ticks (0 = on time).
    pub fn decide_delay(&mut self) -> u64 {
        if self.healed || self.max_delay == 0 || !self.rng.gen_bool(self.delay_p) {
            0
        } else {
            self.rng.gen_range(1..=self.max_delay)
        }
    }

    /// Should this batch of due messages be shuffled?
    pub fn decide_reorder(&mut self) -> bool {
        !self.healed && self.rng.gen_bool(self.reorder_p)
    }

    /// Should this storage append land only a torn prefix?
    pub fn decide_short_write(&mut self) -> bool {
        !self.healed && self.rng.gen_bool(self.short_write_p)
    }

    /// Should this storage sync fail?
    pub fn decide_fsync_fail(&mut self) -> bool {
        !self.healed && self.rng.gen_bool(self.fsync_fail_p)
    }

    /// Should this storage append fail transiently (nothing written)?
    pub fn decide_transient(&mut self) -> bool {
        !self.healed && self.rng.gen_bool(self.transient_p)
    }

    /// A uniformly random index below `n` (crash cut points, corruption
    /// offsets, shuffle positions). `n` must be nonzero.
    pub fn pick(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// A random byte to XOR into a corrupted log position (never 0, so the
    /// byte actually changes).
    pub fn corruption_byte(&mut self) -> u8 {
        self.rng.gen_range(1..=u8::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultPlan::seeded(42);
        let mut b = FaultPlan::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.decide_drop(), b.decide_drop());
            assert_eq!(a.decide_delay(), b.decide_delay());
            assert_eq!(a.pick(17), b.pick(17));
        }
    }

    #[test]
    fn healing_stops_faults() {
        let mut p = FaultPlan::seeded(7).with_rates(1.0, 1.0, 1.0, 5, 1.0);
        assert!(p.decide_drop());
        p.heal();
        assert!(p.healed());
        for _ in 0..50 {
            assert!(!p.decide_drop());
            assert!(!p.decide_duplicate());
            assert_eq!(p.decide_delay(), 0);
            assert!(!p.decide_reorder());
        }
    }

    #[test]
    fn healing_stops_storage_faults_too() {
        let mut p = FaultPlan::seeded(9).with_storage_rates(1.0, 1.0, 1.0);
        assert!(p.decide_short_write());
        p.heal();
        for _ in 0..50 {
            assert!(!p.decide_short_write());
            assert!(!p.decide_fsync_fail());
            assert!(!p.decide_transient());
        }
    }

    #[test]
    fn perfect_plan_never_faults() {
        let mut p = FaultPlan::perfect(3);
        for _ in 0..50 {
            assert!(!p.decide_drop());
            assert_eq!(p.decide_delay(), 0);
        }
    }

    #[test]
    fn corruption_byte_is_nonzero() {
        let mut p = FaultPlan::seeded(1);
        for _ in 0..100 {
            assert_ne!(p.corruption_byte(), 0);
        }
    }
}
