//! Deterministic fault injection for coordinator deployments.
//!
//! A [`FaultPlan`] is a seeded-RNG schedule of delivery faults (drops,
//! duplicates, reorders, delays), **storage faults** (short writes, fsync
//! failures, transient EINTR-style errors, disk-full), **link-level
//! partitions** (a per-peer cut that blocks a link entirely until healed),
//! coordinator crash-points mid-append, and log-byte corruption. The same
//! seed always yields the same schedule, so property tests can shrink and
//! replay failures exactly. Thread it through a
//! [`FaultyTransport`](crate::transport::FaultyTransport) for delivery
//! faults and an [`IoFaultBackend`](crate::wal::IoFaultBackend) (or a
//! [`MemBackend`](crate::wal::MemBackend) crash schedule) for durability
//! faults; after [`FaultPlan::heal`], everything behaves perfectly again —
//! except a full disk, which stays full until its capacity is raised.
//!
//! Network and storage draws come from **independent seeded streams**: the
//! network stream is seeded with the plan's seed verbatim (so transport-only
//! schedules are stable across releases), the storage stream with a salted
//! derivation of it. Enabling a storage fault therefore never perturbs the
//! network fault sequence for the same seed, and vice versa — pinned chaos
//! seeds stay meaningful when a profile turns a knob in the other domain.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derives the storage-stream seed from the plan seed (splitmix-style, so
/// adjacent seeds don't yield correlated streams).
fn storage_stream_seed(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x53544F52_41474531); // "STORAGE1"
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic schedule of faults, drawn from seeded RNG streams.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Network-domain stream: drops, duplicates, delays, reorders.
    net_rng: StdRng,
    /// Storage-domain stream: short writes, fsync failures, transients.
    storage_rng: StdRng,
    /// Probability a message (delta or ack) is dropped.
    pub drop_p: f64,
    /// Probability a message is duplicated.
    pub dup_p: f64,
    /// Probability a message is delayed.
    pub delay_p: f64,
    /// Maximum delay, in transport ticks.
    pub max_delay: u64,
    /// Probability the due messages of one poll are shuffled (reordering
    /// beyond what random delays already cause).
    pub reorder_p: f64,
    /// Probability a storage append lands only a prefix of its bytes and
    /// fails (a torn record on disk).
    pub short_write_p: f64,
    /// Probability a storage sync (fsync) fails after the bytes were
    /// appended — durability of the tail becomes unknown.
    pub fsync_fail_p: f64,
    /// Probability a storage append fails transiently (EINTR-style) with
    /// nothing written; retrying may succeed.
    pub transient_p: f64,
    /// Byte capacity of the simulated device (`None`: unbounded). Appends
    /// past it land partially and fail with
    /// [`WalError::StorageFull`](crate::error::WalError::StorageFull).
    /// Unlike the probabilistic faults, a full disk is *not* cleared by
    /// [`FaultPlan::heal`] — raise the capacity instead.
    pub disk_capacity: Option<u64>,
    /// Links (peer indices) currently cut: nothing crosses in either
    /// direction until [`FaultPlan::heal_link`] or [`FaultPlan::heal`].
    blocked: BTreeSet<usize>,
    healed: bool,
}

impl FaultPlan {
    /// A plan with moderate default fault rates, fully determined by `seed`.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            net_rng: StdRng::seed_from_u64(seed),
            storage_rng: StdRng::seed_from_u64(storage_stream_seed(seed)),
            drop_p: 0.2,
            dup_p: 0.15,
            delay_p: 0.3,
            max_delay: 4,
            reorder_p: 0.25,
            short_write_p: 0.0,
            fsync_fail_p: 0.0,
            transient_p: 0.0,
            disk_capacity: None,
            blocked: BTreeSet::new(),
            healed: false,
        }
    }

    /// A plan that never faults (useful as a healed baseline).
    pub fn perfect(seed: u64) -> FaultPlan {
        FaultPlan {
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            max_delay: 0,
            reorder_p: 0.0,
            ..FaultPlan::seeded(seed)
        }
    }

    /// Overrides the fault rates (builder style).
    pub fn with_rates(
        mut self,
        drop_p: f64,
        dup_p: f64,
        delay_p: f64,
        max_delay: u64,
        reorder_p: f64,
    ) -> FaultPlan {
        self.drop_p = drop_p;
        self.dup_p = dup_p;
        self.delay_p = delay_p;
        self.max_delay = max_delay;
        self.reorder_p = reorder_p;
        self
    }

    /// Overrides the storage-fault rates (builder style).
    pub fn with_storage_rates(
        mut self,
        short_write_p: f64,
        fsync_fail_p: f64,
        transient_p: f64,
    ) -> FaultPlan {
        self.short_write_p = short_write_p;
        self.fsync_fail_p = fsync_fail_p;
        self.transient_p = transient_p;
        self
    }

    /// Caps the simulated device at `bytes` (builder style).
    pub fn with_disk_capacity(mut self, bytes: u64) -> FaultPlan {
        self.disk_capacity = Some(bytes);
        self
    }

    /// Stops all future faults ("the network stabilizes") and heals every
    /// partitioned link. Messages already delayed in flight still arrive
    /// late; retry handles them.
    pub fn heal(&mut self) {
        self.healed = true;
        self.blocked.clear();
    }

    /// Is the plan healed?
    pub fn healed(&self) -> bool {
        self.healed
    }

    /// Cuts the link to peer index `link`: every message in either direction
    /// is blocked (sends dropped, in-flight deliveries stalled) until
    /// [`FaultPlan::heal_link`] or [`FaultPlan::heal`]. Returns `true` if the
    /// link was up before.
    pub fn partition(&mut self, link: usize) -> bool {
        self.blocked.insert(link)
    }

    /// Restores the link to peer index `link`. Returns `true` if the link
    /// was cut before.
    pub fn heal_link(&mut self, link: usize) -> bool {
        self.blocked.remove(&link)
    }

    /// Is the link to peer index `link` currently cut?
    pub fn is_partitioned(&self, link: usize) -> bool {
        self.blocked.contains(&link)
    }

    /// The currently cut links, in order.
    pub fn partitioned_links(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocked.iter().copied()
    }

    /// Should this message be dropped?
    pub fn decide_drop(&mut self) -> bool {
        !self.healed && self.net_rng.gen_bool(self.drop_p)
    }

    /// Should this message be duplicated?
    pub fn decide_duplicate(&mut self) -> bool {
        !self.healed && self.net_rng.gen_bool(self.dup_p)
    }

    /// Extra delivery delay for this message, in ticks (0 = on time).
    pub fn decide_delay(&mut self) -> u64 {
        if self.healed || self.max_delay == 0 || !self.net_rng.gen_bool(self.delay_p) {
            0
        } else {
            self.net_rng.gen_range(1..=self.max_delay)
        }
    }

    /// Should this batch of due messages be shuffled?
    pub fn decide_reorder(&mut self) -> bool {
        !self.healed && self.net_rng.gen_bool(self.reorder_p)
    }

    /// Should this storage append land only a torn prefix?
    pub fn decide_short_write(&mut self) -> bool {
        !self.healed && self.storage_rng.gen_bool(self.short_write_p)
    }

    /// Should this storage sync fail?
    pub fn decide_fsync_fail(&mut self) -> bool {
        !self.healed && self.storage_rng.gen_bool(self.fsync_fail_p)
    }

    /// Should this storage append fail transiently (nothing written)?
    pub fn decide_transient(&mut self) -> bool {
        !self.healed && self.storage_rng.gen_bool(self.transient_p)
    }

    /// A uniformly random index below `n` from the **network** stream
    /// (shuffle positions, crash cut points, corruption offsets). `n` must
    /// be nonzero.
    pub fn pick(&mut self, n: usize) -> usize {
        self.net_rng.gen_range(0..n)
    }

    /// A uniformly random index below `n` from the **storage** stream
    /// (short-write cut points). `n` must be nonzero.
    pub fn pick_storage(&mut self, n: usize) -> usize {
        self.storage_rng.gen_range(0..n)
    }

    /// A random byte to XOR into a corrupted log position (never 0, so the
    /// byte actually changes).
    pub fn corruption_byte(&mut self) -> u8 {
        self.net_rng.gen_range(1..=u8::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultPlan::seeded(42);
        let mut b = FaultPlan::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.decide_drop(), b.decide_drop());
            assert_eq!(a.decide_delay(), b.decide_delay());
            assert_eq!(a.pick(17), b.pick(17));
        }
    }

    /// The satellite determinism pin: network and storage draws come from
    /// independent streams, so interleaving storage decisions (as a WAL
    /// fault backend does) never perturbs the network schedule for the same
    /// seed — and vice versa.
    #[test]
    fn storage_draws_do_not_perturb_the_network_stream() {
        let mut quiet = FaultPlan::seeded(99).with_storage_rates(0.5, 0.5, 0.5);
        let mut noisy = quiet.clone();
        let mut seq_quiet = Vec::new();
        let mut seq_noisy = Vec::new();
        for i in 0..200 {
            seq_quiet.push((quiet.decide_drop(), quiet.decide_delay(), quiet.pick(9)));
            if i % 3 == 0 {
                // Storage activity on the noisy plan only.
                noisy.decide_short_write();
                noisy.decide_transient();
                noisy.decide_fsync_fail();
                noisy.pick_storage(33);
            }
            seq_noisy.push((noisy.decide_drop(), noisy.decide_delay(), noisy.pick(9)));
        }
        assert_eq!(
            seq_quiet, seq_noisy,
            "storage draws must not shift the network stream"
        );
    }

    #[test]
    fn network_draws_do_not_perturb_the_storage_stream() {
        let mut quiet = FaultPlan::seeded(7).with_storage_rates(0.4, 0.4, 0.4);
        let mut noisy = quiet.clone();
        let mut seq_quiet = Vec::new();
        let mut seq_noisy = Vec::new();
        for i in 0..200 {
            seq_quiet.push((
                quiet.decide_short_write(),
                quiet.decide_transient(),
                quiet.pick_storage(21),
            ));
            if i % 2 == 0 {
                noisy.decide_drop();
                noisy.decide_delay();
                noisy.decide_reorder();
                noisy.pick(5);
            }
            seq_noisy.push((
                noisy.decide_short_write(),
                noisy.decide_transient(),
                noisy.pick_storage(21),
            ));
        }
        assert_eq!(
            seq_quiet, seq_noisy,
            "network draws must not shift the storage stream"
        );
    }

    #[test]
    fn healing_stops_faults() {
        let mut p = FaultPlan::seeded(7).with_rates(1.0, 1.0, 1.0, 5, 1.0);
        assert!(p.decide_drop());
        p.heal();
        assert!(p.healed());
        for _ in 0..50 {
            assert!(!p.decide_drop());
            assert!(!p.decide_duplicate());
            assert_eq!(p.decide_delay(), 0);
            assert!(!p.decide_reorder());
        }
    }

    #[test]
    fn healing_stops_storage_faults_too() {
        let mut p = FaultPlan::seeded(9).with_storage_rates(1.0, 1.0, 1.0);
        assert!(p.decide_short_write());
        p.heal();
        for _ in 0..50 {
            assert!(!p.decide_short_write());
            assert!(!p.decide_fsync_fail());
            assert!(!p.decide_transient());
        }
    }

    #[test]
    fn partitions_cut_and_heal_per_link() {
        let mut p = FaultPlan::perfect(5);
        assert!(!p.is_partitioned(1));
        assert!(p.partition(1));
        assert!(!p.partition(1), "already cut");
        assert!(p.is_partitioned(1));
        assert!(!p.is_partitioned(0));
        assert_eq!(p.partitioned_links().collect::<Vec<_>>(), vec![1]);
        assert!(p.heal_link(1));
        assert!(!p.is_partitioned(1));
    }

    #[test]
    fn heal_clears_all_partitions() {
        let mut p = FaultPlan::seeded(6);
        p.partition(0);
        p.partition(2);
        p.heal();
        assert!(!p.is_partitioned(0));
        assert!(!p.is_partitioned(2));
    }

    #[test]
    fn perfect_plan_never_faults() {
        let mut p = FaultPlan::perfect(3);
        for _ in 0..50 {
            assert!(!p.decide_drop());
            assert_eq!(p.decide_delay(), 0);
        }
    }

    #[test]
    fn corruption_byte_is_nonzero() {
        let mut p = FaultPlan::seeded(1);
        for _ in 0..100 {
            assert_ne!(p.corruption_byte(), 0);
        }
    }
}
