//! The incremental view plane: delta-maintained peer views.
//!
//! The runtime data plane used to re-materialize every peer's view from
//! scratch (`CollabSchema::view_of` — a full scan + clone of the global
//! instance per peer, per step). Following the self-adjusting-computation
//! lineage of Cheney–Ahmed–Acar (*Provenance Traces*), the [`ViewPlane`]
//! instead owns one [`ViewInstance`] per peer and updates it from the
//! tuple-level [`InstanceDiff`] a transition produces:
//!
//! * a **created** tuple `t` flows to peer `p` iff `σ(R@p)(t)` holds, as an
//!   upsert of `π_{att(R@p)}(t)`;
//! * a **deleted** tuple flows iff it was selected, as a key removal;
//! * a **modified** tuple is prefiltered by relevance — it can only affect
//!   `p` if some changed attribute is projected or mentioned by the
//!   selection — and then dispatched by its selection transition:
//!
//!   | was in σ | now in σ | delta                                   |
//!   |----------|----------|-----------------------------------------|
//!   | yes      | yes      | upsert iff a projected attribute changed |
//!   | no       | yes      | upsert (tuple *enters* the selection)    |
//!   | yes      | no       | removal (tuple *leaves* the selection)   |
//!   | no       | no       | nothing                                 |
//!
//! The pre-modification tuple needed for the "was in σ" test is
//! reconstructed by reverting the [`AttrChange`]s onto the post tuple, so
//! no pre-instance is kept around.
//!
//! `view_of` remains the from-scratch reference implementation: the chaos
//! [`ViewPlaneOracle`](crate::chaos::ViewPlaneOracle), a proptest, and
//! debug assertions in [`Run::push`](crate::run::Run::push) differentially
//! check the plane against it after every step.

use cwf_model::{
    AttrChange, CollabSchema, Instance, InstanceDiff, PeerId, RelId, Tuple, Value, ViewInstance,
};

use crate::coordinator::MaterializedView;

/// One peer's view change caused by one event.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ViewDelta {
    /// View tuples that appeared (new key, or changed content under the
    /// same key — the replica upserts them).
    pub upserts: Vec<(RelId, Tuple)>,
    /// Keys that disappeared from the view.
    pub removals: Vec<(RelId, Value)>,
}

impl ViewDelta {
    /// Computes `after − before` on view instances — the from-scratch
    /// reference; the live path derives deltas with [`peer_delta`] instead.
    pub fn between(before: &ViewInstance, after: &ViewInstance) -> ViewDelta {
        let mut delta = ViewDelta::default();
        for (rel, t) in after.facts() {
            if before.get(rel, t.key()) != Some(t) {
                delta.upserts.push((rel, t.clone()));
            }
        }
        for (rel, t) in before.facts() {
            if !after.contains_key(rel, t.key()) {
                delta.removals.push((rel, *t.key()));
            }
        }
        delta
    }

    /// Is this a no-op?
    pub fn is_empty(&self) -> bool {
        self.upserts.is_empty() && self.removals.is_empty()
    }

    /// Number of changes.
    pub fn len(&self) -> usize {
        self.upserts.len() + self.removals.len()
    }

    /// Applies the delta to a materialized view replica.
    ///
    /// Idempotent by construction: removals are keyed deletes and upserts
    /// are keyed inserts, applied removals-first, so re-applying the same
    /// delta leaves the replica unchanged — the property that makes
    /// duplicate-suppressing delivery safe even if suppression misses.
    pub fn apply_to(&self, replica: &mut MaterializedView) {
        for (rel, key) in &self.removals {
            replica.remove(*rel, key);
        }
        for (rel, t) in &self.upserts {
            replica.upsert(*rel, t.clone());
        }
    }

    /// Applies the delta to a maintained [`ViewInstance`] (removals first,
    /// idempotent — same discipline as [`ViewDelta::apply_to`]).
    pub fn apply_to_view(&self, view: &mut ViewInstance) {
        for (rel, key) in &self.removals {
            view.remove(*rel, key);
        }
        for (rel, t) in &self.upserts {
            view.upsert(*rel, t.clone());
        }
    }
}

/// Reverts `changes` onto the post-modification tuple, reconstructing the
/// pre-modification tuple.
fn revert(post: &Tuple, changes: &[AttrChange]) -> Tuple {
    let mut old = post.clone();
    for c in changes {
        old.set(c.attr, c.before);
    }
    old
}

/// The view delta at peer `p` induced by `diff` (with `post` the instance
/// *after* the diff — needed to look up the surviving tuple of a
/// modification). See the module docs for the dispatch table.
pub fn peer_delta(
    collab: &CollabSchema,
    p: PeerId,
    diff: &InstanceDiff,
    post: &Instance,
) -> ViewDelta {
    let mut out = ViewDelta::default();
    for (rel, t) in &diff.created {
        if let Some(vr) = collab.view(p, *rel) {
            if vr.selects(t) {
                out.upserts.push((*rel, vr.project(t)));
            }
        }
    }
    for (rel, t) in &diff.deleted {
        if let Some(vr) = collab.view(p, *rel) {
            if vr.selects(t) {
                out.removals.push((*rel, *t.key()));
            }
        }
    }
    for (rel, key, changes) in &diff.modified {
        let Some(vr) = collab.view(p, *rel) else {
            continue;
        };
        // Relevance prefilter: the modification can only affect p if some
        // changed attribute is projected or mentioned by the selection
        // (att(R, p) = att(R@p) ∪ att(σ(R@p)), Section 4).
        let selection_touched = changes.iter().any(|c| vr.selection().mentions(c.attr));
        let projection_touched = changes.iter().any(|c| vr.position(c.attr).is_some());
        if !selection_touched && !projection_touched {
            continue;
        }
        let new = post
            .rel(*rel)
            .get(key)
            .expect("a modified key survives into the post instance");
        let now_in = vr.selects(new);
        let was_in = if selection_touched {
            vr.selects(&revert(new, changes))
        } else {
            now_in
        };
        match (was_in, now_in) {
            // Stays in: only a projection change is observable. A changed
            // projected attribute always changes the projection (AttrChange
            // guarantees before ≠ after).
            (true, true) => {
                if projection_touched {
                    out.upserts.push((*rel, vr.project(new)));
                }
            }
            // Enters the selection: appears as an insert.
            (false, true) => out.upserts.push((*rel, vr.project(new))),
            // Leaves the selection: disappears as a delete.
            (true, false) => out.removals.push((*rel, *key)),
            (false, false) => {}
        }
    }
    out
}

/// Materializes `I@p` through the delta path (empty view + diff from the
/// empty instance) — the bootstrap used by [`ViewPlane::new`] and
/// [`Run::view`](crate::run::Run::view), deliberately *not* `view_of`, so
/// the incremental code path covers initial instances too.
pub fn materialize_view(collab: &CollabSchema, p: PeerId, instance: &Instance) -> ViewInstance {
    let mut view = collab.empty_view(p);
    let from_empty = InstanceDiff::between(&Instance::empty(collab.schema()), instance);
    peer_delta(collab, p, &from_empty, instance).apply_to_view(&mut view);
    view
}

/// The per-run view plane: one incrementally maintained [`ViewInstance`]
/// per peer, advanced by [`ViewPlane::step`] from each transition's diff.
#[derive(Debug)]
pub struct ViewPlane {
    views: Vec<ViewInstance>,
}

impl Clone for ViewPlane {
    fn clone(&self) -> Self {
        ViewPlane {
            views: self.views.clone(),
        }
    }

    /// Element-wise `clone_from` so search arenas reuse per-view buffers.
    fn clone_from(&mut self, src: &Self) {
        self.views.clone_from(&src.views);
    }
}

impl ViewPlane {
    /// Bootstraps the plane over `initial` (all views materialized through
    /// the delta path).
    pub fn new(collab: &CollabSchema, initial: &Instance) -> Self {
        let mut views: Vec<ViewInstance> =
            collab.peer_ids().map(|p| collab.empty_view(p)).collect();
        let from_empty = InstanceDiff::between(&Instance::empty(collab.schema()), initial);
        if !from_empty.is_empty() {
            for p in collab.peer_ids() {
                peer_delta(collab, p, &from_empty, initial).apply_to_view(&mut views[p.index()]);
            }
        }
        ViewPlane { views }
    }

    /// Peer `p`'s maintained view.
    pub fn view(&self, p: PeerId) -> &ViewInstance {
        &self.views[p.index()]
    }

    /// Advances every view by `diff` (with `post` the instance after the
    /// diff), returning the non-empty per-peer deltas in peer-id order —
    /// exactly what a coordinator broadcasts.
    pub fn step(
        &mut self,
        collab: &CollabSchema,
        diff: &InstanceDiff,
        post: &Instance,
    ) -> Vec<(PeerId, ViewDelta)> {
        let mut out = Vec::new();
        for p in collab.peer_ids() {
            let delta = peer_delta(collab, p, diff, post);
            if !delta.is_empty() {
                delta.apply_to_view(&mut self.views[p.index()]);
                out.push((p, delta));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwf_model::{AttrId, Condition, Instance, RelSchema, Schema, Tuple, Value, ViewRel};

    /// R(K, A, B); author sees everything; todo sees K, B where A = ⊥;
    /// done sees K where A = "x".
    fn setup() -> (CollabSchema, PeerId, PeerId, PeerId, RelId) {
        let schema =
            Schema::from_relations([RelSchema::new("R", ["K", "A", "B"]).unwrap()]).unwrap();
        let r = schema.rel("R").unwrap();
        let mut cs = CollabSchema::new(schema);
        let author = cs.add_peer("author").unwrap();
        let todo = cs.add_peer("todo").unwrap();
        let done = cs.add_peer("done").unwrap();
        cs.set_full_view(author, r).unwrap();
        cs.set_view(
            todo,
            ViewRel::new(r, [AttrId(2)], Condition::eq_const(AttrId(1), Value::Null)),
        )
        .unwrap();
        cs.set_view(
            done,
            ViewRel::new(r, [], Condition::eq_const(AttrId(1), "x")),
        )
        .unwrap();
        (cs, author, todo, done, r)
    }

    fn t(k: i64, a: Option<&str>, b: Option<&str>) -> Tuple {
        Tuple::new([
            Value::int(k),
            a.map(Value::str).unwrap_or(Value::Null),
            b.map(Value::str).unwrap_or(Value::Null),
        ])
    }

    /// Steps the plane by the diff between two instances and checks every
    /// peer's maintained view against `view_of` of the post instance.
    fn check_step(
        cs: &CollabSchema,
        plane: &mut ViewPlane,
        pre: &Instance,
        post: &Instance,
    ) -> Vec<(PeerId, ViewDelta)> {
        let diff = InstanceDiff::between(pre, post);
        let deltas = plane.step(cs, &diff, post);
        for p in cs.peer_ids() {
            assert_eq!(
                plane.view(p),
                &cs.view_of(post, p),
                "plane diverged from view_of at peer {}",
                cs.peer_name(p)
            );
        }
        deltas
    }

    #[test]
    fn bootstrap_matches_view_of() {
        let (cs, author, todo, done, r) = setup();
        let mut i = Instance::empty(cs.schema());
        i.rel_mut(r).insert(t(1, None, Some("draft"))).unwrap();
        i.rel_mut(r).insert(t(2, Some("x"), None)).unwrap();
        let plane = ViewPlane::new(&cs, &i);
        for p in [author, todo, done] {
            assert_eq!(plane.view(p), &cs.view_of(&i, p));
            assert_eq!(materialize_view(&cs, p, &i), cs.view_of(&i, p));
        }
    }

    #[test]
    fn create_and_delete_respect_selections() {
        let (cs, author, todo, done, r) = setup();
        let i0 = Instance::empty(cs.schema());
        let mut plane = ViewPlane::new(&cs, &i0);
        let mut i1 = i0.clone();
        i1.rel_mut(r).insert(t(1, None, Some("b"))).unwrap();
        let deltas = check_step(&cs, &mut plane, &i0, &i1);
        // author and todo see the new tuple; done (A = "x") does not.
        let touched: Vec<PeerId> = deltas.iter().map(|(p, _)| *p).collect();
        assert_eq!(touched, vec![author, todo]);
        assert!(!touched.contains(&done));
        // Deleting it removes from exactly the same peers.
        let mut i2 = i1.clone();
        i2.rel_mut(r).remove(&Value::int(1));
        let deltas = check_step(&cs, &mut plane, &i1, &i2);
        assert!(deltas
            .iter()
            .all(|(_, d)| d.upserts.is_empty() && d.removals.len() == 1));
        assert_eq!(deltas.len(), 2);
    }

    #[test]
    fn modification_enters_and_leaves_selections() {
        let (cs, author, todo, done, r) = setup();
        let mut i0 = Instance::empty(cs.schema());
        i0.rel_mut(r).insert(t(1, None, Some("b"))).unwrap();
        let mut plane = ViewPlane::new(&cs, &i0);
        // Fill A = ⊥ with "x": the tuple *leaves* todo's selection and
        // *enters* done's.
        let mut i1 = i0.clone();
        i1.rel_mut(r).remove(&Value::int(1));
        i1.rel_mut(r).insert(t(1, Some("x"), Some("b"))).unwrap();
        let deltas = check_step(&cs, &mut plane, &i0, &i1);
        let of = |p: PeerId| deltas.iter().find(|(q, _)| *q == p).map(|(_, d)| d);
        // todo: pure removal (leave).
        let td = of(todo).expect("todo notified");
        assert!(td.upserts.is_empty());
        assert_eq!(td.removals, vec![(r, Value::int(1))]);
        // done: pure upsert (enter), key-only projection.
        let dd = of(done).expect("done notified");
        assert!(dd.removals.is_empty());
        assert_eq!(dd.upserts, vec![(r, Tuple::new([Value::int(1)]))]);
        // author: in-place upsert (stays in, projection changed).
        let ad = of(author).expect("author notified");
        assert!(ad.removals.is_empty());
        assert_eq!(ad.upserts.len(), 1);
    }

    #[test]
    fn irrelevant_modification_flows_to_no_one_extra() {
        let (cs, author, todo, done, r) = setup();
        let mut i0 = Instance::empty(cs.schema());
        i0.rel_mut(r).insert(t(1, Some("x"), None)).unwrap();
        let mut plane = ViewPlane::new(&cs, &i0);
        // Fill B: projected at author and todo, but the tuple is outside
        // todo's selection (A = "x" ≠ ⊥) and done neither projects nor
        // selects on B — only author hears of it.
        let mut i1 = i0.clone();
        i1.rel_mut(r).remove(&Value::int(1));
        i1.rel_mut(r).insert(t(1, Some("x"), Some("b"))).unwrap();
        let deltas = check_step(&cs, &mut plane, &i0, &i1);
        let touched: Vec<PeerId> = deltas.iter().map(|(p, _)| *p).collect();
        assert_eq!(touched, vec![author]);
        assert!(!touched.contains(&todo));
        assert!(!touched.contains(&done));
    }

    #[test]
    fn peer_delta_agrees_with_between_on_random_transitions() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let (cs, _, _, _, r) = setup();
        let mut rng = StdRng::seed_from_u64(42);
        let mut cur = Instance::empty(cs.schema());
        let mut plane = ViewPlane::new(&cs, &cur);
        let val = |rng: &mut StdRng| -> Value {
            match rng.gen_range(0..3) {
                0 => Value::Null,
                1 => Value::str("x"),
                _ => Value::str("y"),
            }
        };
        for _ in 0..200 {
            let mut next = cur.clone();
            let k = Value::int(rng.gen_range(0..5));
            match rng.gen_range(0..3) {
                0 => {
                    // Upsert a (possibly modified) tuple under key k.
                    next.rel_mut(r).remove(&k);
                    let (a, b) = (val(&mut rng), val(&mut rng));
                    next.rel_mut(r).insert(Tuple::new([k, a, b])).unwrap();
                }
                1 => {
                    next.rel_mut(r).remove(&k);
                }
                _ => {} // no-op transition: diff must be empty
            }
            let diff = InstanceDiff::between(&cur, &next);
            for p in cs.peer_ids() {
                let scratch = ViewDelta::between(&cs.view_of(&cur, p), &cs.view_of(&next, p));
                let incremental = peer_delta(&cs, p, &diff, &next);
                assert_eq!(incremental, scratch);
            }
            plane.step(&cs, &diff, &next);
            for p in cs.peer_ids() {
                assert_eq!(plane.view(p), &cs.view_of(&next, p));
            }
            cur = next;
        }
    }
}
