//! The provenance plane: incremental why-provenance for run facts.
//!
//! Alongside the view plane's per-peer `ViewInstance`s, a [`ProvPlane`]
//! maintains a [`Provenance`] polynomial for every fact of the current
//! instance — and, restricted by visibility, for every fact of every peer
//! view. Each monomial is a *witness set*: a set of event indices that
//! replays as a subrun (in original order) and re-derives the fact with its
//! exact content. `⊕` collects alternative derivations (a fact inserted
//! no-op by a second rule gains a second, independent witness), `⊗` joins
//! the requirements of a rule body.
//!
//! ## Closed witness sets
//!
//! With deletions in play, an arbitrary union of replayable sets need not
//! replay — a missing deleter can leave a stale fact that breaks a negative
//! literal. The plane therefore builds monomials from *dependency-closed*
//! sets, tracked by two per-`(rel, key)` structures:
//!
//! * `hist(rel, k)` — the **closed writer history**: the union of the
//!   dependency monomials `D(e)` of every event that created, modified, or
//!   deleted key `k`. Replaying `hist(rel, k)` (plus anything else closed)
//!   reproduces `k`'s exact state history.
//! * `D(e) = {e} ∪ ⋃_{(rel,q) ∈ K(e)} hist(rel, q)` on the pre-state — the
//!   event's own closed dependency monomial over its full key footprint
//!   `K(e)` ([`Event::key_occurrences`]).
//!
//! The fact polynomials join `D`/`hist` factors for every key an event's
//! applicability depends on (positive reads join the fact's polynomial,
//! negative reads and writes join the writer history), so every monomial is
//! closed by construction. The single controlled exception is the
//! **no-op insert**: when a second rule re-inserts a fact byte-identically
//! (the padded insert equals the stored tuple), the insert alone is an
//! alternative derivation. Its monomials are admitted only when disjoint
//! from the key's raw writer set, so at replay the key is simply absent and
//! the insert re-creates the identical fact.
//!
//! The plane is **derived state**: it is never persisted (WAL recovery
//! yields provenance-disabled runs) and [`crate::run::Run`] rebuilds it
//! from history on demand ([`ProvPlane::build`]) or steps it incrementally
//! on each push ([`ProvPlane::step`]).

use std::collections::BTreeMap;

use cwf_lang::WorkflowSpec;
use cwf_model::{InstanceDiff, Mono, PeerId, ProvStore, Provenance, RelId, Value};

use crate::event::{Event, GroundUpdate};
use crate::run::Run;
use crate::view_plane::ViewDelta;

/// Incrementally maintained why-provenance for every fact of a run, at the
/// global instance level and restricted to each peer's view.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProvPlane {
    /// `D(e_i)` — the closed dependency monomial of each event.
    deps: Vec<Mono>,
    /// `hist(rel, k)` — closed writer history per key ever written.
    hist: BTreeMap<(RelId, Value), Mono>,
    /// Raw writer event indices per key (sorted ascending), gating the
    /// no-op-insert alternative.
    touch: BTreeMap<(RelId, Value), Vec<u32>>,
    /// Polynomials of the facts present in the current instance.
    global: BTreeMap<RelId, ProvStore>,
    /// Polynomials of the facts present in each peer's view — always the
    /// global polynomial, restricted by visibility.
    views: Vec<BTreeMap<RelId, ProvStore>>,
}

impl ProvPlane {
    /// Builds the plane from a run's stored history — the from-scratch
    /// reference that incremental stepping must agree with.
    pub fn build(run: &Run) -> ProvPlane {
        let spec = run.spec();
        let mut plane = ProvPlane {
            deps: Vec::with_capacity(run.len()),
            hist: BTreeMap::new(),
            touch: BTreeMap::new(),
            global: BTreeMap::new(),
            views: spec.collab().peer_ids().map(|_| BTreeMap::new()).collect(),
        };
        // Initial-instance facts are derivable with no events at all.
        for r in spec.collab().schema().rel_ids() {
            for k in run.initial().rel(r).keys() {
                plane
                    .global
                    .entry(r)
                    .or_default()
                    .upsert(*k, Provenance::one());
            }
        }
        for i in 0..run.len() {
            let noops = noop_inserts_of(run, i);
            plane.fold(spec, run.event(i), i as u32, run.diff(i), &noops);
        }
        // Peer stores are the global polynomials restricted to the keys the
        // maintained view plane holds for each peer.
        let ProvPlane { global, views, .. } = &mut plane;
        for p in spec.collab().peer_ids() {
            let view = run.peer_view(p);
            for r in spec.collab().schema().rel_ids() {
                let Some(rs) = view.store(r) else { continue };
                if rs.keys().len() == 0 {
                    continue;
                }
                let ps = views[p.index()].entry(r).or_default();
                for k in rs.keys() {
                    let prov = global
                        .get(&r)
                        .and_then(|s| s.get(k))
                        .cloned()
                        .unwrap_or_else(Provenance::one);
                    ps.upsert(*k, prov);
                }
            }
        }
        plane
    }

    /// Advances the plane over one accepted event: `idx` is the event's
    /// position, `diff` the emitted instance diff, `noops` the transition's
    /// no-op inserts, and `deltas` the view plane's per-peer deltas for the
    /// same push.
    pub fn step(
        &mut self,
        spec: &WorkflowSpec,
        event: &Event,
        idx: u32,
        diff: &InstanceDiff,
        noops: &[(RelId, Value, bool)],
        deltas: &[(PeerId, ViewDelta)],
    ) {
        let changed = self.fold(spec, event, idx, diff, noops);
        // Visibility first: removals, then upserts, mirroring
        // `ViewDelta::apply_to_view`.
        for (p, delta) in deltas {
            let store = &mut self.views[p.index()];
            for (rel, k) in &delta.removals {
                if let Some(s) = store.get_mut(rel) {
                    s.remove(k);
                }
            }
            for (rel, t) in &delta.upserts {
                let prov = self
                    .global
                    .get(rel)
                    .and_then(|s| s.get(t.key()))
                    .cloned()
                    .unwrap_or_else(Provenance::one);
                store.entry(*rel).or_default().upsert(*t.key(), prov);
            }
            // Emptied-out relations drop their store entirely, keeping the
            // stepped map byte-identical to a from-scratch build (which
            // never materializes empty stores).
            store.retain(|_, s| !s.is_empty());
        }
        // A polynomial can change without any view delta (a no-op insert
        // adds an alternative; a modification may be invisible to a peer):
        // refresh every view store that already holds the key.
        for (rel, k) in &changed {
            let Some(prov) = self.global.get(rel).and_then(|s| s.get(k)).cloned() else {
                continue;
            };
            for store in &mut self.views {
                if let Some(s) = store.get_mut(rel) {
                    if s.get(k).is_some() {
                        s.upsert(*k, prov.clone());
                    }
                }
            }
        }
    }

    /// Folds one event into `deps`/`hist`/`touch`/`global`, returning the
    /// keys whose polynomial changed (created, modified, or gained an
    /// alternative).
    fn fold(
        &mut self,
        spec: &WorkflowSpec,
        event: &Event,
        idx: u32,
        diff: &InstanceDiff,
        noops: &[(RelId, Value, bool)],
    ) -> Vec<(RelId, Value)> {
        // D(e): the event plus the closed writer history of every key it
        // touches, on the pre-state.
        let mut d = Mono::var(idx);
        for (rel, keys) in event.key_occurrences(spec) {
            for k in keys {
                if let Some(h) = self.hist.get(&(rel, k)) {
                    d = d.union(*h);
                }
            }
        }
        // W(e): the event joined with one factor per key its applicability
        // depends on, all read on the pre-state. Positive body reads need
        // the fact itself (its polynomial); negative reads and written keys
        // need the key's exact state, i.e. its closed writer history;
        // modified/deleted facts additionally carry their own polynomial
        // (their content had to be present and selectable).
        let (pos, neg) = event.body_key_reads(spec);
        let mut w = Provenance::from_mono(Mono::var(idx));
        for (rel, keys) in &pos {
            for k in keys {
                let f = self.fact_prov(*rel, k);
                w = w.and(&f);
            }
        }
        for (rel, keys) in &neg {
            for k in keys {
                if let Some(h) = self.hist.get(&(*rel, *k)) {
                    w = w.and_mono(*h);
                }
            }
        }
        for (rel, t) in &diff.created {
            if let Some(h) = self.hist.get(&(*rel, *t.key())) {
                w = w.and_mono(*h);
            }
        }
        for (rel, k, _) in &diff.modified {
            if let Some(h) = self.hist.get(&(*rel, *k)) {
                w = w.and_mono(*h);
            }
            let f = self.fact_prov(*rel, k);
            w = w.and(&f);
        }
        for (rel, t) in &diff.deleted {
            if let Some(h) = self.hist.get(&(*rel, *t.key())) {
                w = w.and_mono(*h);
            }
            let f = self.fact_prov(*rel, t.key());
            w = w.and(&f);
        }
        // A non-exact no-op insert relied on attributes the stored fact
        // already had: its applicability depends on that fact's derivation.
        for (rel, k, exact) in noops {
            if !*exact {
                let f = self.fact_prov(*rel, k);
                w = w.and(&f);
            }
        }
        // Commit the written keys: their fact is now derived by W(e).
        let mut changed = Vec::new();
        for (rel, t) in &diff.created {
            self.global
                .entry(*rel)
                .or_default()
                .upsert(*t.key(), w.clone());
            changed.push((*rel, *t.key()));
        }
        for (rel, k, _) in &diff.modified {
            self.global.entry(*rel).or_default().upsert(*k, w.clone());
            changed.push((*rel, *k));
        }
        for (rel, t) in &diff.deleted {
            if let Some(s) = self.global.get_mut(rel) {
                s.remove(t.key());
            }
        }
        // Exact no-op inserts are alternative derivations: the insert alone
        // re-creates the identical fact — provided the witness set contains
        // no other writer of the key (so the key is absent at replay) and
        // the rule did not itself read the key positively or negatively.
        for (rel, k, exact) in noops {
            if !*exact
                || pos.get(rel).is_some_and(|ks| ks.contains(k))
                || neg.get(rel).is_some_and(|ks| ks.contains(k))
            {
                continue;
            }
            let writers = self
                .touch
                .get(&(*rel, *k))
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            let alts: Vec<Mono> = w
                .monomials()
                .iter()
                .copied()
                .filter(|m| m.is_disjoint(writers))
                .collect();
            if alts.is_empty() {
                continue;
            }
            let store = self.global.entry(*rel).or_default();
            if let Some(cur) = store.get(k) {
                let mut merged = cur.clone();
                for m in alts {
                    merged.or_mono(m);
                }
                store.upsert(*k, merged);
                changed.push((*rel, *k));
            }
        }
        // The written keys absorb the event into their closed writer
        // history and raw writer set.
        for (rel, k) in written_keys(diff) {
            let h = self.hist.entry((rel, k)).or_insert_with(Mono::one);
            *h = h.union(d);
            self.touch.entry((rel, k)).or_default().push(idx);
        }
        self.deps.push(d);
        changed
    }

    /// The polynomial of the present fact `(rel, key)`, defaulting to `1`
    /// (facts of the initial instance that predate the plane's bookkeeping).
    fn fact_prov(&self, rel: RelId, key: &Value) -> Provenance {
        self.global
            .get(&rel)
            .and_then(|s| s.get(key))
            .cloned()
            .unwrap_or_else(Provenance::one)
    }

    /// Number of events folded in.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Has no event been folded in?
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// `D(e_i)` — the closed dependency monomial of event `i`.
    pub fn dep(&self, i: usize) -> Mono {
        self.deps[i]
    }

    /// The closed writer history of `(rel, key)`, if the key was ever
    /// written.
    pub fn writer_history(&self, rel: RelId, key: &Value) -> Option<Mono> {
        self.hist.get(&(rel, *key)).copied()
    }

    /// The polynomial of the fact `(rel, key)` in the current instance.
    pub fn global_fact(&self, rel: RelId, key: &Value) -> Option<&Provenance> {
        self.global.get(&rel).and_then(|s| s.get(key))
    }

    /// The polynomial of the fact `(rel, key)` as visible at `peer`; `None`
    /// when the peer does not see the fact.
    pub fn explain(&self, peer: PeerId, rel: RelId, key: &Value) -> Option<&Provenance> {
        self.views[peer.index()].get(&rel).and_then(|s| s.get(key))
    }

    /// Iterates `(rel, key, polynomial)` over the current instance's facts.
    pub fn global_iter(&self) -> impl Iterator<Item = (RelId, &Value, &Provenance)> {
        self.global
            .iter()
            .flat_map(|(r, s)| s.iter().map(move |(k, p)| (*r, k, p)))
    }

    /// Iterates `(rel, key, polynomial)` over the facts visible at `peer`.
    pub fn peer_iter(&self, peer: PeerId) -> impl Iterator<Item = (RelId, &Value, &Provenance)> {
        self.views[peer.index()]
            .iter()
            .flat_map(|(r, s)| s.iter().map(move |(k, p)| (*r, k, p)))
    }
}

/// The keys written by a diff: created, modified, and deleted.
fn written_keys(diff: &InstanceDiff) -> impl Iterator<Item = (RelId, Value)> + '_ {
    diff.created
        .iter()
        .map(|(r, t)| (*r, *t.key()))
        .chain(diff.modified.iter().map(|(r, k, _)| (*r, *k)))
        .chain(diff.deleted.iter().map(|(r, t)| (*r, *t.key())))
}

/// Reconstructs the transition's no-op inserts for event `i` of a stored
/// run: ground inserts whose key appears in neither `created` nor
/// `modified` of the diff left the instance untouched. The flag records
/// whether the padded insert equals the stored tuple outright.
fn noop_inserts_of(run: &Run, i: usize) -> Vec<(RelId, Value, bool)> {
    let spec = run.spec();
    let schema = spec.collab().schema();
    let event = run.event(i);
    let diff = run.diff(i);
    let mut out = Vec::new();
    for upd in event.ground_updates(spec) {
        let GroundUpdate::Insert { rel, view_tuple } = upd else {
            continue;
        };
        let k = view_tuple.key();
        let written = diff.created.iter().any(|(r, t)| *r == rel && t.key() == k)
            || diff.modified.iter().any(|(r, mk, _)| *r == rel && mk == k);
        if written {
            continue;
        }
        let vr = spec
            .collab()
            .view(event.peer, rel)
            .expect("validated events only update visible relations");
        let stored = run
            .instance(i)
            .rel(rel)
            .get(k)
            .expect("no-op insert implies presence");
        let exact = vr.pad(&view_tuple, schema.relation(rel).arity()) == *stored;
        out.push((rel, *k, exact));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Bindings;
    use cwf_lang::parse_workflow;
    use std::sync::Arc;

    /// q sees everything, p sees only OK; C1 is derivable two ways.
    fn spec() -> Arc<WorkflowSpec> {
        Arc::new(
            parse_workflow(
                r#"
                schema { V1(K); V2(K); C1(K); OK(K); }
                peers {
                    q sees V1(*), V2(*), C1(*), OK(*);
                    p sees OK(*);
                }
                rules {
                    a1 @ q: +V1(0) :- ;
                    a2 @ q: +V2(0) :- ;
                    b1 @ q: +C1(0) :- V1(0);
                    b2 @ q: +C1(0) :- V2(0);
                    ok @ q: +OK(0) :- C1(0);
                }
                "#,
            )
            .unwrap(),
        )
    }

    fn ground(spec: &WorkflowSpec, name: &str) -> Event {
        let id = spec.program().rule_by_name(name).unwrap();
        Event::new(spec, id, Bindings::empty(0)).unwrap()
    }

    fn assert_same(a: &ProvPlane, b: &ProvPlane, spec: &WorkflowSpec) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.dep(i), b.dep(i), "D(e_{i})");
        }
        let ga: Vec<_> = a.global_iter().collect();
        let gb: Vec<_> = b.global_iter().collect();
        assert_eq!(ga, gb, "global polynomials");
        for p in spec.collab().peer_ids() {
            let va: Vec<_> = a.peer_iter(p).collect();
            let vb: Vec<_> = b.peer_iter(p).collect();
            assert_eq!(va, vb, "peer {p:?} polynomials");
        }
    }

    #[test]
    fn noop_insert_records_alternative_derivation() {
        let spec = spec();
        let mut run = Run::new(Arc::clone(&spec));
        run.enable_provenance();
        for name in ["a1", "b1", "a2", "b2", "ok"] {
            run.push(ground(&spec, name)).unwrap();
        }
        let c1 = spec.collab().schema().rel("C1").unwrap();
        let ok = spec.collab().schema().rel("OK").unwrap();
        let pp = run.provenance().unwrap();
        // b2 (index 3) re-derived C1(0) without touching the instance: the
        // polynomial gains the independent witness {a2, b2}.
        let c = pp.global_fact(c1, &Value::int(0)).unwrap();
        assert_eq!(
            c.monomials(),
            &[Mono::new(vec![0, 1]), Mono::new(vec![2, 3])]
        );
        // ok multiplies the alternatives through.
        let o = pp.global_fact(ok, &Value::int(0)).unwrap();
        assert_eq!(
            o.monomials(),
            &[Mono::new(vec![0, 1, 4]), Mono::new(vec![2, 3, 4])]
        );
    }

    #[test]
    fn every_monomial_replays_and_rederives_the_fact() {
        let spec = spec();
        let mut run = Run::new(Arc::clone(&spec));
        run.enable_provenance();
        for name in ["a1", "b1", "a2", "b2", "ok"] {
            run.push(ground(&spec, name)).unwrap();
        }
        let ok = spec.collab().schema().rel("OK").unwrap();
        let prov = run
            .provenance()
            .unwrap()
            .global_fact(ok, &Value::int(0))
            .unwrap()
            .clone();
        let want = run.current().rel(ok).get(&Value::int(0)).unwrap().clone();
        assert!(prov.monomials().len() >= 2);
        for m in prov.monomials() {
            let idx: Vec<usize> = m.events().iter().map(|&e| e as usize).collect();
            let sub = run.try_subrun(&idx).expect("witness set must replay");
            assert_eq!(
                sub.current().rel(ok).get(&Value::int(0)),
                Some(&want),
                "witness {m} must re-derive the fact"
            );
        }
    }

    #[test]
    fn incremental_step_matches_from_scratch_build_at_every_prefix() {
        let spec = spec();
        let mut run = Run::new(Arc::clone(&spec));
        run.enable_provenance();
        for name in ["a1", "b1", "a2", "b2", "ok"] {
            run.push(ground(&spec, name)).unwrap();
            let rebuilt = ProvPlane::build(&run);
            assert_same(run.provenance().unwrap(), &rebuilt, &spec);
        }
    }

    #[test]
    fn explain_respects_visibility() {
        let spec = spec();
        let mut run = Run::new(Arc::clone(&spec));
        run.enable_provenance();
        for name in ["a1", "b1", "ok"] {
            run.push(ground(&spec, name)).unwrap();
        }
        let p = spec.collab().peer("p").unwrap();
        let q = spec.collab().peer("q").unwrap();
        let c1 = spec.collab().schema().rel("C1").unwrap();
        let ok = spec.collab().schema().rel("OK").unwrap();
        // p does not see C1 at all, but sees (and can explain) OK.
        assert!(run.explain_fact(p, c1, &Value::int(0)).is_none());
        let o = run.explain_fact(p, ok, &Value::int(0)).unwrap();
        assert_eq!(o.monomials(), &[Mono::new(vec![0, 1, 2])]);
        assert_eq!(run.fact_support(p, ok, &Value::int(0)), Some(vec![0, 1, 2]));
        // q sees the intermediate facts too.
        assert!(run.explain_fact(q, c1, &Value::int(0)).is_some());
    }

    #[test]
    fn prov_cone_covers_visible_dependencies() {
        let spec = spec();
        let mut run = Run::new(Arc::clone(&spec));
        run.enable_provenance();
        for name in ["a1", "b1", "a2", "ok"] {
            run.push(ground(&spec, name)).unwrap();
        }
        let p = spec.collab().peer("p").unwrap();
        // p sees only ok (index 3), whose closed dependencies are
        // {a1, b1, ok}; the irrelevant a2 (index 2) is outside the cone.
        assert_eq!(run.prov_cone(p), Some(vec![0, 1, 3]));
    }

    #[test]
    fn pop_rebuilds_the_plane() {
        let spec = spec();
        let mut run = Run::new(Arc::clone(&spec));
        run.enable_provenance();
        for name in ["a1", "b1", "ok"] {
            run.push(ground(&spec, name)).unwrap();
        }
        run.pop().unwrap();
        assert!(run.provenance_enabled());
        let rebuilt = ProvPlane::build(&run);
        assert_same(run.provenance().unwrap(), &rebuilt, &spec);
        assert_eq!(run.provenance().unwrap().len(), 2);
    }

    #[test]
    fn enable_is_idempotent_and_disable_drops() {
        let spec = spec();
        let mut run = Run::new(Arc::clone(&spec));
        run.push(ground(&spec, "a1")).unwrap();
        assert!(!run.provenance_enabled());
        run.enable_provenance();
        run.enable_provenance();
        assert_eq!(run.provenance().unwrap().len(), 1);
        run.disable_provenance();
        assert!(run.provenance().is_none());
    }
}
