//! The [`ShardPlane`]: N coordinator shards behind a thin routing layer,
//! with **distributed admission** — per-shard write-ahead logs and a
//! cross-shard commit protocol.
//!
//! **Routing layer.** Event *validation* (body match, key chase,
//! freshness) stays global: it needs the whole keyed instance, so the
//! plane owns the authoritative [`Run`]. Everything else is pushed down
//! into the shards. An event whose write set lives on a single shard (the
//! common case under key-local rules) commits entirely on that shard's
//! path: stamped by the shard's [`Hlc`], appended as one `e` record to
//! *that shard's own WAL stream*, applied to its partition — the router
//! writes nothing. Only events whose ops span shards go through the
//! **cross-shard commit protocol**: the router assigns a global
//! transaction id, writes a `p` (prepare) record carrying the admission
//! stamp and the full event to every participant stream (bounded
//! transient retry with capped backoff; exhaustion or a hard fault aborts
//! with best-effort `a` records), then commits by writing a synced `c`
//! record to the home shard first (the commit point) and to the remaining
//! participants after. A participant whose `c` is stalled or lost leaves
//! an in-doubt `p`; recovery resolves it deterministically — **presumed
//! abort** unless *some* surviving stream holds the `c` record (the home
//! stream's `c` is synced before the plane acknowledges, so no
//! acknowledged event is ever presumed away by a crash).
//!
//! **Quorum recovery.** [`ShardPlane::recover`] scans every shard stream
//! (longest valid prefix, torn-tail truncation, dense-seq tamper checks),
//! resolves in-doubt transactions from the surviving prepare/commit
//! records, and reconstructs the global run order by sorting the
//! surviving records by HLC stamp: local `e` records carry their shard
//! stamp, prepares carry the router's admission stamp, and both kinds are
//! minted strictly above every stamp of the previous event (the router
//! folds each shard stamp back into its clock), so stamp order *is*
//! admission order — the serialization argument the paper's global-run
//! semantics demands. Snapshots (`s` records, written to the current home
//! stream at the plane cadence) carry the covered event count and the
//! last covered record stamp; replay starts above that stamp.
//!
//! **Shard-local apply.** Each shard owns its partition of the state, an
//! HLC-stamped append-only [`Oplog`], a warm standby replica consuming the
//! oplog tail, and a [`Delivery`] plane (the coordinator's own outbox/ack
//! machinery, reused verbatim) pushing its slice of every peer's view over
//! its own transport. A peer's full replica is the union of its per-shard
//! slices; key spaces are disjoint by construction, so the union is a
//! plain merge.
//!
//! **Causality.** The router stamps each admission with its own
//! [`Hlc`]; every owning shard folds that stamp into its clock when
//! appending (receive event), and the router folds the shard stamps back
//! (reply). Hence for consecutive events `i < j`: every stamp of `i` —
//! admission and all shard entries — orders strictly below every stamp of
//! `j`, which is what the chaos battery's HLC-causality oracle pins.
//!
//! **Failure handling.** [`ShardPlane::failover`] promotes a shard's
//! standby (replaying the oplog tail past its watermark), resumes the
//! per-peer sequence streams past the control-plane watermarks, and
//! resyncs every peer's slice. [`ShardPlane::begin_handoff`] /
//! [`ShardPlane::step_handoff`] / [`ShardPlane::finish_handoff`] move a
//! shard to a new node with an interruptible drain → snapshot → transfer →
//! replay-tail protocol ([`ShardPlane::abort_handoff`] rolls back cleanly
//! at any record boundary). Link-level partitions are cut and healed per
//! (shard, peer) or toward a shard's standby. Commit-protocol faults
//! (stalled participant commits, injected aborts, router death between
//! prepare and commit) are injectable for the chaos harness via
//! [`ShardPlane::inject_commit_stall`] and friends.
//!
//! [`Coordinator`]: crate::coordinator::Coordinator

use std::fmt;
use std::sync::Arc;

use cwf_model::{Instance, PeerId, RelId, Tuple, ViewInstance};

use crate::codec::{decode_event, encode_event};
use crate::coordinator::{CoordinatorConfig, MaterializedView};
use crate::delivery::Delivery;
use crate::error::{CoordinatorError, WalError};
use crate::event::Event;
use crate::run::Run;
use crate::stats::{FtStats, RunStats, ShardAdmissionStats};
use crate::transport::{PerfectTransport, Transport};
use crate::view_plane::ViewDelta;
use crate::wal::{decode_snapshot, encode_snapshot, RecoveryReport, Wal, WalBackend, WalOptions};

use super::{Hlc, HlcStamp, MigrationKind, MigrationPlan, Oplog, ShardId, ShardMap, ShardOp};

/// The router's HLC node id (shards use their own id).
const ROUTER_NODE: u16 = u16::MAX;

/// The stream carrying router-level map-change records (`m` plan, `f`
/// fenced cutover, `x` abort). Stream 0 always exists — shards are never
/// physically removed — so the resharding history lives on one totally
/// ordered log.
const ROUTER_STREAM: ShardId = ShardId(0);

/// Tuning of a [`ShardPlane`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlaneConfig {
    /// Number of shards (≥ 1).
    pub shards: usize,
    /// The per-shard delivery and WAL knobs (shared with the single
    /// coordinator so shards=1 behaves identically).
    pub coordinator: CoordinatorConfig,
}

impl ShardPlaneConfig {
    /// Default knobs over `shards` shards.
    pub fn with_shards(shards: usize) -> Self {
        ShardPlaneConfig {
            shards,
            coordinator: CoordinatorConfig::default(),
        }
    }
}

impl Default for ShardPlaneConfig {
    fn default() -> Self {
        Self::with_shards(1)
    }
}

/// One destination of a shard's links: a peer replica or the standby.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardLink {
    /// The link carrying one peer's slice of deltas and acks.
    Peer(PeerId),
    /// The replication link feeding the shard's standby replica.
    Standby,
}

/// Robustness counters of the plane (the delivery-level counters live in
/// the shared [`FtStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardPlaneStats {
    /// Standby promotions executed.
    pub failovers: u64,
    /// Oplog records replayed past the standby watermark during failovers.
    pub failover_replayed: u64,
    /// Hand-offs started.
    pub handoffs_started: u64,
    /// Hand-offs completed (cutover reached).
    pub handoffs_completed: u64,
    /// Hand-offs aborted mid-transfer (rolled back).
    pub handoffs_aborted: u64,
    /// Oplog records transferred by hand-off steps.
    pub handoff_records: u64,
    /// Links cut (peer or standby).
    pub partitions_cut: u64,
    /// Links restored individually (a global heal is not counted per link).
    pub partitions_healed: u64,
    /// Oplog records applied to standby replicas.
    pub standby_applied: u64,
    /// Events whose ops or deltas spanned more than one shard.
    pub cross_shard_events: u64,
    /// Migrations begun (`m` plan record durable).
    pub resharding_started: u64,
    /// Migrations cut over (`f` record durable, map epoch flipped).
    pub resharding_completed: u64,
    /// Migrations abandoned (explicit abort or presumed abort at
    /// recovery).
    pub resharding_aborted: u64,
    /// Tuples whose ownership moved at a cutover.
    pub keys_migrated: u64,
    /// The live map epoch (advances on every durable map transition).
    pub epoch: u64,
    /// Hand-offs aborted as a side effect of a failover on their shard.
    pub failover_aborted_handoffs: u64,
}

/// What a [`ShardPlane::failover`] did beyond the promotion itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailoverReport {
    /// Oplog records replayed past the standby watermark.
    pub replayed: u64,
    /// Was an in-flight hand-off on this shard aborted by the failover?
    pub aborted_handoff: bool,
}

/// The outcome of [`ShardPlane::converge`], with per-shard, per-peer
/// breakdowns (chaos artifacts say *where* the plane stalled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardConvergence {
    /// The plane is quiescent; `ticks` pump rounds were needed.
    Converged {
        /// Pump rounds executed before quiescence.
        ticks: u64,
    },
    /// The tick budget ran out with work still outstanding.
    Stalled {
        /// Per (shard, peer) with a non-empty outbox: outstanding count.
        undelivered: Vec<(ShardId, PeerId, usize)>,
        /// (shard, peer) slices differing from their authoritative view.
        divergent: Vec<(ShardId, PeerId)>,
    },
}

impl ShardConvergence {
    /// Did the plane settle?
    pub fn is_converged(&self) -> bool {
        matches!(self, ShardConvergence::Converged { .. })
    }

    /// Total messages still awaiting acknowledgement (0 when converged).
    pub fn undelivered_total(&self) -> usize {
        match self {
            ShardConvergence::Converged { .. } => 0,
            ShardConvergence::Stalled { undelivered, .. } => {
                undelivered.iter().map(|(_, _, n)| n).sum()
            }
        }
    }
}

impl fmt::Display for ShardConvergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardConvergence::Converged { ticks } => write!(f, "converged after {ticks} ticks"),
            ShardConvergence::Stalled {
                undelivered,
                divergent,
            } => {
                write!(
                    f,
                    "stalled: {} undelivered messages across {} shard/peer slices (",
                    self.undelivered_total(),
                    undelivered.len()
                )?;
                for (i, (s, p, n)) in undelivered.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}/p{}:{n}", p.index())?;
                }
                write!(f, "), {} divergent slices (", divergent.len())?;
                for (i, (s, p)) in divergent.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}/p{}", p.index())?;
                }
                write!(f, ")")
            }
        }
    }
}

/// One admitted event as the plane broadcast it: the routing record the
/// causality oracle checks.
#[derive(Debug, Clone)]
pub struct ShardBroadcast {
    /// Position of the event in the global run.
    pub at: usize,
    /// The acting peer.
    pub actor: PeerId,
    /// The home shard (owner of the event's first written key).
    pub home: ShardId,
    /// The router's admission stamp.
    pub admitted: HlcStamp,
    /// Per owning shard (ascending): the stamp of its oplog entry.
    pub stamps: Vec<(ShardId, HlcStamp)>,
    /// Per peer: the full view delta (pre-split; shard routing re-derives
    /// per-slice deltas from the key map).
    pub deltas: Vec<(PeerId, ViewDelta)>,
}

/// The warm standby replica of one shard.
#[derive(Debug)]
struct Standby {
    state: MaterializedView,
    /// Highest oplog sequence number applied.
    applied_seq: u64,
    /// Is the replication link up? (Cut by partitions; restored by heal.)
    link_up: bool,
}

/// One coordinator shard: its state partition, oplog, clock, standby, and
/// delivery plane.
struct Shard {
    id: ShardId,
    hlc: Hlc,
    oplog: Oplog,
    state: MaterializedView,
    delivery: Delivery,
    standby: Standby,
}

impl Shard {
    fn fresh(
        id: ShardId,
        peers: usize,
        transport: Box<dyn Transport>,
        config: CoordinatorConfig,
    ) -> Shard {
        Shard {
            id,
            hlc: Hlc::new(id.0),
            oplog: Oplog::new(),
            state: MaterializedView::new(),
            delivery: Delivery::new(peers, transport, config.into()),
            standby: Standby {
                state: MaterializedView::new(),
                applied_seq: 0,
                link_up: true,
            },
        }
    }
}

/// An in-progress hand-off: the receiving node's state under construction.
struct HandoffState {
    shard: ShardId,
    /// The transferred snapshot plus every oplog record applied so far.
    state: MaterializedView,
    /// Highest oplog sequence number transferred.
    transferred_seq: u64,
}

/// An in-flight migration: the destination's staged copy of the moving
/// key space, built from a begin-time snapshot plus a source-oplog tail
/// catch-up at cutover (the hand-off recipe, re-aimed at a slice of a
/// shard instead of the whole shard).
struct ReshardState {
    plan: MigrationPlan,
    /// The post-cutover assignment (the moves predicate: a key moves iff
    /// the target map sends it to `plan.dst`).
    target: ShardMap,
    /// Moving facts frozen at begin, awaiting copy.
    snapshot: Vec<(RelId, Tuple)>,
    /// How many snapshot facts have been copied so far.
    copied: usize,
    /// The destination's staged state for the moving keys.
    staged: MaterializedView,
    /// Source-oplog sequence at begin: the catch-up replays the tail
    /// above it (filtered to moving keys) before the cutover flips.
    watermark: u64,
}

/// Injected commit-protocol faults (one-shot, armed by the chaos harness).
#[derive(Debug, Default)]
struct CommitFaults {
    /// Stall the next non-home commit record destined for this shard: the
    /// record is deferred to [`ShardPlane::pump`] instead of written,
    /// leaving the participant in doubt until the flush.
    stall: Option<ShardId>,
    /// Abort the next cross-shard transaction after its prepare phase
    /// (clean abort: `a` records everywhere, event rolled back).
    abort_next: bool,
    /// Kill the router after the next prepare phase: prepares are left
    /// orphaned on every participant and the submit returns
    /// [`CoordinatorError::InDoubt`] — recovery resolves by presumed abort.
    router_crash: bool,
}

/// What [`ShardPlane::replay_streams`] learned beyond the run itself.
struct ReplayMeta {
    /// Per stream: the next record sequence number.
    next_seqs: Vec<u64>,
    /// Per stream: the byte length of the valid prefix.
    valid_lens: Vec<u64>,
    /// One past the highest transaction id seen anywhere.
    next_gid: u64,
    /// In-doubt transactions resolved as committed.
    in_doubt_committed: u64,
    /// In-doubt transactions resolved by presumed abort.
    in_doubt_aborted: u64,
    /// The highest stamp on any surviving record.
    max_stamp: HlcStamp,
    /// The committed map reconstructed from surviving `m`/`f`/`x` records
    /// (`None`: no map records anywhere — the plane never resharded).
    map: Option<ShardMap>,
    /// Migrations the record history shows cut over.
    reshard_completed: u64,
    /// Migrations the record history shows aborted (explicitly or by
    /// presumed abort, including one in flight at the crash).
    reshard_aborted: u64,
}

/// The sharded, replicated state plane (see the [module docs](super)).
pub struct ShardPlane {
    run: Run,
    map: ShardMap,
    peers: usize,
    shards: Vec<Shard>,
    /// One WAL stream per shard (index = shard id), when durable.
    wals: Option<Vec<Wal>>,
    config: CoordinatorConfig,
    /// The deterministic "physical" tick feeding every HLC (advances on
    /// each submit and each pump).
    clock: u64,
    hlc: Hlc,
    log: Vec<ShardBroadcast>,
    handoff: Option<HandoffState>,
    reshard: Option<ReshardState>,
    ft: FtStats,
    stats: ShardPlaneStats,
    admission: ShardAdmissionStats,
    /// Next cross-shard transaction id (monotone; never reused, even
    /// across recoveries).
    next_gid: u64,
    /// Events since the last snapshot record (plane-level cadence).
    events_since_snapshot: u64,
    /// Events covered by the snapshot this process epoch recovered from
    /// (snapshot counts stay global across recoveries: `base_events +
    /// run.len()`).
    base_events: u64,
    /// Commit records deferred by an injected stall, flushed by `pump`.
    pending_commits: Vec<(ShardId, u64)>,
    commit_faults: CommitFaults,
    degraded: bool,
}

/// Renders an [`HlcStamp`] as a WAL token (`t<wall>.<logical>.<node>`).
fn encode_stamp(s: &HlcStamp) -> String {
    format!("t{}.{}.{}", s.wall, s.logical, s.node)
}

/// Parses a stamp token written by [`encode_stamp`].
fn decode_stamp(tok: &str) -> Option<HlcStamp> {
    let rest = tok.strip_prefix('t')?;
    let mut it = rest.splitn(3, '.');
    Some(HlcStamp {
        wall: it.next()?.parse().ok()?,
        logical: it.next()?.parse().ok()?,
        node: it.next()?.parse().ok()?,
    })
}

/// Parses a transaction-id token (`g<gid>`).
fn decode_gid(tok: &str) -> Option<u64> {
    tok.strip_prefix('g')?.parse().ok()
}

/// Renders a slot table as a WAL token (`<streams>:<slot>,<slot>,…`).
fn encode_table(streams: u16, slots: &[u16]) -> String {
    let csv: Vec<String> = slots.iter().map(|o| o.to_string()).collect();
    format!("{streams}:{}", csv.join(","))
}

/// Parses a slot-table token written by [`encode_table`].
fn decode_table(tok: &str) -> Option<(u16, Vec<u16>)> {
    let (streams, csv) = tok.split_once(':')?;
    let streams: u16 = streams.parse().ok()?;
    let slots: Option<Vec<u16>> = csv.split(',').map(|o| o.parse().ok()).collect();
    let slots = slots?;
    if slots.is_empty() || slots.iter().any(|&o| o >= streams.max(1)) {
        return None;
    }
    Some((streams, slots))
}

/// Renders a `m` plan record payload: the migrating epoch, the kind, the
/// endpoints, and — crucially — **both** full assignments (old and
/// target), so a recovering node reconstructs the committed map from the
/// record chain alone, with no out-of-band state.
fn encode_plan(old: &ShardMap, plan: &MigrationPlan) -> String {
    format!(
        "e{} k{} s{} d{} {} {}",
        plan.epoch,
        plan.kind,
        plan.src.0,
        plan.dst.0,
        encode_table(old.shards() as u16, old.slots()),
        encode_table(plan.streams, &plan.slots),
    )
}

/// Parses a plan payload written by [`encode_plan`]: the old map (at the
/// pre-plan epoch) and the plan itself.
fn decode_plan(payload: &str) -> Option<(ShardMap, MigrationPlan)> {
    let mut it = payload.split(' ');
    let epoch: u64 = it.next()?.strip_prefix('e')?.parse().ok()?;
    let kind = match it.next()?.strip_prefix('k')? {
        "split" => MigrationKind::Split,
        "merge" => MigrationKind::Merge,
        "rebal" => MigrationKind::Rebalance,
        _ => return None,
    };
    let src: u16 = it.next()?.strip_prefix('s')?.parse().ok()?;
    let dst: u16 = it.next()?.strip_prefix('d')?.parse().ok()?;
    let (old_streams, old_slots) = decode_table(it.next()?)?;
    let (streams, slots) = decode_table(it.next()?)?;
    if it.next().is_some() || epoch == 0 {
        return None;
    }
    let old = ShardMap::from_parts(epoch - 1, old_streams, old_slots);
    let plan = MigrationPlan {
        epoch,
        kind,
        src: ShardId(src),
        dst: ShardId(dst),
        streams,
        slots,
    };
    Some((old, plan))
}

/// Materializes the slice of a peer's view owned by shard `s` — the unit
/// the plane delivers and the chaos oracles compare against.
pub fn slice_view(map: &ShardMap, s: ShardId, view: &ViewInstance) -> MaterializedView {
    let mut out = MaterializedView::new();
    for (rel, t) in view.facts() {
        if map.shard_of(t.key()) == s {
            out.upsert(rel, t.clone());
        }
    }
    out
}

impl ShardPlane {
    /// A plane over `shards` shards with reliable per-shard transports and
    /// no durability.
    pub fn new(spec: Arc<cwf_lang::WorkflowSpec>, shards: usize) -> Self {
        let transports = (0..shards)
            .map(|_| Box::new(PerfectTransport::new()) as Box<dyn Transport>)
            .collect();
        Self::with_parts(
            spec,
            transports,
            None,
            ShardPlaneConfig::with_shards(shards),
        )
    }

    /// Full-control constructor: one transport per shard (the vector length
    /// is the shard count and must match `config.shards`), an optional WAL
    /// stream per shard (same length when present), and tuning knobs.
    pub fn with_parts(
        spec: Arc<cwf_lang::WorkflowSpec>,
        transports: Vec<Box<dyn Transport>>,
        wals: Option<Vec<Wal>>,
        config: ShardPlaneConfig,
    ) -> Self {
        Self::from_run(Run::new(spec), transports, wals, config)
    }

    fn from_run(
        run: Run,
        transports: Vec<Box<dyn Transport>>,
        wals: Option<Vec<Wal>>,
        config: ShardPlaneConfig,
    ) -> Self {
        assert_eq!(
            transports.len(),
            config.shards,
            "one transport per shard ({} != {})",
            transports.len(),
            config.shards
        );
        if let Some(w) = &wals {
            assert_eq!(
                w.len(),
                config.shards,
                "one WAL stream per shard ({} != {})",
                w.len(),
                config.shards
            );
        }
        let peers = run.spec().collab().peer_count();
        let map = ShardMap::new(config.shards);
        let shards: Vec<Shard> = transports
            .into_iter()
            .enumerate()
            .map(|(i, t)| Shard::fresh(ShardId(i as u16), peers, t, config.coordinator))
            .collect();
        let admission = ShardAdmissionStats {
            local_admitted: vec![0; shards.len()],
            ..Default::default()
        };
        ShardPlane {
            run,
            map,
            peers,
            shards,
            wals,
            config: config.coordinator,
            clock: 0,
            hlc: Hlc::new(ROUTER_NODE),
            log: Vec::new(),
            handoff: None,
            reshard: None,
            ft: FtStats::default(),
            stats: ShardPlaneStats::default(),
            admission,
            next_gid: 1,
            events_since_snapshot: 0,
            base_events: 0,
            pending_commits: Vec::new(),
            commit_faults: CommitFaults::default(),
            degraded: false,
        }
    }

    /// Rebuilds a durable plane from its per-shard WAL streams — the
    /// **quorum recovery** procedure. Every stream is scanned (longest
    /// valid prefix, torn-tail truncation, dense-seq tamper checks);
    /// in-doubt cross-shard transactions are resolved deterministically
    /// (committed iff *some* surviving stream holds the `c` record,
    /// presumed abort otherwise); the global run order is reconstructed by
    /// sorting the surviving committed records by HLC stamp and replaying
    /// them (re-validating every transition) above the best surviving
    /// snapshot. The recovered instance is then repartitioned across fresh
    /// shards, every standby is reprovisioned, and every peer slice is
    /// resynced. Oplogs and broadcast logs restart — the streams, not the
    /// in-memory oplogs, are the durable record — and every clock is
    /// raised above the highest recovered stamp so new records keep
    /// sorting after old ones.
    pub fn recover(
        spec: Arc<cwf_lang::WorkflowSpec>,
        mut backends: Vec<Box<dyn WalBackend>>,
        opts: WalOptions,
        transports: Vec<Box<dyn Transport>>,
        config: ShardPlaneConfig,
    ) -> Result<(Self, RecoveryReport), WalError> {
        assert_eq!(
            backends.len(),
            config.shards,
            "one WAL stream per shard ({} != {})",
            backends.len(),
            config.shards
        );
        let (run, report, meta) = Self::replay_streams(&spec, &mut backends, opts)?;
        let wals: Vec<Wal> = backends
            .into_iter()
            .zip(meta.next_seqs.iter().zip(&meta.valid_lens))
            .map(|(b, (&next_seq, &len))| Wal::resume(b, opts, next_seq, len))
            .collect();
        let mut plane = Self::from_run(run, transports, Some(wals), config);
        // The committed assignment comes from the record chain, not the
        // config: a plane that resharded recovers the epoch and table its
        // surviving `m`/`f` records pin (an in-flight migration resolves
        // to presumed abort — old ownership, epoch burned).
        if let Some(map) = meta.map {
            assert!(
                map.shards() <= plane.shards.len(),
                "the recovered map ({} shards) outgrows the streams ({})",
                map.shards(),
                plane.shards.len()
            );
            plane.map = map;
        }
        plane.stats.epoch = plane.map.epoch();
        plane.stats.resharding_completed = meta.reshard_completed;
        plane.stats.resharding_aborted = meta.reshard_aborted;
        plane.stats.resharding_started = meta.reshard_completed + meta.reshard_aborted;
        plane.next_gid = meta.next_gid;
        plane.admission.in_doubt_committed = meta.in_doubt_committed;
        plane.admission.in_doubt_aborted = meta.in_doubt_aborted;
        plane.events_since_snapshot = report.events_replayed as u64;
        plane.base_events = report.last_seq - report.events_replayed as u64;
        plane.ft.recovered_events = report.events_replayed as u64;
        plane.ft.truncated_bytes = report.truncated_bytes as u64;
        // Every clock must dominate the durable record stamps, or records
        // written after this recovery would sort before recovered ones.
        plane.hlc.observe(0, &meta.max_stamp);
        for shard in &mut plane.shards {
            shard.hlc.observe(0, &meta.max_stamp);
        }
        // Repartition the recovered instance into shard states.
        for (rel, t) in plane.run.current().facts() {
            let s = plane.map.shard_of(t.key());
            plane.shards[s.index()].state.upsert(rel, t.clone());
        }
        for shard in &mut plane.shards {
            shard.standby.state = shard.state.clone();
        }
        // Replicas restart cold: push everyone a full slice snapshot.
        let (map, run) = (plane.map.clone(), &plane.run);
        for shard in &mut plane.shards {
            for i in 0..plane.peers {
                let p = PeerId(i as u32);
                let view = slice_view(&map, shard.id, run.peer_view(p));
                shard.delivery.resync_with(p, view, &mut plane.ft);
            }
        }
        plane.pump();
        Ok((plane, report))
    }

    /// Dry-run of the quorum recovery: replays the streams into a [`Run`]
    /// without building a plane. This is what the chaos battery's
    /// `shard-wal-replay` oracle calls against copies of the live bytes.
    pub fn replay_wals(
        spec: &Arc<cwf_lang::WorkflowSpec>,
        mut backends: Vec<Box<dyn WalBackend>>,
        opts: WalOptions,
    ) -> Result<(Run, RecoveryReport), WalError> {
        let (run, report, _) = Self::replay_streams(spec, &mut backends, opts)?;
        Ok((run, report))
    }

    /// Scans every stream and reconstructs the global run (see
    /// [`ShardPlane::recover`] for the rules).
    fn replay_streams(
        spec: &Arc<cwf_lang::WorkflowSpec>,
        backends: &mut [Box<dyn WalBackend>],
        _opts: WalOptions,
    ) -> Result<(Run, RecoveryReport, ReplayMeta), WalError> {
        use std::collections::{BTreeMap, BTreeSet};
        let schema = spec.collab().schema();
        let mut truncated_bytes = 0usize;
        let mut next_seqs = Vec::with_capacity(backends.len());
        let mut valid_lens = Vec::with_capacity(backends.len());
        // Committed-record candidates: (stamp, event payload, seq for
        // error reporting). Locals are committed by construction.
        let mut events: Vec<(HlcStamp, String, u64)> = Vec::new();
        let mut prepares: BTreeMap<u64, (HlcStamp, String, u64)> = BTreeMap::new();
        let mut prepared_by_stream: Vec<BTreeSet<u64>> = Vec::new();
        let mut committed_by_stream: Vec<BTreeSet<u64>> = Vec::new();
        let mut commit_gids: BTreeSet<u64> = BTreeSet::new();
        let mut abort_gids: BTreeSet<u64> = BTreeSet::new();
        // Best surviving snapshot: (covered count, last covered stamp,
        // instance, fresh watermark).
        let mut snapshot: Option<(u64, HlcStamp, Instance, u64)> = None;
        // Map-change history: plans by migrating epoch, resolutions
        // (`f` cutover / `x` abort) by resolution epoch.
        let mut plans: BTreeMap<u64, (ShardMap, MigrationPlan)> = BTreeMap::new();
        let mut map_resolutions: BTreeMap<u64, char> = BTreeMap::new();
        let mut max_gid = 0u64;
        let mut max_stamp = HlcStamp {
            wall: 0,
            logical: 0,
            node: 0,
        };
        let tampered = |seq: u64, reason: String| WalError::Tampered { seq, reason };
        for backend in backends.iter_mut() {
            let scan = Wal::scan_stream(backend.as_mut())?;
            truncated_bytes += scan.truncated_bytes;
            next_seqs.push(scan.last_seq + 1);
            valid_lens.push(scan.valid_len);
            let mut prepared: BTreeSet<u64> = BTreeSet::new();
            let mut committed: BTreeSet<u64> = BTreeSet::new();
            for rec in &scan.records {
                match rec.kind {
                    'e' => {
                        let (st, ev) = rec
                            .payload
                            .split_once(' ')
                            .ok_or_else(|| tampered(rec.seq, "event record too short".into()))?;
                        let stamp = decode_stamp(st)
                            .ok_or_else(|| tampered(rec.seq, format!("bad stamp {st:?}")))?;
                        max_stamp = max_stamp.max(stamp);
                        events.push((stamp, ev.to_string(), rec.seq));
                    }
                    'p' => {
                        let mut it = rec.payload.splitn(3, ' ');
                        let gid = it
                            .next()
                            .and_then(decode_gid)
                            .ok_or_else(|| tampered(rec.seq, "prepare lacks a gid".into()))?;
                        let st = it
                            .next()
                            .ok_or_else(|| tampered(rec.seq, "prepare lacks a stamp".into()))?;
                        let stamp = decode_stamp(st)
                            .ok_or_else(|| tampered(rec.seq, format!("bad stamp {st:?}")))?;
                        let ev = it
                            .next()
                            .ok_or_else(|| tampered(rec.seq, "prepare lacks an event".into()))?;
                        max_stamp = max_stamp.max(stamp);
                        max_gid = max_gid.max(gid);
                        prepares
                            .entry(gid)
                            .or_insert_with(|| (stamp, ev.to_string(), rec.seq));
                        prepared.insert(gid);
                    }
                    'c' | 'a' => {
                        let gid = decode_gid(&rec.payload).ok_or_else(|| {
                            tampered(rec.seq, format!("{} record lacks a gid", rec.kind))
                        })?;
                        max_gid = max_gid.max(gid);
                        if rec.kind == 'c' {
                            commit_gids.insert(gid);
                            committed.insert(gid);
                        } else {
                            abort_gids.insert(gid);
                        }
                    }
                    's' => {
                        let mut it = rec.payload.splitn(3, ' ');
                        let count = it
                            .next()
                            .and_then(decode_gid)
                            .ok_or_else(|| tampered(rec.seq, "snapshot lacks a count".into()))?;
                        let st = it
                            .next()
                            .ok_or_else(|| tampered(rec.seq, "snapshot lacks a stamp".into()))?;
                        let stamp = decode_stamp(st)
                            .ok_or_else(|| tampered(rec.seq, format!("bad stamp {st:?}")))?;
                        let rest = it.next().ok_or_else(|| {
                            tampered(rec.seq, "snapshot lacks an instance".into())
                        })?;
                        let (inst, watermark) = decode_snapshot(schema, rest)
                            .map_err(|reason| tampered(rec.seq, reason))?;
                        max_stamp = max_stamp.max(stamp);
                        if snapshot.as_ref().is_none_or(|(c, ..)| count > *c) {
                            snapshot = Some((count, stamp, inst, watermark));
                        }
                    }
                    'm' => {
                        let (old, plan) = decode_plan(&rec.payload).ok_or_else(|| {
                            tampered(rec.seq, "undecodable migration plan".into())
                        })?;
                        plans.insert(plan.epoch, (old, plan));
                    }
                    'f' | 'x' => {
                        let epoch: u64 = rec
                            .payload
                            .strip_prefix('e')
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| {
                                tampered(rec.seq, format!("{} record lacks an epoch", rec.kind))
                            })?;
                        map_resolutions.insert(epoch, rec.kind);
                    }
                    _ => {
                        return Err(tampered(
                            rec.seq,
                            format!("record kind {:?} is not a shard-stream record", rec.kind),
                        ))
                    }
                }
            }
            prepared_by_stream.push(prepared);
            committed_by_stream.push(committed);
        }
        // Resolve cross-shard transactions: committed iff some surviving
        // stream holds the `c` record (the home stream's is synced before
        // the ack, so no acknowledged event resolves to abort); everything
        // prepared but never decided is presumed aborted.
        let mut in_doubt_committed = 0u64;
        let mut in_doubt_aborted = 0u64;
        for gid in &commit_gids {
            let (stamp, ev, seq) = prepares.get(gid).ok_or_else(|| {
                tampered(0, format!("transaction {gid} committed without a prepare"))
            })?;
            // In doubt iff some participant held the prepare but lost the
            // commit record (stall or torn tail on that stream).
            if prepared_by_stream
                .iter()
                .zip(&committed_by_stream)
                .any(|(p, c)| p.contains(gid) && !c.contains(gid))
            {
                in_doubt_committed += 1;
            }
            events.push((*stamp, ev.clone(), *seq));
        }
        for gid in prepares.keys() {
            if !commit_gids.contains(gid) && !abort_gids.contains(gid) {
                in_doubt_aborted += 1;
            }
        }
        // Resolve map changes by the same rule as transactions: a plan is
        // committed iff its fenced cutover record survived; everything
        // else — an explicit `x`, a lost `x`, or a plan still in flight at
        // the crash — resolves to **presumed abort** (the `f` record is
        // force-synced before any admission routes by the new map, so no
        // acknowledged routing decision is ever presumed away). Walking
        // the dense epoch chain yields one committed assignment: every
        // key's ownership is entirely old or entirely new, never mixed.
        for (&epoch, &kind) in &map_resolutions {
            if kind == 'f' && (epoch < 2 || !plans.contains_key(&(epoch - 1))) {
                return Err(tampered(
                    0,
                    format!("cutover to epoch {epoch} without a surviving plan"),
                ));
            }
        }
        let mut map: Option<ShardMap> = None;
        let mut reshard_completed = 0u64;
        let mut reshard_aborted = 0u64;
        for (&e, (old, plan)) in &plans {
            match &map {
                None => map = Some(old.clone()),
                Some(m) => {
                    if m.slots() != old.slots() || m.shards() != old.shards() {
                        return Err(tampered(0, format!("migration chain breaks at epoch {e}")));
                    }
                }
            }
            if map_resolutions.get(&(e + 1)) == Some(&'f') {
                map = Some(ShardMap::from_parts(
                    e + 1,
                    plan.streams,
                    plan.slots.clone(),
                ));
                reshard_completed += 1;
            } else {
                let m = map.as_ref().expect("seeded above");
                map = Some(ShardMap::from_parts(
                    e + 1,
                    m.shards() as u16,
                    m.slots().to_vec(),
                ));
                reshard_aborted += 1;
            }
        }
        // Serialize: stamp order is admission order (module docs).
        events.sort_by_key(|a| a.0);
        // Rebuild from the best snapshot, replaying records above its
        // stamp (records are stamped strictly increasing, so the covered
        // prefix is exactly the records at or below it).
        let (snapshot_count, snap_stamp, initial, watermark) = match snapshot {
            Some((count, stamp, inst, watermark)) => (count, Some(stamp), inst, watermark),
            None => (0, None, Instance::empty(schema), 0),
        };
        let mut run = Run::with_initial(Arc::clone(spec), initial);
        run.raise_fresh_watermark(watermark);
        let mut events_replayed = 0usize;
        for (stamp, payload, seq) in &events {
            if snap_stamp.as_ref().is_some_and(|s| stamp <= s) {
                continue;
            }
            let event = decode_event(spec, payload, 0)
                .map_err(|e| tampered(*seq, format!("undecodable event: {e}")))?;
            run.push(event)
                .map_err(|e| tampered(*seq, format!("does not replay: {e}")))?;
            events_replayed += 1;
        }
        let report = RecoveryReport {
            last_seq: snapshot_count + events_replayed as u64,
            events_replayed,
            snapshot_seq: snap_stamp.map(|_| snapshot_count),
            truncated_bytes,
        };
        let meta = ReplayMeta {
            next_seqs,
            valid_lens,
            next_gid: max_gid + 1,
            in_doubt_committed,
            in_doubt_aborted,
            max_stamp,
            map,
            reshard_completed,
            reshard_aborted,
        };
        Ok((run, report, meta))
    }

    /// The global run (the routing layer's authoritative admission record).
    pub fn run(&self) -> &Run {
        &self.run
    }

    /// The key→shard map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of peers served.
    pub fn peer_count(&self) -> usize {
        self.peers
    }

    /// The broadcast log of this process epoch (the causality oracle's
    /// input; empty after a recovery, like the coordinator's).
    pub fn log(&self) -> &[ShardBroadcast] {
        &self.log
    }

    /// Shard `s`'s oplog.
    pub fn oplog(&self, s: ShardId) -> &Oplog {
        &self.shards[s.index()].oplog
    }

    /// Shard `s`'s state partition (base tuples it owns).
    pub fn shard_state(&self, s: ShardId) -> &MaterializedView {
        &self.shards[s.index()].state
    }

    /// Shard `s`'s slice of peer `p`'s replica.
    pub fn shard_replica(&self, s: ShardId, p: PeerId) -> &MaterializedView {
        self.shards[s.index()].delivery.replica(p)
    }

    /// Peer `p`'s full replica: the union of its per-shard slices (key
    /// spaces are disjoint, so this is a plain merge).
    pub fn union_replica(&self, p: PeerId) -> MaterializedView {
        let mut out = MaterializedView::new();
        for shard in &self.shards {
            for (rel, t) in shard.delivery.replica(p).facts() {
                out.upsert(rel, t.clone());
            }
        }
        out
    }

    /// The union of all shard state partitions.
    pub fn union_state(&self) -> MaterializedView {
        let mut out = MaterializedView::new();
        for shard in &self.shards {
            for (rel, t) in shard.state.facts() {
                out.upsert(rel, t.clone());
            }
        }
        out
    }

    /// Does the union of shard states equal `instance` exactly?
    pub fn state_matches(&self, instance: &Instance) -> bool {
        self.union_state().facts().eq(instance.facts())
    }

    /// Fault-tolerance counters (shared across all shard deliveries).
    pub fn ft_stats(&self) -> &FtStats {
        &self.ft
    }

    /// Plane-level robustness counters.
    pub fn plane_stats(&self) -> &ShardPlaneStats {
        &self.stats
    }

    /// Run statistics with the fault-tolerance counters attached.
    pub fn stats(&self) -> RunStats {
        let mut s = RunStats::of(&self.run);
        s.fault_tolerance = Some(self.ft.clone());
        s.sharding = Some(self.admission.clone());
        s.plane = Some(self.stats);
        s
    }

    /// Is the plane in degraded (read-only) mode after a durability
    /// failure? Mirrors [`Coordinator::degraded`](crate::coordinator::Coordinator::degraded).
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Attempts to leave degraded mode (re-arms the WAL).
    pub fn rearm(&mut self) -> Result<(), CoordinatorError> {
        if !self.degraded {
            return Ok(());
        }
        if let Some(wals) = self.wals.as_mut() {
            for wal in wals {
                wal.rearm().map_err(CoordinatorError::Wal)?;
            }
        }
        self.degraded = false;
        self.ft.degraded_recoveries += 1;
        Ok(())
    }

    /// Distributed-admission counters (local vs cross-shard commits,
    /// protocol records written, in-doubt resolutions).
    pub fn admission_stats(&self) -> &ShardAdmissionStats {
        &self.admission
    }

    /// Commit records currently deferred by an injected stall, awaiting a
    /// [`ShardPlane::pump`] flush.
    pub fn pending_commit_flushes(&self) -> usize {
        self.pending_commits.len()
    }

    /// Arms a one-shot commit stall: the next non-home commit record
    /// destined for shard `s` is deferred to the next `pump` instead of
    /// written, leaving that participant's stream in doubt meanwhile.
    pub fn inject_commit_stall(&mut self, s: ShardId) {
        self.commit_faults.stall = Some(s);
    }

    /// Arms a one-shot clean abort of the next cross-shard transaction
    /// (after its prepare phase: `a` records everywhere, event rolled
    /// back, submit returns [`CoordinatorError::CommitAborted`]).
    pub fn inject_commit_abort(&mut self) {
        self.commit_faults.abort_next = true;
    }

    /// Arms a one-shot router death after the next prepare phase: the
    /// prepares stay orphaned on every participant, the event rolls back,
    /// and submit returns [`CoordinatorError::InDoubt`].
    pub fn inject_router_crash(&mut self) {
        self.commit_faults.router_crash = true;
    }

    /// Disarms any injected commit-protocol fault.
    pub fn clear_commit_faults(&mut self) {
        self.commit_faults = CommitFaults::default();
    }

    /// Draws a globally fresh value (for clients constructing events).
    pub fn draw_fresh(&mut self) -> cwf_model::Value {
        self.run.draw_fresh()
    }

    /// Appends one record to shard `s`'s stream, retrying transient
    /// faults a bounded number of times with capped exponential backoff
    /// (realized by advancing the deterministic clock). Returns the last
    /// error once retries are exhausted or the fault is hard.
    fn append_with_retry(
        &mut self,
        s: ShardId,
        kind: char,
        payload: &str,
        force_sync: bool,
    ) -> Result<u64, WalError> {
        let mut retries = self.config.wal_transient_retries;
        let mut backoff = self.config.retry_backoff_base.max(1);
        loop {
            let wal = &mut self.wals.as_mut().expect("durable plane")[s.index()];
            match wal.append_raw(kind, payload, force_sync) {
                Ok(seq) => return Ok(seq),
                Err(e @ WalError::Transient(_)) => {
                    if retries == 0 {
                        return Err(e);
                    }
                    retries -= 1;
                    self.ft.wal_transient_retries += 1;
                    self.clock += backoff;
                    backoff = (backoff * 2).min(self.config.retry_backoff_cap.max(1));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Writes best-effort abort records for `gid` to `participants`
    /// (skipping streams whose append fails — a surviving orphaned
    /// prepare resolves by presumed abort at recovery anyway).
    fn abort_best_effort(&mut self, participants: &[ShardId], gid: u64) {
        let payload = format!("g{gid}");
        for &s in participants {
            let wal = &mut self.wals.as_mut().expect("durable plane")[s.index()];
            if wal.append_raw('a', &payload, false).is_ok() {
                self.admission.aborts_written += 1;
            }
        }
    }

    /// Writes a plane snapshot to the home stream when the cadence is due.
    /// The event carrying `record_stamp` is already durable, so a snapshot
    /// failure degrades the plane but does not fail the submit.
    fn maybe_snapshot(&mut self, home: ShardId, record_stamp: &HlcStamp) {
        let every = match self.wals.as_ref().expect("durable plane")[home.index()]
            .options()
            .snapshot_every
        {
            Some(n) => n.max(1),
            None => return,
        };
        if self.events_since_snapshot < every {
            return;
        }
        let spec = self.run.spec_arc();
        let covered = self.base_events + self.run.len() as u64;
        let payload = format!(
            "g{covered} {} {}",
            encode_stamp(record_stamp),
            encode_snapshot(
                spec.collab().schema(),
                self.run.current(),
                self.run.fresh_watermark()
            )
        );
        match self.append_with_retry(home, 's', &payload, true) {
            Ok(_) => {
                self.ft.wal_snapshots += 1;
                self.events_since_snapshot = 0;
            }
            Err(_) => {
                self.ft.wal_failures += 1;
                self.degraded = true;
            }
        }
    }

    /// Admits an event globally, makes it durable (when WAL streams are
    /// attached), routes its ops and deltas to the owning shards, and runs
    /// one delivery round. A single-shard event commits on its home
    /// shard's path alone (one `e` record on that stream); an event whose
    /// ops span shards goes through the cross-shard prepare/commit
    /// protocol (see the module docs). The returned broadcast records the
    /// home shard and every HLC stamp issued.
    pub fn submit(&mut self, event: Event) -> Result<&ShardBroadcast, CoordinatorError> {
        if self.degraded {
            self.ft.degraded_rejected += 1;
            return Err(CoordinatorError::Degraded);
        }
        let spec = self.run.spec_arc();
        let actor = event.peer;
        self.run.push(event.clone())?;
        self.clock += 1;
        let at = self.run.len() - 1;
        // Split the diff's tuple-level changes by owning shard, in diff
        // order (created, deleted, modified). The home shard owns the first
        // written key — shard 0 for an (impossible in practice) empty diff.
        // With one shard the partition is trivial: skip the key hashing and
        // the map entirely (the E18/E19 fast path).
        let diff = self.run.diff(at).clone();
        let mut ops: Vec<(ShardId, Vec<ShardOp>)> = Vec::new();
        let home;
        if self.shards.len() == 1 {
            let mut local = Vec::new();
            for (rel, t) in &diff.created {
                local.push(ShardOp::Upsert {
                    rel: *rel,
                    tuple: t.clone(),
                });
            }
            for (rel, t) in &diff.deleted {
                local.push(ShardOp::Remove {
                    rel: *rel,
                    key: *t.key(),
                });
            }
            for (rel, key, _) in &diff.modified {
                if let Some(t) = self.run.current().rel(*rel).get(key) {
                    local.push(ShardOp::Upsert {
                        rel: *rel,
                        tuple: t.clone(),
                    });
                }
            }
            home = ShardId(0);
            if !local.is_empty() {
                ops.push((ShardId(0), local));
            }
        } else {
            let mut by_shard: std::collections::BTreeMap<ShardId, Vec<ShardOp>> =
                std::collections::BTreeMap::new();
            let mut first: Option<ShardId> = None;
            for (rel, t) in &diff.created {
                let s = self.map.shard_of(t.key());
                first.get_or_insert(s);
                by_shard.entry(s).or_default().push(ShardOp::Upsert {
                    rel: *rel,
                    tuple: t.clone(),
                });
            }
            for (rel, t) in &diff.deleted {
                let s = self.map.shard_of(t.key());
                first.get_or_insert(s);
                by_shard.entry(s).or_default().push(ShardOp::Remove {
                    rel: *rel,
                    key: *t.key(),
                });
            }
            for (rel, key, _) in &diff.modified {
                let s = self.map.shard_of(key);
                first.get_or_insert(s);
                if let Some(t) = self.run.current().rel(*rel).get(key) {
                    by_shard.entry(s).or_default().push(ShardOp::Upsert {
                        rel: *rel,
                        tuple: t.clone(),
                    });
                }
            }
            home = first.unwrap_or(ShardId(0));
            ops.extend(by_shard);
        }
        // Stamp the admission and mint each owning shard's oplog stamp,
        // folding stamps both ways so causality survives into the clocks
        // (every stamp of event i orders strictly below every stamp of
        // event i+1 — the serialization invariant recovery sorts by).
        let admitted = self.hlc.now(self.clock);
        let mut stamps = Vec::with_capacity(ops.len());
        for (s, _) in &ops {
            let stamp = self.shards[s.index()].hlc.observe(self.clock, &admitted);
            self.hlc.observe(self.clock, &stamp);
            stamps.push((*s, stamp));
        }
        // Durability. Single participant: one `e` record on that shard's
        // stream, stamped with its oplog stamp — shard-local admission,
        // no router WAL work. Multiple participants: the cross-shard
        // prepare/commit protocol under the router's admission stamp.
        if self.wals.is_some() {
            let participants: Vec<ShardId> = if ops.is_empty() {
                vec![ShardId(0)]
            } else {
                ops.iter().map(|(s, _)| *s).collect()
            };
            // The stamp the event's deciding record carries (and the one
            // the next snapshot covers through).
            let record_stamp = if participants.len() == 1 {
                stamps.first().map(|(_, st)| *st).unwrap_or(admitted)
            } else {
                admitted
            };
            if participants.len() == 1 {
                let s = participants[0];
                let payload = format!(
                    "{} {}",
                    encode_stamp(&record_stamp),
                    encode_event(&spec, &event)
                );
                if let Err(e) = self.append_with_retry(s, 'e', &payload, false) {
                    self.run.pop();
                    self.ft.wal_failures += 1;
                    self.degraded = true;
                    return Err(CoordinatorError::Wal(e));
                }
                self.ft.wal_appends += 1;
                self.admission.local_admitted[s.index()] += 1;
            } else {
                let gid = self.next_gid;
                self.next_gid += 1;
                // Prepare phase: every participant gets the admission
                // stamp and the full event (any one survivor can replay).
                let prepare = format!(
                    "g{gid} {} {}",
                    encode_stamp(&admitted),
                    encode_event(&spec, &event)
                );
                let mut prepared: Vec<ShardId> = Vec::with_capacity(participants.len());
                for &s in &participants {
                    if let Err(e) = self.append_with_retry(s, 'p', &prepare, false) {
                        self.abort_best_effort(&prepared, gid);
                        self.run.pop();
                        self.ft.wal_failures += 1;
                        self.admission.cross_shard_aborted += 1;
                        self.degraded = true;
                        return Err(CoordinatorError::Wal(e));
                    }
                    self.admission.prepares_written += 1;
                    prepared.push(s);
                }
                if self.commit_faults.abort_next {
                    // Injected timeout: a participant failed to vote in
                    // time, so the router aborts cleanly everywhere.
                    self.commit_faults.abort_next = false;
                    self.abort_best_effort(&participants, gid);
                    self.run.pop();
                    self.admission.cross_shard_aborted += 1;
                    return Err(CoordinatorError::CommitAborted);
                }
                if self.commit_faults.router_crash {
                    // Injected router death: prepares stay orphaned on
                    // every participant; recovery presumes abort.
                    self.commit_faults.router_crash = false;
                    self.run.pop();
                    return Err(CoordinatorError::InDoubt);
                }
                // Commit point: the home stream's `c` record, synced
                // before anything is acknowledged.
                let decision = format!("g{gid}");
                if let Err(e) = self.append_with_retry(home, 'c', &decision, true) {
                    self.abort_best_effort(&participants, gid);
                    self.run.pop();
                    self.ft.wal_failures += 1;
                    self.admission.cross_shard_aborted += 1;
                    self.degraded = true;
                    return Err(CoordinatorError::Wal(e));
                }
                self.admission.commits_written += 1;
                // Past the commit point the event IS durable: failures on
                // the remaining participants leave in-doubt prepares that
                // recovery resolves from the home record, so the commit
                // records are deferred, never rolled back.
                for &s in &participants {
                    if s == home {
                        continue;
                    }
                    if self.commit_faults.stall == Some(s) {
                        self.commit_faults.stall = None;
                        self.pending_commits.push((s, gid));
                        continue;
                    }
                    match self.append_with_retry(s, 'c', &decision, false) {
                        Ok(_) => self.admission.commits_written += 1,
                        Err(_) => {
                            self.ft.wal_failures += 1;
                            self.degraded = true;
                            self.pending_commits.push((s, gid));
                        }
                    }
                }
                self.ft.wal_appends += 1;
                self.admission.cross_shard_committed += 1;
            }
            self.events_since_snapshot += 1;
            self.maybe_snapshot(home, &record_stamp);
        }
        // Apply: every owning shard appends the event to its oplog under
        // its pre-minted stamp and applies its ops to its partition.
        for ((s, shard_ops), (_, stamp)) in ops.iter().zip(&stamps) {
            let shard = &mut self.shards[s.index()];
            shard
                .oplog
                .append(*stamp, home, at, actor, shard_ops.clone());
            for op in shard_ops {
                op.apply_to(&mut shard.state);
            }
        }
        // Route every peer's view delta: split by owning shard, enqueue
        // each slice on that shard's delivery plane (ascending shard order
        // per peer, for determinism). One shard ⇒ the slice is the delta.
        let deltas: Vec<(PeerId, ViewDelta)> = self.run.last_deltas().to_vec();
        let mut delta_shards: std::collections::BTreeSet<ShardId> =
            std::collections::BTreeSet::new();
        if self.shards.len() == 1 {
            for (p, delta) in &deltas {
                if delta.upserts.is_empty() && delta.removals.is_empty() {
                    continue;
                }
                delta_shards.insert(ShardId(0));
                self.shards[0]
                    .delivery
                    .enqueue(*p, delta.clone(), &mut self.ft);
            }
        } else {
            for (p, delta) in &deltas {
                let mut slices: std::collections::BTreeMap<ShardId, ViewDelta> =
                    std::collections::BTreeMap::new();
                for (rel, t) in &delta.upserts {
                    let s = self.map.shard_of(t.key());
                    slices.entry(s).or_default().upserts.push((*rel, t.clone()));
                }
                for (rel, key) in &delta.removals {
                    let s = self.map.shard_of(key);
                    slices.entry(s).or_default().removals.push((*rel, *key));
                }
                for (s, slice) in slices {
                    delta_shards.insert(s);
                    self.shards[s.index()]
                        .delivery
                        .enqueue(*p, slice, &mut self.ft);
                }
            }
        }
        delta_shards.extend(ops.iter().map(|(s, _)| *s));
        if delta_shards.len() > 1 {
            self.stats.cross_shard_events += 1;
        }
        self.log.push(ShardBroadcast {
            at,
            actor,
            home,
            admitted,
            stamps,
            deltas,
        });
        self.pump();
        Ok(self.log.last().expect("just pushed"))
    }

    /// One delivery round on every shard: flush commit records deferred by
    /// a stall (re-queueing the ones that still fail), replicate oplog
    /// tails to standby replicas (where the replication link is up), then
    /// pump each shard's delivery plane (transport tick, deliver, ack,
    /// retry, resync).
    pub fn pump(&mut self) {
        self.clock += 1;
        if !self.pending_commits.is_empty() && !self.degraded && self.wals.is_some() {
            for (s, gid) in std::mem::take(&mut self.pending_commits) {
                match self.append_with_retry(s, 'c', &format!("g{gid}"), false) {
                    Ok(_) => {
                        self.admission.commits_written += 1;
                        self.admission.pending_commit_flushes += 1;
                    }
                    Err(WalError::Transient(_)) => self.pending_commits.push((s, gid)),
                    Err(_) => {
                        self.ft.wal_failures += 1;
                        self.degraded = true;
                        self.pending_commits.push((s, gid));
                    }
                }
            }
        }
        let (map, run) = (self.map.clone(), &self.run);
        for shard in &mut self.shards {
            if shard.standby.link_up {
                for e in shard.oplog.tail(shard.standby.applied_seq) {
                    for op in &e.ops {
                        op.apply_to(&mut shard.standby.state);
                    }
                    self.stats.standby_applied += 1;
                }
                shard.standby.applied_seq = shard.oplog.last_seq();
            }
            let id = shard.id;
            shard
                .delivery
                .pump(&mut self.ft, |p| slice_view(&map, id, run.peer_view(p)));
        }
    }

    /// Stops all fault injection on every shard transport and restores
    /// every link, including standby replication links.
    pub fn heal(&mut self) {
        for shard in &mut self.shards {
            shard.delivery.heal();
            shard.standby.link_up = true;
        }
    }

    /// Cuts one link of shard `s` (a peer's slice or the standby feed).
    pub fn partition_link(&mut self, s: ShardId, link: ShardLink) {
        self.stats.partitions_cut += 1;
        let shard = &mut self.shards[s.index()];
        match link {
            ShardLink::Peer(p) => shard.delivery.set_link(p, false),
            ShardLink::Standby => shard.standby.link_up = false,
        }
    }

    /// Restores one link of shard `s`.
    pub fn heal_link(&mut self, s: ShardId, link: ShardLink) {
        self.stats.partitions_healed += 1;
        let shard = &mut self.shards[s.index()];
        match link {
            ShardLink::Peer(p) => shard.delivery.set_link(p, true),
            ShardLink::Standby => shard.standby.link_up = true,
        }
    }

    /// Queues a slice resync for every (shard, peer) slice that currently
    /// diverges from its authoritative view.
    pub fn resync_divergent(&mut self) -> usize {
        let mut n = 0;
        let (map, run) = (self.map.clone(), &self.run);
        for shard in &mut self.shards {
            for i in 0..self.peers {
                let p = PeerId(i as u32);
                let expect = slice_view(&map, shard.id, run.peer_view(p));
                if !shard.delivery.replica(p).same_facts(&expect) {
                    shard.delivery.resync_with(p, expect, &mut self.ft);
                    n += 1;
                }
            }
        }
        n
    }

    /// Fails shard `s` over to its standby: the primary (state, outboxes,
    /// in-flight traffic) is lost; the standby is promoted and replays the
    /// oplog tail past its applied watermark; delivery resumes on a fresh
    /// `transport` *past* the per-peer sequence watermarks (control-plane
    /// metadata the router witnesses on every enqueue), so post-failover
    /// snapshots supersede everything the dead primary sent; every peer
    /// slice is resynced. A hand-off in progress on `s` is aborted — and
    /// **reported**: the returned [`FailoverReport`] carries the abort
    /// (and the `failover_aborted_handoffs` counter logs it), so callers
    /// can tell a clean promotion from one that killed a hand-off.
    pub fn failover(&mut self, s: ShardId, transport: Box<dyn Transport>) -> FailoverReport {
        let mut report = FailoverReport::default();
        if self.handoff.as_ref().is_some_and(|h| h.shard == s) {
            self.abort_handoff();
            self.stats.failover_aborted_handoffs += 1;
            report.aborted_handoff = true;
        }
        self.stats.failovers += 1;
        let clock = self.clock;
        let peers = self.peers;
        let config = self.config;
        let shard = &mut self.shards[s.index()];
        // Promote: standby state + oplog tail replay.
        let mut state = shard.standby.state.clone();
        for e in shard.oplog.tail(shard.standby.applied_seq) {
            for op in &e.ops {
                op.apply_to(&mut state);
            }
            self.stats.failover_replayed += 1;
            report.replayed += 1;
        }
        shard.state = state;
        // The promoted node's clock must dominate the durable log.
        let mut hlc = Hlc::new(s.0);
        if let Some(e) = shard.oplog.last() {
            hlc.observe(clock, &e.stamp);
        }
        shard.hlc = hlc;
        // Resume the per-peer streams past the watermarks; replicas are
        // then resynced so the fresh snapshots supersede the old stream.
        let seqs = shard.delivery.next_seqs();
        shard.delivery = Delivery::resuming(peers, transport, config.into(), &seqs);
        shard.standby = Standby {
            state: shard.state.clone(),
            applied_seq: shard.oplog.last_seq(),
            link_up: true,
        };
        let (map, run) = (self.map.clone(), &self.run);
        for i in 0..peers {
            let p = PeerId(i as u32);
            let view = slice_view(&map, s, run.peer_view(p));
            shard.delivery.resync_with(p, view, &mut self.ft);
        }
        report
    }

    /// Starts handing shard `s` off to a new node: snapshots the shard
    /// state at the current oplog head (the drain point — admission is
    /// atomic in this deployment, so nothing is in flight mid-submit).
    /// Returns `false` if another hand-off — or a migration, whose
    /// cutover would rewrite the partition under the transfer — is
    /// already in progress.
    pub fn begin_handoff(&mut self, s: ShardId) -> bool {
        if self.handoff.is_some() || self.reshard.is_some() {
            return false;
        }
        self.stats.handoffs_started += 1;
        let shard = &self.shards[s.index()];
        self.handoff = Some(HandoffState {
            shard: s,
            state: shard.state.clone(),
            transferred_seq: shard.oplog.last_seq(),
        });
        true
    }

    /// The in-progress hand-off, if any: its shard and how many oplog
    /// records appended since the snapshot still await transfer.
    pub fn handoff_in_progress(&self) -> Option<(ShardId, u64)> {
        self.handoff.as_ref().map(|h| {
            let head = self.shards[h.shard.index()].oplog.last_seq();
            (h.shard, head - h.transferred_seq)
        })
    }

    /// Transfers up to `max_records` oplog records (appended after the
    /// snapshot) to the receiving node; returns how many records still
    /// await transfer afterwards. No-op (returning 0) without a hand-off.
    pub fn step_handoff(&mut self, max_records: usize) -> u64 {
        let Some(h) = self.handoff.as_mut() else {
            return 0;
        };
        let shard = &self.shards[h.shard.index()];
        let tail = shard.oplog.tail(h.transferred_seq);
        let take = tail.len().min(max_records);
        for e in &tail[..take] {
            for op in &e.ops {
                op.apply_to(&mut h.state);
            }
            h.transferred_seq = e.seq;
            self.stats.handoff_records += 1;
        }
        shard.oplog.last_seq() - h.transferred_seq
    }

    /// Abandons the in-progress hand-off: the receiving node's partial
    /// state is discarded and the current primary keeps serving — nothing
    /// on the serving path changed, so the rollback is trivially clean.
    /// Returns `false` if no hand-off was in progress.
    pub fn abort_handoff(&mut self) -> bool {
        if self.handoff.take().is_none() {
            return false;
        }
        self.stats.handoffs_aborted += 1;
        true
    }

    /// Completes the hand-off: transfers any remaining oplog tail, then
    /// cuts over — the receiving node (on its fresh `transport`) becomes
    /// the shard primary, sequence streams resume past the watermarks,
    /// every peer slice is resynced, and a new standby is provisioned from
    /// the new primary. Returns `false` if no hand-off was in progress.
    pub fn finish_handoff(&mut self, transport: Box<dyn Transport>) -> bool {
        let Some(mut h) = self.handoff.take() else {
            return false;
        };
        let s = h.shard;
        let peers = self.peers;
        let config = self.config;
        let clock = self.clock;
        let shard = &mut self.shards[s.index()];
        // Drain + replay tail: transfer everything still missing.
        for e in shard.oplog.tail(h.transferred_seq) {
            for op in &e.ops {
                op.apply_to(&mut h.state);
            }
            h.transferred_seq = e.seq;
            self.stats.handoff_records += 1;
        }
        debug_assert!(
            h.state.same_facts(&shard.state),
            "a fully transferred hand-off state equals the primary's"
        );
        shard.state = h.state;
        let mut hlc = Hlc::new(s.0);
        if let Some(e) = shard.oplog.last() {
            hlc.observe(clock, &e.stamp);
        }
        shard.hlc = hlc;
        let seqs = shard.delivery.next_seqs();
        shard.delivery = Delivery::resuming(peers, transport, config.into(), &seqs);
        shard.standby = Standby {
            state: shard.state.clone(),
            applied_seq: shard.oplog.last_seq(),
            link_up: true,
        };
        let (map, run) = (self.map.clone(), &self.run);
        for i in 0..peers {
            let p = PeerId(i as u32);
            let view = slice_view(&map, s, run.peer_view(p));
            shard.delivery.resync_with(p, view, &mut self.ft);
        }
        self.stats.handoffs_completed += 1;
        true
    }

    // -----------------------------------------------------------------
    // Elastic resharding
    // -----------------------------------------------------------------

    /// The in-flight migration, if any: its kind, endpoints, and how many
    /// snapshot facts still await copy.
    pub fn reshard_in_progress(&self) -> Option<(MigrationKind, ShardId, ShardId, u64)> {
        self.reshard.as_ref().map(|r| {
            (
                r.plan.kind,
                r.plan.src,
                r.plan.dst,
                (r.snapshot.len() - r.copied) as u64,
            )
        })
    }

    /// Begins a **split**: half of `src`'s key space will move to a
    /// brand-new shard served by `transport` (and, on a durable plane,
    /// logging to `wal` — pass the stream the caller provisioned). The
    /// plan is made durable as a force-synced `m` record on the router
    /// stream before anything else changes. Returns `Ok(false)` — and
    /// leaves the new stream untouched — when a migration or hand-off is
    /// already in flight or the plan is impossible.
    pub fn begin_split(
        &mut self,
        src: ShardId,
        transport: Box<dyn Transport>,
        wal: Option<Wal>,
    ) -> Result<bool, CoordinatorError> {
        assert_eq!(
            self.wals.is_some(),
            wal.is_some(),
            "a durable plane's new shard needs its own stream (and only then)"
        );
        let dst = ShardId(self.shards.len() as u16);
        let Some(plan) = self.map.plan_split(src, dst) else {
            return Ok(false);
        };
        self.begin_reshard(plan, Some((transport, wal)))
    }

    /// Begins a **merge**: all of `src`'s key space will move to the
    /// existing `dst` (leaving `src` an idle stream). Same durability and
    /// refusal rules as [`ShardPlane::begin_split`].
    pub fn begin_merge(&mut self, src: ShardId, dst: ShardId) -> Result<bool, CoordinatorError> {
        let Some(plan) = self.map.plan_merge(src, dst) else {
            return Ok(false);
        };
        self.begin_reshard(plan, None)
    }

    /// Begins a **rebalance**: about half of `src`'s key space will move
    /// to the existing `dst`. Same rules as [`ShardPlane::begin_split`].
    pub fn begin_rebalance(
        &mut self,
        src: ShardId,
        dst: ShardId,
    ) -> Result<bool, CoordinatorError> {
        let Some(plan) = self.map.plan_rebalance(src, dst) else {
            return Ok(false);
        };
        self.begin_reshard(plan, None)
    }

    fn begin_reshard(
        &mut self,
        plan: MigrationPlan,
        new_shard: Option<(Box<dyn Transport>, Option<Wal>)>,
    ) -> Result<bool, CoordinatorError> {
        if self.degraded {
            self.ft.degraded_rejected += 1;
            return Err(CoordinatorError::Degraded);
        }
        if self.reshard.is_some() || self.handoff.is_some() {
            return Ok(false);
        }
        // The migration exists once the plan record is down, not before:
        // a crash after this sync recovers it (and presumed-aborts it).
        if self.wals.is_some() {
            let payload = encode_plan(&self.map, &plan);
            if let Err(e) = self.append_with_retry(ROUTER_STREAM, 'm', &payload, true) {
                self.ft.wal_failures += 1;
                self.degraded = true;
                return Err(CoordinatorError::Wal(e));
            }
        }
        // A split provisions its destination now: an empty partition on a
        // fresh stream. If the migration later aborts, the stream stays
        // behind, idle and owning nothing — streams only ever grow.
        if let Some((transport, wal)) = new_shard {
            debug_assert_eq!(plan.dst.index(), self.shards.len());
            self.shards
                .push(Shard::fresh(plan.dst, self.peers, transport, self.config));
            if let Some(w) = wal {
                self.wals.as_mut().expect("durable plane").push(w);
            }
            self.admission.local_admitted.push(0);
        }
        // Freeze the moving facts (snapshot copy source) and the source
        // oplog watermark (the catch-up tail starts above it). During the
        // migration every admission keeps routing by the *old* map, so
        // the source stays authoritative until the cutover.
        let target = ShardMap::from_parts(plan.epoch + 1, plan.streams, plan.slots.clone());
        let src_shard = &self.shards[plan.src.index()];
        let mut snapshot = Vec::new();
        for (rel, t) in src_shard.state.facts() {
            if target.shard_of(t.key()) == plan.dst {
                snapshot.push((rel, t.clone()));
            }
        }
        let watermark = src_shard.oplog.last_seq();
        self.map.begin(&plan);
        self.stats.resharding_started += 1;
        self.stats.epoch = self.map.epoch();
        self.reshard = Some(ReshardState {
            plan,
            target,
            snapshot,
            copied: 0,
            staged: MaterializedView::new(),
            watermark,
        });
        Ok(true)
    }

    /// Copies up to `max_facts` of the frozen snapshot to the
    /// destination's staged state; returns how many facts still await
    /// copy afterwards. No-op (returning 0) without a migration.
    pub fn step_reshard(&mut self, max_facts: usize) -> u64 {
        let Some(r) = self.reshard.as_mut() else {
            return 0;
        };
        let take = (r.snapshot.len() - r.copied).min(max_facts);
        for (rel, t) in &r.snapshot[r.copied..r.copied + take] {
            r.staged.upsert(*rel, t.clone());
        }
        r.copied += take;
        (r.snapshot.len() - r.copied) as u64
    }

    /// The fenced cutover: completes the copy, replays the source-oplog
    /// tail (catch-up for everything admitted since begin), writes the
    /// force-synced `f` record that **atomically flips the map epoch**,
    /// moves the key space, reprovisions both standbys, and resyncs every
    /// changed peer slice. Admissions before this call routed by the old
    /// epoch; admissions after route by the new one — HLC stamps keep
    /// ordering both sides, so stamp order stays admission order across
    /// the flip. Returns `Ok(false)` without a migration; on a cutover-
    /// record failure the migration stays in flight (retry after
    /// [`ShardPlane::rearm`]).
    pub fn finish_reshard(&mut self) -> Result<bool, CoordinatorError> {
        if self.degraded {
            self.ft.degraded_rejected += 1;
            return Err(CoordinatorError::Degraded);
        }
        let Some(mut r) = self.reshard.take() else {
            return Ok(false);
        };
        // Complete the snapshot copy…
        for (rel, t) in &r.snapshot[r.copied..] {
            r.staged.upsert(*rel, t.clone());
        }
        r.copied = r.snapshot.len();
        // …then catch up: replay the source-oplog tail filtered to the
        // moving keys (idempotent ops — a stale snapshot copy is simply
        // overwritten by its later tail entry).
        let tail_ops: Vec<ShardOp> = self.shards[r.plan.src.index()]
            .oplog
            .tail(r.watermark)
            .iter()
            .flat_map(|e| e.ops.iter().cloned())
            .collect();
        for op in &tail_ops {
            let key = match op {
                ShardOp::Upsert { tuple, .. } => tuple.key(),
                ShardOp::Remove { key, .. } => key,
            };
            if r.target.shard_of(key) == r.plan.dst {
                op.apply_to(&mut r.staged);
            }
        }
        // The commit point: the fenced cutover record, force-synced on
        // the router stream. Past this record the new assignment is the
        // truth; before it, recovery presumes the migration away.
        if self.wals.is_some() {
            let payload = format!("e{}", r.plan.epoch + 1);
            if let Err(e) = self.append_with_retry(ROUTER_STREAM, 'f', &payload, true) {
                self.ft.wal_failures += 1;
                self.degraded = true;
                self.reshard = Some(r);
                return Err(CoordinatorError::Wal(e));
            }
        }
        let moved = r.staged.total_tuples() as u64;
        self.map.cutover(&r.plan);
        let map = self.map.clone();
        {
            let dst = &mut self.shards[r.plan.dst.index()];
            for (rel, t) in r.staged.facts() {
                dst.state.upsert(rel, t.clone());
            }
            dst.standby = Standby {
                state: dst.state.clone(),
                applied_seq: dst.oplog.last_seq(),
                link_up: true,
            };
        }
        {
            let src = &mut self.shards[r.plan.src.index()];
            let keep: Vec<(RelId, Tuple)> = src
                .state
                .facts()
                .filter(|(_, t)| map.shard_of(t.key()) == r.plan.src)
                .map(|(rel, t)| (rel, t.clone()))
                .collect();
            let mut state = MaterializedView::new();
            for (rel, t) in keep {
                state.upsert(rel, t);
            }
            src.state = state;
            src.standby = Standby {
                state: src.state.clone(),
                applied_seq: src.oplog.last_seq(),
                link_up: true,
            };
        }
        debug_assert!(
            self.state_matches(self.run.current()),
            "the cutover preserves the union invariant"
        );
        self.stats.resharding_completed += 1;
        self.stats.keys_migrated += moved;
        self.stats.epoch = self.map.epoch();
        // Fence the epochs on every slice whose shape just changed: a
        // snapshot resync is force-queued for *all* peer slices of both
        // endpoints, not just the currently-divergent ones. A lagging
        // replica can coincidentally equal its new expectation while an
        // old-epoch delta is still in flight toward it; without the
        // fence, that delta (and the new-epoch deltas behind it) would
        // apply on top and leave a state no single (prefix, map) pair
        // explains. With it, the slice applies in seq order: old-epoch
        // deltas, the full new-shape snapshot, then new-epoch deltas.
        let run = &self.run;
        for sid in [r.plan.src, r.plan.dst] {
            let shard = &mut self.shards[sid.index()];
            for i in 0..self.peers {
                let p = PeerId(i as u32);
                let view = slice_view(&map, sid, run.peer_view(p));
                shard.delivery.resync_with(p, view, &mut self.ft);
            }
        }
        self.pump();
        Ok(true)
    }

    /// Abandons the in-flight migration: the staged copy is discarded and
    /// keys keep routing to their old owners. A best-effort `x` record
    /// marks the abort explicitly — its absence already means abort
    /// (recovery presumes it), so a write failure costs nothing but
    /// explicitness. Returns `false` without a migration.
    pub fn abort_reshard(&mut self) -> bool {
        let Some(r) = self.reshard.take() else {
            return false;
        };
        if let Some(wals) = self.wals.as_mut() {
            let payload = format!("e{}", r.plan.epoch + 1);
            let _ = wals[ROUTER_STREAM.index()].append_raw('x', &payload, false);
        }
        self.map.abort();
        self.stats.resharding_aborted += 1;
        self.stats.epoch = self.map.epoch();
        true
    }

    /// Messages awaiting acknowledgement across every shard's outboxes.
    pub fn undelivered(&self) -> usize {
        self.shards.iter().map(|s| s.delivery.undelivered()).sum()
    }

    /// Per (shard, peer) slices with outstanding messages, ascending.
    pub fn undelivered_by_slice(&self) -> Vec<(ShardId, PeerId, usize)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (p, n) in shard.delivery.undelivered_by_peer() {
                out.push((shard.id, p, n));
            }
        }
        out
    }

    /// The (shard, peer) slices whose replica differs from its
    /// authoritative view, ascending.
    pub fn divergent_slices(&self) -> Vec<(ShardId, PeerId)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for i in 0..self.peers {
                let p = PeerId(i as u32);
                let expect = slice_view(&self.map, shard.id, self.run.peer_view(p));
                if !shard.delivery.replica(p).same_facts(&expect) {
                    out.push((shard.id, p));
                }
            }
        }
        out
    }

    /// Verifies every (shard, peer) slice against its authoritative view.
    pub fn audit(&self) -> Result<(), (ShardId, PeerId)> {
        match self.divergent_slices().into_iter().next() {
            Some(slice) => Err(slice),
            None => Ok(()),
        }
    }

    fn quiescent(&self) -> bool {
        self.undelivered() == 0 && self.audit().is_ok()
    }

    /// Pumps until every slice matches its authoritative view and no
    /// message awaits acknowledgement, or `max_ticks` rounds elapse.
    pub fn converge(&mut self, max_ticks: u64) -> ShardConvergence {
        for t in 0..=max_ticks {
            if self.quiescent() {
                return ShardConvergence::Converged { ticks: t };
            }
            if t < max_ticks {
                self.pump();
            }
        }
        ShardConvergence::Stalled {
            undelivered: self.undelivered_by_slice(),
            divergent: self.divergent_slices(),
        }
    }
}

impl fmt::Debug for ShardPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ShardPlane[{} shards, {} events, {} unacked{}{}]",
            self.shards.len(),
            self.run.len(),
            self.undelivered(),
            if self.wals.is_some() { ", durable" } else { "" },
            if self.degraded { ", DEGRADED" } else { "" },
        )
    }
}
